package axml_test

import (
	"fmt"
	"sort"

	axml "github.com/activexml/axml"
)

// The running document of the examples: a city directory whose restaurant
// listings are intensional.
const exampleDoc = `
<city>
  <district>
    <name>Center</name>
    <axml:call service="getVenues">Center</axml:call>
  </district>
  <district>
    <name>Harbour</name>
    <axml:call service="getVenues">Harbour</axml:call>
  </district>
</city>`

func exampleRegistry() *axml.Registry {
	reg := axml.NewRegistry()
	reg.Register(&axml.Service{
		Name:    "getVenues",
		CanPush: true,
		Handler: func(params []*axml.Node) ([]*axml.Node, error) {
			district := params[0].Text()
			venue := func(name, stars string) *axml.Node {
				v := axml.NewElement("venue")
				v.Append(axml.NewElement("name")).Append(axml.NewText(name))
				v.Append(axml.NewElement("stars")).Append(axml.NewText(stars))
				return v
			}
			if district == "Center" {
				return []*axml.Node{venue("In Delis", "5"), venue("Jo", "3")}, nil
			}
			return []*axml.Node{venue("The Dock", "5")}, nil
		},
	})
	return reg
}

// Evaluate a query lazily with signature-based pruning: only the Center
// district's call is invoked (untyped evaluation would also try the
// Harbour call, which could in principle return a matching name).
func ExampleEvaluate() {
	doc, _ := axml.ParseDocument([]byte(exampleDoc))
	sch, _ := axml.ParseSchema(`
functions:
  getVenues = [in: data, out: venue*]
elements:
  venue = name.stars
  name  = data
  stars = data
`)
	q := axml.MustParseQuery(`/city/district[name="Center"]/venue[stars="5"][name=$V] -> $V`)
	out, _ := axml.Evaluate(doc, q, exampleRegistry(), axml.Options{
		Strategy: axml.LazyNFQTyped, Schema: sch,
	})
	for _, r := range out.Results {
		fmt.Println(r.Values["V"])
	}
	fmt.Println("calls:", out.Stats.CallsInvoked)
	// Output:
	// In Delis
	// calls: 1
}

// Snapshot evaluates without invoking anything — the intensional parts
// stay unexpanded, so there is nothing to match yet.
func ExampleSnapshot() {
	doc, _ := axml.ParseDocument([]byte(exampleDoc))
	q := axml.MustParseQuery(`/city/district//venue[name=$V] -> $V`)
	fmt.Println("snapshot results:", len(axml.Snapshot(doc, q)))
	// Output:
	// snapshot results: 0
}

// Relevant lists the calls that could still contribute to a query —
// Definition 3 of the paper as an API. Without signatures every district
// call stays optimistically relevant (a call "could" return a matching
// name); the schema pins getVenues to venue output, so only the Center
// call survives.
func ExampleRelevant() {
	doc, _ := axml.ParseDocument([]byte(exampleDoc))
	sch, _ := axml.ParseSchema(`
functions:
  getVenues = [in: data, out: venue*]
elements:
  venue = name.stars
  name  = data
  stars = data
`)
	q := axml.MustParseQuery(`/city/district[name="Center"]//venue`)
	untyped, _ := axml.Relevant(doc, q, nil, axml.ExactTypes)
	typed, _ := axml.Relevant(doc, q, sch, axml.ExactTypes)
	fmt.Println("untyped relevant:", len(untyped))
	for _, c := range typed {
		fmt.Println(c.Label, "for", c.Parent.Child("name").Value())
	}
	// Output:
	// untyped relevant: 2
	// getVenues for Center
}

// ConstructDocument turns query results into a new (possibly again
// intensional) document via a template.
func ExampleConstructDocument() {
	doc, _ := axml.ParseDocument([]byte(exampleDoc))
	q := axml.MustParseQuery(`/city/district//venue[stars="5"][name=$V] -> $V`)
	out, _ := axml.Evaluate(doc, q, exampleRegistry(), axml.Options{Strategy: axml.LazyNFQ})
	sort.Slice(out.Results, func(i, j int) bool {
		return out.Results[i].Values["V"] < out.Results[j].Values["V"]
	})
	tmpl, _ := axml.ParseTemplate(`<pick>{$V}</pick>`)
	built, _ := axml.ConstructDocument("guide", tmpl, out.Results)
	data, _ := axml.MarshalDocument(built.Root)
	fmt.Println(string(data))
	// Output:
	// <guide><pick>In Delis</pick><pick>The Dock</pick></guide>
}

// ParseSchema enables signature-based pruning and document validation.
func ExampleParseSchema() {
	sch, _ := axml.ParseSchema(`
functions:
  getVenues = [in: data, out: venue*]
elements:
  venue = name.stars
  name  = data
  stars = data
`)
	doc, _ := axml.ParseDocument([]byte(`<venue><name>Jo</name><stars>3</stars></venue>`))
	fmt.Println("valid:", sch.ValidateDocument(doc) == nil)
	bad, _ := axml.ParseDocument([]byte(`<venue><stars>3</stars></venue>`))
	fmt.Println("truncated valid:", sch.ValidateDocument(bad) == nil)
	// Output:
	// valid: true
	// truncated valid: false
}
