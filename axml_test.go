// Package axml_test exercises the public facade exactly as an importing
// project would, without touching internal packages.
package axml_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	axml "github.com/activexml/axml"
)

const hotelsDoc = `
<hotels>
  <hotel>
    <name>Best Western</name>
    <rating>*****</rating>
    <nearby><axml:call service="getNearbyRestos">addr-1</axml:call></nearby>
  </hotel>
  <hotel>
    <name>Pennsylvania</name>
    <rating>*****</rating>
    <nearby><axml:call service="getNearbyRestos">addr-2</axml:call></nearby>
  </hotel>
</hotels>`

const hotelsSchema = `
functions:
  getNearbyRestos = [in: data, out: restaurant*]
elements:
  hotels     = hotel*
  hotel      = name.rating.nearby
  nearby     = (restaurant|getNearbyRestos)*
  restaurant = name.rating
  name       = data
  rating     = data
`

func restosService(invocations *int) *axml.Service {
	return &axml.Service{
		Name:    "getNearbyRestos",
		CanPush: true,
		Handler: func(params []*axml.Node) ([]*axml.Node, error) {
			*invocations++
			mk := func(name, rating string) *axml.Node {
				r := axml.NewElement("restaurant")
				r.Append(axml.NewElement("name")).Append(axml.NewText(name))
				r.Append(axml.NewElement("rating")).Append(axml.NewText(rating))
				return r
			}
			addr := params[0].Text()
			return []*axml.Node{
				mk("Good-"+addr, "*****"),
				mk("Meh-"+addr, "**"),
			}, nil
		},
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	doc, err := axml.ParseDocument([]byte(hotelsDoc))
	if err != nil {
		t.Fatal(err)
	}
	q, err := axml.ParseQuery(
		`/hotels/hotel[name="Best Western"]/nearby//restaurant[rating="*****"][name=$X] -> $X`)
	if err != nil {
		t.Fatal(err)
	}
	invocations := 0
	reg := axml.NewRegistry()
	reg.Register(restosService(&invocations))

	// Snapshot before any invocation is empty (Definition 1 semantics).
	if rs := axml.Snapshot(doc, q); len(rs) != 0 {
		t.Fatalf("snapshot should be empty, got %v", rs)
	}
	// Completeness check sees the two relevant... no: only Best Western's
	// call is relevant (the other hotel's name cannot change).
	rel, err := axml.Relevant(doc, q, nil, axml.ExactTypes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 1 {
		t.Fatalf("relevant calls = %d, want 1", len(rel))
	}
	ok, err := axml.Complete(doc, q, nil, axml.ExactTypes)
	if err != nil || ok {
		t.Fatalf("fresh doc complete=%v err=%v", ok, err)
	}

	out, err := axml.Evaluate(doc, q, reg, axml.Options{Strategy: axml.LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || len(out.Results) != 1 {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Results[0].Values["X"] != "Good-addr-1" {
		t.Fatalf("result = %v", out.Results[0].Values)
	}
	if invocations != 1 {
		t.Fatalf("invocations = %d, want 1 (Pennsylvania pruned)", invocations)
	}
	ok, err = axml.Complete(doc, q, nil, axml.ExactTypes)
	if err != nil || !ok {
		t.Fatalf("evaluated doc complete=%v err=%v", ok, err)
	}
}

func TestFacadeSchemaAndValidation(t *testing.T) {
	sch, err := axml.ParseSchema(hotelsSchema)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := axml.ParseDocument([]byte(hotelsDoc))
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.ValidateDocument(doc); err != nil {
		t.Fatalf("document should validate: %v", err)
	}
	bad, _ := axml.ParseDocument([]byte(`<hotels><hotel><name>x</name></hotel></hotels>`))
	if err := sch.ValidateDocument(bad); err == nil {
		t.Fatal("truncated hotel should fail validation")
	}
	// Typed evaluation through the facade.
	q := axml.MustParseQuery(`/hotels/hotel[name="Best Western"]/nearby//restaurant[name=$X] -> $X`)
	invocations := 0
	reg := axml.NewRegistry()
	reg.Register(restosService(&invocations))
	out, err := axml.Evaluate(doc, q, reg, axml.Options{
		Strategy: axml.LazyNFQTyped, Schema: sch, SchemaMode: axml.LenientTypes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(out.Results))
	}
}

func TestFacadeDocumentConstruction(t *testing.T) {
	root := axml.NewElement("r")
	root.Append(axml.NewElement("a")).Append(axml.NewText("v"))
	root.Append(axml.NewCall("f", axml.NewText("p")))
	doc := axml.NewDocument(root)
	data, err := axml.MarshalDocument(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := axml.ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Root.Equal(back.Root) {
		t.Fatal("construction round trip failed")
	}
	if _, err := axml.MarshalDocumentIndent(doc.Root); err != nil {
		t.Fatal(err)
	}
	g := axml.BuildFGuide(doc)
	if g.Calls() != 1 {
		t.Fatalf("guide calls = %d", g.Calls())
	}
}

func TestFacadeHTTP(t *testing.T) {
	invocations := 0
	reg := axml.NewRegistry()
	reg.Register(restosService(&invocations))
	srv := httptest.NewServer(axml.NewHTTPServer(reg, false))
	defer srv.Close()

	client := &axml.HTTPClient{BaseURL: srv.URL}
	remote, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := axml.ParseDocument([]byte(hotelsDoc))
	q := axml.MustParseQuery(
		`/hotels/hotel[name="Best Western"]/nearby//restaurant[rating="*****"][name=$X] -> $X`)
	out, err := axml.Evaluate(doc, q, remote, axml.Options{
		Strategy: axml.LazyNFQ, Push: true, Clock: axml.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Stats.PushedCalls != 1 {
		t.Fatalf("outcome over HTTP: results=%d pushed=%d", len(out.Results), out.Stats.PushedCalls)
	}
}

func TestFacadeStrategyNames(t *testing.T) {
	names := []string{}
	for _, s := range []axml.Strategy{
		axml.NaiveFixpoint, axml.TopDownEager, axml.LazyLPQ, axml.LazyNFQ, axml.LazyNFQTyped,
	} {
		names = append(names, fmt.Sprint(s))
	}
	if strings.Join(names, ",") != "naive,eager,lazy-lpq,lazy-nfq,lazy-nfq-typed" {
		t.Fatalf("strategy names = %v", names)
	}
}

func TestFacadeConstructAndWatch(t *testing.T) {
	// Construct: turn query results into a new document.
	doc, _ := axml.ParseDocument([]byte(hotelsDoc))
	q := axml.MustParseQuery(
		`/hotels/hotel[name="Best Western"]/nearby//restaurant[rating="*****"][name=$X] -> $X`)
	invocations := 0
	reg := axml.NewRegistry()
	reg.Register(restosService(&invocations))
	out, err := axml.Evaluate(doc, q, reg, axml.Options{Strategy: axml.LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := axml.ParseTemplate(`<pick>{$X}</pick>`)
	if err != nil {
		t.Fatal(err)
	}
	built, err := axml.ConstructDocument("picks", tmpl, out.Results)
	if err != nil {
		t.Fatal(err)
	}
	if built.Root.Label != "picks" || len(built.Root.Children) != 1 ||
		built.Root.Children[0].Text() != "Good-addr-1" {
		t.Fatalf("constructed = %s", built.Root)
	}

	// Watch: the result set changes as the document is refreshed.
	doc2, _ := axml.ParseDocument([]byte(hotelsDoc))
	ctl := axml.NewActivationController(doc2, reg)
	changes := 0
	w := axml.Watch(ctl, q, reg, axml.Options{Strategy: axml.LazyNFQ}, func(c axml.ResultChange) {
		changes++
		if len(c.Added) != 1 || c.Size != 1 {
			t.Errorf("change = %+v", c)
		}
	})
	if err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if changes != 1 {
		t.Fatalf("changes = %d, want 1 (second poll is a no-op)", changes)
	}
}

// TestFacadeFaultTolerance drives the fault layer exactly as an importer
// would: a flaky injected registry, engine retries, and best effort with
// honest completeness (see doc/FAULTS.md).
func TestFacadeFaultTolerance(t *testing.T) {
	doc, _ := axml.ParseDocument([]byte(hotelsDoc))
	q, _ := axml.ParseQuery(
		`/hotels/hotel[name="Best Western"]/nearby//restaurant[rating="*****"][name=$X] -> $X`)
	invocations := 0
	reg := axml.NewRegistry()
	reg.Register(restosService(&invocations))

	// The first invocation of every service fails with a transient fault.
	inj := axml.NewFaults(axml.FaultSpec{Seed: 7, FailFirst: 1})
	flaky := inj.Wrap(reg)

	// Fail-fast without retries surfaces a classified fault.
	_, err := axml.Evaluate(doc.Clone(), q, flaky, axml.Options{Strategy: axml.LazyNFQ})
	if err == nil {
		t.Fatal("fail-fast run succeeded despite injected fault")
	}
	if axml.ClassOf(err) != axml.TransientFault {
		t.Fatalf("class = %v, want transient (err %v)", axml.ClassOf(err), err)
	}

	// Retries absorb the fault; best effort is not even needed.
	inj.Reset()
	out, err := axml.Evaluate(doc.Clone(), q, flaky, axml.Options{
		Strategy: axml.LazyNFQ,
		Retry:    axml.RetryPolicy{MaxAttempts: 3},
		Failure:  axml.BestEffort,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || len(out.Results) != 1 || len(out.Failures) != 0 {
		t.Fatalf("outcome: complete=%t results=%d failures=%d",
			out.Complete, len(out.Results), len(out.Failures))
	}
	if out.Stats.Retries == 0 {
		t.Fatal("no retries recorded")
	}

	// A permanently failing relevant call under best effort: recorded,
	// and completeness honestly degraded.
	inj2 := axml.NewFaults(axml.FaultSpec{Seed: 7, PermanentRate: 1})
	out, err = axml.Evaluate(doc.Clone(), q, inj2.Wrap(reg), axml.Options{
		Strategy: axml.LazyNFQ,
		Retry:    axml.RetryPolicy{MaxAttempts: 3},
		Failure:  axml.BestEffort,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete || len(out.Failures) != 1 {
		t.Fatalf("outcome: complete=%t failures=%+v", out.Complete, out.Failures)
	}
	if out.Failures[0].Service != "getNearbyRestos" || out.Failures[0].Attempts != 1 {
		t.Fatalf("failure record: %+v", out.Failures[0])
	}
}
