// Benchmarks regenerating the paper's evaluation: one BenchE<n> per
// experiment (see DESIGN.md §4 for the index, EXPERIMENTS.md for the
// recorded series), plus micro-benchmarks of the substrates. Run with
//
//	go test -bench=. -benchmem
//
// The full tables are printed by cmd/axmlbench.
package axml

import (
	"fmt"
	"testing"

	"github.com/activexml/axml/internal/bench"
	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	scale := bench.Quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1StrategiesAcrossSizes(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2LatencySweep(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3QueryPushing(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4FGuideDetection(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5LayeringParallelism(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6ExactVsLenientTypes(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7JoinRelaxation(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8HTTPEndToEnd(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE11InvocationPool(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE13StreamProjection(b *testing.B)     { benchExperiment(b, "E13") }

// BenchmarkStrategies reports per-strategy evaluation cost and the
// calls-invoked metric on the default world — the quantities behind E1,
// as custom benchmark metrics.
func BenchmarkStrategies(b *testing.B) {
	for _, opt := range []core.Options{
		{Strategy: core.NaiveFixpoint},
		{Strategy: core.LazyLPQ},
		{Strategy: core.LazyNFQ},
		{Strategy: core.LazyNFQTyped},
		{Strategy: core.LazyNFQTyped, Layering: true, Parallel: true, UseGuide: true},
	} {
		name := opt.Strategy.String()
		if opt.UseGuide {
			name += "+layer+par+guide"
		}
		b.Run(name, func(b *testing.B) {
			w := workload.Hotels(workload.DefaultSpec())
			o := opt
			if o.Strategy == core.LazyNFQTyped {
				o.Schema = w.Schema
			}
			b.ReportAllocs()
			var calls, virt int64
			for i := 0; i < b.N; i++ {
				out, err := core.Evaluate(w.Doc.Clone(), w.Query, w.Registry, o)
				if err != nil {
					b.Fatal(err)
				}
				calls += int64(out.Stats.CallsInvoked)
				virt += int64(out.Stats.VirtualTime)
			}
			b.ReportMetric(float64(calls)/float64(b.N), "calls/op")
			b.ReportMetric(float64(virt)/float64(b.N)/1e6, "virt-ms/op")
		})
	}
}

// BenchmarkE10TelemetryOverhead pins the cost of the telemetry layer on
// the E10 incremental sweep: "disabled" is the default nil-instrument
// path (the overhead budget is ≤2% against a build without the hooks,
// see doc/OBSERVABILITY.md), "enabled" runs with a live registry and
// span tracer.
func BenchmarkE10TelemetryOverhead(b *testing.B) {
	e, ok := bench.ByID("E10")
	if !ok {
		b.Fatal("no experiment E10")
	}
	b.Run("disabled", func(b *testing.B) {
		scale := bench.Quick()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(scale); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scale := bench.Quick()
			scale.Tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
			if _, err := e.RunInstrumented(scale); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Substrate micro-benchmarks.

func BenchmarkPatternEval(b *testing.B) {
	for _, bulk := range []int{0, 50} {
		b.Run(fmt.Sprintf("bulk=%d", bulk), func(b *testing.B) {
			spec := workload.DefaultSpec()
			spec.MaterializedRestos = bulk
			w := workload.Hotels(spec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pattern.Eval(w.Doc, w.Query)
			}
		})
	}
}

func BenchmarkNFQGeneration(b *testing.B) {
	w := workload.Hotels(workload.DefaultSpec())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.BuildAll(w.Query, rewrite.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSatisfiabilityAnalysis(b *testing.B) {
	for _, mode := range []schema.Mode{schema.Exact, schema.Lenient} {
		name := "exact"
		if mode == schema.Lenient {
			name = "lenient"
		}
		b.Run(name, func(b *testing.B) {
			spec := workload.DefaultSpec()
			spec.TeaserKinds = 8
			w := workload.Hotels(spec)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				schema.NewAnalyzer(w.Schema, w.Query, mode)
			}
		})
	}
}

func BenchmarkFGuideBuild(b *testing.B) {
	spec := workload.DefaultSpec()
	spec.Hotels = 200
	w := workload.Hotels(spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fguide.Build(w.Doc)
	}
}

func BenchmarkFGuideCandidates(b *testing.B) {
	spec := workload.DefaultSpec()
	spec.Hotels = 200
	w := workload.Hotels(spec)
	g := fguide.Build(w.Doc)
	nfqs, err := rewrite.BuildAll(w.Query, rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nfq := range nfqs {
			g.Candidates(nfq.Lin, nfq.DescTail)
		}
	}
}

func BenchmarkDocumentCodec(b *testing.B) {
	w := workload.Hotels(workload.DefaultSpec())
	data, err := MarshalDocument(w.Doc.Root)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MarshalDocument(w.Doc.Root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ParseDocument(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
