module github.com/activexml/axml

go 1.22
