package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func TestDumpDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.axml")
	var out, errOut strings.Builder
	code := run([]string{"-dump-doc", path, "-hotels", "5"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tree.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "hotels" {
		t.Fatalf("dumped root = %s", doc.Root.Label)
	}
}

func TestDumpDocBadPath(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump-doc", "/nonexistent-dir/x.axml"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestServeAndQuery(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut strings.Builder
	go run([]string{"-addr", "127.0.0.1:0", "-hotels", "10", "-recursive"}, &out, &errOut, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}
	client := &soap.Client{BaseURL: "http://" + addr}
	reg, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	// Recursive mode advertises push on every service.
	infos, err := client.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range infos {
		if !i.CanPush {
			t.Errorf("recursive provider must advertise push on %s", i.Name)
		}
	}
	spec := workload.DefaultSpec()
	spec.Hotels = 10
	spec.HiddenHotels = 2
	w := workload.Hotels(spec)
	res, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, core.Options{
		Strategy: core.LazyNFQ, Push: true, Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != w.ExpectedResults {
		t.Fatalf("results = %d, want %d", len(res.Results), w.ExpectedResults)
	}
}

// TestMetricsEndpoint runs real queries against a serving axmlserver and
// then scrapes /metrics: the request-latency histogram must have counted
// the invocations and the server-side cache must report both misses (the
// first evaluation) and hits (the identical second one). /debug/trace
// must return the invocation spans.
func TestMetricsEndpoint(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut strings.Builder
	go run([]string{"-addr", "127.0.0.1:0", "-hotels", "10"}, &out, &errOut, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}
	client := &soap.Client{BaseURL: "http://" + addr}
	reg, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec()
	spec.Hotels = 10
	spec.HiddenHotels = 2
	w := workload.Hotels(spec)
	for i := 0; i < 2; i++ {
		res, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, core.Options{
			Strategy: core.LazyNFQ, Clock: service.NewWallClock(false),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) != w.ExpectedResults {
			t.Fatalf("results = %d, want %d", len(res.Results), w.ExpectedResults)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prom := string(body)
	sample := func(name string) int {
		t.Helper()
		m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(prom)
		if m == nil {
			t.Fatalf("metric %s missing from /metrics:\n%s", name, prom)
		}
		n, _ := strconv.Atoi(m[1])
		return n
	}
	if n := sample("axml_http_requests_total"); n == 0 {
		t.Fatal("no requests counted")
	}
	if n := sample("axml_http_handler_seconds_count"); n == 0 {
		t.Fatal("handler latency histogram empty")
	}
	if !strings.Contains(prom, "axml_http_handler_seconds_bucket") {
		t.Fatalf("handler latency buckets missing:\n%s", prom)
	}
	if n := sample("axml_cache_misses_total"); n == 0 {
		t.Fatal("first evaluation should have missed the cache")
	}
	if n := sample("axml_cache_hits_total"); n == 0 {
		t.Fatal("second evaluation should have hit the cache")
	}

	traceResp, err := http.Get("http://" + addr + "/debug/trace?last=10")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	var spans []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || spans[0].Name != "http-invoke" {
		t.Fatalf("expected http-invoke spans on /debug/trace, got %v", spans)
	}
}

func TestBadAddr(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-addr", "999.999.999.999:-1"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
