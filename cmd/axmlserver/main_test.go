package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func TestDumpDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.axml")
	var out, errOut strings.Builder
	code := run([]string{"-dump-doc", path, "-hotels", "5"}, &out, &errOut, nil, nil)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tree.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "hotels" {
		t.Fatalf("dumped root = %s", doc.Root.Label)
	}
}

func TestDumpDocBadPath(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump-doc", "/nonexistent-dir/x.axml"}, &out, &errOut, nil, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestServeAndQuery(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut strings.Builder
	go run([]string{"-addr", "127.0.0.1:0", "-hotels", "10", "-recursive"}, &out, &errOut, ready, nil)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}
	client := &soap.Client{BaseURL: "http://" + addr}
	reg, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	// Recursive mode advertises push on every service.
	infos, err := client.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range infos {
		if !i.CanPush {
			t.Errorf("recursive provider must advertise push on %s", i.Name)
		}
	}
	spec := workload.DefaultSpec()
	spec.Hotels = 10
	spec.HiddenHotels = 2
	w := workload.Hotels(spec)
	res, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, core.Options{
		Strategy: core.LazyNFQ, Push: true, Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != w.ExpectedResults {
		t.Fatalf("results = %d, want %d", len(res.Results), w.ExpectedResults)
	}
}

// TestMetricsEndpoint runs real queries against a serving axmlserver and
// then scrapes /metrics: the request-latency histogram must have counted
// the invocations and the server-side cache must report both misses (the
// first evaluation) and hits (the identical second one). /debug/trace
// must return the invocation spans.
func TestMetricsEndpoint(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut strings.Builder
	go run([]string{"-addr", "127.0.0.1:0", "-hotels", "10"}, &out, &errOut, ready, nil)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}
	client := &soap.Client{BaseURL: "http://" + addr}
	reg, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec()
	spec.Hotels = 10
	spec.HiddenHotels = 2
	w := workload.Hotels(spec)
	for i := 0; i < 2; i++ {
		res, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, core.Options{
			Strategy: core.LazyNFQ, Clock: service.NewWallClock(false),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) != w.ExpectedResults {
			t.Fatalf("results = %d, want %d", len(res.Results), w.ExpectedResults)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prom := string(body)
	sample := func(name string) int {
		t.Helper()
		m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(prom)
		if m == nil {
			t.Fatalf("metric %s missing from /metrics:\n%s", name, prom)
		}
		n, _ := strconv.Atoi(m[1])
		return n
	}
	if n := sample("axml_http_requests_total"); n == 0 {
		t.Fatal("no requests counted")
	}
	if n := sample("axml_http_handler_seconds_count"); n == 0 {
		t.Fatal("handler latency histogram empty")
	}
	if !strings.Contains(prom, "axml_http_handler_seconds_bucket") {
		t.Fatalf("handler latency buckets missing:\n%s", prom)
	}
	if n := sample("axml_cache_misses_total"); n == 0 {
		t.Fatal("first evaluation should have missed the cache")
	}
	if n := sample("axml_cache_hits_total"); n == 0 {
		t.Fatal("second evaluation should have hit the cache")
	}

	traceResp, err := http.Get("http://" + addr + "/debug/trace?last=10")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	var spans []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || spans[0].Name != "http-invoke" {
		t.Fatalf("expected http-invoke spans on /debug/trace, got %v", spans)
	}
}

func TestBadAddr(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-addr", "999.999.999.999:-1"}, &out, &errOut, nil, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

const travelQuery = `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`

func postSessionQuery(t *testing.T, addr string, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestSessionEndpoint exercises the multi-tenant layer end to end: a
// query over HTTP, a memoised repeat, the document listing, and the
// session metrics on /metrics.
func TestSessionEndpoint(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut strings.Builder
	go run([]string{"-addr", "127.0.0.1:0", "-hotels", "10"}, &out, &errOut, ready, nil)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}

	body := `{"tenant":"t1","document":"travel","query":` + strconv.Quote(travelQuery) + `}`
	resp, payload := postSessionQuery(t, addr, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, payload)
	}
	var qr struct {
		Bindings     []map[string]string `json:"bindings"`
		Complete     bool                `json:"complete"`
		Memo         bool                `json:"memo"`
		CallsInvoked int                 `json:"callsInvoked"`
	}
	if err := json.Unmarshal([]byte(payload), &qr); err != nil {
		t.Fatalf("%v\n%s", err, payload)
	}
	if !qr.Complete || len(qr.Bindings) == 0 || qr.CallsInvoked == 0 {
		t.Fatalf("unexpected first answer: %s", payload)
	}

	resp, payload = postSessionQuery(t, addr, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, payload)
	}
	if err := json.Unmarshal([]byte(payload), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Memo || qr.CallsInvoked != 0 {
		t.Fatalf("repeat query not memoised: %s", payload)
	}

	docsResp, err := http.Get("http://" + addr + "/documents")
	if err != nil {
		t.Fatal(err)
	}
	defer docsResp.Body.Close()
	var docs []string
	if err := json.NewDecoder(docsResp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Fatalf("documents = %v, want the 4 suite scenarios", docs)
	}

	mResp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	prom, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"axml_sessions_total 2", "axml_session_seconds_count 2"} {
		if !strings.Contains(string(prom), metric) {
			t.Fatalf("metric %q missing from /metrics:\n%s", metric, prom)
		}
	}
}

// TestGracefulShutdownDrainsInFlight is the shutdown fix's regression
// test: a query admitted before the stop signal runs to completion and
// answers 200 while the server drains, and the process exits cleanly.
// -sleep makes the session's virtual latency real wall time, so the
// query is reliably in flight when the drain starts.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exit := make(chan int, 1)
	var out, errOut strings.Builder
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-hotels", "5", "-latency", "100ms", "-sleep",
			"-drain-timeout", "30s"}, &out, &errOut, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}

	type answer struct {
		status int
		body   string
	}
	done := make(chan answer, 1)
	go func() {
		body := `{"document":"travel","query":` + strconv.Quote(travelQuery) + `}`
		resp, payload := postSessionQuery(t, addr, body)
		done <- answer{resp.StatusCode, payload}
	}()

	// Wait until the query is admitted (active session visible), then
	// pull the plug while it is still sleeping through its rounds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st struct {
			Active int64 `json:"Active"`
		}
		r, err := http.Get("http://" + addr + "/stats")
		if err == nil {
			err = json.NewDecoder(r.Body).Decode(&st)
			r.Body.Close()
		}
		if err == nil && st.Active >= 1 {
			break
		}
		select {
		case a := <-done:
			t.Fatalf("query finished before the server was stopped (status %d) — fixture too fast: %s", a.status, a.body)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("query never became active")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)

	a := <-done
	if a.status != http.StatusOK {
		t.Fatalf("in-flight query during shutdown: status %d, want 200\n%s", a.status, a.body)
	}
	var qr struct {
		Complete bool                `json:"complete"`
		Bindings []map[string]string `json:"bindings"`
	}
	if err := json.Unmarshal([]byte(a.body), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Complete || len(qr.Bindings) == 0 {
		t.Fatalf("in-flight query returned a degraded answer: %s", a.body)
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not exit after drain: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "drained and stopped") {
		t.Fatalf("missing drain confirmation in output:\n%s", out.String())
	}
}

// startServer boots run() with the given extra args and returns the
// bound address plus a shutdown func that stops it and reports the exit
// code.
func startServer(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exit := make(chan int, 1)
	var out, errOut strings.Builder
	go func() {
		exit <- run(append([]string{"-addr", "127.0.0.1:0", "-hotels", "5"}, args...),
			&out, &errOut, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}
	var once bool
	return addr, func() int {
		if once {
			return 0
		}
		once = true
		close(stop)
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("server exit %d: %s", code, errOut.String())
			}
			return code
		case <-time.After(30 * time.Second):
			t.Fatal("server did not stop")
			return -1
		}
	}
}

// fetchServiceStats reads GET /stats/services into the profile snapshot
// shape.
func fetchServiceStats(t *testing.T, addr string) []map[string]any {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats/services")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats/services: %d", resp.StatusCode)
	}
	var doc struct {
		Services []map[string]any `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Services
}

// TestProfileRestartOpensWarm: a server with -docs persists its learned
// per-service profiles on drain; a restarted server answers GET
// /stats/services with the pre-restart quantiles and selectivities
// before serving a single query.
func TestProfileRestartOpensWarm(t *testing.T) {
	dir := t.TempDir()
	addr, shutdown := startServer(t, "-docs", dir)

	body := `{"tenant":"t1","document":"travel","query":` + strconv.Quote(travelQuery) + `}`
	for i := 0; i < 3; i++ {
		resp, payload := postSessionQuery(t, addr, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, payload)
		}
	}
	learned := fetchServiceStats(t, addr)
	if len(learned) == 0 {
		t.Fatal("no service profiles learned")
	}
	shutdown()
	if _, err := os.Stat(filepath.Join(dir, "profiles.json")); err != nil {
		t.Fatalf("profiles not persisted: %v", err)
	}

	addr2, shutdown2 := startServer(t, "-docs", dir)
	defer shutdown2()
	warm := fetchServiceStats(t, addr2)
	if len(warm) != len(learned) {
		t.Fatalf("restarted server serves %d profiles, want %d", len(warm), len(learned))
	}
	for i, w := range warm {
		l := learned[i]
		for _, key := range []string{"service", "calls", "p50_ns", "p95_ns", "p99_ns", "selectivity", "fault_rate", "bytes", "nodes"} {
			if w[key] != l[key] {
				t.Fatalf("profile %v: %s = %v after restart, want %v", w["service"], key, w[key], l[key])
			}
		}
		// The rolling window is process-local: a freshly restarted server
		// has seen no recent traffic.
		if w["recent_calls"] != float64(0) {
			t.Fatalf("restarted server claims recent traffic: %v", w)
		}
	}
}

// TestTraceOutStreamsJSONL: -trace-out streams the server tracer's
// spans to a JSONL file that parses cleanly after drain.
func TestTraceOutStreamsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	addr, shutdown := startServer(t, "-trace-out", path)
	body := `{"tenant":"t1","document":"travel","query":` + strconv.Quote(travelQuery) + `}`
	if resp, payload := postSessionQuery(t, addr, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d: %s", resp.StatusCode, payload)
	}
	shutdown()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := telemetry.DecodeJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans streamed")
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	if !names["evaluate"] {
		t.Fatalf("trace misses evaluate spans: %v", names)
	}
}
