package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func TestDumpDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.axml")
	var out, errOut strings.Builder
	code := run([]string{"-dump-doc", path, "-hotels", "5"}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tree.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "hotels" {
		t.Fatalf("dumped root = %s", doc.Root.Label)
	}
}

func TestDumpDocBadPath(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump-doc", "/nonexistent-dir/x.axml"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestServeAndQuery(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut strings.Builder
	go run([]string{"-addr", "127.0.0.1:0", "-hotels", "10", "-recursive"}, &out, &errOut, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not start: %s", errOut.String())
	}
	client := &soap.Client{BaseURL: "http://" + addr}
	reg, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	// Recursive mode advertises push on every service.
	infos, err := client.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range infos {
		if !i.CanPush {
			t.Errorf("recursive provider must advertise push on %s", i.Name)
		}
	}
	spec := workload.DefaultSpec()
	spec.Hotels = 10
	spec.HiddenHotels = 2
	w := workload.Hotels(spec)
	res, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, core.Options{
		Strategy: core.LazyNFQ, Push: true, Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != w.ExpectedResults {
		t.Fatalf("results = %d, want %d", len(res.Results), w.ExpectedResults)
	}
}

func TestBadAddr(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-addr", "999.999.999.999:-1"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
