// Command axmlserver serves AXML over HTTP two ways at once: as a SOAP
// service provider (the demo hotels services behind the soap package's
// XML envelope, for axmlquery -provider and examples/distributed) and as
// a multi-tenant query service — a repository of named documents from
// the mixed workload suite, evaluated lazily in place by concurrent
// client sessions that share relevance memos, a response cache and a
// bounded invocation pool, with admission control and load shedding
// (doc/SERVER.md).
//
// Usage:
//
//	axmlserver [-addr :8080] [-hotels 40] [-latency 10ms] [-push] [-sleep]
//	           [-deadline 0] [-recursive] [-invoke-workers 4] [-dump-doc doc.axml]
//	           [-max-active 0] [-max-queued 0] [-retry-after 500ms]
//	           [-invoke-limit 16] [-drain-timeout 10s] [-isolated] [-docs dir]
//	           [-plan cost] [-plan-budget 200ms] [-trace-out spans.jsonl]
//
// Endpoints:
//
//	POST /query               run a query in a session (JSON; 429+Retry-After
//	                          under overload, 503 while draining)
//	GET  /documents           resident document names
//	GET  /tenants             per-tenant accounting
//	GET  /stats               session-manager snapshot
//	GET  /stats/services      per-service statistics profiles (JSON)
//	GET  /services            service descriptor (WSDL-lite)
//	POST /services/<name>     invoke a service
//	GET  /metrics             Prometheus text exposition (sessions, cache,
//	                          request latency histograms, fault counters)
//	GET  /debug/trace?last=N  recent spans as JSON
//	GET  /debug/pprof/...     net/http/pprof profiles
//
// With -recursive the provider materialises its own intensional results
// before honouring pushed queries (the peer deployment of the paper's
// Section 7), so every service advertises push capability.
//
// On SIGINT/SIGTERM the server drains: active sessions run to
// completion (bounded by -drain-timeout), queued and new ones are shed
// with 503, and with -docs the materialised masters are persisted for
// the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/plan"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/repo"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/session"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

// run starts the server. When ready is non-nil it receives the bound
// address once listening, which tests use to connect to a :0 listener.
// Closing stop triggers the same graceful drain as SIGINT/SIGTERM.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("axmlserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		hotels     = fs.Int("hotels", 40, "extensional hotels in the demo world")
		latency    = fs.Duration("latency", 10*time.Millisecond, "advertised per-call latency")
		push       = fs.Bool("push", true, "advertise query pushing on extensional services")
		sleep      = fs.Bool("sleep", false, "physically sleep the advertised latency per call")
		deadline   = fs.Duration("deadline", 0, "per-invocation server deadline (0 = unbounded); expired calls answer 504 with a timeout-classed fault")
		recursive  = fs.Bool("recursive", false, "materialise intensional results to honour pushes on every service")
		invokeWork = fs.Int("invoke-workers", 0, "invoke a session round's independent calls — and a recursive materialisation round's embedded calls — on this many concurrent workers (0/1 = sequential)")
		cached     = fs.Bool("cache", true, "memoise service responses server-side (counters on /metrics)")
		cacheTTL   = fs.Duration("cache-ttl", 0, "bound how long a cached response stays servable (0 = forever)")
		dump       = fs.String("dump-doc", "", "write the demo client document to this file and exit")

		maxActive    = fs.Int("max-active", 0, "concurrently executing sessions (0 = GOMAXPROCS)")
		maxQueued    = fs.Int("max-queued", 0, "admission wait-queue budget before shedding (0 = 4x max-active, negative = no queue)")
		retryAfter   = fs.Duration("retry-after", 500*time.Millisecond, "backoff hint on shed (429) responses")
		invokeLimit  = fs.Int("invoke-limit", 16, "session invocations in flight across all tenants (0 = unbounded)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for active sessions")
		isolated     = fs.Bool("isolated", false, "evaluate every session on a private document clone (no shared materialisation)")
		planMode     = fs.String("plan", "off", "off|cost: plan session invocation batches from the shared service profile (results are identical either way)")
		planBudget   = fs.Duration("plan-budget", 0, "defer speculative calls whose estimated latency exceeds this budget under -plan=cost (0 = admit all)")
		noProject    = fs.Bool("no-project", false, "disable type-based document projection on schema-typed documents")
		docsDir      = fs.String("docs", "", "persist materialised documents to this directory across restarts")
		traceOut     = fs.String("trace-out", "", "stream finished telemetry spans to this file as JSONL (closed after drain)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := workload.DefaultSpec()
	spec.Hotels = *hotels
	spec.HiddenHotels = *hotels / 5
	spec.Latency = *latency
	spec.PushCapable = *push
	w := workload.Hotels(spec)
	reg := w.Registry
	if *recursive {
		reg = soap.RecursivePushWorkers(reg, 1_000_000, *invokeWork)
	}
	metrics := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	tracer.InstrumentDrops(metrics)
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
		traceFile = f
		tracer.SetSink(telemetry.SinkJSONL(f))
	}
	// One profiler spans both stacks (SOAP provider and session service):
	// it sits under each response cache, so it profiles real provider
	// work, and the caches report their outcomes through Notify.
	prof := profile.New(0, nil)
	prof.ExposeProm(metrics)
	reg = prof.Wrap(reg)
	if *cached {
		cache := service.NewCache(service.CacheSpec{TTL: *cacheTTL})
		cache.Instrument(metrics)
		cache.Notify(prof.Notify())
		reg = cache.Wrap(reg)
	}

	if *dump != "" {
		b, err := tree.MarshalIndent(w.Doc.Root)
		if err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*dump, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dump)
		return 0
	}

	// The session stack runs next to the SOAP provider with its own
	// response cache: the provider cache keys recursive/push responses,
	// which would cross-contaminate plain session invocations.
	suiteReg, scenarios := workload.Suite(spec)
	qcache := service.NewCache(service.CacheSpec{TTL: *cacheTTL})
	qcache.Instrument(metrics)
	qcache.Notify(prof.Notify())
	sessionReg := qcache.Wrap(prof.Wrap(session.LimitRegistry(suiteReg, *invokeLimit, metrics)))

	var rp *repo.Repo
	if *docsDir != "" {
		var err error
		if rp, err = repo.Open(*docsDir); err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
		// Reopen the profiles learned by previous lives of this data
		// directory: quantiles and selectivities are warm from the first
		// request (a corrupt file degrades to a cold start).
		if err := prof.LoadFile(*docsDir); err != nil {
			fmt.Fprintf(stderr, "axmlserver: profiles: %v\n", err)
			return 1
		}
	}
	clock := func() service.Clock { return &service.SimClock{} }
	if *sleep {
		clock = func() service.Clock { return service.NewWallClock(true) }
	}
	engine := core.Options{Strategy: core.LazyNFQ, Incremental: true, NoProject: *noProject}
	if *invokeWork > 1 {
		// The same pool width drives session invocation batches; results
		// are identical to sequential execution, and it is what -plan=cost
		// schedules.
		engine.Layering = true
		engine.Parallel = true
		engine.InvokeWorkers = *invokeWork
	}
	switch *planMode {
	case "off":
	case "cost":
		// One cost planner over the shared profiler serves every session:
		// Config.Engine is copied into each session's options, and the
		// planner is safe for concurrent use. Profiles persisted under
		// -docs make its estimates warm from the first request.
		planner := plan.New(prof, plan.Options{SpeculativeBudget: *planBudget})
		planner.Instrument(metrics)
		engine.Planner = planner
	default:
		fmt.Fprintf(stderr, "axmlserver: unknown -plan mode %q (want off or cost)\n", *planMode)
		return 2
	}
	mgr := session.NewManager(session.Config{
		Registry:   sessionReg,
		Repo:       rp,
		Metrics:    metrics,
		Tracer:     tracer,
		Engine:     engine,
		MaxActive:  *maxActive,
		MaxQueued:  *maxQueued,
		RetryAfter: *retryAfter,
		Isolated:   *isolated,
		Clock:      clock,
	})
	for _, sc := range scenarios {
		// Persisted documents fault in through the repository: document,
		// schema and F-guide all restored, the index warm from disk.
		if rp != nil && rp.Exists(sc.Name) {
			if err := mgr.Preload(sc.Name); err != nil {
				fmt.Fprintf(stderr, "axmlserver: restore %s: %v\n", sc.Name, err)
				return 1
			}
			continue
		}
		if err := mgr.AddDocument(sc.Name, sc.Doc, sc.Schema); err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "axmlserver: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "axmlserver: serving %d services on %s (push=%t, sleep=%t, recursive=%t)\n",
		len(reg.Names()), ln.Addr(), *push, *sleep, *recursive)
	fmt.Fprintf(stdout, "  sessions:   POST http://%s/query over %d documents (max-active=%d, isolated=%t)\n",
		ln.Addr(), len(scenarios), mgr.Stats().Documents, *isolated)
	fmt.Fprintf(stdout, "  descriptor: GET http://%s/services\n", ln.Addr())
	fmt.Fprintf(stdout, "  telemetry:  GET http://%s/metrics, /debug/trace, /debug/pprof\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	provider := soap.NewServer(reg, *sleep)
	provider.Deadline = *deadline
	provider.Metrics = metrics
	provider.Tracer = tracer
	mux := http.NewServeMux()
	telemetry.Mount(mux, metrics, tracer)
	session.Mount(mux, mgr)
	mux.Handle("/stats/services", prof.Handler())
	mux.Handle("/", provider)

	srv := &http.Server{Handler: mux}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-served:
		// Serve only returns on listener failure (Shutdown is the other
		// path, reached below).
		fmt.Fprintf(stderr, "axmlserver: %v\n", err)
		return 1
	case <-sig:
	case <-stop:
	}

	// Graceful drain: refuse queued and new sessions (503), let active
	// ones finish, then close idle connections and persist the masters.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := mgr.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "axmlserver: drain: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "axmlserver: shutdown: %v\n", err)
		code = 1
	}
	if *docsDir != "" {
		if err := prof.SaveFile(*docsDir); err != nil {
			fmt.Fprintf(stderr, "axmlserver: profiles: %v\n", err)
			code = 1
		}
	}
	if traceFile != nil {
		// The sink streamed every finished span already; all that is left
		// is making the JSONL durable.
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "axmlserver: trace: %v\n", err)
			code = 1
		}
	}
	if code == 0 {
		fmt.Fprintf(stdout, "axmlserver: drained and stopped\n")
	}
	return code
}
