// Command axmlserver serves an AXML service provider over HTTP: the demo
// hotels services behind the XML envelope of the soap package. Pair it
// with axmlquery -provider, or with the examples/distributed program.
//
// Usage:
//
//	axmlserver [-addr :8080] [-hotels 40] [-latency 10ms] [-push] [-sleep]
//	           [-deadline 0] [-recursive] [-invoke-workers 4] [-dump-doc doc.axml]
//
// Endpoints:
//
//	GET  /services            service descriptor (WSDL-lite)
//	POST /services/<name>     invoke a service
//	GET  /metrics             Prometheus text exposition (request latency
//	                          histograms, fault and cache counters)
//	GET  /debug/trace?last=N  recent invocation spans as JSON
//	GET  /debug/pprof/...     net/http/pprof profiles
//
// With -recursive the provider materialises its own intensional results
// before honouring pushed queries (the peer deployment of the paper's
// Section 7), so every service advertises push capability.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the server. When ready is non-nil it receives the bound
// address once listening, which tests use to connect to a :0 listener.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("axmlserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		hotels     = fs.Int("hotels", 40, "extensional hotels in the demo world")
		latency    = fs.Duration("latency", 10*time.Millisecond, "advertised per-call latency")
		push       = fs.Bool("push", true, "advertise query pushing on extensional services")
		sleep      = fs.Bool("sleep", false, "physically sleep the advertised latency per call")
		deadline   = fs.Duration("deadline", 0, "per-invocation server deadline (0 = unbounded); expired calls answer 504 with a timeout-classed fault")
		recursive  = fs.Bool("recursive", false, "materialise intensional results to honour pushes on every service")
		invokeWork = fs.Int("invoke-workers", 0, "resolve a recursive materialisation round's embedded calls on this many concurrent workers (0/1 = sequential)")
		cached     = fs.Bool("cache", true, "memoise service responses server-side (counters on /metrics)")
		cacheTTL   = fs.Duration("cache-ttl", 0, "bound how long a cached response stays servable (0 = forever)")
		dump       = fs.String("dump-doc", "", "write the demo client document to this file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := workload.DefaultSpec()
	spec.Hotels = *hotels
	spec.HiddenHotels = *hotels / 5
	spec.Latency = *latency
	spec.PushCapable = *push
	w := workload.Hotels(spec)
	reg := w.Registry
	if *recursive {
		reg = soap.RecursivePushWorkers(reg, 1_000_000, *invokeWork)
	}
	metrics := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	if *cached {
		cache := service.NewCache(service.CacheSpec{TTL: *cacheTTL})
		cache.Instrument(metrics)
		reg = cache.Wrap(reg)
	}

	if *dump != "" {
		b, err := tree.MarshalIndent(w.Doc.Root)
		if err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*dump, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "axmlserver: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dump)
		return 0
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "axmlserver: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "axmlserver: serving %d services on %s (push=%t, sleep=%t, recursive=%t)\n",
		len(reg.Names()), ln.Addr(), *push, *sleep, *recursive)
	fmt.Fprintf(stdout, "  descriptor: GET http://%s/services\n", ln.Addr())
	fmt.Fprintf(stdout, "  telemetry:  GET http://%s/metrics, /debug/trace, /debug/pprof\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	srv := soap.NewServer(reg, *sleep)
	srv.Deadline = *deadline
	srv.Metrics = metrics
	srv.Tracer = tracer
	mux := http.NewServeMux()
	telemetry.Mount(mux, metrics, tracer)
	mux.Handle("/", srv)
	if err := http.Serve(ln, mux); err != nil {
		fmt.Fprintf(stderr, "axmlserver: %v\n", err)
		return 1
	}
	return 0
}
