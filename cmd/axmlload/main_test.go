package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/session"
	"github.com/activexml/axml/internal/telemetry"
)

// TestLoadSelfSmoke replays a small mixed workload against an
// in-process server and checks the report: everything served, nothing
// shed, every answer matching the serial oracle.
func TestLoadSelfSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-clients", "8", "-requests", "120", "-hotels", "6",
		"-seed", "7", "-json", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad report: %v\n%s", err, b)
	}
	if rep.Experiment != "E12" {
		t.Fatalf("experiment = %q", rep.Experiment)
	}
	if rep.Totals.OK != 120 || rep.Totals.Errors != 0 || rep.Totals.VerifyFailures != 0 {
		t.Fatalf("totals = %+v", rep.Totals)
	}
	if rep.Totals.Memo == 0 {
		t.Fatal("no memo answers across 120 repeats of 8 queries — sharing is broken")
	}
	if rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("latency = %+v", rep.Latency)
	}
	if len(rep.Scenarios) != 4 {
		t.Fatalf("scenarios = %v, want 4", rep.Scenarios)
	}
	var total int64
	for name, sc := range rep.Scenarios {
		if sc.RequestsOut != sc.OKOut {
			t.Fatalf("%s: %d requests but %d ok", name, sc.RequestsOut, sc.OKOut)
		}
		total += sc.RequestsOut
	}
	if total != 120 {
		t.Fatalf("scenario requests sum to %d, want 120", total)
	}
}

// TestLoadVerifyCatchesDivergence points the driver at a server that
// answers with the wrong bindings: the oracle comparison must fail the
// run.
func TestLoadVerifyCatchesDivergence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(session.QueryResponse{
			Complete: true,
			Bindings: []map[string]string{{"X": "not-the-answer"}},
		})
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-clients", "2", "-requests", "8", "-hotels", "6",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "diverged from the serial oracle") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestLoadShedRetryHonored drives a server that sheds every other
// request: the driver must retry after the hinted backoff, count the
// 429s, and still finish clean.
func TestLoadShedRetryHonored(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "shed"})
			return
		}
		_ = json.NewEncoder(w).Encode(session.QueryResponse{Complete: true})
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-clients", "1", "-requests", "40", "-verify=false", "-json", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.OK != 40 || rep.Totals.Shed == 0 || rep.Totals.GaveUp != 0 {
		t.Fatalf("totals = %+v: want 40 ok, some shed, none given up", rep.Totals)
	}
	if rep.Totals.Attempts != rep.Totals.OK+rep.Totals.Shed {
		t.Fatalf("attempts %d != ok %d + shed %d", rep.Totals.Attempts, rep.Totals.OK, rep.Totals.Shed)
	}
	if rep.Totals.ShedRate <= 0 {
		t.Fatalf("shed rate = %v", rep.Totals.ShedRate)
	}
}

// TestLoadGivesUpAfterRetries checks a permanently saturated server:
// every request exhausts its retries, is accounted as given up, and the
// run still exits clean (shedding is the server working as designed).
func TestLoadGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", srv.URL, "-clients", "2", "-requests", "6", "-shed-retries", "2", "-verify=false",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "6 gave up") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

// TestLoadFlagValidation checks the mutually exclusive target flags.
func TestLoadFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no target: exit %d, want 2", code)
	}
	if code := run([]string{"-self", "-url", "http://x"}, &stdout, &stderr); code != 2 {
		t.Fatalf("both targets: exit %d, want 2", code)
	}
	if code := run([]string{"-self", "-clients", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("zero clients: exit %d, want 2", code)
	}
}

// TestLoadObservabilitySinks: -trace-out streams the self server's
// spans as parseable JSONL and -stats-out captures the per-service
// profile the run learned.
func TestLoadObservabilitySinks(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "spans.jsonl")
	statsPath := filepath.Join(dir, "stats.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-clients", "4", "-requests", "40", "-hotels", "6",
		"-trace-out", tracePath, "-stats-out", statsPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := telemetry.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("trace JSONL must parse cleanly after the run: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans streamed")
	}

	b, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Services []profile.ServiceProfile `json:"services"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("bad stats snapshot: %v\n%s", err, b)
	}
	if len(doc.Services) == 0 {
		t.Fatal("stats snapshot learned no services")
	}
	for _, s := range doc.Services {
		if s.Calls == 0 || s.P50 == 0 {
			t.Fatalf("empty profile in snapshot: %+v", s)
		}
	}
}

// TestLoadTraceOutNeedsSelf: -trace-out against a remote URL is a
// usage error.
func TestLoadTraceOutNeedsSelf(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-url", "http://localhost:1", "-trace-out", "x.jsonl"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, stderr.String())
	}
}
