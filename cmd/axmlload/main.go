// Command axmlload hammers an axmlserver session endpoint with the
// mixed workload suite and records the serving profile (experiment E12,
// EXPERIMENTS.md). It replays thousands of concurrent travel, nightlife,
// newsfeed and distributed queries over POST /query, verifies every
// answer against a locally computed serial oracle, and reports latency
// quantiles, throughput and the shed rate.
//
// Usage:
//
//	axmlload -self                      # in-process server over loopback
//	axmlload -url http://host:8080      # a live axmlserver
//	axmlload -self -clients 500 -requests 5000 -json BENCH_E12.json
//
// The oracle is the workload suite evaluated serially by the naive
// fixpoint on private clones: by completeness invariance (Definition 3)
// every concurrent shared-evaluator answer must carry the same binding
// multiset. Against a remote server, pass the server's -hotels value so
// both sides build the same world (or disable -verify).
//
// 429 answers are retried up to -shed-retries times, honouring the
// server's Retry-After; every 429 counts toward the shed rate. The exit
// status is 0 only if no request errored and no answer diverged from
// the oracle.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/session"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// job is one replayable query with its precomputed oracle answer.
type job struct {
	scenario string
	document string
	query    string
	oracle   string // canonical binding multiset; "" when -verify is off
}

// report is the BENCH_E12.json shape.
type report struct {
	Experiment string             `json:"experiment"`
	Config     reportConfig       `json:"config"`
	Totals     reportTotals       `json:"totals"`
	Latency    reportLatency      `json:"latency"`
	Scenarios  map[string]*counts `json:"scenarios"`
}

type reportConfig struct {
	URL         string `json:"url"`
	SelfHosted  bool   `json:"selfHosted"`
	Clients     int    `json:"clients"`
	Requests    int    `json:"requests"`
	Tenants     int    `json:"tenants"`
	Hotels      int    `json:"hotels"`
	Isolated    bool   `json:"isolated"`
	Verify      bool   `json:"verify"`
	ShedRetries int    `json:"shedRetries"`
	Seed        int64  `json:"seed"`
}

type reportTotals struct {
	// Requests is the number of replayed queries; Attempts counts HTTP
	// round trips (each shed retry is one more attempt).
	Requests int64 `json:"requests"`
	Attempts int64 `json:"attempts"`
	OK       int64 `json:"ok"`
	// Shed counts 429 answers; GaveUp is the subset of requests that
	// stayed shed after every retry.
	Shed           int64   `json:"shed"`
	GaveUp         int64   `json:"gaveUp"`
	Errors         int64   `json:"errors"`
	VerifyFailures int64   `json:"verifyFailures"`
	Memo           int64   `json:"memo"`
	WallSeconds    float64 `json:"wallSeconds"`
	ThroughputRPS  float64 `json:"throughputRps"`
	ShedRate       float64 `json:"shedRate"`
}

type reportLatency struct {
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
	MeanMs float64 `json:"meanMs"`
}

type counts struct {
	Requests atomic.Int64 `json:"-"`
	OK       atomic.Int64 `json:"-"`
	// The atomic fields marshal through these mirrors.
	RequestsOut int64 `json:"requests"`
	OKOut       int64 `json:"ok"`
	Queries     int   `json:"queries"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "", "base URL of a live axmlserver (empty: use -self)")
		self     = fs.Bool("self", false, "serve the suite in-process on a loopback listener")
		clients  = fs.Int("clients", 64, "concurrent client goroutines")
		requests = fs.Int("requests", 1000, "total queries to replay across all clients")
		tenants  = fs.Int("tenants", 8, "distinct tenant identities to spread requests over")
		hotels   = fs.Int("hotels", 40, "world size; must match the target server's -hotels for -verify")
		isolated = fs.Bool("isolated", false, "request private-clone evaluation instead of the shared master")
		verify   = fs.Bool("verify", true, "check every answer against the serial oracle")
		retries  = fs.Int("shed-retries", 3, "retries per request after a 429, honouring Retry-After")
		jsonPath = fs.String("json", "", "write the report as JSON to this file")
		seed     = fs.Int64("seed", 1, "workload shuffle seed")

		maxActive   = fs.Int("max-active", 0, "self server: concurrently executing sessions (0 = GOMAXPROCS)")
		maxQueued   = fs.Int("max-queued", 0, "self server: admission queue budget (0 = 4x max-active, negative = none)")
		invokeLimit = fs.Int("invoke-limit", 16, "self server: bound on in-flight service invocations")
		retryAfter  = fs.Duration("retry-after", 500*time.Millisecond, "self server: backoff hint on shed responses")
		traceOut    = fs.String("trace-out", "", "self server: stream its telemetry spans to this file as JSONL")
		statsOut    = fs.String("stats-out", "", "write the per-service statistics profile snapshot to this file after the run (self server or a live server's /stats/services)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*url == "") == !*self {
		fmt.Fprintln(stderr, "axmlload: need exactly one of -url or -self")
		return 2
	}
	if *traceOut != "" && !*self {
		fmt.Fprintln(stderr, "axmlload: -trace-out needs -self (a live server has its own -trace-out)")
		return 2
	}
	if *clients < 1 || *requests < 1 || *tenants < 1 {
		fmt.Fprintln(stderr, "axmlload: -clients, -requests and -tenants must be positive")
		return 2
	}

	spec := workload.DefaultSpec()
	spec.Hotels = *hotels
	spec.HiddenHotels = *hotels / 5
	reg, scenarios := workload.Suite(spec)

	// Serial oracle: each query answered alone on a pristine clone. The
	// naive fixpoint is deliberately strategy-agnostic — the server's
	// lazy shared evaluator must agree on the binding multiset.
	jobs := make([]job, 0, 8)
	perScenario := map[string]*counts{}
	for _, sc := range scenarios {
		perScenario[sc.Name] = &counts{Queries: len(sc.Queries)}
		for _, qsrc := range sc.Queries {
			j := job{scenario: sc.Name, document: sc.Name, query: qsrc}
			if *verify {
				q, err := pattern.Parse(qsrc)
				if err != nil {
					fmt.Fprintf(stderr, "axmlload: parse %q: %v\n", qsrc, err)
					return 1
				}
				out, err := core.Evaluate(sc.Doc.Clone(), q, reg, core.Options{Strategy: core.NaiveFixpoint})
				if err != nil {
					fmt.Fprintf(stderr, "axmlload: oracle %s %q: %v\n", sc.Name, qsrc, err)
					return 1
				}
				if !out.Complete {
					fmt.Fprintf(stderr, "axmlload: oracle %s %q incomplete\n", sc.Name, qsrc)
					return 1
				}
				vals := make([]map[string]string, len(out.Results))
				for i, r := range out.Results {
					vals[i] = r.Values
				}
				j.oracle = canon(vals)
			}
			jobs = append(jobs, j)
		}
	}

	base := *url
	var ss *selfServer
	if *self {
		var err error
		ss, err = selfServe(reg, scenarios, session.Config{
			MaxActive:  *maxActive,
			MaxQueued:  *maxQueued,
			RetryAfter: *retryAfter,
			Isolated:   false,
		}, *invokeLimit, *traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "axmlload: %v\n", err)
			return 1
		}
		defer ss.Close()
		base = "http://" + ss.addr
	}
	base = strings.TrimRight(base, "/")

	metrics := telemetry.NewRegistry()
	hist := metrics.Histogram("axmlload_request_seconds")
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	var (
		next, attempts, ok, shed, gaveUp, errs, verifyFails, memo atomic.Int64
		mismatches                                                sync.Mutex
		mismatchMsgs                                              []string
	)
	fmt.Fprintf(stdout, "axmlload: %d requests, %d clients, %d tenants -> %s (%d docs, %d queries, verify=%t)\n",
		*requests, *clients, *tenants, base, len(scenarios), len(jobs), *verify)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(*requests) {
					return
				}
				j := jobs[rng.Intn(len(jobs))]
				tenant := "t" + strconv.Itoa(rng.Intn(*tenants))
				sc := perScenario[j.scenario]
				sc.Requests.Add(1)

				var resp session.QueryResponse
				status, err := 0, error(nil)
				for try := 0; ; try++ {
					attempts.Add(1)
					t0 := time.Now()
					var ra int
					status, ra, resp, err = postQuery(client, base, session.QueryRequest{
						Tenant: tenant, Document: j.document, Query: j.query, Isolated: *isolated,
					})
					if status == http.StatusOK {
						hist.Observe(time.Since(t0))
						break
					}
					if status != http.StatusTooManyRequests {
						break
					}
					shed.Add(1)
					if try >= *retries {
						gaveUp.Add(1)
						break
					}
					if ra > 5 {
						ra = 5 // bound a pathological backoff hint
					}
					time.Sleep(time.Duration(ra) * time.Second)
				}
				switch {
				case err != nil || (status != http.StatusOK && status != http.StatusTooManyRequests):
					errs.Add(1)
				case status == http.StatusOK:
					ok.Add(1)
					sc.OK.Add(1)
					if resp.Memo {
						memo.Add(1)
					}
					if j.oracle != "" && (!resp.Complete || canon(resp.Bindings) != j.oracle) {
						verifyFails.Add(1)
						mismatches.Lock()
						if len(mismatchMsgs) < 5 {
							mismatchMsgs = append(mismatchMsgs, fmt.Sprintf(
								"%s %q: complete=%t\n  got  %s\n  want %s",
								j.document, j.query, resp.Complete, canon(resp.Bindings), j.oracle))
						}
						mismatches.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	snap := metrics.Snapshot().Histograms["axmlload_request_seconds"]
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep := report{
		Experiment: "E12",
		Config: reportConfig{
			URL: base, SelfHosted: *self, Clients: *clients, Requests: *requests,
			Tenants: *tenants, Hotels: *hotels, Isolated: *isolated, Verify: *verify,
			ShedRetries: *retries, Seed: *seed,
		},
		Totals: reportTotals{
			Requests: int64(*requests), Attempts: attempts.Load(), OK: ok.Load(),
			Shed: shed.Load(), GaveUp: gaveUp.Load(), Errors: errs.Load(),
			VerifyFailures: verifyFails.Load(), Memo: memo.Load(),
			WallSeconds:   wall.Seconds(),
			ThroughputRPS: float64(ok.Load()) / wall.Seconds(),
		},
		Latency: reportLatency{
			P50Ms: ms(snap.Quantile(0.50)), P90Ms: ms(snap.Quantile(0.90)),
			P99Ms: ms(snap.Quantile(0.99)), MaxMs: ms(snap.Max), MeanMs: ms(snap.Mean()),
		},
		Scenarios: perScenario,
	}
	if rep.Totals.Attempts > 0 {
		rep.Totals.ShedRate = float64(rep.Totals.Shed) / float64(rep.Totals.Attempts)
	}
	for _, sc := range perScenario {
		sc.RequestsOut = sc.Requests.Load()
		sc.OKOut = sc.OK.Load()
	}

	fmt.Fprintf(stdout, "axmlload: %d ok, %d shed (%.1f%% of %d attempts, %d gave up), %d errors in %.2fs (%.0f q/s, %d memo)\n",
		rep.Totals.OK, rep.Totals.Shed, 100*rep.Totals.ShedRate, rep.Totals.Attempts,
		rep.Totals.GaveUp, rep.Totals.Errors, rep.Totals.WallSeconds, rep.Totals.ThroughputRPS, rep.Totals.Memo)
	fmt.Fprintf(stdout, "axmlload: latency p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms  mean %.2fms\n",
		rep.Latency.P50Ms, rep.Latency.P90Ms, rep.Latency.P99Ms, rep.Latency.MaxMs, rep.Latency.MeanMs)
	names := make([]string, 0, len(perScenario))
	for n := range perScenario {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sc := perScenario[n]
		fmt.Fprintf(stdout, "  %-12s %6d requests  %6d ok\n", n, sc.RequestsOut, sc.OKOut)
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "axmlload: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "axmlload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "axmlload: wrote %s\n", *jsonPath)
	}

	if *statsOut != "" {
		if err := writeStats(*statsOut, ss, client, base); err != nil {
			fmt.Fprintf(stderr, "axmlload: stats: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "axmlload: wrote %s\n", *statsOut)
	}
	if ss != nil {
		if err := ss.Close(); err != nil {
			fmt.Fprintf(stderr, "axmlload: %v\n", err)
			return 1
		}
	}

	if rep.Totals.VerifyFailures > 0 {
		fmt.Fprintf(stderr, "axmlload: %d answers diverged from the serial oracle\n", rep.Totals.VerifyFailures)
		for _, msg := range mismatchMsgs {
			fmt.Fprintf(stderr, "  %s\n", msg)
		}
		return 1
	}
	if rep.Totals.Errors > 0 {
		fmt.Fprintf(stderr, "axmlload: %d requests failed\n", rep.Totals.Errors)
		return 1
	}
	return 0
}

// selfServer is the in-process session server with its observability
// sidecars: the per-service profiler and the optional span sink.
type selfServer struct {
	srv       *http.Server
	addr      string
	prof      *profile.Profiler
	traceFile *os.File
	closed    bool
}

// Close shuts the server and flushes the trace sink; safe to call
// twice (run closes it eagerly to flush, the defer covers error paths).
func (s *selfServer) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	if s.traceFile != nil {
		if cerr := s.traceFile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// selfServe starts an in-process session server for the suite on a
// loopback listener. Its registry is profiled (under the response
// cache) so -stats-out can snapshot what the run learned; traceOut
// optionally streams the server tracer's spans as JSONL.
func selfServe(reg *service.Registry, scenarios []workload.Scenario, cfg session.Config, invokeLimit int, traceOut string) (*selfServer, error) {
	metrics := telemetry.NewRegistry()
	ss := &selfServer{prof: profile.New(0, nil)}
	ss.prof.ExposeProm(metrics)
	cache := service.NewCache(service.CacheSpec{})
	cache.Instrument(metrics)
	cache.Notify(ss.prof.Notify())
	cfg.Registry = cache.Wrap(ss.prof.Wrap(session.LimitRegistry(reg, invokeLimit, metrics)))
	cfg.Metrics = metrics
	cfg.Engine = core.Options{Strategy: core.LazyNFQ, Incremental: true}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		ss.traceFile = f
		tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
		tracer.InstrumentDrops(metrics)
		tracer.SetSink(telemetry.SinkJSONL(f))
		cfg.Tracer = tracer
	}
	mgr := session.NewManager(cfg)
	for _, sc := range scenarios {
		// The manager materialises its masters in place; the oracle needs
		// the scenario documents pristine.
		if err := mgr.AddDocument(sc.Name, sc.Doc.Clone(), sc.Schema); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ss.Close()
		return nil, err
	}
	ss.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.Handle("/stats/services", ss.prof.Handler())
	mux.Handle("/", session.Handler(mgr))
	ss.srv = &http.Server{Handler: mux}
	go func() { _ = ss.srv.Serve(ln) }()
	return ss, nil
}

// writeStats saves the per-service profile snapshot: straight from the
// in-process profiler under -self, otherwise from the live server's
// GET /stats/services.
func writeStats(path string, ss *selfServer, client *http.Client, base string) error {
	var buf bytes.Buffer
	if ss != nil {
		if err := ss.prof.WriteJSON(&buf); err != nil {
			return err
		}
	} else {
		resp, err := client.Get(base + "/stats/services")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /stats/services: %s", resp.Status)
		}
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// postQuery performs one POST /query round trip. The int results are
// the HTTP status and the Retry-After hint in seconds (429 only).
func postQuery(client *http.Client, base string, req session.QueryRequest) (int, int, session.QueryResponse, error) {
	var qr session.QueryResponse
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, qr, err
	}
	resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, qr, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, 0, qr, err
	}
	ra := 0
	if s := resp.Header.Get("Retry-After"); s != "" {
		ra, _ = strconv.Atoi(s)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, &qr); err != nil {
			return resp.StatusCode, ra, qr, fmt.Errorf("bad response body: %w", err)
		}
	}
	return resp.StatusCode, ra, qr, nil
}

// canon renders a binding multiset canonically: per binding the sorted
// k=v pairs joined by commas, the multiset sorted and joined by
// semicolons. Two answers are equal iff their canon strings are.
func canon(bindings []map[string]string) string {
	keys := make([]string, len(bindings))
	for i, b := range bindings {
		parts := make([]string, 0, len(b))
		for k, v := range b {
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		keys[i] = strings.Join(parts, ",")
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}
