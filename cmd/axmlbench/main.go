// Command axmlbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	axmlbench                # run every experiment at full scale
//	axmlbench -exp E3        # run one experiment
//	axmlbench -quick         # small sweeps (the test/benchmark scale)
//	axmlbench -list          # list experiments
//
// Each experiment prints an aligned table; see DESIGN.md §4 for what each
// one reproduces and EXPERIMENTS.md for recorded runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/activexml/axml/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("exp", "", "run a single experiment (E1..E9)")
		quick = fs.Bool("quick", false, "use the small test-scale sweeps")
		list  = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	experiments := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "axmlbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		experiments = []bench.Experiment{e}
	}
	for i, e := range experiments {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		table, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprint(stdout, table)
	}
	return 0
}
