// Command axmlbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	axmlbench                # run every experiment at full scale
//	axmlbench -exp E3        # run one experiment
//	axmlbench -quick         # small sweeps (the test/benchmark scale)
//	axmlbench -list          # list experiments
//	axmlbench -json out.json # additionally write the tables as JSON
//
// Each experiment prints an aligned table; see DESIGN.md §4 for what each
// one reproduces and EXPERIMENTS.md for recorded runs. With -json the
// tables are also written, machine-readably, to the given file — `make
// bench` uses it to record the BENCH_*.json perf trajectory. The JSON
// tables carry a Metrics section with detect/invoke latency quantiles
// observed during the runs.
//
// Profiling (`make profile` wraps this for E10):
//
//	-cpuprofile cpu.pprof   # CPU profile of the experiment runs
//	-memprofile heap.pprof  # heap profile written at exit
//	-trace-out  spans.jsonl # every evaluation's telemetry spans as JSONL
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/activexml/axml/internal/bench"
	"github.com/activexml/axml/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "run a single experiment (E1..E11, E13)")
		quick    = fs.Bool("quick", false, "use the small test-scale sweeps")
		list     = fs.Bool("list", false, "list experiments and exit")
		jsonPath = fs.String("json", "", "also write the result tables as JSON to this file")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut = fs.String("trace-out", "", "stream every evaluation's telemetry spans to this file as JSONL")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: create trace file: %v\n", err)
			return 1
		}
		defer f.Close()
		scale.Tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
		scale.Tracer.SetSink(telemetry.SinkJSONL(f))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: create cpu profile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "axmlbench: start cpu profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	experiments := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "axmlbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		experiments = []bench.Experiment{e}
	}
	var tables []bench.Table
	for i, e := range experiments {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		// Each experiment gets its own registry so the quantiles in the
		// JSON output are per-experiment, not cross-contaminated.
		table, err := e.RunInstrumented(scale)
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprint(stdout, table)
		tables = append(tables, table)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: marshal json: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "axmlbench: write json: %v\n", err)
			return 1
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: create heap profile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "axmlbench: write heap profile: %v\n", err)
			return 1
		}
	}
	return 0
}
