// Command axmlbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	axmlbench                # run every experiment at full scale
//	axmlbench -exp E3        # run one experiment
//	axmlbench -quick         # small sweeps (the test/benchmark scale)
//	axmlbench -list          # list experiments
//	axmlbench -json out.json # additionally write the tables as JSON
//
// Each experiment prints an aligned table; see DESIGN.md §4 for what each
// one reproduces and EXPERIMENTS.md for recorded runs. With -json the
// tables are also written, machine-readably, to the given file — `make
// bench` uses it to record the BENCH_*.json perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/activexml/axml/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "run a single experiment (E1..E10)")
		quick    = fs.Bool("quick", false, "use the small test-scale sweeps")
		list     = fs.Bool("list", false, "list experiments and exit")
		jsonPath = fs.String("json", "", "also write the result tables as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	experiments := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "axmlbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		experiments = []bench.Experiment{e}
	}
	var tables []bench.Table
	for i, e := range experiments {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		table, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprint(stdout, table)
		tables = append(tables, table)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "axmlbench: marshal json: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "axmlbench: write json: %v\n", err)
			return 1
		}
	}
	return 0
}
