package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/bench"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, id := range []string{"E1", "E8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list misses %s:\n%s", id, out.String())
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-exp", "E2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Fatalf("E2 table missing:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-exp", "E10", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tables []bench.Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("invalid JSON written: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "E10" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	if len(tables[0].Rows) == 0 || len(tables[0].Notes) == 0 {
		t.Fatal("E10 table missing rows or notes")
	}
}
