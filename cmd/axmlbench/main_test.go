package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, id := range []string{"E1", "E8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list misses %s:\n%s", id, out.String())
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-exp", "E2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Fatalf("E2 table missing:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
