package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/bench"
	"github.com/activexml/axml/internal/telemetry"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, id := range []string{"E1", "E8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list misses %s:\n%s", id, out.String())
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-exp", "E2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Fatalf("E2 table missing:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "-exp", "E10", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tables []bench.Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("invalid JSON written: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "E10" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	if len(tables[0].Rows) == 0 || len(tables[0].Notes) == 0 {
		t.Fatal("E10 table missing rows or notes")
	}
	// The instrumented run must report latency quantiles for the phases
	// E10 exercises.
	for _, name := range []string{"axml_detect_seconds", "axml_invoke_virtual_seconds"} {
		h, ok := tables[0].Metrics[name]
		if !ok || h.Count == 0 {
			t.Fatalf("metrics summary misses %s: %+v", name, tables[0].Metrics)
		}
	}
}

// TestProfileAndTraceFlags runs a quick experiment with every profiling
// output enabled and checks the artifacts are produced and parseable.
func TestProfileAndTraceFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	spans := filepath.Join(dir, "spans.jsonl")
	var out, errOut strings.Builder
	code := run([]string{
		"-quick", "-exp", "E10",
		"-cpuprofile", cpu, "-memprofile", heap, "-trace-out", spans,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, p := range []string{cpu, heap} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	f, err := os.Open(spans)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := telemetry.DecodeJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range decoded {
		names[s.Name] = true
	}
	for _, want := range []string{"evaluate", "detect", "invoke"} {
		if !names[want] {
			t.Errorf("trace JSONL misses %q spans", want)
		}
	}
}
