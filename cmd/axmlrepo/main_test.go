package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func worldFile(t *testing.T) string {
	t.Helper()
	w := workload.Hotels(workload.DefaultSpec())
	b, err := tree.MarshalIndent(w.Doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func repoRun(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(append([]string{"-dir", dir}, args...), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestPutListGetDelete(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	file := worldFile(t)
	out, errOut, code := repoRun(t, dir, "put", "hotels", file)
	if code != 0 {
		t.Fatalf("put: %s", errOut)
	}
	if !strings.Contains(out, "stored hotels") {
		t.Fatalf("put output: %s", out)
	}
	out, _, code = repoRun(t, dir, "list")
	if code != 0 || strings.TrimSpace(out) != "hotels" {
		t.Fatalf("list: %q", out)
	}
	out, _, code = repoRun(t, dir, "get", "hotels")
	if code != 0 || !strings.Contains(out, "<hotels>") {
		t.Fatalf("get: %.80q", out)
	}
	_, _, code = repoRun(t, dir, "delete", "hotels")
	if code != 0 {
		t.Fatal("delete failed")
	}
	out, _, _ = repoRun(t, dir, "list")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("list after delete: %q", out)
	}
}

func TestQueryAndSaveAmortises(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	file := worldFile(t)
	if _, errOut, code := repoRun(t, dir, "put", "hotels", file); code != 0 {
		t.Fatal(errOut)
	}
	query := `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $X`
	out, errOut, code := repoRun(t, dir, "-save", "query", "hotels", query)
	if code != 0 {
		t.Fatalf("query: %s", errOut)
	}
	if !strings.Contains(out, "24 result(s)") || !strings.Contains(out, "saved materialised") {
		t.Fatalf("query output: %s", out)
	}
	// Second query over the saved document invokes nothing.
	out, _, code = repoRun(t, dir, "query", "hotels", query)
	if code != 0 {
		t.Fatal("second query failed")
	}
	if !strings.Contains(out, "24 result(s), 0 call(s) invoked") {
		t.Fatalf("amortisation failed: %s", out)
	}
}

func TestSchemaAndIndexSubcommands(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	file := worldFile(t)
	w := workload.Hotels(workload.DefaultSpec())
	schemaPath := filepath.Join(t.TempDir(), "hotels.schema")
	if err := os.WriteFile(schemaPath, []byte(w.Schema.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := repoRun(t, dir, "-schema", schemaPath, "put", "hotels", file)
	if code != 0 {
		t.Fatalf("put -schema: %s", errOut)
	}
	if !strings.Contains(out, "indexed paths") {
		t.Fatalf("put output: %s", out)
	}

	out, _, code = repoRun(t, dir, "index", "verify")
	if code != 0 || !strings.Contains(out, "ok   hotels") {
		t.Fatalf("index verify: %q (code %d)", out, code)
	}
	out, _, code = repoRun(t, dir, "index", "stats", "hotels")
	if code != 0 || !strings.Contains(out, "schema") || !strings.Contains(out, "hotels/hotel/nearby") {
		t.Fatalf("index stats: %q (code %d)", out, code)
	}
	out, _, code = repoRun(t, dir, "index", "build", "hotels")
	if code != 0 || !strings.Contains(out, "indexed hotels") {
		t.Fatalf("index build: %q (code %d)", out, code)
	}

	// Corrupt the on-disk index: verify must fail loudly, build must
	// repair it, and a query in between still answers (degraded open).
	guidePath := filepath.Join(dir, "hotels.fguide")
	if err := os.WriteFile(guidePath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code = repoRun(t, dir, "index", "verify", "hotels")
	if code == 0 || !strings.Contains(out, "FAIL hotels") {
		t.Fatalf("verify passed a corrupt index: %q (code %d)", out, code)
	}
	query := `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $X`
	out, errOut, code = repoRun(t, dir, "query", "hotels", query)
	if code != 0 {
		t.Fatalf("query over corrupt index failed: %s", errOut)
	}
	if !strings.Contains(out, "24 result(s)") {
		t.Fatalf("query over corrupt index: %s", out)
	}
	// The degraded open repaired the entry in passing.
	out, _, code = repoRun(t, dir, "index", "verify", "hotels")
	if code != 0 {
		t.Fatalf("index not repaired after degraded query: %q", out)
	}
}

func TestErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repo")
	cases := [][]string{
		{},
		{"frob"},
		{"put", "onlyname"},
		{"put", "name", "/nonexistent"},
		{"get"},
		{"get", "missing"},
		{"delete"},
		{"delete", "missing"},
		{"query", "missing", "/a"},
		{"query"},
	}
	for _, args := range cases {
		if _, _, code := repoRun(t, dir, args...); code == 0 {
			t.Errorf("args %v: expected failure", args)
		}
	}
	// Bad query text on an existing document.
	file := worldFile(t)
	repoRun(t, dir, "put", "d", file)
	if _, _, code := repoRun(t, dir, "query", "d", "[["); code == 0 {
		t.Error("bad query accepted")
	}
}
