// Command axmlrepo manages a persistent indexed repository of AXML
// documents — the persistence side of an ActiveXML peer. Every document
// is stored together with its serialized annotated F-guide (the
// Section 6.2 call index) and an optional schema, so "query" opens with
// a warm index instead of rebuilding it, lazy evaluation materialises
// only the relevant calls, and -save stores the enriched document AND
// its incrementally patched index back for the next invocation.
//
// Usage:
//
//	axmlrepo -dir repo put <name> <file.xml> [-schema file]  store a document
//	axmlrepo -dir repo get <name>                print a document
//	axmlrepo -dir repo list                      list stored documents
//	axmlrepo -dir repo delete <name>             remove a document (and index)
//	axmlrepo -dir repo query <name> <query> [-provider URL] [-save] [-explain]
//	                                             evaluate lazily over the warm
//	                                             index; -save stores the
//	                                             materialised document back,
//	                                             -explain prints the span tree
//	axmlrepo -dir repo index build [name]        force-rebuild the index
//	axmlrepo -dir repo index verify [name]       audit index against document
//	axmlrepo -dir repo index stats [name]        print index statistics
//
// The index subcommands apply to every stored document when no name is
// given. "verify" exits nonzero if any audited index is missing, stale,
// corrupt or disagrees with a fresh build; "build" repairs exactly those
// states.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/repo"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlrepo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("dir", "axml-repo", "repository directory")
		schemaFile = fs.String("schema", "", "put: persist this schema alongside the document")
		provider   = fs.String("provider", "", "remote provider for query (default: built-in demo services)")
		save       = fs.Bool("save", false, "query: store the materialised document and patched index back")
		explain    = fs.Bool("explain", false, "query: print the evaluation's span tree to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "axmlrepo: missing command (put|get|list|delete|query|index)")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "axmlrepo: %v\n", err)
		return 1
	}
	rp, err := repo.Open(*dir)
	if err != nil {
		return fail(err)
	}
	rp.Logger = log.New(stderr, "axmlrepo: ", 0)

	switch cmd, rest := rest[0], rest[1:]; cmd {
	case "put":
		if len(rest) != 2 {
			fmt.Fprintln(stderr, "axmlrepo: put <name> <file.xml> [-schema file]")
			return 2
		}
		data, err := os.ReadFile(rest[1])
		if err != nil {
			return fail(err)
		}
		doc, err := tree.Unmarshal(data)
		if err != nil {
			return fail(err)
		}
		var opts repo.PutOptions
		if *schemaFile != "" {
			src, err := os.ReadFile(*schemaFile)
			if err != nil {
				return fail(err)
			}
			if opts.Schema, err = schema.Parse(string(src)); err != nil {
				return fail(fmt.Errorf("schema %s: %w", *schemaFile, err))
			}
		}
		if err := rp.Put(rest[0], doc, opts); err != nil {
			return fail(err)
		}
		man, err := rp.Manifest(rest[0])
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "stored %s (%d nodes, %d calls, %d indexed paths)\n",
			rest[0], man.Nodes, man.Calls, man.Paths)
	case "get":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "axmlrepo: get <name>")
			return 2
		}
		o, err := rp.Get(rest[0])
		if err != nil {
			return fail(err)
		}
		b, err := tree.MarshalIndent(o.Doc.Root)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s\n", b)
	case "list":
		names, err := rp.List()
		if err != nil {
			return fail(err)
		}
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
	case "delete":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "axmlrepo: delete <name>")
			return 2
		}
		if err := rp.Delete(rest[0]); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "deleted %s\n", rest[0])
	case "query":
		if len(rest) != 2 {
			fmt.Fprintln(stderr, "axmlrepo: query <name> <query>")
			return 2
		}
		o, err := rp.Get(rest[0])
		if err != nil {
			return fail(err)
		}
		q, err := pattern.Parse(rest[1])
		if err != nil {
			return fail(err)
		}
		// The persisted index opens the query warm: the engine adopts the
		// decoded guide and patches it through every expansion, so -save
		// persists it back without a rebuild.
		opt := core.Options{Strategy: core.LazyNFQ, UseGuide: true, Guide: o.Guide}
		if o.Schema != nil {
			opt.Strategy = core.LazyNFQTyped
			opt.Schema = o.Schema
		}
		var tracer *telemetry.Tracer
		if *explain {
			tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
			opt.Tracer = tracer
		}
		var reg *service.Registry
		if *provider != "" {
			client := &soap.Client{BaseURL: *provider}
			reg, err = client.RegistryFor()
			if err != nil {
				return fail(err)
			}
			opt.Clock = service.NewWallClock(false)
		} else {
			reg = workload.Hotels(workload.DefaultSpec()).Registry
		}
		out, err := core.Evaluate(o.Doc, q, reg, opt)
		if err != nil {
			return fail(err)
		}
		if tracer != nil {
			fmt.Fprintln(stderr, "explain:")
			telemetry.WriteTree(stderr, tracer.Spans(0))
		}
		fmt.Fprintf(stdout, "%d result(s), %d call(s) invoked\n", len(out.Results), out.Stats.CallsInvoked)
		for i, r := range out.Results {
			fmt.Fprintf(stdout, "%3d. %v\n", i+1, r.Values)
		}
		if *save {
			opts := repo.PutOptions{Schema: o.Schema}
			if fguide.Synced(o.Guide) {
				opts.Guide = o.Guide
			}
			if err := rp.Put(rest[0], o.Doc, opts); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "saved materialised %s (%d nodes)\n", rest[0], o.Doc.Size())
		}
	case "index":
		if len(rest) == 0 {
			fmt.Fprintln(stderr, "axmlrepo: index build|verify|stats [name]")
			return 2
		}
		sub, names := rest[0], rest[1:]
		if len(names) == 0 {
			all, err := rp.List()
			if err != nil {
				return fail(err)
			}
			names = all
		}
		switch sub {
		case "build":
			for _, name := range names {
				man, err := rp.Reindex(name)
				if err != nil {
					return fail(err)
				}
				fmt.Fprintf(stdout, "indexed %s (%d nodes, %d calls, %d paths)\n",
					name, man.Nodes, man.Calls, man.Paths)
			}
		case "verify":
			bad := 0
			for _, name := range names {
				rep, err := rp.VerifyIndex(name)
				if err != nil {
					return fail(err)
				}
				if rep.OK {
					fmt.Fprintf(stdout, "ok   %s (%d calls, %d paths)\n", name, rep.Calls, rep.Paths)
					continue
				}
				bad++
				for _, p := range rep.Problems {
					fmt.Fprintf(stdout, "FAIL %s: %s\n", name, p)
				}
			}
			if bad > 0 {
				fmt.Fprintf(stderr, "axmlrepo: %d of %d indexes failed verification\n", bad, len(names))
				return 1
			}
		case "stats":
			for _, name := range names {
				man, sum, err := rp.Stats(name)
				if err != nil {
					return fail(err)
				}
				if man == nil {
					fmt.Fprintf(stdout, "%s: no index (flat-store entry)\n", name)
					continue
				}
				fmt.Fprintf(stdout, "%s: format %d, %d nodes, %d calls, %d paths",
					name, man.Format, man.Nodes, man.Calls, man.Paths)
				if man.Schema != nil {
					fmt.Fprint(stdout, ", schema")
				}
				fmt.Fprintln(stdout)
				if sum == nil {
					continue
				}
				paths := make([]string, 0, len(sum.PerPath))
				for p := range sum.PerPath {
					paths = append(paths, p)
				}
				sort.Strings(paths)
				for _, p := range paths {
					svcs := make([]string, 0, len(sum.PerPath[p]))
					for s := range sum.PerPath[p] {
						svcs = append(svcs, s)
					}
					sort.Strings(svcs)
					for _, s := range svcs {
						fmt.Fprintf(stdout, "  %-40s %s ×%d\n", p, s, sum.PerPath[p][s])
					}
				}
			}
		default:
			fmt.Fprintf(stderr, "axmlrepo: unknown index subcommand %q\n", sub)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "axmlrepo: unknown command %q\n", cmd)
		return 2
	}
	return 0
}
