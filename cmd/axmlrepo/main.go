// Command axmlrepo manages a file-backed repository of AXML documents —
// the persistence side of an ActiveXML peer. Lazy evaluation composes
// with it naturally: "query" materialises only the relevant calls and
// stores the enriched document back, so later queries reuse the already
// fetched data.
//
// Usage:
//
//	axmlrepo -dir repo put <name> <file.xml>     store a document
//	axmlrepo -dir repo get <name>                print a document
//	axmlrepo -dir repo list                      list stored documents
//	axmlrepo -dir repo delete <name>             remove a document
//	axmlrepo -dir repo query <name> <query> [-provider URL] [-save] [-explain]
//	                                             evaluate lazily; -save
//	                                             stores the materialised
//	                                             document back, -explain
//	                                             prints the span tree
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlrepo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("dir", "axml-repo", "repository directory")
		provider = fs.String("provider", "", "remote provider for query (default: built-in demo services)")
		save     = fs.Bool("save", false, "query: store the materialised document back")
		explain  = fs.Bool("explain", false, "query: print the evaluation's span tree to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "axmlrepo: missing command (put|get|list|delete|query)")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "axmlrepo: %v\n", err)
		return 1
	}
	repo, err := store.Open(*dir)
	if err != nil {
		return fail(err)
	}

	switch cmd, rest := rest[0], rest[1:]; cmd {
	case "put":
		if len(rest) != 2 {
			fmt.Fprintln(stderr, "axmlrepo: put <name> <file.xml>")
			return 2
		}
		data, err := os.ReadFile(rest[1])
		if err != nil {
			return fail(err)
		}
		doc, err := tree.Unmarshal(data)
		if err != nil {
			return fail(err)
		}
		if err := repo.Put(rest[0], doc); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "stored %s (%d nodes, %d calls)\n", rest[0], doc.Size(), len(doc.Calls()))
	case "get":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "axmlrepo: get <name>")
			return 2
		}
		doc, err := repo.Get(rest[0])
		if err != nil {
			return fail(err)
		}
		b, err := tree.MarshalIndent(doc.Root)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s\n", b)
	case "list":
		names, err := repo.List()
		if err != nil {
			return fail(err)
		}
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
	case "delete":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "axmlrepo: delete <name>")
			return 2
		}
		if err := repo.Delete(rest[0]); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "deleted %s\n", rest[0])
	case "query":
		if len(rest) != 2 {
			fmt.Fprintln(stderr, "axmlrepo: query <name> <query>")
			return 2
		}
		doc, err := repo.Get(rest[0])
		if err != nil {
			return fail(err)
		}
		q, err := pattern.Parse(rest[1])
		if err != nil {
			return fail(err)
		}
		opt := core.Options{Strategy: core.LazyNFQ}
		var tracer *telemetry.Tracer
		if *explain {
			tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
			opt.Tracer = tracer
		}
		var reg *service.Registry
		if *provider != "" {
			client := &soap.Client{BaseURL: *provider}
			reg, err = client.RegistryFor()
			if err != nil {
				return fail(err)
			}
			opt.Clock = service.NewWallClock(false)
		} else {
			reg = workload.Hotels(workload.DefaultSpec()).Registry
		}
		out, err := core.Evaluate(doc, q, reg, opt)
		if err != nil {
			return fail(err)
		}
		if tracer != nil {
			fmt.Fprintln(stderr, "explain:")
			telemetry.WriteTree(stderr, tracer.Spans(0))
		}
		fmt.Fprintf(stdout, "%d result(s), %d call(s) invoked\n", len(out.Results), out.Stats.CallsInvoked)
		for i, r := range out.Results {
			fmt.Fprintf(stdout, "%3d. %v\n", i+1, r.Values)
		}
		if *save {
			if err := repo.Put(rest[0], doc); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "saved materialised %s (%d nodes)\n", rest[0], doc.Size())
		}
	default:
		fmt.Fprintf(stderr, "axmlrepo: unknown command %q\n", cmd)
		return 2
	}
	return 0
}
