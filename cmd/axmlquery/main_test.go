package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// writeWorldDoc dumps the demo world's document to a temp file and
// returns its path.
func writeWorldDoc(t *testing.T) string {
	t.Helper()
	w := workload.Hotels(workload.DefaultSpec())
	b, err := tree.MarshalIndent(w.Doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.axml")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testQuery = `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $X`

func TestQueryAgainstBuiltinServices(t *testing.T) {
	doc := writeWorldDoc(t)
	outPath := filepath.Join(t.TempDir(), "out.axml")
	var out, errOut strings.Builder
	code := run([]string{
		"-doc", doc, "-query", testQuery, "-strategy", "lazy-nfq",
		"-stats", "-out", outPath,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "result(s)") || !strings.Contains(out.String(), "Resto-0-0") {
		t.Fatalf("results missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "calls invoked") {
		t.Fatalf("stats missing:\n%s", errOut.String())
	}
	// The materialised document was written and reparses.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Unmarshal(data); err != nil {
		t.Fatalf("written document invalid: %v", err)
	}
}

func TestQueryWithSchemaFile(t *testing.T) {
	doc := writeWorldDoc(t)
	schemaPath := filepath.Join(t.TempDir(), "schema.txt")
	w := workload.Hotels(workload.DefaultSpec())
	if err := os.WriteFile(schemaPath, []byte(w.Schema.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{"-doc", doc, "-query", testQuery, "-schema", schemaPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
}

func TestQueryAgainstProvider(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	srv := httptest.NewServer(soap.NewServer(w.Registry, false))
	defer srv.Close()
	doc := writeWorldDoc(t)
	var out, errOut strings.Builder
	code := run([]string{"-doc", doc, "-query", testQuery, "-provider", srv.URL, "-layer"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "24 result(s)") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestQueryErrors(t *testing.T) {
	doc := writeWorldDoc(t)
	cases := map[string][]string{
		"missing args":     {},
		"bad doc":          {"-doc", "/nonexistent", "-query", testQuery},
		"bad query":        {"-doc", doc, "-query", "[[["},
		"bad strategy":     {"-doc", doc, "-query", testQuery, "-strategy", "wrong"},
		"bad schema path":  {"-doc", doc, "-query", testQuery, "-schema", "/nonexistent"},
		"bad provider url": {"-doc", doc, "-query", testQuery, "-provider", "http://127.0.0.1:1"},
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("%s: expected failure", name)
		}
	}
}

func TestBudgetWarning(t *testing.T) {
	doc := writeWorldDoc(t)
	var out, errOut strings.Builder
	code := run([]string{"-doc", doc, "-query", testQuery, "-strategy", "naive", "-max-calls", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "budget exhausted") {
		t.Fatalf("missing warning: %s", errOut.String())
	}
}

// TestRetryFlagsAgainstFlakyProvider runs the CLI against an HTTP
// provider whose every service fails its first invocation: without
// -retries the evaluation aborts, with -retries and -best-effort it
// converges to the full result set and reports the retries in -stats.
func TestRetryFlagsAgainstFlakyProvider(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	flaky := service.NewFaults(service.FaultSpec{Seed: 1, FailFirst: 1}).Wrap(w.Registry)
	srv := httptest.NewServer(soap.NewServer(flaky, false))
	defer srv.Close()
	doc := writeWorldDoc(t)

	var out, errOut strings.Builder
	if code := run([]string{"-doc", doc, "-query", testQuery, "-provider", srv.URL}, &out, &errOut); code == 0 {
		t.Fatal("fail-fast run against a flaky provider succeeded")
	}

	out.Reset()
	errOut.Reset()
	code := run([]string{
		"-doc", doc, "-query", testQuery, "-provider", srv.URL,
		"-retries", "3", "-best-effort", "-stats",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "24 result(s)") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "retries:") {
		t.Fatalf("stats miss retry counters:\n%s", errOut.String())
	}
	if strings.Contains(errOut.String(), "warning:") {
		t.Fatalf("retried run should be complete:\n%s", errOut.String())
	}
}

func TestExplainOutput(t *testing.T) {
	doc := writeWorldDoc(t)
	var out, errOut strings.Builder
	code := run([]string{"-doc", doc, "-query", testQuery, "-layer", "-explain"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"detect", "invoke", "getNearbyRestos"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("explain output misses %q:\n%s", want, errOut.String())
		}
	}
}

func TestTemplateOutput(t *testing.T) {
	doc := writeWorldDoc(t)
	var out, errOut strings.Builder
	code := run([]string{
		"-doc", doc, "-query", testQuery,
		"-template", `<pick>{$X}</pick>`,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "<results>") || !strings.Contains(out.String(), "<pick>Resto-0-0</pick>") {
		t.Fatalf("template output:\n%s", out.String())
	}
	// Bad template errors.
	if code := run([]string{"-doc", doc, "-query", testQuery, "-template", "<<<"}, &out, &errOut); code == 0 {
		t.Fatal("bad template accepted")
	}
	// Template referencing an unbound variable errors.
	if code := run([]string{"-doc", doc, "-query", testQuery, "-template", `<p>{$NOPE}</p>`}, &out, &errOut); code == 0 {
		t.Fatal("unbound template variable accepted")
	}
}

// TestPerfFlags drives the response cache, the incremental evaluator and
// the detection worker pool through the CLI surface and checks the cached
// and uncached runs agree on the results.
func TestPerfFlags(t *testing.T) {
	doc := writeWorldDoc(t)
	results := func(extra ...string) string {
		t.Helper()
		var out, errOut strings.Builder
		args := append([]string{"-doc", doc, "-query", testQuery, "-stats"}, extra...)
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d with %v: %s", code, extra, errOut.String())
		}
		if strings.Contains(strings.Join(extra, " "), "-no-cache") {
			if strings.Contains(errOut.String(), "svc cache:") {
				t.Fatalf("-no-cache still printed cache stats:\n%s", errOut.String())
			}
		} else if !strings.Contains(errOut.String(), "svc cache:") {
			t.Fatalf("cache stats missing from -stats output:\n%s", errOut.String())
		}
		return out.String()
	}
	want := results("-no-cache", "-no-incremental")
	for _, extra := range [][]string{
		{},
		{"-workers", "4"},
		{"-no-incremental"},
		{"-layer", "-workers", "8"},
		{"-cache-ttl", "1m"},
	} {
		if got := results(extra...); got != want {
			t.Fatalf("flags %v changed the results\n got %q\nwant %q", extra, got, want)
		}
	}
}
