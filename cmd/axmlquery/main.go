// Command axmlquery evaluates a tree-pattern query over an AXML document,
// resolving embedded service calls lazily.
//
// Usage:
//
//	axmlquery -doc doc.xml -query '/hotels/hotel[name="Best Western"]//restaurant[name=$X] -> $X' \
//	          [-strategy lazy-nfq-typed] [-schema schema.txt] [-provider http://host:port] \
//	          [-push] [-layer] [-parallel] [-guide] [-stats] [-explain] [-out result.xml] \
//	          [-retries 3] [-timeout 2s] [-best-effort] \
//	          [-no-cache] [-cache-ttl 5m] [-workers 4] [-invoke-workers 4] [-no-incremental]
//	          [-plan cost] [-plan-budget 200ms]
//
// Planning (see doc/PLANNER.md): -plan=cost schedules each round's
// invocation batches from an in-run statistics profile — slowest and
// least-selective calls first across the pool, the pool narrowed when
// fewer workers reach the same makespan, pushes vetoed to services that
// provably ignore them, and (with -plan-budget) speculative calls
// deferred past the latency budget. The planner only reorders and
// resizes work: results are bit-identical to -plan=off, and -explain
// shows each batch's plan with its per-service cost rationale.
//
// Performance (see doc/PERF.md): service responses are memoised by
// (service, parameters, pushed query) with in-flight deduplication —
// -no-cache disables this, -cache-ttl bounds how long a response stays
// servable (entries age on the evaluation's clock, so TTLs lapse on
// virtual time in simulated runs). Relevance re-evaluation reuses a
// persistent match memo across rounds (-no-incremental falls back to
// from-scratch evaluation), -workers N evaluates a round's relevance
// queries on N goroutines, and -invoke-workers N invokes up to N of a
// round's independent relevant calls concurrently (implies -parallel;
// results are identical to sequential invocation).
//
// Fault tolerance (see doc/FAULTS.md): -retries enables engine-side
// retries of transient and timeout faults with exponential backoff,
// -timeout bounds each call attempt, and -best-effort records failed
// calls and keeps evaluating instead of aborting (completeness is then
// reported honestly in the exit status and warnings).
//
// Services are resolved against a remote provider (-provider, see
// axmlserver) or, without one, against the built-in demo registry of the
// hotels scenario. The final document state (the materialised relevant
// parts) can be written with -out; the query results print to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/activexml/axml/internal/construct"
	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/plan"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

var strategies = map[string]core.Strategy{
	"naive":          core.NaiveFixpoint,
	"eager":          core.TopDownEager,
	"lazy-lpq":       core.LazyLPQ,
	"lazy-nfq":       core.LazyNFQ,
	"lazy-nfq-typed": core.LazyNFQTyped,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("axmlquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		docPath    = fs.String("doc", "", "AXML document file (required)")
		queryText  = fs.String("query", "", "tree-pattern query (required)")
		strategy   = fs.String("strategy", "lazy-nfq", "naive|eager|lazy-lpq|lazy-nfq|lazy-nfq-typed")
		schemaPath = fs.String("schema", "", "service-signature schema file (enables typed pruning)")
		provider   = fs.String("provider", "", "remote provider base URL (default: built-in demo services)")
		push       = fs.Bool("push", false, "push subqueries to capable services")
		layer      = fs.Bool("layer", false, "enable NFQ layering")
		parallel   = fs.Bool("parallel", false, "invoke independent call sets in parallel")
		guide      = fs.Bool("guide", false, "use an F-guide for relevance detection")
		relax      = fs.Bool("relax-joins", false, "relax value joins in relevance queries")
		maxCalls   = fs.Int("max-calls", 0, "invocation budget (0 = default)")
		retries    = fs.Int("retries", 0, "retry transient/timeout faults up to this many extra attempts per call")
		timeout    = fs.Duration("timeout", 0, "per-call deadline; slower calls count as timeouts (0 = none)")
		bestEffort = fs.Bool("best-effort", false, "record failed calls and keep evaluating instead of aborting")
		noCache    = fs.Bool("no-cache", false, "disable service-response memoisation")
		cacheTTL   = fs.Duration("cache-ttl", 0, "bound how long a cached response stays servable (0 = forever)")
		workers    = fs.Int("workers", 0, "evaluate each round's relevance queries on this many goroutines (0/1 = sequential)")
		invokeWork = fs.Int("invoke-workers", 0, "invoke up to this many independent calls of a round concurrently (implies -parallel; 0 = unbounded batches under -parallel, 1 = sequential)")
		noIncr     = fs.Bool("no-incremental", false, "re-evaluate relevance queries from scratch each round")
		planMode   = fs.String("plan", "off", "off|cost: plan each round's invocation batches from an in-run service profile (reorders and resizes work only; results are identical)")
		planBudget = fs.Duration("plan-budget", 0, "defer speculative calls whose estimated latency exceeds this budget under -plan=cost (0 = admit all)")
		noProject  = fs.Bool("no-project", false, "disable type-based document projection (typed strategy + schema only)")
		stats      = fs.Bool("stats", false, "print evaluation statistics")
		explain    = fs.Bool("explain", false, "print the evaluation's span tree (detect/invoke timings, pruned vs invoked) to stderr")
		traceOut   = fs.String("trace-out", "", "stream finished telemetry spans to this file as JSONL")
		remoteSpan = fs.Int("remote-spans", 512, "remote span subtree budget per invocation when tracing over -provider (0 = propagate the trace ID only)")
		serveDebug = fs.String("serve-debug", "", "serve /metrics, /debug/trace and /debug/pprof on this address (e.g. :8090) while evaluating")
		tmplText   = fs.String("template", "", "render results through an XML template with {$X} placeholders")
		outPath    = fs.String("out", "", "write the materialised document here")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *docPath == "" || *queryText == "" {
		fmt.Fprintln(stderr, "axmlquery: -doc and -query are required")
		fs.Usage()
		return 2
	}

	fail := func(context string, err error) int {
		fmt.Fprintf(stderr, "axmlquery: %s: %v\n", context, err)
		return 1
	}

	data, err := os.ReadFile(*docPath)
	if err != nil {
		return fail("read document", err)
	}
	doc, err := tree.Unmarshal(data)
	if err != nil {
		return fail("parse document", err)
	}
	q, err := pattern.Parse(*queryText)
	if err != nil {
		return fail("parse query", err)
	}

	st, ok := strategies[*strategy]
	if !ok {
		return fail("options", fmt.Errorf("unknown strategy %q", *strategy))
	}
	opt := core.Options{
		Strategy: st, Push: *push, Layering: *layer, Parallel: *parallel,
		UseGuide: *guide, RelaxJoins: *relax, MaxCalls: *maxCalls,
		Incremental: !*noIncr, Workers: *workers, InvokeWorkers: *invokeWork,
		NoProject: *noProject,
	}
	if *retries > 0 || *timeout > 0 {
		opt.Retry = core.RetryPolicy{
			MaxAttempts: *retries + 1,
			Backoff:     50 * time.Millisecond,
			MaxBackoff:  2 * time.Second,
			Jitter:      0.5,
			Deadline:    *timeout,
		}
	}
	if *bestEffort {
		opt.Failure = core.BestEffort
	}
	// Telemetry is opt-in: the tracer exists only when something consumes
	// spans, the metrics registry only when something reads it, so plain
	// runs keep the disabled-telemetry fast path.
	var tracer *telemetry.Tracer
	if *explain || *traceOut != "" || *serveDebug != "" {
		tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
		// The trace ID is derived from the run's inputs, not drawn at
		// random, so two identical runs produce byte-identical traces —
		// the same discipline the engine applies to everything else.
		tracer.SetTrace(telemetry.DeriveTraceID(*queryText, *docPath))
		opt.Tracer = tracer
		opt.RemoteSpans = *remoteSpan
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail("create trace file", err)
		}
		defer f.Close()
		tracer.SetSink(telemetry.SinkJSONL(f))
	}
	var metrics *telemetry.Registry
	if *stats || *serveDebug != "" {
		metrics = telemetry.NewRegistry()
		opt.Metrics = metrics
		tracer.InstrumentDrops(metrics)
	}
	if *serveDebug != "" {
		ln, err := net.Listen("tcp", *serveDebug)
		if err != nil {
			return fail("serve-debug listen", err)
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "debug endpoints on http://%s (/metrics, /debug/trace, /debug/pprof)\n", ln.Addr())
		go func() { _ = http.Serve(ln, telemetry.Handler(metrics, tracer)) }()
	}
	if *schemaPath != "" {
		sdata, err := os.ReadFile(*schemaPath)
		if err != nil {
			return fail("read schema", err)
		}
		sch, err := schema.Parse(string(sdata))
		if err != nil {
			return fail("parse schema", err)
		}
		opt.Schema = sch
		if st == core.LazyNFQ {
			opt.Strategy = core.LazyNFQTyped
		}
	}

	var reg *service.Registry
	if *provider != "" {
		client := &soap.Client{BaseURL: *provider, Timeout: *timeout, Metrics: metrics}
		reg, err = client.RegistryFor()
		if err != nil {
			return fail("describe provider", err)
		}
		opt.Clock = service.NewWallClock(false)
	} else {
		reg = workload.Hotels(workload.DefaultSpec()).Registry
		// Local runs charge latencies to a virtual clock. Make it
		// explicit (rather than letting the engine default one) so the
		// response cache below can age its entries on the same timeline.
		opt.Clock = &service.SimClock{}
	}
	// The planner learns from a profiler wrapped under the response
	// cache (same layering as axmlserver): it observes real provider
	// latencies, not cache hits, and within one evaluation later rounds
	// are scheduled from what earlier rounds measured.
	var planner *plan.CostPlanner
	var prof *profile.Profiler
	switch *planMode {
	case "off":
	case "cost":
		prof = profile.New(0, nil)
		reg = prof.Wrap(reg)
		planner = plan.New(prof, plan.Options{SpeculativeBudget: *planBudget})
		planner.Instrument(metrics)
		opt.Planner = planner
	default:
		return fail("options", fmt.Errorf("unknown -plan mode %q (want off or cost)", *planMode))
	}
	var cache *service.Cache
	if !*noCache {
		cache = service.NewCache(service.CacheSpec{TTL: *cacheTTL, Now: service.ClockNow(opt.Clock)})
		cache.Instrument(metrics)
		if prof != nil {
			cache.Notify(prof.Notify())
		}
		reg = cache.Wrap(reg)
	}

	out, err := core.Evaluate(doc, q, reg, opt)
	if err != nil {
		return fail("evaluate", err)
	}
	if *explain {
		fmt.Fprintln(stderr, "explain:")
		telemetry.WriteTree(stderr, tracer.Spans(0))
	}

	if *tmplText != "" {
		tmpl, err := construct.ParseTemplate(*tmplText)
		if err != nil {
			return fail("parse template", err)
		}
		built, err := construct.Document("results", tmpl, out.Results)
		if err != nil {
			return fail("construct results", err)
		}
		b, err := tree.MarshalIndent(built.Root)
		if err != nil {
			return fail("marshal results", err)
		}
		fmt.Fprintf(stdout, "%s\n", b)
	} else {
		printResults(stdout, out)
	}
	for _, f := range out.Failures {
		fmt.Fprintf(stderr, "warning: gave up on %s at %s after %d attempt(s): %v\n",
			f.Service, f.Path, f.Attempts, f.Err)
	}
	if !out.Complete {
		fmt.Fprintln(stderr, "warning: the answer may be incomplete (budget exhausted or calls abandoned)")
	}
	if *stats {
		printStats(stderr, out.Stats)
		if planner != nil {
			ps := planner.Stats()
			fmt.Fprintf(stderr, "  plan:               %d batch(es), %d reordered, %d width trim(s), %d push veto(es), %d deferred\n",
				ps.Batches, ps.Reorders, ps.WidthTrims, out.Stats.PushVetoed, out.Stats.SpeculativeDeferred)
		}
		if cache != nil {
			cs := cache.Stats()
			fmt.Fprintf(stderr, "  svc cache:          %d hit(s), %d miss(es), %d coalesced (%.0f%% served locally)\n",
				cs.Hits, cs.Misses, cs.Coalesced, 100*cs.HitRate())
		}
		printQuantiles(stderr, metrics)
	}
	if *outPath != "" {
		b, err := tree.MarshalIndent(doc.Root)
		if err != nil {
			return fail("marshal document", err)
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			return fail("write document", err)
		}
	}
	return 0
}

func printResults(w io.Writer, out *core.Outcome) {
	fmt.Fprintf(w, "%d result(s)\n", len(out.Results))
	for i, r := range out.Results {
		var parts []string
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("$%s=%q", k, r.Values[k]))
		}
		ids := make([]int, 0, len(r.Nodes))
		for id := range r.Nodes {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			parts = append(parts, r.Nodes[id].String())
		}
		fmt.Fprintf(w, "%3d. %s\n", i+1, strings.Join(parts, "  "))
	}
}

// printQuantiles appends latency quantiles for the phases the metrics
// registry observed during the run.
func printQuantiles(w io.Writer, reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	rows := []struct{ label, metric string }{
		{"detect latency", telemetry.MetricDetectSeconds},
		{"invoke latency", telemetry.MetricInvokeWallSeconds},
		{"wire latency", telemetry.MetricHTTPClientSeconds},
	}
	for _, row := range rows {
		h, ok := snap.Histograms[row.metric]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-19s n=%d p50=%v p95=%v p99=%v max=%v\n",
			row.label+":", h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
	}
}

func printStats(w io.Writer, st core.Stats) {
	fmt.Fprintf(w, `stats:
  calls invoked:      %d (pushed: %d)
  retries:            %d (deadline cuts: %d, abandoned calls: %d)
  rounds:             %d
  relevance queries:  %d
  guide candidates:   %d
  subtrees projected: %d
  bytes fetched:      %d
  virtual time:       %v
  detection time:     %v
  analysis time:      %v
  final doc size:     %d nodes
`, st.CallsInvoked, st.PushedCalls,
		st.Retries, st.DeadlineCuts, st.FailedCalls,
		st.Rounds, st.RelevanceQueries,
		st.GuideCandidates, st.SubtreesPruned, st.BytesFetched, st.VirtualTime, st.DetectTime,
		st.AnalysisTime, st.FinalSize)
}
