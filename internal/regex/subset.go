package regex

import "sort"

// Subset reports whether L(a) ⊆ L(b). It decides the containment by
// checking L(a) ∩ ¬L(b) = ∅ over the effective alphabet: the concrete
// symbols either automaton mentions plus one fresh symbol standing for
// the (infinitely many) remaining labels — sufficient because neither
// language distinguishes labels it does not mention. The complement is
// taken on the determinisation of b, so the cost is exponential in b's
// size in the worst case; the linear-path automata this is used on are
// tiny.
func Subset(a, b *NFA) bool {
	alphabet := map[string]bool{}
	for s := range a.Alphabet() {
		alphabet[s] = true
	}
	for s := range b.Alphabet() {
		alphabet[s] = true
	}
	alphabet[otherSymbol] = true
	symbols := make([]string, 0, len(alphabet))
	for s := range alphabet {
		symbols = append(symbols, s)
	}
	sort.Strings(symbols)

	dfa := determinize(b, symbols)
	// Product walk of a against the complement of dfa: a word witnesses
	// non-containment iff a accepts while dfa does not.
	type state struct {
		na int // state of a
		db int // state of dfa
	}
	seen := map[state]bool{}
	var stack []state
	start := state{0, 0}
	seen[start] = true
	stack = append(stack, start)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.accept[cur.na] && !dfa.accept[cur.db] {
			return false
		}
		for _, e := range a.trans[cur.na] {
			syms := []string{e.Symbol}
			if e.Symbol == Any {
				syms = symbols
			}
			for _, sym := range syms {
				next := state{e.To, dfa.step(cur.db, sym)}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return true
}

// Equivalent reports L(a) = L(b).
func Equivalent(a, b *NFA) bool { return Subset(a, b) && Subset(b, a) }

// otherSymbol stands for every label outside the effective alphabet of a
// containment check. A leading space cannot occur in an XML name, so it
// never collides with a real label.
const otherSymbol = " other"

// dfa is a complete deterministic automaton over a fixed symbol list.
// State 0 is the start subset; the empty subset, when reachable, acts as
// the dead state (all transitions loop on it, never accepting).
type dfa struct {
	symIndex map[string]int
	trans    [][]int // [state][symbol] → state
	accept   []bool
}

func (d *dfa) step(s int, sym string) int {
	i, ok := d.symIndex[sym]
	if !ok {
		// Symbols outside the effective alphabet behave like "other",
		// which is always present.
		i = d.symIndex[otherSymbol]
	}
	return d.trans[s][i]
}

// determinize builds a complete DFA for n over the given symbols. Any
// transitions of n apply to every symbol.
func determinize(n *NFA, symbols []string) *dfa {
	symIndex := make(map[string]int, len(symbols))
	for i, s := range symbols {
		symIndex[s] = i
	}
	type subset string // canonical encoding of a sorted state set
	encode := func(states []int) subset {
		sort.Ints(states)
		b := make([]byte, 0, 4*len(states))
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return subset(b)
	}
	start := []int{0}
	index := map[subset]int{encode(start): 0}
	sets := [][]int{start}
	d := &dfa{symIndex: symIndex}
	d.trans = append(d.trans, make([]int, len(symbols)))
	d.accept = append(d.accept, n.accept[0])
	for qi := 0; qi < len(sets); qi++ {
		cur := sets[qi]
		for si, sym := range symbols {
			var next []int
			seen := map[int]bool{}
			for _, s := range cur {
				for _, e := range n.trans[s] {
					if (e.Symbol == sym || e.Symbol == Any) && !seen[e.To] {
						seen[e.To] = true
						next = append(next, e.To)
					}
				}
			}
			key := encode(next)
			t, ok := index[key]
			if !ok {
				t = len(sets)
				index[key] = t
				sets = append(sets, next)
				d.trans = append(d.trans, make([]int, len(symbols)))
				acc := false
				for _, s := range next {
					if n.accept[s] {
						acc = true
						break
					}
				}
				d.accept = append(d.accept, acc)
			}
			d.trans[qi][si] = t
		}
	}
	return d
}
