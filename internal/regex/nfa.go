package regex

import (
	"sort"
	"strings"
)

// Edge is a labelled transition of an NFA. A Symbol equal to Any matches
// every label.
type Edge struct {
	Symbol string
	To     int
}

// NFA is an ε-free nondeterministic finite automaton over labels. State 0
// is always the start state. NFAs are produced by Compile and by the
// combinators below; they are immutable once built.
type NFA struct {
	trans  [][]Edge
	accept []bool
}

// Compile translates an expression into an ε-free NFA via a Thompson
// construction followed by ε-elimination.
func Compile(e Expr) *NFA {
	b := &thompson{}
	start := b.newState()
	end := b.newState()
	b.build(e, start, end)
	return b.finish(start, end)
}

// CompilePath builds the NFA of a linear path language: steps is a
// sequence of (label, anyDepth) pairs where anyDepth means the step is
// reached through a descendant edge (so any number of intermediate labels
// may occur before it). Labels may be Any for wildcard steps.
//
// For example /a/*/b//c is CompilePath({"a",false},{"*",false},
// {"b",false},{"c",true}) and denotes a·σ·b·σ*·c.
func CompilePath(steps []PathStep) *NFA {
	parts := make([]Expr, 0, 2*len(steps))
	for _, s := range steps {
		if s.AnyDepth {
			parts = append(parts, Star(Sym(Any)))
		}
		parts = append(parts, Sym(s.Label))
	}
	return Compile(Concat(parts...))
}

// PathStep is one step of a linear path: the label it matches (possibly
// Any) and whether it is reached through a descendant edge.
type PathStep struct {
	Label    string
	AnyDepth bool
}

// thompson builds an ε-NFA and eliminates epsilons at the end.
type thompson struct {
	eps   [][]int
	edges [][]Edge
}

func (b *thompson) newState() int {
	b.eps = append(b.eps, nil)
	b.edges = append(b.edges, nil)
	return len(b.eps) - 1
}

func (b *thompson) addEps(from, to int) { b.eps[from] = append(b.eps[from], to) }
func (b *thompson) addEdge(from int, sym string, to int) {
	b.edges[from] = append(b.edges[from], Edge{Symbol: sym, To: to})
}

func (b *thompson) build(e Expr, start, end int) {
	switch e.op {
	case opEmpty:
		// No transition: end unreachable from start through e.
	case opEps:
		b.addEps(start, end)
	case opSymbol:
		b.addEdge(start, e.symbol, end)
	case opConcat:
		cur := start
		for i, c := range e.children {
			next := end
			if i < len(e.children)-1 {
				next = b.newState()
			}
			b.build(c, cur, next)
			cur = next
		}
	case opAlt:
		for _, c := range e.children {
			b.build(c, start, end)
		}
	case opStar:
		mid := b.newState()
		b.addEps(start, mid)
		b.addEps(mid, end)
		b.build(e.children[0], mid, mid)
	case opPlus:
		mid := b.newState()
		b.build(e.children[0], start, mid)
		b.addEps(mid, end)
		b.build(e.children[0], mid, mid)
	case opOpt:
		b.addEps(start, end)
		b.build(e.children[0], start, end)
	}
}

// finish eliminates ε-transitions and returns an ε-free NFA whose state 0
// is the given start state.
func (b *thompson) finish(start, end int) *NFA {
	n := len(b.eps)
	closure := make([][]int, n)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		var cl []int
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cl = append(cl, x)
			for _, t := range b.eps[x] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		closure[s] = cl
	}
	// Remap so the start state is 0 and keep only states reachable from it.
	order := []int{start}
	index := map[int]int{start: 0}
	trans := [][]Edge{nil}
	accept := []bool{false}
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		isAccept := false
		var out []Edge
		for _, c := range closure[s] {
			if c == end {
				isAccept = true
			}
			for _, ed := range b.edges[c] {
				out = append(out, ed)
			}
		}
		// Resolve targets (through their own future remap).
		for i, ed := range out {
			t, ok := index[ed.To]
			if !ok {
				t = len(order)
				index[ed.To] = t
				order = append(order, ed.To)
				trans = append(trans, nil)
				accept = append(accept, false)
			}
			out[i].To = t
		}
		trans[qi] = dedupeEdges(out)
		accept[qi] = isAccept
	}
	return &NFA{trans: trans, accept: accept}
}

func dedupeEdges(es []Edge) []Edge {
	if len(es) < 2 {
		return es
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Symbol != es[j].Symbol {
			return es[i].Symbol < es[j].Symbol
		}
		return es[i].To < es[j].To
	})
	out := es[:1]
	for _, e := range es[1:] {
		if last := out[len(out)-1]; e != last {
			out = append(out, e)
		}
	}
	return out
}

// NumStates returns the number of states of the automaton.
func (a *NFA) NumStates() int { return len(a.trans) }

// Accepting reports whether state s is accepting.
func (a *NFA) Accepting(s int) bool { return a.accept[s] }

// Edges returns the outgoing transitions of state s. The returned slice
// must not be modified.
func (a *NFA) Edges(s int) []Edge { return a.trans[s] }

// Alphabet returns the set of concrete symbols (Any excluded) appearing on
// any transition.
func (a *NFA) Alphabet() map[string]bool {
	out := map[string]bool{}
	for _, es := range a.trans {
		for _, e := range es {
			if e.Symbol != Any {
				out[e.Symbol] = true
			}
		}
	}
	return out
}

// Matches reports whether the automaton accepts the given word.
func (a *NFA) Matches(word []string) bool {
	cur := map[int]bool{0: true}
	for _, sym := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, e := range a.trans[s] {
				if e.Symbol == sym || e.Symbol == Any {
					next[e.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for s := range cur {
		if a.accept[s] {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the language of the automaton is empty, i.e. no
// accepting state is reachable from the start state.
func (a *NFA) IsEmpty() bool {
	seen := make([]bool, len(a.trans))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.accept[s] {
			return false
		}
		for _, e := range a.trans[s] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return true
}

// PrefixClosure returns an automaton accepting every prefix of every word
// of a's language: all states that can reach an accepting state become
// accepting.
func (a *NFA) PrefixClosure() *NFA {
	n := len(a.trans)
	// Reverse reachability from accepting states.
	rev := make([][]int, n)
	for s, es := range a.trans {
		for _, e := range es {
			rev[e.To] = append(rev[e.To], s)
		}
	}
	acc := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if a.accept[s] {
			acc[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !acc[p] {
				acc[p] = true
				stack = append(stack, p)
			}
		}
	}
	return &NFA{trans: a.trans, accept: acc}
}

// Intersect returns the product automaton accepting L(a) ∩ L(b). The
// wildcard Any is treated as "any label from the infinite alphabet": a pair
// of transitions combines on a concrete symbol when both sides allow it,
// and an (Any, Any) pair yields an Any transition in the product, which is
// what makes emptiness testing sound over unbounded alphabets.
func (a *NFA) Intersect(b *NFA) *NFA {
	type pair struct{ x, y int }
	index := map[pair]int{{0, 0}: 0}
	order := []pair{{0, 0}}
	var trans [][]Edge
	var accept []bool
	trans = append(trans, nil)
	accept = append(accept, a.accept[0] && b.accept[0])
	state := func(p pair) int {
		if i, ok := index[p]; ok {
			return i
		}
		i := len(order)
		index[p] = i
		order = append(order, p)
		trans = append(trans, nil)
		accept = append(accept, a.accept[p.x] && b.accept[p.y])
		return i
	}
	for qi := 0; qi < len(order); qi++ {
		p := order[qi]
		var out []Edge
		for _, ea := range a.trans[p.x] {
			for _, eb := range b.trans[p.y] {
				var sym string
				switch {
				case ea.Symbol == eb.Symbol:
					sym = ea.Symbol // concrete==concrete, or Any==Any
				case ea.Symbol == Any:
					sym = eb.Symbol
				case eb.Symbol == Any:
					sym = ea.Symbol
				default:
					continue
				}
				out = append(out, Edge{Symbol: sym, To: state(pair{ea.To, eb.To})})
			}
		}
		trans[qi] = dedupeEdges(out)
	}
	return &NFA{trans: trans, accept: accept}
}

// Intersects reports whether L(a) ∩ L(b) is non-empty.
func (a *NFA) Intersects(b *NFA) bool { return !a.Intersect(b).IsEmpty() }

// SomeWordIsPrefixOf reports whether some word of L(a) is a prefix of some
// word of L(b) — the test of Proposition 3 of the paper, deciding whether
// the NFQ with linear part a may influence the NFQ with linear part b.
func (a *NFA) SomeWordIsPrefixOf(b *NFA) bool {
	return a.Intersects(b.PrefixClosure())
}

// UsefulSymbols returns the concrete symbols that occur in at least one
// accepted word, i.e. symbols on a path from the start state to an
// accepting state. HasUsefulAny additionally reports whether a wildcard
// occurs on such a path.
func (a *NFA) UsefulSymbols() (symbols map[string]bool, hasUsefulAny bool) {
	n := len(a.trans)
	// Forward reachability.
	fwd := make([]bool, n)
	stack := []int{0}
	fwd[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.trans[s] {
			if !fwd[e.To] {
				fwd[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	// Backward reachability from accepting states.
	rev := make([][]int, n)
	for s, es := range a.trans {
		for _, e := range es {
			rev[e.To] = append(rev[e.To], s)
		}
	}
	bwd := make([]bool, n)
	for s := 0; s < n; s++ {
		if a.accept[s] {
			bwd[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	symbols = map[string]bool{}
	for s, es := range a.trans {
		if !fwd[s] {
			continue
		}
		for _, e := range es {
			if !bwd[e.To] {
				continue
			}
			if e.Symbol == Any {
				hasUsefulAny = true
			} else {
				symbols[e.Symbol] = true
			}
		}
	}
	return symbols, hasUsefulAny
}

// String renders the automaton for debugging.
func (a *NFA) String() string {
	var sb strings.Builder
	for s, es := range a.trans {
		mark := " "
		if a.accept[s] {
			mark = "*"
		}
		if s == 0 {
			mark += ">"
		}
		for _, e := range es {
			sb.WriteString(strings.TrimSpace(mark))
			sb.WriteString(" ")
			sb.WriteString(strings.Join([]string{itoa(s), e.Symbol, itoa(e.To)}, " -"))
			sb.WriteString("\n")
		}
		if len(es) == 0 {
			sb.WriteString(strings.TrimSpace(mark) + " " + itoa(s) + "\n")
		}
	}
	return sb.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
