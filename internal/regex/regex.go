// Package regex implements regular expressions over label alphabets and
// the automata operations the lazy-evaluation algorithms rely on.
//
// Two clients use it:
//
//   - the influence analysis of Section 4.2 of the paper, which tests
//     whether some word of one linear-path language is a prefix of some
//     word of another (Proposition 3), and whether two such languages
//     intersect (the independence condition (✶) of Section 4.4);
//   - the type analysis of Section 5, which interprets the DTD-like
//     content models of service signatures (Figure 2 of the paper).
//
// Alphabets are XML label sets and therefore unbounded; the special symbol
// Any stands for "any single label" and is handled natively by the product
// construction, so emptiness tests are sound for the infinite alphabet.
package regex

import (
	"fmt"
	"strings"
)

// Any is the wildcard symbol: it matches every label. "*" is not a valid
// XML name, so it can never collide with a real label.
const Any = "*"

// Expr is a regular expression over labels. Expressions are immutable
// values built with the constructors below or by Parse.
type Expr struct {
	op       opKind
	symbol   string // for opSymbol
	children []Expr // for opConcat, opAlt, opStar, opOpt, opPlus
}

type opKind uint8

const (
	opEmpty  opKind = iota // ∅ — no word
	opEps                  // ε — the empty word
	opSymbol               // a single label (possibly Any)
	opConcat               // e1.e2...
	opAlt                  // e1|e2...
	opStar                 // e*
	opPlus                 // e+
	opOpt                  // e?
)

// Empty returns the expression denoting the empty language.
func Empty() Expr { return Expr{op: opEmpty} }

// Eps returns the expression denoting the language {ε}.
func Eps() Expr { return Expr{op: opEps} }

// Sym returns the expression matching exactly the given label. Sym(Any)
// matches any single label.
func Sym(label string) Expr { return Expr{op: opSymbol, symbol: label} }

// Concat returns the concatenation of the given expressions; Concat() is ε.
func Concat(es ...Expr) Expr {
	switch len(es) {
	case 0:
		return Eps()
	case 1:
		return es[0]
	}
	return Expr{op: opConcat, children: es}
}

// Alt returns the alternation of the given expressions; Alt() is ∅.
func Alt(es ...Expr) Expr {
	switch len(es) {
	case 0:
		return Empty()
	case 1:
		return es[0]
	}
	return Expr{op: opAlt, children: es}
}

// Star returns e*.
func Star(e Expr) Expr { return Expr{op: opStar, children: []Expr{e}} }

// Plus returns e+.
func Plus(e Expr) Expr { return Expr{op: opPlus, children: []Expr{e}} }

// Opt returns e?.
func Opt(e Expr) Expr { return Expr{op: opOpt, children: []Expr{e}} }

// String renders the expression in the DTD-like syntax accepted by Parse.
func (e Expr) String() string {
	switch e.op {
	case opEmpty:
		return "#empty"
	case opEps:
		return "#eps"
	case opSymbol:
		return e.symbol
	case opConcat:
		parts := make([]string, len(e.children))
		for i, c := range e.children {
			if c.op == opAlt {
				parts[i] = "(" + c.String() + ")"
			} else {
				parts[i] = c.String()
			}
		}
		return strings.Join(parts, ".")
	case opAlt:
		parts := make([]string, len(e.children))
		for i, c := range e.children {
			parts[i] = c.String()
		}
		return strings.Join(parts, "|")
	case opStar, opPlus, opOpt:
		suffix := map[opKind]string{opStar: "*", opPlus: "+", opOpt: "?"}[e.op]
		c := e.children[0]
		if c.op == opSymbol || c.op == opEps || c.op == opEmpty {
			return c.String() + suffix
		}
		return "(" + c.String() + ")" + suffix
	default:
		return fmt.Sprintf("#op(%d)", e.op)
	}
}

// Symbols returns the set of concrete labels mentioned by the expression
// (Any excluded).
func (e Expr) Symbols() map[string]bool {
	out := map[string]bool{}
	e.collectSymbols(out)
	return out
}

func (e Expr) collectSymbols(out map[string]bool) {
	if e.op == opSymbol && e.symbol != Any {
		out[e.symbol] = true
	}
	for _, c := range e.children {
		c.collectSymbols(out)
	}
}

// Parse reads the DTD-like syntax used by the paper's Figure 2:
// concatenation with ".", alternation with "|", postfix "*", "+", "?",
// grouping with parentheses. Symbols are XML-name-like identifiers; the
// keyword parsing (e.g. "data") is up to the caller. "#eps" and "#empty"
// denote ε and ∅. Whitespace is insignificant.
func Parse(s string) (Expr, error) {
	p := &parser{input: s}
	e, err := p.parseAlt()
	if err != nil {
		return Empty(), err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return Empty(), fmt.Errorf("regex: trailing input at offset %d in %q", p.pos, s)
	}
	return e, nil
}

// MustParse is Parse panicking on error; for tests and literals.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *parser) parseAlt() (Expr, error) {
	var alts []Expr
	for {
		e, err := p.parseConcat()
		if err != nil {
			return Empty(), err
		}
		alts = append(alts, e)
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
	}
	return Alt(alts...), nil
}

func (p *parser) parseConcat() (Expr, error) {
	var parts []Expr
	for {
		e, err := p.parsePostfix()
		if err != nil {
			return Empty(), err
		}
		parts = append(parts, e)
		p.skipSpace()
		if p.peek() != '.' {
			break
		}
		p.pos++
	}
	return Concat(parts...), nil
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return Empty(), err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			e = Star(e)
		case '+':
			p.pos++
			e = Plus(e)
		case '?':
			p.pos++
			e = Opt(e)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return Empty(), err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return Empty(), fmt.Errorf("regex: missing ')' at offset %d in %q", p.pos, p.input)
		}
		p.pos++
		return e, nil
	case c == '#':
		start := p.pos
		p.pos++
		for p.pos < len(p.input) && isNameByte(p.input[p.pos]) {
			p.pos++
		}
		switch p.input[start:p.pos] {
		case "#eps":
			return Eps(), nil
		case "#empty":
			return Empty(), nil
		default:
			return Empty(), fmt.Errorf("regex: unknown keyword %q", p.input[start:p.pos])
		}
	case isNameStartByte(c):
		start := p.pos
		for p.pos < len(p.input) && isNameByte(p.input[p.pos]) {
			p.pos++
		}
		return Sym(p.input[start:p.pos]), nil
	case c == 0:
		return Empty(), fmt.Errorf("regex: unexpected end of input in %q", p.input)
	default:
		return Empty(), fmt.Errorf("regex: unexpected byte %q at offset %d in %q", c, p.pos, p.input)
	}
}

func isNameStartByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || c == '-' || (c >= '0' && c <= '9')
}
