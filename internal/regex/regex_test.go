package regex

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []struct{ in, out string }{
		{"a", "a"},
		{"a.b.c", "a.b.c"},
		{"a|b", "a|b"},
		{"(a|b).c", "(a|b).c"},
		{"a*", "a*"},
		{"a+", "a+"},
		{"a?", "a?"},
		{"(a.b)*", "(a.b)*"},
		{"restaurant*.getNearbyRestos?.museum*", "restaurant*.getNearbyRestos?.museum*"},
		{"#eps", "#eps"},
		{"#empty", "#empty"},
		{"data", "data"},
		{" a . b ", "a.b"},
		{"a**", "(a*)*"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(a", "a)", "a..b", "|a|", "#frob", "a b", "5a", ".a"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of garbage did not panic")
		}
	}()
	MustParse("(((")
}

func TestSymbols(t *testing.T) {
	e := MustParse("a.(b|c)*.a")
	syms := e.Symbols()
	if len(syms) != 3 || !syms["a"] || !syms["b"] || !syms["c"] {
		t.Fatalf("Symbols = %v", syms)
	}
	star := Concat(Sym(Any), Sym("x"))
	if s := star.Symbols(); len(s) != 1 || !s["x"] {
		t.Fatalf("Any must be excluded from Symbols: %v", s)
	}
}

func w(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, " ")
}

func TestCompileMatches(t *testing.T) {
	cases := []struct {
		expr    string
		yes, no []string
	}{
		{"a", []string{"a"}, []string{"", "b", "a a"}},
		{"a.b", []string{"a b"}, []string{"a", "b", "b a", "a b c"}},
		{"a|b", []string{"a", "b"}, []string{"", "c", "a b"}},
		{"a*", []string{"", "a", "a a a"}, []string{"b", "a b"}},
		{"a+", []string{"a", "a a"}, []string{"", "b"}},
		{"a?", []string{"", "a"}, []string{"a a"}},
		{"(a|b)*.c", []string{"c", "a c", "b a c"}, []string{"", "a", "c c a"}},
		{"#eps", []string{""}, []string{"a"}},
		{"#empty", nil, []string{"", "a"}},
		{"a.#empty", nil, []string{"a", ""}},
		{"a.#eps.b", []string{"a b"}, []string{"a", "a b b"}},
	}
	for _, c := range cases {
		a := Compile(MustParse(c.expr))
		for _, word := range c.yes {
			if !a.Matches(w(word)) {
				t.Errorf("%q should match %q", c.expr, word)
			}
		}
		for _, word := range c.no {
			if a.Matches(w(word)) {
				t.Errorf("%q should not match %q", c.expr, word)
			}
		}
	}
}

func TestWildcardMatches(t *testing.T) {
	// σ·a matches any label followed by a.
	a := Compile(Concat(Sym(Any), Sym("a")))
	if !a.Matches(w("z a")) || !a.Matches(w("a a")) {
		t.Fatal("wildcard did not match")
	}
	if a.Matches(w("a")) || a.Matches(w("a z")) {
		t.Fatal("wildcard over-matched")
	}
}

func TestCompilePath(t *testing.T) {
	// /a/*/b//c  ≡  a·σ·b·σ*·c
	p := CompilePath([]PathStep{
		{Label: "a"}, {Label: Any}, {Label: "b"}, {Label: "c", AnyDepth: true},
	})
	for _, word := range []string{"a x b c", "a x b y z c"} {
		if !p.Matches(w(word)) {
			t.Errorf("path should match %q", word)
		}
	}
	for _, word := range []string{"a b c", "a x b", "a x b c d"} {
		if p.Matches(w(word)) {
			t.Errorf("path should not match %q", word)
		}
	}
}

func TestIsEmpty(t *testing.T) {
	if Compile(MustParse("a.b")).IsEmpty() {
		t.Fatal("a.b reported empty")
	}
	if !Compile(Empty()).IsEmpty() {
		t.Fatal("∅ reported non-empty")
	}
	if Compile(Eps()).IsEmpty() {
		t.Fatal("{ε} reported empty")
	}
	if !Compile(Concat(Sym("a"), Empty())).IsEmpty() {
		t.Fatal("a.∅ reported non-empty")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a.b", "a.b", true},
		{"a.b", "a.c", false},
		{"(a|b).c", "b.c", true},
		{"a*", "a.a.a", true},
		{"a*", "b", false},
		{"a?", "#eps", true},
		{"a", "#eps", false},
	}
	for _, c := range cases {
		got := Compile(MustParse(c.a)).Intersects(Compile(MustParse(c.b)))
		if got != c.want {
			t.Errorf("Intersects(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectWildcard(t *testing.T) {
	// L1 = σ*·a (paths ending in a), L2 = b·σ* (paths starting with b).
	l1 := Compile(Concat(Star(Sym(Any)), Sym("a")))
	l2 := Compile(Concat(Sym("b"), Star(Sym(Any))))
	if !l1.Intersects(l2) {
		t.Fatal("σ*a ∩ bσ* should contain b·a")
	}
	// L3 = a exactly; b·σ* cannot contain it.
	if Compile(Sym("a")).Intersects(l2) {
		t.Fatal("a ∩ bσ* should be empty")
	}
	// Pure wildcard languages must intersect even with disjoint concrete
	// alphabets (the infinite-alphabet soundness case).
	x := Compile(Concat(Sym(Any), Sym(Any)))
	y := Compile(Star(Sym(Any)))
	if !x.Intersects(y) {
		t.Fatal("σσ ∩ σ* should be non-empty")
	}
}

func TestPrefixClosure(t *testing.T) {
	a := Compile(MustParse("a.b.c")).PrefixClosure()
	for _, word := range []string{"", "a", "a b", "a b c"} {
		if !a.Matches(w(word)) {
			t.Errorf("prefix closure should match %q", word)
		}
	}
	for _, word := range []string{"b", "a c", "a b c d"} {
		if a.Matches(w(word)) {
			t.Errorf("prefix closure should not match %q", word)
		}
	}
}

func TestSomeWordIsPrefixOf(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// hotel is a prefix of hotel.rating.
		{"hotel", "hotel.rating", true},
		// hotel.nearby is not a prefix of hotel.rating.*
		{"hotel.nearby", "hotel.rating", false},
		// Equality counts as prefix.
		{"a.b", "a.b", true},
		// Longer than every word of b: not a prefix.
		{"a.b.c", "a.b", false},
		{"a*", "b", true}, // ε ∈ a* is a prefix of everything
	}
	for _, c := range cases {
		got := Compile(MustParse(c.a)).SomeWordIsPrefixOf(Compile(MustParse(c.b)))
		if got != c.want {
			t.Errorf("SomeWordIsPrefixOf(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSomeWordIsPrefixOfWithDescendants(t *testing.T) {
	// The paper's §4.3 example: lin_v = //a and lin_w = //b influence each
	// other because a word ending in b may have a prefix ending in a.
	la := CompilePath([]PathStep{{Label: "a", AnyDepth: true}})
	lb := CompilePath([]PathStep{{Label: "b", AnyDepth: true}})
	if !la.SomeWordIsPrefixOf(lb) || !lb.SomeWordIsPrefixOf(la) {
		t.Fatal("//a and //b must mutually influence")
	}
	// But /a cannot be a prefix of /b (both are length-1 words).
	pa := CompilePath([]PathStep{{Label: "a"}})
	pb := CompilePath([]PathStep{{Label: "b"}})
	if pa.SomeWordIsPrefixOf(pb) {
		t.Fatal("/a must not be a prefix of /b")
	}
}

func TestUsefulSymbols(t *testing.T) {
	// b is only on a dead branch (followed by ∅), so it is not useful.
	e := Alt(Concat(Sym("a"), Sym("c")), Concat(Sym("b"), Empty()))
	syms, anyUseful := Compile(e).UsefulSymbols()
	if !syms["a"] || !syms["c"] || syms["b"] {
		t.Fatalf("UsefulSymbols = %v", syms)
	}
	if anyUseful {
		t.Fatal("no wildcard in this expression")
	}
	_, anyUseful = Compile(Concat(Sym(Any), Sym("x"))).UsefulSymbols()
	if !anyUseful {
		t.Fatal("wildcard on a useful path not reported")
	}
}

func TestAlphabet(t *testing.T) {
	a := Compile(MustParse("a.(b|c)"))
	al := a.Alphabet()
	if len(al) != 3 || !al["a"] || !al["b"] || !al["c"] {
		t.Fatalf("Alphabet = %v", al)
	}
}

func TestNFAStringSmoke(t *testing.T) {
	if s := Compile(MustParse("a|b")).String(); !strings.Contains(s, "a") {
		t.Fatalf("String output looks wrong: %q", s)
	}
}

// TestIntersectionSoundProperty: for random small expressions, a word
// accepted by both must be accepted by the product, and vice versa for a
// sample of short words over {a,b}.
func TestIntersectionSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		e1 := randomExpr(seed, 3)
		e2 := randomExpr(seed*31+7, 3)
		a1, a2 := Compile(e1), Compile(e2)
		prod := a1.Intersect(a2)
		// Enumerate all words over {a,b} up to length 4.
		words := [][]string{nil}
		for l := 1; l <= 4; l++ {
			var next [][]string
			for _, word := range words {
				if len(word) == l-1 {
					for _, s := range []string{"a", "b"} {
						nw := append(append([]string{}, word...), s)
						next = append(next, nw)
					}
				}
			}
			words = append(words, next...)
		}
		for _, word := range words {
			if (a1.Matches(word) && a2.Matches(word)) != prod.Matches(word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixClosureProperty: every prefix of an accepted word is accepted
// by the prefix closure.
func TestPrefixClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		e := randomExpr(seed, 4)
		a := Compile(e)
		p := a.PrefixClosure()
		words := allWords(4)
		for _, word := range words {
			if a.Matches(word) {
				for i := 0; i <= len(word); i++ {
					if !p.Matches(word[:i]) {
						return false
					}
				}
			}
			// And conversely: anything the closure accepts must extend to
			// an accepted word of length ≤ 8 or be a true prefix — the
			// cheap direction only, checked above.
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func allWords(maxLen int) [][]string {
	words := [][]string{nil}
	frontier := [][]string{nil}
	for l := 0; l < maxLen; l++ {
		var next [][]string
		for _, word := range frontier {
			for _, s := range []string{"a", "b"} {
				nw := append(append([]string{}, word...), s)
				next = append(next, nw)
			}
		}
		words = append(words, next...)
		frontier = next
	}
	return words
}

func randomExpr(seed int64, depth int) Expr {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	var build func(d int) Expr
	build = func(d int) Expr {
		if d <= 0 {
			switch next(3) {
			case 0:
				return Sym("a")
			case 1:
				return Sym("b")
			default:
				return Eps()
			}
		}
		switch next(6) {
		case 0:
			return Concat(build(d-1), build(d-1))
		case 1:
			return Alt(build(d-1), build(d-1))
		case 2:
			return Star(build(d - 1))
		case 3:
			return Opt(build(d - 1))
		case 4:
			return Plus(build(d - 1))
		default:
			return build(0)
		}
	}
	return build(depth)
}

func TestSubset(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a", "a", true},
		{"a", "a|b", true},
		{"a|b", "a", false},
		{"a.b", "a.(b|c)", true},
		{"a*", "a*", true},
		{"a.a", "a*", true},
		{"a*", "a.a", false},
		{"#eps", "a*", true},
		{"#empty", "a", true},
		{"a", "#empty", false},
		{"(a|b)*", "a*|b*", false}, // "ab" distinguishes them
		{"a*|b*", "(a|b)*", true},
	}
	for _, c := range cases {
		got := Subset(Compile(MustParse(c.a)), Compile(MustParse(c.b)))
		if got != c.want {
			t.Errorf("Subset(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubsetWithWildcards(t *testing.T) {
	anyStar := Compile(Star(Sym(Any)))                 // σ*
	endsA := Compile(Concat(Star(Sym(Any)), Sym("a"))) // σ*·a
	just := Compile(MustParse("b.a"))
	if !Subset(just, endsA) {
		t.Error("b·a ⊆ σ*a")
	}
	if !Subset(endsA, anyStar) {
		t.Error("σ*a ⊆ σ*")
	}
	if Subset(anyStar, endsA) {
		t.Error("σ* ⊄ σ*a")
	}
	// The infinite-alphabet case: σ is not contained in a|b even though
	// a and b are the only concrete symbols mentioned.
	sigma := Compile(Sym(Any))
	ab := Compile(MustParse("a|b"))
	if Subset(sigma, ab) {
		t.Error("σ ⊄ a|b: some fresh label is not in {a,b}")
	}
	if !Subset(ab, sigma) {
		t.Error("a|b ⊆ σ")
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(Compile(MustParse("a*|b*")), Compile(MustParse("a*|b*|#eps"))) {
		t.Error("ε is already in a*")
	}
	if Equivalent(Compile(MustParse("a")), Compile(MustParse("a|b"))) {
		t.Error("a ≠ a|b")
	}
}

// TestSubsetAgreesWithSampling cross-checks Subset against word sampling
// on random expressions: if Subset says yes, no sampled word of a may be
// rejected by b; if it says no, sampling often (not always) finds a
// witness — only the sound direction is asserted.
func TestSubsetAgreesWithSampling(t *testing.T) {
	f := func(seed int64) bool {
		a := Compile(randomExpr(seed, 3))
		b := Compile(randomExpr(seed*17+3, 3))
		if !Subset(a, b) {
			return true // nothing to check in the negative case
		}
		for _, word := range allWords(5) {
			if a.Matches(word) && !b.Matches(word) {
				t.Logf("seed %d: containment violated on %v", seed, word)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
