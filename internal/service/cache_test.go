package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/tree"
)

// cacheWorld builds a registry with one counting service returning a
// two-node forest derived from its first parameter.
func cacheWorld(latency time.Duration) (*Registry, *int) {
	calls := 0
	reg := NewRegistry()
	reg.Register(&Service{
		Name:    "GetTemp",
		Latency: latency,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			calls++
			city := "?"
			if len(params) > 0 {
				city = params[0].Text()
			}
			e := tree.NewElement("temp")
			e.Append(tree.NewText(city))
			return []*tree.Node{e, tree.NewText("C")}, nil
		},
	})
	return reg, &calls
}

func paris() []*tree.Node { return []*tree.Node{tree.NewText("Paris")} }

func TestCacheHitSkipsWireAndHandler(t *testing.T) {
	base, calls := cacheWorld(50 * time.Millisecond)
	c := NewCache(CacheSpec{})
	reg := c.Wrap(base)

	first, err := reg.Invoke("GetTemp", paris(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Latency != 50*time.Millisecond || first.Bytes == 0 {
		t.Fatalf("miss should carry real latency and bytes, got %v/%d", first.Latency, first.Bytes)
	}
	second, err := reg.Invoke("GetTemp", paris(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Fatalf("handler ran %d times, want 1", *calls)
	}
	if second.Latency != 0 || second.Bytes != 0 {
		t.Fatalf("hit should be free: latency %v bytes %d", second.Latency, second.Bytes)
	}
	if len(second.Forest) != 2 || !second.Forest[0].Equal(first.Forest[0]) {
		t.Fatalf("hit forest differs from the original response")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

// TestCacheHitForestsAreIsolated splices a hit's forest into a document
// (which re-parents nodes and assigns IDs) and checks later hits are
// untouched clones.
func TestCacheHitForestsAreIsolated(t *testing.T) {
	base, _ := cacheWorld(0)
	c := NewCache(CacheSpec{})
	reg := c.Wrap(base)

	reg.Invoke("GetTemp", paris(), nil)
	hit1, _ := reg.Invoke("GetTemp", paris(), nil)

	root := tree.NewElement("r")
	call := root.Append(tree.NewCall("GetTemp"))
	doc := tree.NewDocument(root)
	doc.ReplaceCall(call, hit1.Forest)

	hit2, _ := reg.Invoke("GetTemp", paris(), nil)
	for _, n := range hit2.Forest {
		if n.Parent != nil || n.ID != 0 {
			t.Fatalf("cached master leaked document state: parent=%v id=%d", n.Parent, n.ID)
		}
	}
	if !hit2.Forest[0].Equal(hit1.Forest[0]) {
		t.Fatal("hit forests diverged structurally")
	}
}

func TestCacheKeyCanonicalisation(t *testing.T) {
	p := pattern.MustParse(`/temp/$V -> $V`)
	k1, ok1 := Key("GetTemp", paris(), nil)
	k2, ok2 := Key("GetTemp", paris(), nil)
	k3, _ := Key("GetTemp", []*tree.Node{tree.NewText("Oslo")}, nil)
	k4, _ := Key("GetTemp", paris(), p)
	k5, _ := Key("GetRain", paris(), nil)
	if !ok1 || !ok2 {
		t.Fatal("serialisable params must produce a key")
	}
	if k1 != k2 {
		t.Fatal("identical invocations must share a key")
	}
	for name, other := range map[string]string{"params": k3, "pushed": k4, "service": k5} {
		if other == k1 {
			t.Fatalf("key ignores the %s component", name)
		}
	}
	// Structurally identical parameter trees share a key wherever the
	// nodes came from.
	e1 := tree.NewElement("city")
	e1.Append(tree.NewText("Paris"))
	e2 := tree.NewElement("city")
	e2.Append(tree.NewText("Paris"))
	ka, _ := Key("GetTemp", []*tree.Node{e1}, nil)
	kb, _ := Key("GetTemp", []*tree.Node{e2}, nil)
	if ka != kb {
		t.Fatal("structurally equal params must share a key")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	base, calls := cacheWorld(0)
	c := NewCache(CacheSpec{TTL: time.Minute, Now: func() time.Time { return now }})
	reg := c.Wrap(base)

	reg.Invoke("GetTemp", paris(), nil)
	now = now.Add(30 * time.Second)
	reg.Invoke("GetTemp", paris(), nil) // still fresh
	if *calls != 1 {
		t.Fatalf("fresh entry re-fetched: %d handler calls", *calls)
	}
	now = now.Add(31 * time.Second) // 61s past storage
	reg.Invoke("GetTemp", paris(), nil)
	if *calls != 2 {
		t.Fatalf("expired entry served: %d handler calls, want 2", *calls)
	}
	if st := c.Stats(); st.Expired != 1 || st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want expired=1 misses=2 hits=1", st)
	}
}

// TestCacheTTLExpiryOnVirtualClock wires the engine's clock into the
// cache the way axmlquery does (CacheSpec.Now = ClockNow(clock)): TTLs
// then lapse as simulated rounds accumulate, with no wall time passing.
func TestCacheTTLExpiryOnVirtualClock(t *testing.T) {
	clock := &SimClock{}
	base, calls := cacheWorld(0)
	c := NewCache(CacheSpec{TTL: time.Minute, Now: ClockNow(clock)})
	reg := c.Wrap(base)

	reg.Invoke("GetTemp", paris(), nil)
	clock.Advance(30 * time.Second)
	reg.Invoke("GetTemp", paris(), nil) // still fresh on the virtual timeline
	if *calls != 1 {
		t.Fatalf("fresh entry re-fetched: %d handler calls", *calls)
	}
	clock.Advance(31 * time.Second) // 61 virtual seconds past storage
	reg.Invoke("GetTemp", paris(), nil)
	if *calls != 2 {
		t.Fatalf("entry did not expire on the virtual clock: %d handler calls, want 2", *calls)
	}
	if st := c.Stats(); st.Expired != 1 || st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want expired=1 misses=2 hits=1", st)
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	base, calls := cacheWorld(0)
	c := NewCache(CacheSpec{MaxEntries: 2})
	reg := c.Wrap(base)

	for _, city := range []string{"Paris", "Oslo", "Rome"} {
		reg.Invoke("GetTemp", []*tree.Node{tree.NewText(city)}, nil)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// Paris was first in, so it went first out.
	reg.Invoke("GetTemp", paris(), nil)
	if *calls != 4 {
		t.Fatalf("evicted Paris should re-fetch: %d handler calls, want 4", *calls)
	}
	// Oslo and Rome survive.
	reg.Invoke("GetTemp", []*tree.Node{tree.NewText("Rome")}, nil)
	if *calls != 4 {
		t.Fatalf("Rome should still be cached: %d handler calls", *calls)
	}
}

// TestCacheSingleflight fires many identical concurrent invocations while
// the first one is deliberately stalled inside the handler: exactly one
// handler execution serves everybody.
func TestCacheSingleflight(t *testing.T) {
	const followers = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	count := 0

	reg := NewRegistry()
	reg.Register(&Service{
		Name: "Slow",
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			count++
			close(entered)
			<-release
			return []*tree.Node{tree.NewText("v")}, nil
		},
	})
	c := NewCache(CacheSpec{})
	cached := c.Wrap(reg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cached.Invoke("Slow", nil, nil)
	}()
	<-entered // the leader is now stalled inside the handler
	results := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cached.Invoke("Slow", nil, nil)
			results <- err
		}()
	}
	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("follower failed: %v", err)
		}
	}
	if count != 1 {
		t.Fatalf("handler ran %d times under identical concurrent load, want 1", count)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != followers {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, followers)
	}
}

// TestCacheNeverStoresFaults layers the cache over the fault injector the
// way the engine does — cache.Wrap(faults.Wrap(base)) — and checks a
// retrying caller sees every failure it would see uncached, with only the
// eventual success stored.
func TestCacheNeverStoresFaults(t *testing.T) {
	base, handlerCalls := cacheWorld(10 * time.Millisecond)
	faults := NewFaults(FaultSpec{FailFirst: 2})
	c := NewCache(CacheSpec{})
	reg := c.Wrap(faults.Wrap(base))

	for attempt := 1; attempt <= 2; attempt++ {
		_, err := reg.Invoke("GetTemp", paris(), nil)
		if err == nil {
			t.Fatalf("attempt %d: fault swallowed by the cache", attempt)
		}
		if !Retryable(err) {
			t.Fatalf("attempt %d: injected transient fault lost its class: %v", attempt, err)
		}
		if c.Len() != 0 {
			t.Fatalf("attempt %d: a failure was cached", attempt)
		}
	}
	if _, err := reg.Invoke("GetTemp", paris(), nil); err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
	if _, err := reg.Invoke("GetTemp", paris(), nil); err != nil {
		t.Fatal(err)
	}
	if *handlerCalls != 1 {
		t.Fatalf("handler ran %d times, want 1 (two faulted attempts never reached it)", *handlerCalls)
	}
	if got := faults.Stats().Invocations; got != 3 {
		t.Fatalf("injector saw %d invocations, want 3 (the fourth was a cache hit)", got)
	}
	if st := c.Stats(); st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want misses=3 hits=1", st)
	}
}

// TestCacheCoalescedWaitersShareFault: callers coalesced onto a failing
// leader receive the leader's fault, and nothing is stored.
func TestCacheCoalescedWaitersShareFault(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	reg := NewRegistry()
	first := true
	reg.Register(&Service{
		Name: "Flaky",
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			if first {
				first = false
				close(entered)
				<-release
				return nil, &Fault{Service: "Flaky", Class: Transient, Msg: "boom"}
			}
			return []*tree.Node{tree.NewText("ok")}, nil
		},
	})
	c := NewCache(CacheSpec{})
	cached := c.Wrap(reg)

	leaderErr := make(chan error, 1)
	go func() {
		_, err := cached.Invoke("Flaky", nil, nil)
		leaderErr <- err
	}()
	<-entered
	followerErr := make(chan error, 1)
	go func() {
		_, err := cached.Invoke("Flaky", nil, nil)
		followerErr <- err
	}()
	// Give the follower a moment to coalesce, then let the leader fail.
	// If it arrives late it becomes a fresh leader and succeeds — both
	// schedules are legal; only the leader's fault must not be cached.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-leaderErr; err == nil || !Retryable(err) {
		t.Fatalf("leader error = %v, want transient fault", err)
	}
	err := <-followerErr
	st := c.Stats()
	if st.Coalesced > 0 {
		// The follower shared the leader's wire, so it shares the fault.
		if err == nil || !Retryable(err) {
			t.Fatalf("coalesced follower error = %v, want the leader's transient fault", err)
		}
		if c.Len() != 0 {
			t.Fatal("a shared fault was cached")
		}
	} else if err != nil {
		t.Fatalf("independent follower should have succeeded: %v", err)
	}
}

// TestCachePushedInvocations: a pushed invocation is cached under its
// query fingerprint; the plain invocation of the same service is a
// distinct entry.
func TestCachePushedInvocations(t *testing.T) {
	handlerCalls := 0
	reg := NewRegistry()
	reg.Register(&Service{
		Name:    "List",
		CanPush: true,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			handlerCalls++
			e := tree.NewElement("entry")
			e.Append(tree.NewElement("name")).Append(tree.NewText("x"))
			return []*tree.Node{e}, nil
		},
	})
	c := NewCache(CacheSpec{})
	cached := c.Wrap(reg)
	q := pattern.MustParse(`/entry/name/$V -> $V`)

	p1, err := cached.Invoke("List", nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Pushed {
		t.Fatal("push capability lost through the cache wrapper")
	}
	p2, _ := cached.Invoke("List", nil, q)
	if !p2.Pushed || handlerCalls != 1 {
		t.Fatalf("pushed hit broken: pushed=%v handlerCalls=%d", p2.Pushed, handlerCalls)
	}
	plain, _ := cached.Invoke("List", nil, nil)
	if plain.Pushed || handlerCalls != 2 {
		t.Fatalf("plain call must miss separately: pushed=%v handlerCalls=%d", plain.Pushed, handlerCalls)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2 (pushed and plain)", c.Len())
	}
}

// TestCacheResetDropsEntries: Reset empties the table and zeroes counters.
func TestCacheResetDropsEntries(t *testing.T) {
	base, calls := cacheWorld(0)
	c := NewCache(CacheSpec{})
	reg := c.Wrap(base)
	for i := 0; i < 3; i++ {
		reg.Invoke("GetTemp", paris(), nil)
	}
	if *calls != 1 {
		t.Fatalf("handler calls = %d, want 1", *calls)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left entries behind")
	}
	reg.Invoke("GetTemp", paris(), nil)
	if *calls != 2 {
		t.Fatalf("post-Reset invoke should miss: handler calls = %d", *calls)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("post-Reset stats = %+v, want a single miss", st)
	}
}

// TestCacheKeysSorted: Keys is deterministic for tooling.
func TestCacheKeysSorted(t *testing.T) {
	base, _ := cacheWorld(0)
	c := NewCache(CacheSpec{})
	reg := c.Wrap(base)
	for _, city := range []string{"Rome", "Paris", "Oslo"} {
		reg.Invoke("GetTemp", []*tree.Node{tree.NewText(city)}, nil)
	}
	ks := c.Keys()
	if len(ks) != 3 {
		t.Fatalf("got %d keys, want 3", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("keys not sorted at %d", i)
		}
	}
}

// TestCacheUnknownServicePassthrough: wrapping preserves the unknown-
// service error path.
func TestCacheUnknownServicePassthrough(t *testing.T) {
	base, _ := cacheWorld(0)
	reg := NewCache(CacheSpec{}).Wrap(base)
	if _, err := reg.Invoke("Nope", nil, nil); err == nil {
		t.Fatal("unknown service must error through the cache")
	}
	var f *Fault
	if _, err := reg.Invoke("Nope", nil, nil); errors.As(err, &f) {
		t.Fatalf("unknown service error should not be a classified fault: %v", err)
	}
}

// TestCacheStatsHitRateZero guards the divide-by-zero edge.
func TestCacheStatsHitRateZero(t *testing.T) {
	if hr := (CacheStats{}).HitRate(); hr != 0 {
		t.Fatalf("empty hit rate = %v, want 0", hr)
	}
}

// TestCacheConcurrentMixedKeys hammers the cache from many goroutines
// across several keys; run under -race this is the cache's concurrency
// proof.
func TestCacheConcurrentMixedKeys(t *testing.T) {
	var handlerCalls atomic.Int64
	base := NewRegistry()
	base.Register(&Service{
		Name: "GetTemp",
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			handlerCalls.Add(1)
			return []*tree.Node{tree.NewText(params[0].Text())}, nil
		},
	})
	c := NewCache(CacheSpec{MaxEntries: 2})
	reg := c.Wrap(base)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				city := fmt.Sprintf("city-%d", (g+i)%4)
				if _, err := reg.Invoke("GetTemp", []*tree.Node{tree.NewText(city)}, nil); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 2 {
		t.Fatalf("MaxEntries violated: %d entries", c.Len())
	}
}

// TestCacheFaultsConcurrent hammers the engine's production layering —
// cache.Wrap(faults.Wrap(base)) — from many goroutines with retries, the
// load shape a bounded invocation pool produces. Under -race this proves
// the singleflight dedup and the deterministic injector share no unsynced
// state; semantically, every goroutine must eventually succeed (the
// injector faults periodically, so one retry loop outlasts it) and
// failures must never be cached.
func TestCacheFaultsConcurrent(t *testing.T) {
	var handlerCalls atomic.Int64
	base := NewRegistry()
	base.Register(&Service{
		Name: "GetTemp",
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			handlerCalls.Add(1)
			return []*tree.Node{tree.NewText(params[0].Text())}, nil
		},
	})
	faults := NewFaults(FaultSpec{Seed: 7, ErrorRate: 0.3})
	c := NewCache(CacheSpec{})
	reg := c.Wrap(faults.Wrap(base))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				city := fmt.Sprintf("city-%d", (g*i)%5)
				var err error
				for attempt := 0; attempt < 25; attempt++ {
					if _, err = reg.Invoke("GetTemp", []*tree.Node{tree.NewText(city)}, nil); err == nil {
						break
					}
					if !Retryable(err) {
						t.Errorf("injected fault lost its retryable class: %v", err)
						return
					}
				}
				if err != nil {
					t.Errorf("no success within 25 attempts: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 5 {
		t.Fatalf("cache holds %d entries, want at most the 5 distinct keys", c.Len())
	}
}
