package service

import (
	"errors"
	"fmt"
	"time"
)

// ErrorClass partitions invocation errors by how a caller should react:
// the paper treats services as remote Web providers (Section 8), and
// remote providers fail in ways that differ in kind — a dropped
// connection is worth retrying, a type error in the request is not.
type ErrorClass uint8

const (
	// Permanent errors will recur on retry: unknown services, malformed
	// parameters, handler logic errors. The default class for errors
	// that carry no Fault.
	Permanent ErrorClass = iota
	// Transient errors are expected to clear on retry: dropped
	// connections, overloaded providers, injected flakiness.
	Transient
	// Timeout errors mean the provider stalled past a deadline. They
	// are retryable, but the caller has already paid the waiting time.
	Timeout
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseErrorClass reads a class name back; unknown names are Permanent,
// the conservative default (never retry what we cannot classify).
func ParseErrorClass(s string) ErrorClass {
	switch s {
	case "transient":
		return Transient
	case "timeout":
		return Timeout
	default:
		return Permanent
	}
}

// Fault is a classified invocation error. Producers (the fault injector,
// the soap transport, providers) attach one so callers can decide whether
// to retry and how much simulated time the failed attempt consumed.
type Fault struct {
	// Service is the invoked service name.
	Service string
	// Class drives the retry decision.
	Class ErrorClass
	// Latency is the virtual time the failed attempt consumed before
	// the error surfaced (a timeout fault's stall, a transient fault's
	// round trip). The engine charges it to its clock.
	Latency time.Duration
	// Msg describes the failure.
	Msg string
	// Err is an optional underlying cause.
	Err error
}

// Error implements error.
func (f *Fault) Error() string {
	msg := f.Msg
	if msg == "" && f.Err != nil {
		msg = f.Err.Error()
	}
	if f.Service == "" {
		return fmt.Sprintf("%s fault: %s", f.Class, msg)
	}
	return fmt.Sprintf("%s fault invoking %s: %s", f.Class, f.Service, msg)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// ClassOf extracts the error's class: the Fault's class when one is in
// the chain, Permanent otherwise. A nil error has no class; callers must
// not ask.
func ClassOf(err error) ErrorClass {
	var f *Fault
	if errors.As(err, &f) {
		return f.Class
	}
	return Permanent
}

// Retryable reports whether a retry may succeed.
func Retryable(err error) bool {
	c := ClassOf(err)
	return c == Transient || c == Timeout
}

// FaultLatency reports the virtual time a failed invocation consumed, or
// zero when the error carries no Fault.
func FaultLatency(err error) time.Duration {
	var f *Fault
	if errors.As(err, &f) {
		return f.Latency
	}
	return 0
}
