package service

import (
	"errors"
	"testing"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/tree"
)

// faultSequence replays n invocations of one service and records which
// fail and how.
func faultSequence(t *testing.T, f *Faults, reg *Registry, n int) []string {
	t.Helper()
	flaky := f.Wrap(reg)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		_, err := flaky.Invoke("getNearbyRestos", nil, nil)
		switch {
		case err == nil:
			out = append(out, "ok")
		default:
			out = append(out, ClassOf(err).String())
		}
	}
	return out
}

func TestFaultsDeterministic(t *testing.T) {
	spec := FaultSpec{Seed: 7, ErrorRate: 0.3, TimeoutRate: 0.1, PermanentRate: 0.05}
	a := faultSequence(t, NewFaults(spec), registryWithRestos(false), 200)
	b := faultSequence(t, NewFaults(spec), registryWithRestos(false), 200)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("invocation %d: %s vs %s — injector not deterministic", i, a[i], b[i])
		}
		if a[i] != "ok" {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("degenerate fault sequence: %d/%d failures", fails, len(a))
	}
	other := faultSequence(t, NewFaults(FaultSpec{Seed: 8, ErrorRate: 0.3, TimeoutRate: 0.1, PermanentRate: 0.05}),
		registryWithRestos(false), 200)
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultsFailFirstThenSucceed(t *testing.T) {
	f := NewFaults(FaultSpec{Seed: 1, FailFirst: 3})
	got := faultSequence(t, f, registryWithRestos(false), 6)
	want := []string{"transient", "transient", "transient", "ok", "ok", "ok"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("invocation %d = %s, want %s (sequence %v)", i, got[i], want[i], got)
		}
	}
	st := f.Stats()
	if st.Transient != 3 || st.Injected() != 3 || st.Invocations != 6 {
		t.Fatalf("stats = %+v", st)
	}
	f.Reset()
	if got := faultSequence(t, f, registryWithRestos(false), 1); got[0] != "transient" {
		t.Fatalf("after Reset the warm-up failures should replay, got %v", got)
	}
}

func TestFaultsClassesAndLatencies(t *testing.T) {
	reg := registryWithRestos(false)
	flaky := NewFaults(FaultSpec{Seed: 3, TimeoutRate: 1}).Wrap(reg)
	_, err := flaky.Invoke("getNearbyRestos", nil, nil)
	if ClassOf(err) != Timeout || !Retryable(err) {
		t.Fatalf("timeout fault misclassified: %v", err)
	}
	// Default stall is 10× the service's 50ms latency.
	if got := FaultLatency(err); got != 500*time.Millisecond {
		t.Fatalf("stall latency = %v", got)
	}

	flaky = NewFaults(FaultSpec{Seed: 3, PermanentRate: 1}).Wrap(reg)
	_, err = flaky.Invoke("getNearbyRestos", nil, nil)
	if ClassOf(err) != Permanent || Retryable(err) {
		t.Fatalf("permanent fault misclassified: %v", err)
	}
	var fault *Fault
	if !errors.As(err, &fault) || fault.Service != "getNearbyRestos" {
		t.Fatalf("fault not in error chain: %v", err)
	}
}

func TestFaultsTargetsOnlyNamedServices(t *testing.T) {
	reg := registryWithRestos(false)
	reg.Register(&Service{Name: "stable", Latency: time.Millisecond,
		Handler: func([]*tree.Node) ([]*tree.Node, error) { return nil, nil }})
	flaky := NewFaults(FaultSpec{Seed: 5, ErrorRate: 1, Services: []string{"getNearbyRestos"}}).Wrap(reg)
	if _, err := flaky.Invoke("getNearbyRestos", nil, nil); !Retryable(err) {
		t.Fatalf("targeted service did not fault: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := flaky.Invoke("stable", nil, nil); err != nil {
			t.Fatalf("untargeted service faulted: %v", err)
		}
	}
}

func TestFaultsWrapPreservesCapabilities(t *testing.T) {
	reg := registryWithRestos(true)
	flaky := NewFaults(FaultSpec{Seed: 9}).Wrap(reg)
	svc := flaky.Lookup("getNearbyRestos")
	if svc == nil || !svc.CanPush || svc.Latency != 50*time.Millisecond {
		t.Fatalf("wrapped service lost capabilities: %+v", svc)
	}
	q := pattern.MustParse(`/restaurant[rating="*****"][name=$X] -> $X`)
	resp, err := flaky.Invoke("getNearbyRestos", nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pushed {
		t.Fatal("push capability not forwarded through the injector")
	}
}
