package service

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// CacheSpec configures a response memo cache.
type CacheSpec struct {
	// TTL bounds how long a stored response stays servable; 0 means
	// forever. AXML service results are quasi-static between evaluations
	// (the paper's repositories re-fetch on a validity horizon), so the
	// default is aggressive reuse; deployments fronting live providers
	// set a TTL.
	TTL time.Duration
	// MaxEntries bounds the number of cached responses; 0 means
	// unbounded. Eviction is FIFO — the workload repeats identical calls
	// in bursts, so recency tracking buys little over insertion order.
	MaxEntries int
	// Now overrides the time source for TTL decisions; nil means
	// time.Now. Tests use it to age entries deterministically.
	Now func() time.Time
}

// CacheStats counts what a cache did.
type CacheStats struct {
	// Hits counts invocations served from the cache without touching the
	// wrapped registry — no latency, no transfer, no fault exposure.
	Hits int
	// Misses counts invocations that went through to the wrapped
	// registry (successful ones are then stored).
	Misses int
	// Coalesced counts invocations that piggybacked on an identical
	// in-flight call instead of issuing their own (singleflight).
	Coalesced int
	// Expired counts entries dropped because their TTL lapsed.
	Expired int
	// Evictions counts entries dropped to respect MaxEntries.
	Evictions int
}

// HitRate returns the fraction of lookups served locally (hits plus
// coalesced waits over all lookups), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Coalesced + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Cache memoises successful service responses keyed by (service name,
// canonical parameter forest, pushed-subquery fingerprint), with
// singleflight deduplication of identical concurrent invocations. AXML
// documents repeat calls — the same GetTemp("Paris") embedded at many
// nodes — and every repeat served from the cache skips the entire
// latency/retry path.
//
// Layering (it wraps a Registry exactly like Faults does):
//
//	reg := cache.Wrap(faults.Wrap(base))
//
// puts the cache next to the engine: a hit bypasses fault injection and
// network cost, a miss runs the full flaky path, and only *successful*
// classed responses are ever stored — a fault is never cached, so the
// engine's RetryPolicy sees every failure it would see uncached, and a
// best-effort evaluation can never be fed a remembered failure (or mask a
// fresh one) by the cache. Under singleflight, callers coalesced onto a
// failing invocation all receive that invocation's fault, exactly as if
// they had shared the wire.
//
// Cache is safe for concurrent use. The off switch is wiring: evaluate
// against the unwrapped registry (cmd flags expose this as -no-cache).
type Cache struct {
	spec CacheSpec

	mu       sync.Mutex
	entries  map[string]*cacheEntry
	order    []string // insertion order, for FIFO eviction
	inflight map[string]*flight
	stats    CacheStats
	met      cacheMetrics
	onEvent  func(service string, event CacheEvent)
}

// CacheEvent classifies one cache lookup outcome for observers.
type CacheEvent int

// Cache lookup outcomes reported to Notify observers.
const (
	CacheHit CacheEvent = iota
	CacheMiss
	CacheCoalesce
)

// cacheMetrics mirrors CacheStats into a telemetry registry, plus a live
// entry-count gauge. All fields are nil until Instrument is called; nil
// instruments swallow updates.
type cacheMetrics struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	coalesced   *telemetry.Counter
	evictions   *telemetry.Counter
	expirations *telemetry.Counter
	entries     *telemetry.Gauge
}

type cacheEntry struct {
	resp     Response // master copy; every hit returns a clone
	storedAt time.Time
}

// flight is one in-progress invocation other callers may wait on.
type flight struct {
	done chan struct{}
	err  error
}

// NewCache returns an empty cache.
func NewCache(spec CacheSpec) *Cache {
	return &Cache{
		spec:     spec,
		entries:  map[string]*cacheEntry{},
		inflight: map[string]*flight{},
	}
}

// Instrument routes the cache's counters through a telemetry registry in
// addition to CacheStats: axml_cache_{hits,misses,coalesced,evictions,
// expirations}_total plus the axml_cache_entries gauge. Call it before
// the cache serves traffic; a nil registry is a no-op.
func (c *Cache) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = cacheMetrics{
		hits:        reg.Counter(telemetry.MetricCacheHits),
		misses:      reg.Counter(telemetry.MetricCacheMisses),
		coalesced:   reg.Counter(telemetry.MetricCacheCoalesced),
		evictions:   reg.Counter(telemetry.MetricCacheEvictions),
		expirations: reg.Counter(telemetry.MetricCacheExpirations),
		entries:     reg.Gauge(telemetry.MetricCacheEntries),
	}
	c.met.entries.Set(int64(len(c.entries)))
}

// Notify registers a per-lookup observer (the service profiler feeds
// per-service hit rates from it). fn runs under the cache lock on every
// hit/miss/coalesce and must be fast and must not call back into the
// cache. Call it before the cache serves traffic.
func (c *Cache) Notify(fn func(service string, event CacheEvent)) {
	c.mu.Lock()
	c.onEvent = fn
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every entry and zeroes the counters. In-flight invocations
// are unaffected (their waiters still get the shared response; it is just
// not stored).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*cacheEntry{}
	c.order = nil
	c.stats = CacheStats{}
	c.met.entries.Set(0)
}

// Len returns the number of stored responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Wrap returns a registry proxying reg through the cache. The wrapped
// services advertise the same latency and push capability; their
// invocations consult the cache first and delegate to reg on a miss.
func (c *Cache) Wrap(reg *Registry) *Registry {
	out := NewRegistry()
	for _, name := range reg.Names() {
		inner := reg.Lookup(name)
		name := name
		canPush := inner.CanPush
		out.Register(&Service{
			Name:    name,
			Latency: inner.Latency,
			CanPush: canPush,
			RemoteCtx: func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
				if !canPush {
					pushed = nil
				}
				return c.invoke(ctx, reg, name, params, pushed)
			},
		})
	}
	return out
}

// Key renders the canonical cache identity of an invocation: the service
// name, each parameter tree's canonical serialisation, and the pushed
// subquery's fingerprint. Two calls with structurally identical parameters
// and the same pushed query share a key wherever they sit in the document.
// The bool is false when the parameters cannot be serialised; such calls
// bypass the cache.
func Key(name string, params []*tree.Node, pushed *pattern.Pattern) (string, bool) {
	size := len(name) + 2
	rendered := make([][]byte, len(params))
	for i, p := range params {
		b, err := tree.Marshal(p)
		if err != nil {
			return "", false
		}
		rendered[i] = b
		size += len(b) + 1
	}
	var sb strings.Builder
	sb.Grow(size + 64)
	sb.WriteString(name)
	for _, b := range rendered {
		sb.WriteByte(0)
		sb.Write(b)
	}
	sb.WriteByte(0)
	if pushed != nil {
		sb.WriteString(pushed.String())
	}
	return sb.String(), true
}

func (c *Cache) now() time.Time {
	if c.spec.Now != nil {
		return c.spec.Now()
	}
	return time.Now()
}

func (c *Cache) invoke(ctx context.Context, reg *Registry, name string, params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
	key, ok := Key(name, params, pushed)
	if !ok {
		return reg.InvokeContext(ctx, name, params, pushed)
	}
	// Each invocation lands in exactly one of Hits, Coalesced or Misses:
	// a waiter that loops back to read the stored entry is already
	// counted as Coalesced and must not also count as a Hit.
	coalesced := false
	for {
		c.mu.Lock()
		if e := c.entries[key]; e != nil {
			if c.spec.TTL > 0 && c.now().Sub(e.storedAt) > c.spec.TTL {
				c.dropLocked(key)
				c.stats.Expired++
				c.met.expirations.Inc()
			} else {
				if !coalesced {
					c.stats.Hits++
					c.met.hits.Inc()
					if c.onEvent != nil {
						c.onEvent(name, CacheHit)
					}
				}
				resp := cloneResponse(e.resp)
				c.mu.Unlock()
				// A hit is served locally: nothing crosses the wire, so
				// it carries no latency and no transfer bytes.
				resp.Latency = 0
				resp.Bytes = 0
				return resp, nil
			}
		}
		if f := c.inflight[key]; f != nil {
			if !coalesced {
				coalesced = true
				c.stats.Coalesced++
				c.met.coalesced.Inc()
				if c.onEvent != nil {
					c.onEvent(name, CacheCoalesce)
				}
			}
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return Response{}, f.err
			}
			// The leader stored the response (success path); loop to
			// serve it from the table. If it was evicted in between, the
			// retry becomes a fresh leader — still correct, just rarer.
			continue
		}
		c.stats.Misses++
		c.met.misses.Inc()
		if c.onEvent != nil {
			c.onEvent(name, CacheMiss)
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		resp, err := reg.InvokeContext(ctx, name, params, pushed)
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			master := cloneResponse(resp)
			// The master must not remember the remote span subtree: a
			// replayed response did no remote work, and every hit must
			// serve identical bytes regardless of which call populated
			// the entry.
			master.RemoteTrace = nil
			c.storeLocked(key, master)
		}
		c.mu.Unlock()
		f.err = err
		close(f.done)
		if err != nil {
			return Response{}, err
		}
		return resp, nil
	}
}

// storeLocked inserts a master copy and enforces MaxEntries FIFO.
func (c *Cache) storeLocked(key string, resp Response) {
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = &cacheEntry{resp: resp, storedAt: c.now()}
	for c.spec.MaxEntries > 0 && len(c.entries) > c.spec.MaxEntries {
		oldest := c.order[0]
		c.dropLocked(oldest)
		c.stats.Evictions++
		c.met.evictions.Inc()
	}
	c.met.entries.Set(int64(len(c.entries)))
}

// dropLocked removes one key from the table and the FIFO order.
func (c *Cache) dropLocked(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.met.entries.Set(int64(len(c.entries)))
}

// cloneResponse deep-copies the forest so that callers can splice their
// copy into a document (which mutates parents and assigns IDs) without
// corrupting the cached master.
func cloneResponse(r Response) Response {
	out := r
	out.Forest = make([]*tree.Node, len(r.Forest))
	for i, n := range r.Forest {
		out.Forest[i] = n.Clone()
	}
	return out
}

// Keys returns the stored keys, sorted, for tests and tooling.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
