package service

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/tree"
)

func restaurants() []*tree.Node {
	mk := func(name, addr, rating string) *tree.Node {
		r := tree.NewElement("restaurant")
		r.Append(tree.NewElement("name")).Append(tree.NewText(name))
		r.Append(tree.NewElement("address")).Append(tree.NewText(addr))
		r.Append(tree.NewElement("rating")).Append(tree.NewText(rating))
		return r
	}
	return []*tree.Node{
		mk("In Delis", "2nd Ave.", "*****"),
		mk("Jo", "2nd Ave.", "***"),
		mk("The Capital", "2nd Ave.", "*****"),
	}
}

func registryWithRestos(canPush bool) *Registry {
	r := NewRegistry()
	r.Register(&Service{
		Name:    "getNearbyRestos",
		Latency: 50 * time.Millisecond,
		CanPush: canPush,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			return restaurants(), nil
		},
	})
	return r
}

func TestInvokeFullResult(t *testing.T) {
	r := registryWithRestos(false)
	resp, err := r.Invoke("getNearbyRestos", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Forest) != 3 || resp.Pushed {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Bytes <= 0 {
		t.Fatal("transfer bytes not accounted")
	}
	if resp.Latency != 50*time.Millisecond {
		t.Fatalf("latency = %v", resp.Latency)
	}
	st := r.Stats()
	if st.Invocations != 1 || st.Bytes != int64(resp.Bytes) || st.PushedInvocations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvokePushed(t *testing.T) {
	r := registryWithRestos(true)
	pushed := pattern.MustParse(`/restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`)
	resp, err := r.Invoke("getNearbyRestos", nil, pushed)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pushed || len(resp.Forest) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	tu := resp.Forest[0]
	if tu.Kind != tree.Tuples || tu.PushedQuery != pushed.String() {
		t.Fatalf("tuples node = %+v", tu)
	}
	if len(tu.PushedBindings) != 2 {
		t.Fatalf("bindings = %v", tu.PushedBindings)
	}
	names := map[string]bool{}
	for _, b := range tu.PushedBindings {
		names[b["X"]] = true
	}
	if !names["In Delis"] || !names["The Capital"] {
		t.Fatalf("wrong bindings: %v", tu.PushedBindings)
	}
	if r.Stats().PushedInvocations != 1 {
		t.Fatal("pushed invocation not counted")
	}
}

func TestPushReducesTransfer(t *testing.T) {
	// The point of Section 7: tuples are much smaller than the full
	// result when selectivity is low.
	full := registryWithRestos(false)
	push := registryWithRestos(true)
	pushed := pattern.MustParse(`/restaurant[rating="*****"][name=$X] -> $X`)
	rf, err := full.Invoke("getNearbyRestos", nil, pushed) // ignored: CanPush=false
	if err != nil {
		t.Fatal(err)
	}
	if rf.Pushed {
		t.Fatal("non-push service applied the query")
	}
	rp, err := push.Invoke("getNearbyRestos", nil, pushed)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Bytes >= rf.Bytes {
		t.Fatalf("push did not reduce transfer: %d vs %d", rp.Bytes, rf.Bytes)
	}
}

func TestInvokeErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Invoke("ghost", nil, nil); err == nil {
		t.Fatal("unknown service must fail")
	}
	r.Register(&Service{Name: "boom", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return nil, errors.New("backend down")
	}})
	if _, err := r.Invoke("boom", nil, nil); err == nil || !strings.Contains(err.Error(), "backend down") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"nil handler": func() { r.Register(&Service{Name: "x"}) },
		"duplicate": func() {
			h := func([]*tree.Node) ([]*tree.Node, error) { return nil, nil }
			r.Register(&Service{Name: "d", Handler: h})
			r.Register(&Service{Name: "d", Handler: h})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNamesAndLookup(t *testing.T) {
	r := registryWithRestos(false)
	h := func([]*tree.Node) ([]*tree.Node, error) { return nil, nil }
	r.Register(&Service{Name: "aaa", Handler: h})
	names := r.Names()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "getNearbyRestos" {
		t.Fatalf("Names = %v", names)
	}
	if r.Lookup("aaa") == nil || r.Lookup("zzz") != nil {
		t.Fatal("Lookup misbehaves")
	}
}

func TestResetStats(t *testing.T) {
	r := registryWithRestos(false)
	if _, err := r.Invoke("getNearbyRestos", nil, nil); err != nil {
		t.Fatal(err)
	}
	r.ResetStats()
	if st := r.Stats(); st.Invocations != 0 || st.Bytes != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestSimClockConcurrent(t *testing.T) {
	c := &SimClock{}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(time.Millisecond)
		}()
	}
	wg.Wait()
	if c.Elapsed() != 50*time.Millisecond {
		t.Fatalf("Elapsed = %v", c.Elapsed())
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock(true)
	c.Advance(2 * time.Millisecond)
	if c.Elapsed() < 2*time.Millisecond {
		t.Fatalf("wall clock did not sleep: %v", c.Elapsed())
	}
	// Non-sleeping wall clock still measures real time.
	c2 := NewWallClock(false)
	c2.Advance(time.Hour)
	if c2.Elapsed() > time.Minute {
		t.Fatal("non-sleeping wall clock slept")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	r := registryWithRestos(true)
	pushed := pattern.MustParse(`/restaurant[name=$X] -> $X`)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(push bool) {
			defer wg.Done()
			var p *pattern.Pattern
			if push {
				p = pushed
			}
			if _, err := r.Invoke("getNearbyRestos", nil, p); err != nil {
				t.Error(err)
			}
		}(i%2 == 0)
	}
	wg.Wait()
	st := r.Stats()
	if st.Invocations != 20 || st.PushedInvocations != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPushable(t *testing.T) {
	if !Pushable(pattern.MustParse(`/r[a=$X] -> $X`)) {
		t.Error("variable-result query must be pushable")
	}
	if Pushable(pattern.MustParse(`/r/a`)) {
		t.Error("node-result query must not be pushable")
	}
	if Pushable(pattern.MustParse(`/r[a=$X]/b! -> $X`)) {
		t.Error("mixed results must not be pushable")
	}
}

func TestSignatureOf(t *testing.T) {
	s := schema.MustParse("functions:\n  f = [in: data, out: data]")
	if _, ok := SignatureOf(s, "f"); !ok {
		t.Error("declared signature not found")
	}
	if _, ok := SignatureOf(s, "g"); ok {
		t.Error("undeclared signature found")
	}
}

func TestRemoteService(t *testing.T) {
	r := NewRegistry()
	var gotPushed *pattern.Pattern
	r.Register(&Service{
		Name:    "remote",
		CanPush: true,
		Remote: func(params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
			gotPushed = pushed
			return Response{
				Forest: []*tree.Node{tree.NewText("ok")},
				Bytes:  42,
				Pushed: pushed != nil,
			}, nil
		},
	})
	p := pattern.MustParse(`/r[a=$X] -> $X`)
	resp, err := r.Invoke("remote", nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pushed || resp.Bytes != 42 || gotPushed != p {
		t.Fatalf("remote delegation broken: %+v", resp)
	}
	st := r.Stats()
	if st.Invocations != 1 || st.Bytes != 42 || st.PushedInvocations != 1 {
		t.Fatalf("remote stats = %+v", st)
	}
}

func TestRemoteServiceError(t *testing.T) {
	r := NewRegistry()
	r.Register(&Service{
		Name: "down",
		Remote: func([]*tree.Node, *pattern.Pattern) (Response, error) {
			return Response{}, errors.New("unreachable")
		},
	})
	if _, err := r.Invoke("down", nil, nil); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v", err)
	}
	if st := r.Stats(); st.Invocations != 0 {
		t.Fatalf("failed remote invocation counted: %+v", st)
	}
}

func TestPushIgnoredWhenNotCapable(t *testing.T) {
	r := registryWithRestos(false)
	p := pattern.MustParse(`/restaurant[name=$X] -> $X`)
	resp, err := r.Invoke("getNearbyRestos", nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Pushed || len(resp.Forest) != 3 {
		t.Fatalf("push applied by non-capable service: %+v", resp)
	}
}
