package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// FaultSpec configures deterministic fault injection. Probabilities are
// evaluated per invocation from a counter-derived stream, so the same
// seed and the same per-service invocation sequence produce the same
// faults — tests and benches can replay a flaky world exactly.
type FaultSpec struct {
	// Seed drives every random decision. Two injectors with equal specs
	// inject identical fault sequences.
	Seed int64
	// ErrorRate is the probability an invocation fails with a transient
	// fault.
	ErrorRate float64
	// TimeoutRate is the probability an invocation stalls: the fault is
	// Timeout-classed and consumes StallLatency of virtual time.
	TimeoutRate float64
	// PermanentRate is the probability an invocation fails with a
	// permanent (non-retryable) fault.
	PermanentRate float64
	// FailFirst makes the first N invocations of each service fail with
	// transient faults regardless of the rates — the classic
	// "fail-N-times-then-succeed" shape retry tests need.
	FailFirst int
	// LatencyJitter spreads successful invocations' latency uniformly
	// over ±LatencyJitter (clamped at zero).
	LatencyJitter time.Duration
	// StallLatency is the virtual cost of a timeout fault; 0 means ten
	// times the service's configured latency.
	StallLatency time.Duration
	// Services restricts injection to the named services; empty means
	// every service. Invocations of other services pass through
	// untouched (jitter included).
	Services []string
}

// FaultStats counts what an injector did.
type FaultStats struct {
	// Invocations counts calls that passed through the injector.
	Invocations int
	// Injected counts faults injected, by class.
	Transient, Timeouts, Permanents int
}

// Injected is the total number of injected faults.
func (s FaultStats) Injected() int { return s.Transient + s.Timeouts + s.Permanents }

// Faults is a deterministic fault injector wrapping a registry. Wrap
// returns a registry with identical service names and capabilities whose
// invocations fail, stall and jitter according to the spec. It is safe
// for concurrent use.
type Faults struct {
	spec    FaultSpec
	targets map[string]bool // nil means all services

	mu       sync.Mutex
	counts   map[string]uint64
	stats    FaultStats
	injected *telemetry.Counter // nil until Instrument; nil swallows updates
}

// NewFaults builds an injector for the spec.
func NewFaults(spec FaultSpec) *Faults {
	f := &Faults{spec: spec, counts: map[string]uint64{}}
	if len(spec.Services) > 0 {
		f.targets = map[string]bool{}
		for _, s := range spec.Services {
			f.targets[s] = true
		}
	}
	return f
}

// Instrument counts every injected fault on the registry's
// axml_faults_injected_total counter, in addition to FaultStats. A nil
// registry is a no-op.
func (f *Faults) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.injected = reg.Counter(telemetry.MetricFaultsInjected)
}

// Stats snapshots the injection counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Reset zeroes the per-service invocation counters and stats, replaying
// the fault sequence from the start.
func (f *Faults) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts = map[string]uint64{}
	f.stats = FaultStats{}
}

// Wrap returns a new registry proxying reg through the injector. The
// wrapped services advertise the same latency and push capability; their
// invocations consult the injector first and delegate to reg on success.
// Several registries may share one injector (one fault stream).
func (f *Faults) Wrap(reg *Registry) *Registry {
	out := NewRegistry()
	for _, name := range reg.Names() {
		inner := reg.Lookup(name)
		name := name
		canPush := inner.CanPush
		out.Register(&Service{
			Name:    name,
			Latency: inner.Latency,
			CanPush: canPush,
			RemoteCtx: func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
				if !canPush {
					pushed = nil
				}
				return f.invoke(ctx, reg, name, inner.Latency, params, pushed)
			},
		})
	}
	return out
}

func (f *Faults) invoke(ctx context.Context, reg *Registry, name string, latency time.Duration, params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
	n, targeted := f.next(name)
	rng := faultRand(f.spec.Seed, name, n)
	if targeted {
		if fault := f.decide(name, latency, n, &rng); fault != nil {
			f.count(fault.Class)
			return Response{}, fault
		}
	}
	resp, err := reg.InvokeContext(ctx, name, params, pushed)
	if err != nil {
		return Response{}, err
	}
	if targeted && f.spec.LatencyJitter > 0 {
		d := resp.Latency + time.Duration(rng.float()*2*float64(f.spec.LatencyJitter)) - f.spec.LatencyJitter
		if d < 0 {
			d = 0
		}
		resp.Latency = d
	}
	return resp, nil
}

// decide draws the fault (or nil) for the n-th invocation of a service.
func (f *Faults) decide(name string, latency time.Duration, n uint64, rng *splitmix) *Fault {
	if n < uint64(f.spec.FailFirst) {
		return &Fault{
			Service: name, Class: Transient, Latency: latency,
			Msg: fmt.Sprintf("injected: warm-up failure %d/%d", n+1, f.spec.FailFirst),
		}
	}
	draw := rng.float()
	switch {
	case draw < f.spec.TimeoutRate:
		stall := f.spec.StallLatency
		if stall == 0 {
			stall = 10 * latency
		}
		return &Fault{
			Service: name, Class: Timeout, Latency: stall,
			Msg: "injected: provider stalled",
		}
	case draw < f.spec.TimeoutRate+f.spec.ErrorRate:
		return &Fault{
			Service: name, Class: Transient, Latency: latency,
			Msg: "injected: provider error",
		}
	case draw < f.spec.TimeoutRate+f.spec.ErrorRate+f.spec.PermanentRate:
		return &Fault{
			Service: name, Class: Permanent, Latency: latency,
			Msg: "injected: unrecoverable provider error",
		}
	}
	return nil
}

// next reserves the invocation index for a service and reports whether
// the injector targets it.
func (f *Faults) next(name string) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.counts[name]
	f.counts[name] = n + 1
	f.stats.Invocations++
	return n, f.targets == nil || f.targets[name]
}

func (f *Faults) count(c ErrorClass) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.injected.Inc()
	switch c {
	case Transient:
		f.stats.Transient++
	case Timeout:
		f.stats.Timeouts++
	case Permanent:
		f.stats.Permanents++
	}
}

// splitmix is a tiny deterministic PRNG (splitmix64) seeded per
// (seed, service, invocation) so fault decisions do not depend on the
// interleaving of concurrent invocations of *different* services.
type splitmix struct{ state uint64 }

// faultRand derives the stream for one invocation.
func faultRand(seed int64, name string, n uint64) splitmix {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	return splitmix{state: h ^ (n+1)*0xbf58476d1ce4e5b9}
}

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float draws a uniform value in [0, 1).
func (r *splitmix) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
