// Package service implements the Web-service substrate the AXML engine
// invokes: a registry of named services with signatures, simulated
// latency, transfer accounting, and the query-pushing capability of
// Section 7 of "Lazy Query Evaluation for Active XML" (SIGMOD 2004).
//
// The paper's experiments run against remote Web services whose dominant
// cost is the call round-trip. To reproduce those cost shapes without
// wall-clock sleeps, invocations report a latency that the engine charges
// to a Clock: the SimClock accumulates virtual time (a parallel batch
// costs its maximum member, Section 4.4), while real HTTP deployments
// (package soap) incur genuine network time and use a WallClock.
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// Clock is the engine's notion of elapsed query-evaluation time.
type Clock interface {
	// Advance charges d to the clock.
	Advance(d time.Duration)
	// Elapsed returns the total charged so far.
	Elapsed() time.Duration
}

// SimClock is a virtual clock: Advance is free in wall-clock terms.
type SimClock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Advance implements Clock.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed implements Clock.
func (c *SimClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// WallClock measures real time from its creation; Advance additionally
// sleeps, so simulated latencies are physically observable. It is used by
// the HTTP examples, not by benchmarks.
type WallClock struct {
	start time.Time
	sleep bool
}

// NewWallClock returns a wall clock. When sleep is true, Advance blocks
// for the charged duration.
func NewWallClock(sleep bool) *WallClock {
	return &WallClock{start: time.Now(), sleep: sleep}
}

// Advance implements Clock.
func (c *WallClock) Advance(d time.Duration) {
	if c.sleep {
		time.Sleep(d)
	}
}

// Elapsed implements Clock.
func (c *WallClock) Elapsed() time.Duration { return time.Since(c.start) }

// ClockNow adapts a Clock into the time source a CacheSpec expects, so
// cache TTLs age on the same (possibly virtual) timeline the engine
// charges invocation latencies to: under a SimClock, entries expire as
// simulated rounds accumulate, without any wall time passing. The
// returned instants are a fixed epoch plus the clock's elapsed time —
// only their differences are meaningful, which is all TTL aging reads.
func ClockNow(c Clock) func() time.Time {
	epoch := time.Now()
	return func() time.Time { return epoch.Add(c.Elapsed()) }
}

// Handler computes a service's full result forest from its parameter
// forest. Implementations must be safe for concurrent use and must return
// detached trees (no parents, zero IDs); the params are owned by the
// handler and may be inspected freely but not attached anywhere.
type Handler func(params []*tree.Node) ([]*tree.Node, error)

// Service is one registered Web service.
type Service struct {
	// Name is the service (function) name used in axml:call elements.
	Name string
	// Latency is the simulated round-trip cost of one invocation.
	Latency time.Duration
	// CanPush marks services able to evaluate a pushed subquery on their
	// result and return only binding tuples (Section 7). A push-capable
	// service must return *extensional* results (no embedded calls):
	// evaluating the subquery over a forest with unresolved calls would
	// silently drop the bindings those calls could produce. Services
	// whose results embed calls must leave CanPush false — the engine
	// then receives the full result and resolves the nested calls
	// itself. (In the ActiveXML peer-to-peer deployment the provider is
	// itself an AXML engine and can resolve its own intensional parts
	// before answering; the soap package's recursive push mode models
	// that.)
	CanPush bool
	// Handler produces the full result forest.
	Handler Handler
	// Remote, when set, replaces the local invocation path entirely:
	// parameters and the pushed query travel to a remote provider (e.g.
	// over the soap package's HTTP envelope) and the response comes back
	// as-is, including transfer size and the provider's push decision.
	// Handler is ignored when Remote is set.
	Remote func(params []*tree.Node, pushed *pattern.Pattern) (Response, error)
	// RemoteCtx is Remote with a context: the context carries the
	// cross-process trace state (telemetry.TraceContext) and
	// cancellation. Wrappers that thread contexts (cache, faults,
	// session limits, the soap proxy) set RemoteCtx; it wins over Remote
	// when both are set.
	RemoteCtx func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (Response, error)
}

// Response is the outcome of one invocation.
type Response struct {
	// Forest is the returned forest: either the full service result or,
	// for a pushed invocation, a single Tuples node carrying the
	// bindings.
	Forest []*tree.Node
	// Bytes is the serialised size of Forest — what would travel over
	// the wire.
	Bytes int
	// Latency is the simulated cost of this invocation. The engine
	// charges it to its clock (sequential: sum; parallel batch: max).
	Latency time.Duration
	// Pushed reports whether the service applied the pushed subquery.
	Pushed bool
	// RemoteTrace holds the provider-side span subtree returned in the
	// response envelope when the caller opted into remote span return
	// (telemetry.TraceContext.MaxSpans > 0). The engine grafts it under
	// the local invoke span. Cache hits strip it — replayed responses
	// did no remote work.
	RemoteTrace []telemetry.Span
}

// Stats aggregates registry-level accounting.
type Stats struct {
	// Invocations counts calls served.
	Invocations int
	// Bytes counts the serialised result bytes returned.
	Bytes int64
	// PushedInvocations counts calls that applied a pushed subquery.
	PushedInvocations int
}

// Registry holds the available services. It is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	services map[string]*Service
	stats    Stats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: map[string]*Service{}}
}

// Register adds a service; it panics on duplicates or a service with
// neither Handler nor Remote, which are programming errors.
func (r *Registry) Register(s *Service) {
	if s.Handler == nil && s.Remote == nil && s.RemoteCtx == nil {
		panic("service: Register with neither Handler nor Remote")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[s.Name]; dup {
		panic(fmt.Sprintf("service: duplicate service %q", s.Name))
	}
	r.services[s.Name] = s
}

// Lookup returns the named service, or nil.
func (r *Registry) Lookup(name string) *Service {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.services[name]
}

// Names returns the registered service names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.services))
	for n := range r.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the accounting counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// ResetStats zeroes the accounting counters.
func (r *Registry) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}

// Invoke calls the named service with the given parameter forest. When
// pushed is non-nil and the service CanPush, the service evaluates the
// subquery over its full result and returns one Tuples node holding the
// bindings instead of the result itself; the Tuples node is tagged with
// pushed.String() so the evaluator can recognise it (Section 7). The
// pushed pattern must have only variable result nodes — the engine
// guarantees this.
func (r *Registry) Invoke(name string, params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
	return r.InvokeContext(context.Background(), name, params, pushed)
}

// InvokeContext is Invoke with a caller-supplied context. The context
// carries the cross-process trace state (telemetry.WithTrace) down
// through wrapper registries to the transport; local Handler services
// ignore it.
func (r *Registry) InvokeContext(ctx context.Context, name string, params []*tree.Node, pushed *pattern.Pattern) (Response, error) {
	svc := r.Lookup(name)
	if svc == nil {
		return Response{}, fmt.Errorf("service: unknown service %q", name)
	}
	if svc.Remote != nil || svc.RemoteCtx != nil {
		var resp Response
		var err error
		if svc.RemoteCtx != nil {
			resp, err = svc.RemoteCtx(ctx, params, pushed)
		} else {
			resp, err = svc.Remote(params, pushed)
		}
		if err != nil {
			return Response{}, fmt.Errorf("service %s: %w", name, err)
		}
		r.mu.Lock()
		r.stats.Invocations++
		r.stats.Bytes += int64(resp.Bytes)
		if resp.Pushed {
			r.stats.PushedInvocations++
		}
		r.mu.Unlock()
		return resp, nil
	}
	full, err := svc.Handler(params)
	if err != nil {
		return Response{}, fmt.Errorf("service %s: %w", name, err)
	}
	resp := Response{Forest: full, Latency: svc.Latency}
	if pushed != nil && svc.CanPush {
		resp.Forest = []*tree.Node{evalPushed(full, pushed)}
		resp.Pushed = true
	}
	for _, n := range resp.Forest {
		b, err := tree.Marshal(n)
		if err != nil {
			return Response{}, fmt.Errorf("service %s: marshal result: %w", name, err)
		}
		resp.Bytes += len(b)
	}
	r.mu.Lock()
	r.stats.Invocations++
	r.stats.Bytes += int64(resp.Bytes)
	if resp.Pushed {
		r.stats.PushedInvocations++
	}
	r.mu.Unlock()
	return resp, nil
}

// evalPushed runs the pushed subquery over the full result forest and
// packs the variable bindings into a Tuples node.
func evalPushed(full []*tree.Node, pushed *pattern.Pattern) *tree.Node {
	results, _ := pattern.EvalForest(full, pushed)
	bindings := make([]tree.Binding, 0, len(results))
	for _, res := range results {
		b := tree.Binding{}
		for k, v := range res.Values {
			b[k] = v
		}
		bindings = append(bindings, b)
	}
	return tree.NewTuples(pushed.String(), bindings)
}

// Pushable reports whether the engine may push this pattern: every result
// node must be a variable, since a binding tuple cannot carry document
// nodes (Section 7's output convention).
func Pushable(p *pattern.Pattern) bool {
	rs := p.ResultNodes()
	if len(rs) == 0 {
		return false
	}
	for _, n := range rs {
		if n.Kind != pattern.Var {
			return false
		}
	}
	return true
}

// SignatureOf returns the schema signature of a registered service, if the
// schema declares one. Pure convenience for tooling.
func SignatureOf(s *schema.Schema, name string) (schema.Signature, bool) {
	sig, ok := s.Functions[name]
	return sig, ok
}
