// Package rewrite generates the auxiliary queries that retrieve relevant
// service calls: the linear path queries (LPQs) of Section 3.1 and the
// node-focused queries (NFQs) of Section 3.2 of "Lazy Query Evaluation for
// Active XML" (SIGMOD 2004), including the type-refined variant of Section
// 5 and the relaxed variants of Section 6.1.
//
// Given a user query q, every non-anchor node v of q yields one relevance
// query: it retrieves the function nodes of the document sitting at
// positions where data matched by v could appear, under the condition that
// all the *other* constraints of q can still be satisfied — either by data
// already present or, optimistically, by some call that could produce it
// (the OR/() branches of Figure 5 of the paper).
package rewrite

import (
	"fmt"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/regex"
	"github.com/activexml/axml/internal/schema"
)

// NFQ is one generated relevance query, together with the metadata the
// sequencing machinery of Section 4 needs.
type NFQ struct {
	// For is the node v of the original query this NFQ was built for.
	For *pattern.Node
	// Query is the generated extended pattern (q_v in the paper).
	Query *pattern.Pattern
	// Out is the output function node f_v inside Query. The calls it
	// matches are the candidate relevant calls.
	Out *pattern.Node
	// Lin is the linear part lin_v: the path of the original query from
	// the root to v, v excluded (Section 4.2). It drives the influence
	// analysis and the independence condition.
	Lin []regex.PathStep
	// DescTail is set when v is reached through a descendant edge: the
	// calls this NFQ retrieves may then sit at any depth below a Lin
	// match, so the NFQ's *position language* is L(Lin)·σ*. The paper
	// states Proposition 3 over lin_v; the trailing closure is required
	// for the test to be sound for descendant-edge targets (a call
	// retrieved deep below the lin path produces data even deeper, which
	// the same or a sibling descendant NFQ can retrieve).
	DescTail bool
}

// String identifies the NFQ by its target node, for logs and tests.
func (n *NFQ) String() string {
	return fmt.Sprintf("NFQ(for=%s): %s", subLabel(n.For), n.Query)
}

// TargetLabel names the query node this NFQ targets, for traces.
func (n *NFQ) TargetLabel() string { return subLabel(n.For) }

func subLabel(v *pattern.Node) string {
	switch v.Kind {
	case pattern.Const:
		return v.Label
	case pattern.Var:
		return "$" + v.Label
	case pattern.Star:
		return "*"
	default:
		return fmt.Sprintf("node#%d", v.ID)
	}
}

// Options tunes query generation.
type Options struct {
	// Analyzer, when non-nil, produces the refined NFQs of Section 5:
	// OR branches list only the concrete functions whose output type can
	// satisfy the branch's subquery, drawn from Names. When nil, star
	// function branches are generated (untyped, Proposition 1).
	Analyzer *schema.Analyzer
	// Names are the service names known to occur in the document; the
	// refined OR branches are drawn from them. Ignored when Analyzer is
	// nil.
	Names []string
	// Done holds IDs of original query nodes whose document positions
	// can no longer hold function calls because their NFQ layer has been
	// fully processed (the simplification step of Section 4.3): their
	// OR/() branches are omitted.
	Done map[int]bool
	// RelaxJoins produces the relaxed NFQs of Section 6.1: variables are
	// replaced by stars, dropping value joins (the XPath approximation).
	RelaxJoins bool
}

// Validate checks that q is a plain user query: extended constructs (OR
// and function nodes) are produced by this package, not consumed by it.
func Validate(q *pattern.Pattern) error {
	for _, n := range q.Nodes() {
		switch n.Kind {
		case pattern.Or:
			return fmt.Errorf("rewrite: query contains an OR node; NFQs are generated from plain tree patterns")
		case pattern.Func:
			return fmt.Errorf("rewrite: query contains a function node; NFQs are generated from plain tree patterns")
		}
	}
	return nil
}

// BuildAll generates one NFQ per non-anchor node of q, in pre-order of
// the target nodes (the algorithm of Figure 5, applied at every node).
func BuildAll(q *pattern.Pattern, opt Options) ([]*NFQ, error) {
	if err := Validate(q); err != nil {
		return nil, err
	}
	var out []*NFQ
	for _, v := range q.Nodes() {
		if v.Kind == pattern.Root {
			continue
		}
		if opt.Done[v.ID] {
			continue
		}
		out = append(out, build(q, v, opt))
	}
	return out, nil
}

// Build generates the NFQ of a single node v of q.
func Build(q *pattern.Pattern, v *pattern.Node, opt Options) (*NFQ, error) {
	if err := Validate(q); err != nil {
		return nil, err
	}
	if v.Kind == pattern.Root {
		return nil, fmt.Errorf("rewrite: the anchor has no NFQ")
	}
	return build(q, v, opt), nil
}

func build(q *pattern.Pattern, v *pattern.Node, opt Options) *NFQ {
	onPath := map[*pattern.Node]bool{}
	for x := v.Parent; x != nil; x = x.Parent {
		onPath[x] = true
	}
	root := pattern.NewNode(pattern.Root, "", pattern.Child)
	var out *pattern.Node
	var transform func(n *pattern.Node, parent *pattern.Node)
	transform = func(n *pattern.Node, parent *pattern.Node) {
		switch {
		case n == v:
			// v is replaced by the output function node f_v.
			f := pattern.NewNode(pattern.Func, pattern.AnyFunc, n.Edge)
			f.Result = true
			parent.Add(f)
			out = f
		case onPath[n]:
			// Ancestors of the output must be data nodes: keep them
			// plain (the "redundant OR" simplification of Section 3.2).
			c := pattern.NewNode(n.Kind, n.Label, n.Edge)
			parent.Add(c)
			for _, ch := range n.Children {
				transform(ch, c)
			}
		default:
			// Off-path nodes may be provided either by data already in
			// the document or by a call that could produce it.
			data := pattern.NewNode(relaxKind(n.Kind, opt), relaxLabel(n, opt), n.Edge)
			for _, ch := range n.Children {
				transform(ch, data)
			}
			branches := funcBranches(q, n, opt)
			if len(branches) == 0 {
				parent.Add(data)
				return
			}
			or := pattern.NewNode(pattern.Or, "", n.Edge)
			or.Add(data)
			for _, b := range branches {
				or.Add(b)
			}
			parent.Add(or)
		}
	}
	for _, c := range q.Root().Children {
		transform(c, root)
	}
	nq := pattern.NewPattern(root)
	return &NFQ{For: v, Query: nq, Out: out, Lin: q.LinearSteps(v.Parent), DescTail: v.Edge == pattern.Desc}
}

// funcBranches returns the function-node alternatives for off-path node n:
// a single star function in the untyped case, or one named function node
// per known service whose output type satisfies sub_n in the refined case
// (Section 5). A node whose layer is done gets none (Section 4.3).
func funcBranches(q *pattern.Pattern, n *pattern.Node, opt Options) []*pattern.Node {
	if opt.Done[n.ID] {
		return nil
	}
	if opt.Analyzer == nil {
		return []*pattern.Node{pattern.NewNode(pattern.Func, pattern.AnyFunc, n.Edge)}
	}
	var out []*pattern.Node
	for _, name := range opt.Names {
		if opt.Analyzer.FunctionSatisfies(name, n) {
			out = append(out, pattern.NewNode(pattern.Func, name, n.Edge))
		}
	}
	return out
}

func relaxKind(k pattern.Kind, opt Options) pattern.Kind {
	if opt.RelaxJoins && k == pattern.Var {
		return pattern.Star
	}
	return k
}

func relaxLabel(n *pattern.Node, opt Options) string {
	if opt.RelaxJoins && n.Kind == pattern.Var {
		return ""
	}
	return n.Label
}

// SatisfiesOut reports whether a call to the named service can actually
// produce data matched by the subquery this NFQ stands for — the
// output-side pruning of Section 5. Untyped NFQs accept everything.
func (n *NFQ) SatisfiesOut(an *schema.Analyzer, service string) bool {
	if an == nil {
		return true
	}
	return an.FunctionSatisfies(service, n.For)
}

// LPQs builds the linear path queries of Section 3.1: for every non-anchor
// node v, the linear root-to-v path with v's step replaced by a star
// function node. Duplicates (nodes sharing a parent and an edge kind)
// are merged. The result is returned as NFQ values whose Query has no
// filtering branches; Lin is populated the same way as for NFQs, so the
// sequencing machinery applies unchanged (Section 6.1).
func LPQs(q *pattern.Pattern, opt Options) ([]*NFQ, error) {
	if err := Validate(q); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*NFQ
	for _, v := range q.Nodes() {
		if v.Kind == pattern.Root || opt.Done[v.ID] {
			continue
		}
		l := buildLPQ(q, v)
		key := l.Query.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, l)
	}
	return out, nil
}

// Minimize removes relevance queries whose *position language* is
// contained in another's: for union-style retrieval the subsumed query
// can never contribute a call its subsumer misses. This is the
// containment-based redundant-query elimination Section 4.1 of the paper
// points at, and it is only sound for condition-free queries (LPQs) —
// two NFQs with nested positions still filter by different conditions.
// Ties (equivalent languages) keep the earliest query.
func Minimize(lpqs []*NFQ) []*NFQ {
	type posLang struct {
		nfa  *regex.NFA
		dead bool
	}
	langs := make([]posLang, len(lpqs))
	for i, l := range lpqs {
		langs[i] = posLang{nfa: positionNFA(l)}
	}
	for i := range lpqs {
		if langs[i].dead {
			continue
		}
		for j := range lpqs {
			if i == j || langs[j].dead {
				continue
			}
			if regex.Subset(langs[i].nfa, langs[j].nfa) {
				// i ⊆ j. Drop i unless they are equivalent and i comes
				// first.
				if i < j && regex.Subset(langs[j].nfa, langs[i].nfa) {
					continue
				}
				langs[i].dead = true
				break
			}
		}
	}
	out := make([]*NFQ, 0, len(lpqs))
	for i, l := range lpqs {
		if !langs[i].dead {
			out = append(out, l)
		}
	}
	return out
}

// positionNFA compiles the language of parent paths under which the
// query retrieves calls: Lin, plus a trailing wildcard closure for
// descendant-edge targets.
func positionNFA(q *NFQ) *regex.NFA {
	parts := make([]regex.Expr, 0, 2*len(q.Lin)+1)
	for _, s := range q.Lin {
		if s.AnyDepth {
			parts = append(parts, regex.Star(regex.Sym(regex.Any)))
		}
		parts = append(parts, regex.Sym(s.Label))
	}
	if q.DescTail {
		parts = append(parts, regex.Star(regex.Sym(regex.Any)))
	}
	return regex.Compile(regex.Concat(parts...))
}

// LPQ builds the linear path query of a single node v of q.
func LPQ(q *pattern.Pattern, v *pattern.Node) (*NFQ, error) {
	if err := Validate(q); err != nil {
		return nil, err
	}
	if v.Kind == pattern.Root {
		return nil, fmt.Errorf("rewrite: the anchor has no LPQ")
	}
	return buildLPQ(q, v), nil
}

func buildLPQ(q *pattern.Pattern, v *pattern.Node) *NFQ {
	root := pattern.NewNode(pattern.Root, "", pattern.Child)
	cur := root
	var chain []*pattern.Node
	for x := v.Parent; x != nil && x.Kind != pattern.Root; x = x.Parent {
		chain = append(chain, x)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		kind, label := n.Kind, n.Label
		if kind == pattern.Var {
			kind, label = pattern.Star, ""
		}
		cur = cur.Add(pattern.NewNode(kind, label, n.Edge))
	}
	f := pattern.NewNode(pattern.Func, pattern.AnyFunc, v.Edge)
	f.Result = true
	cur.Add(f)
	return &NFQ{For: v, Query: pattern.NewPattern(root), Out: f, Lin: q.LinearSteps(v.Parent), DescTail: v.Edge == pattern.Desc}
}
