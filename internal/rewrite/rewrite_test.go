package rewrite

import (
	"sort"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/tree"
)

const figure4 = `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`

const figure2 = `
functions:
  getHotels        = [in: data, out: hotel*]
  getRating        = [in: data, out: data]
  getNearbyRestos  = [in: data, out: restaurant*]
  getNearbyMuseums = [in: data, out: museum*]
elements:
  hotels     = (hotel|getHotels)*
  hotel      = name.address.rating.nearby
  nearby     = (restaurant|getNearbyRestos)*.(museum|getNearbyMuseums)*
  restaurant = name.address.rating
  museum     = name.address
  name       = data
  address    = data
  rating     = data|getRating
`

// figure1 builds a document in the spirit of the paper's Figure 1, with
// named calls so tests can assert exactly which are retrieved:
//
//	hotel A "Best Western", rating *****:   a1 getNearbyRestos, a2 getNearbyMuseums
//	hotel B "Best Western", rating: b3 getRating; nearby: b4 getNearbyRestos, b5 getNearbyMuseums
//	hotel C "Pennsylvania",  rating: c8 getRating; nearby: c9 getNearbyRestos
//	hotel D "Best Western",  rating: d6 getRating; nearby: d7 getNearbyMuseums only
//	root-level: h10 getHotels
func figure1() (*tree.Document, map[string]*tree.Node) {
	calls := map[string]*tree.Node{}
	mkCall := func(key, svc, param string) *tree.Node {
		c := tree.NewCall(svc, tree.NewText(param))
		calls[key] = c
		return c
	}
	root := tree.NewElement("hotels")

	a := root.Append(tree.NewElement("hotel"))
	a.Append(tree.NewElement("name")).Append(tree.NewText("Best Western"))
	a.Append(tree.NewElement("address")).Append(tree.NewText("75, 2nd Av."))
	a.Append(tree.NewElement("rating")).Append(tree.NewText("*****"))
	an := a.Append(tree.NewElement("nearby"))
	an.Append(mkCall("a1", "getNearbyRestos", "75, 2nd Av."))
	an.Append(mkCall("a2", "getNearbyMuseums", "75, 2nd Av."))

	b := root.Append(tree.NewElement("hotel"))
	b.Append(tree.NewElement("name")).Append(tree.NewText("Best Western"))
	b.Append(tree.NewElement("address")).Append(tree.NewText("22 Madison Av."))
	b.Append(tree.NewElement("rating")).Append(mkCall("b3", "getRating", "Best Western Madison"))
	bn := b.Append(tree.NewElement("nearby"))
	bn.Append(mkCall("b4", "getNearbyRestos", "22 Madison Av."))
	bn.Append(mkCall("b5", "getNearbyMuseums", "22 Madison Av."))

	c := root.Append(tree.NewElement("hotel"))
	c.Append(tree.NewElement("name")).Append(tree.NewText("Pennsylvania"))
	c.Append(tree.NewElement("address")).Append(tree.NewText("13 Penn St."))
	c.Append(tree.NewElement("rating")).Append(mkCall("c8", "getRating", "Pennsylvania"))
	cn := c.Append(tree.NewElement("nearby"))
	cn.Append(mkCall("c9", "getNearbyRestos", "13 Penn St."))

	d := root.Append(tree.NewElement("hotel"))
	d.Append(tree.NewElement("name")).Append(tree.NewText("Best Western"))
	d.Append(tree.NewElement("address")).Append(tree.NewText("12 34th St. W"))
	d.Append(tree.NewElement("rating")).Append(mkCall("d6", "getRating", "Best Western 34th St."))
	dn := d.Append(tree.NewElement("nearby"))
	dn.Append(mkCall("d7", "getNearbyMuseums", "12 34th St. W"))

	root.Append(mkCall("h10", "getHotels", "NY"))
	return tree.NewDocument(root), calls
}

// retrieved evaluates all the given relevance queries on doc and returns
// the keys of the retrieved calls, sorted.
func retrieved(t *testing.T, doc *tree.Document, nfqs []*NFQ, calls map[string]*tree.Node, an *schema.Analyzer) []string {
	t.Helper()
	byNode := map[*tree.Node]string{}
	for k, n := range calls {
		byNode[n] = k
	}
	got := map[string]bool{}
	for _, nfq := range nfqs {
		for _, c := range pattern.MatchedCalls(doc, nfq.Query, nfq.Out) {
			if !nfq.SatisfiesOut(an, c.Label) {
				continue
			}
			key := byNode[c]
			if key == "" {
				t.Fatalf("retrieved an unknown call %s", c.Label)
			}
			got[key] = true
		}
	}
	var out []string
	for k := range got {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestNFQUntypedRelevance(t *testing.T) {
	doc, calls := figure1()
	q := pattern.MustParse(figure4)
	nfqs, err := BuildAll(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := retrieved(t, doc, nfqs, calls, nil)
	// Untyped (Proposition 1): everything that could position-wise and
	// condition-wise contribute, assuming functions return anything.
	// - a1, a2: hotel A qualifies on name+rating; its nearby calls could
	//   return 5-star restaurants (a2 only under the untyped assumption).
	// - b3, b4, b5: hotel B's rating may come from b3, restaurants from
	//   b4/b5 (untyped).
	// - d6, d7: hotel D's rating may come from d6, restaurants from d7
	//   (untyped: the museums call may return anything).
	// - h10: may return fresh qualifying hotels.
	// - c8, c9 are irrelevant even untyped: hotel C's name is data and
	//   cannot become "Best Western".
	want := []string{"a1", "a2", "b3", "b4", "b5", "d6", "d7", "h10"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("untyped relevant calls = %v, want %v", got, want)
	}
}

func TestNFQRefinedRelevance(t *testing.T) {
	doc, calls := figure1()
	q := pattern.MustParse(figure4)
	sch := schema.MustParse(figure2)
	an := schema.NewAnalyzer(sch, q, schema.Exact)
	names := sch.FunctionNames()
	nfqs, err := BuildAll(q, Options{Analyzer: an, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	got := retrieved(t, doc, nfqs, calls, an)
	// Section 5 refinement: museums calls cannot return restaurants
	// (a2, b5, d7 out); d6 goes too, because hotel D's nearby zone holds
	// only a museums call, so no 5-star restaurant can ever appear there.
	// This mirrors the paper's Section 2 discussion where the relevant
	// set is {1, 3, 4, 10}.
	want := []string{"a1", "b3", "b4", "h10"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("refined relevant calls = %v, want %v", got, want)
	}
}

func TestLPQRelevanceIsCoarser(t *testing.T) {
	doc, calls := figure1()
	q := pattern.MustParse(figure4)
	lpqs, err := LPQs(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := retrieved(t, doc, lpqs, calls, nil)
	// Section 3.1: LPQs only check positions, so even hotel C's calls
	// come back (the paper's "Pennsylvania" observation).
	want := []string{"a1", "a2", "b3", "b4", "b5", "c8", "c9", "d6", "d7", "h10"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("LPQ calls = %v, want %v", got, want)
	}
}

func TestLPQShapes(t *testing.T) {
	q := pattern.MustParse(figure4)
	lpqs, err := LPQs(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	forms := map[string]bool{}
	for _, l := range lpqs {
		forms[l.Query.String()] = true
	}
	// A few expected members of the family (Section 3.1's list).
	// Note: a call that is a direct child of nearby is retrieved by the
	// //() form, so no separate /hotels/hotel/nearby/()! query is needed
	// for completeness.
	for _, want := range []string{
		"/()!",
		"/hotels/()!",
		"/hotels/hotel/()!",
		"/hotels/hotel/rating/()!",
		"/hotels/hotel/nearby//()!",
		"/hotels/hotel/nearby//restaurant/()!",
		"/hotels/hotel/nearby//restaurant/rating/()!",
	} {
		if !forms[want] {
			t.Errorf("missing LPQ %s (have %v)", want, keys(forms))
		}
	}
	// Duplicates are merged: name and address children of restaurant
	// yield the same /…/restaurant/()! query.
	count := 0
	for f := range forms {
		if f == "/hotels/hotel/nearby//restaurant/()!" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("LPQ dedup failed")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestNFQShapeForRatingLeaf(t *testing.T) {
	// The NFQ for the hotel-rating value leaf (Figure 6(c)): the path
	// root→rating is plain, the output is a function child of rating,
	// and the sibling branches are OR'ed with ().
	q := pattern.MustParse(figure4)
	var leaf *pattern.Node
	for _, n := range q.Nodes() {
		if n.Kind == pattern.Const && n.Label == "*****" && n.Parent.Label == "rating" && n.Parent.Parent.Label == "hotel" {
			leaf = n
			break
		}
	}
	if leaf == nil {
		t.Fatal("rating leaf not found")
	}
	nfq, err := Build(q, leaf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := nfq.Query.String()
	if !strings.Contains(s, "/hotels/hotel") || !strings.Contains(s, "rating/()!") {
		t.Errorf("unexpected NFQ shape: %s", s)
	}
	// The name branch must be OR'ed with a star function, and its value
	// leaf too.
	if !strings.Contains(s, `(name[("Best Western"|())]|())`) {
		t.Errorf("name branch not OR'ed: %s", s)
	}
	// Linear part is /hotels/hotel/rating.
	if len(nfq.Lin) != 3 || nfq.Lin[2].Label != "rating" {
		t.Errorf("Lin = %v", nfq.Lin)
	}
}

func TestNFQOnPathNodesAreNotOred(t *testing.T) {
	q := pattern.MustParse(`/a/b/c`)
	var c *pattern.Node
	for _, n := range q.Nodes() {
		if n.Label == "c" {
			c = n
		}
	}
	nfq, err := Build(q, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nfq.Query.String(), "/a/b/()!"; got != want {
		t.Fatalf("NFQ = %q, want %q", got, want)
	}
}

func TestNFQDoneSimplification(t *testing.T) {
	q := pattern.MustParse(`/a[b]/c`)
	var b, c *pattern.Node
	for _, n := range q.Nodes() {
		switch n.Label {
		case "b":
			b = n
		case "c":
			c = n
		}
	}
	// Once b's layer is done, its OR/() branch disappears from c's NFQ.
	nfq, err := Build(q, c, Options{Done: map[int]bool{b.ID: true}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nfq.Query.String(), "/a[b]/()!"; got != want {
		t.Fatalf("simplified NFQ = %q, want %q", got, want)
	}
	// And BuildAll skips done nodes entirely.
	nfqs, err := BuildAll(q, Options{Done: map[int]bool{b.ID: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nfqs {
		if n.For == b {
			t.Fatal("BuildAll generated an NFQ for a done node")
		}
	}
}

func TestNFQRelaxJoins(t *testing.T) {
	// The joined values sit below b and c so that the output call (a
	// child of d) cannot optimistically stand in for them: embeddings
	// are homomorphisms, and a sibling call would otherwise satisfy any
	// OR/() branch at the same position.
	q := pattern.MustParse(`/a[b/x=$V][c/y=$V]/d/z`)
	var z *pattern.Node
	for _, n := range q.Nodes() {
		if n.Label == "z" {
			z = n
		}
	}
	nfq, err := Build(q, z, Options{RelaxJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(nfq.Query.String(), "$V") {
		t.Fatalf("relaxed NFQ still contains variables: %s", nfq.Query)
	}
	// x and y carry different values: the join fails on data, and no
	// call exists at the b, c, x or y positions to repair it.
	doc, _ := tree.Unmarshal([]byte(
		`<a><b><x>1</x></b><c><y>2</y></c><d><axml:call service="f"/></d></a>`))
	if len(pattern.MatchedCalls(doc, nfq.Query, nfq.Out)) != 1 {
		t.Fatal("relaxed NFQ should ignore the value join")
	}
	strict, err := Build(q, z, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pattern.MatchedCalls(doc, strict.Query, strict.Out)) != 0 {
		t.Fatal("strict NFQ must enforce the value join")
	}
}

func TestRefinedBranchesListConcreteNames(t *testing.T) {
	q := pattern.MustParse(figure4)
	sch := schema.MustParse(figure2)
	an := schema.NewAnalyzer(sch, q, schema.Exact)
	var leaf *pattern.Node
	for _, n := range q.Nodes() {
		if n.Label == "*****" && n.Parent.Label == "rating" && n.Parent.Parent.Label == "hotel" {
			leaf = n
		}
	}
	nfq, err := Build(q, leaf, Options{Analyzer: an, Names: sch.FunctionNames()})
	if err != nil {
		t.Fatal(err)
	}
	s := nfq.Query.String()
	if strings.Contains(s, "[()") || strings.Contains(s, "|())") {
		t.Errorf("refined NFQ still has star branches: %s", s)
	}
	if !strings.Contains(s, "getNearbyRestos()") {
		t.Errorf("restaurant branch should list getNearbyRestos: %s", s)
	}
	if strings.Contains(s, "getNearbyMuseums()") && strings.Contains(s, "restaurant") {
		// Museums may legitimately appear for other branches; make sure
		// it is not an alternative of the restaurant branch.
		idx := strings.Index(s, "restaurant")
		seg := s[idx:]
		if end := strings.Index(seg, "]"); end > 0 && strings.Contains(seg[:end], "getNearbyMuseums") {
			t.Errorf("museums listed as restaurant provider: %s", s)
		}
	}
}

func TestValidateRejectsExtendedQueries(t *testing.T) {
	for _, in := range []string{`/a[(b|c)]`, `/a[f()]`} {
		q := pattern.MustParse(in)
		if _, err := BuildAll(q, Options{}); err == nil {
			t.Errorf("BuildAll(%s): expected validation error", in)
		}
		if _, err := LPQs(q, Options{}); err == nil {
			t.Errorf("LPQs(%s): expected validation error", in)
		}
	}
	q := pattern.MustParse(`/a/b`)
	if _, err := Build(q, q.Root(), Options{}); err == nil {
		t.Error("Build on the anchor should fail")
	}
}

func TestNFQStringSmoke(t *testing.T) {
	q := pattern.MustParse(`/a/b`)
	nfqs, err := BuildAll(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nfqs {
		if !strings.Contains(n.String(), "NFQ(for=") {
			t.Fatalf("String = %q", n.String())
		}
	}
}

func TestBuildAllCount(t *testing.T) {
	q := pattern.MustParse(figure4)
	nfqs, err := BuildAll(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One NFQ per non-anchor node.
	if want := len(q.Nodes()) - 1; len(nfqs) != want {
		t.Fatalf("got %d NFQs, want %d", len(nfqs), want)
	}
}

func TestMinimize(t *testing.T) {
	q := pattern.MustParse(figure4)
	lpqs, err := LPQs(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minimized := Minimize(lpqs)
	if len(minimized) >= len(lpqs) {
		t.Fatalf("nothing minimized: %d vs %d", len(minimized), len(lpqs))
	}
	// The queries below nearby are all subsumed by nearby//(), whose
	// position language is hotels·hotel·nearby·σ*.
	for _, l := range minimized {
		s := l.Query.String()
		if strings.Contains(s, "restaurant") {
			t.Errorf("restaurant LPQ %s should be subsumed by the nearby//() query", s)
		}
	}
	// Minimization must not change the retrieved set.
	doc, calls := figure1()
	full := retrieved(t, doc, lpqs, calls, nil)
	min := retrieved(t, doc, minimized, calls, nil)
	if strings.Join(full, ",") != strings.Join(min, ",") {
		t.Fatalf("minimization changed retrieval: %v vs %v", min, full)
	}
}

func TestMinimizeKeepsIncomparable(t *testing.T) {
	q := pattern.MustParse(`/a[b/x]/c/y`)
	lpqs, err := LPQs(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minimized := Minimize(lpqs)
	// /a/b/() and /a/c/() are incomparable; both must survive.
	forms := map[string]bool{}
	for _, l := range minimized {
		forms[l.Query.String()] = true
	}
	if !forms["/a/b/()!"] || !forms["/a/c/()!"] {
		t.Fatalf("incomparable LPQs dropped: %v", forms)
	}
}
