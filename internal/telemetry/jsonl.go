package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// jsonSpan is the JSONL wire form of a Span. Durations travel as
// microseconds, attributes as an object (their emission order is not
// preserved across a round trip; DecodeJSONL restores them sorted by
// key).
type jsonSpan struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Shard  int               `json:"shard,omitempty"`
	Worker int               `json:"worker,omitempty"`
	Start  *time.Time        `json:"start,omitempty"`
	WallUS int64             `json:"wall_us"`
	VirtUS int64             `json:"virt_us,omitempty"`
	Trace  string            `json:"trace,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

func toJSONSpan(s Span) jsonSpan {
	js := jsonSpan{
		ID:     uint64(s.ID),
		Parent: uint64(s.Parent),
		Name:   s.Name,
		Shard:  s.Shard,
		Worker: s.Worker,
		WallUS: s.Wall.Microseconds(),
		VirtUS: s.Virtual.Microseconds(),
		Trace:  s.Trace,
	}
	if !s.Start.IsZero() {
		start := s.Start
		js.Start = &start
	}
	if len(s.Attrs) > 0 {
		js.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			js.Attrs[a.Key] = a.Value
		}
	}
	return js
}

func fromJSONSpan(js jsonSpan) Span {
	s := Span{
		ID:      SpanID(js.ID),
		Parent:  SpanID(js.Parent),
		Name:    js.Name,
		Shard:   js.Shard,
		Worker:  js.Worker,
		Wall:    time.Duration(js.WallUS) * time.Microsecond,
		Virtual: time.Duration(js.VirtUS) * time.Microsecond,
		Trace:   js.Trace,
	}
	if js.Start != nil {
		s.Start = *js.Start
	}
	if len(js.Attrs) > 0 {
		keys := make([]string, 0, len(js.Attrs))
		for k := range js.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s.Attrs = make([]Attr, 0, len(keys))
		for _, k := range keys {
			s.Attrs = append(s.Attrs, Attr{Key: k, Value: js.Attrs[k]})
		}
	}
	return s
}

// EncodeJSONL writes the spans as one JSON object per line.
func EncodeJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(toJSONSpan(s)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CorruptTraceError reports a span stream that ended mid-record or held
// a malformed record — a crashed writer tears the final line, for
// example. DecodeJSONL returns it together with the well-formed prefix,
// so readers can keep every span recorded before the corruption.
type CorruptTraceError struct {
	// Record is the 1-based index of the first bad record.
	Record int
	// Err is the underlying decode error.
	Err error
}

func (e *CorruptTraceError) Error() string {
	return fmt.Sprintf("telemetry: bad span record %d: %v", e.Record, e.Err)
}

func (e *CorruptTraceError) Unwrap() error { return e.Err }

// DecodeJSONL parses a JSONL span stream (blank lines are skipped). On
// a truncated or corrupt stream it returns the decoded prefix together
// with a *CorruptTraceError — callers keep everything before the tear.
func DecodeJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var js jsonSpan
		if err := dec.Decode(&js); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, &CorruptTraceError{Record: len(out) + 1, Err: err}
		}
		out = append(out, fromJSONSpan(js))
	}
}

// SinkJSONL adapts an io.Writer into a tracer sink that streams each
// finished span as one JSON line. Write errors are dropped — a failing
// trace sink must never fail the evaluation it observes.
func SinkJSONL(w io.Writer) func(Span) {
	enc := json.NewEncoder(w)
	return func(s Span) {
		_ = enc.Encode(toJSONSpan(s))
	}
}

// MarshalSpansJSON renders spans as a single JSON array (the
// /debug/trace response body).
func MarshalSpansJSON(spans []Span) ([]byte, error) {
	out := make([]jsonSpan, len(spans))
	for i, s := range spans {
		out[i] = toJSONSpan(s)
	}
	return json.MarshalIndent(out, "", "  ")
}

// MarshalSpansJSONCompact is MarshalSpansJSON without indentation — the
// wire form. The soap response envelope carries a span subtree on every
// traced invocation, where the indented form's whitespace would be XML-
// escaped, shipped, and unescaped per call for nobody to read.
func MarshalSpansJSONCompact(spans []Span) ([]byte, error) {
	out := make([]jsonSpan, len(spans))
	for i, s := range spans {
		out[i] = toJSONSpan(s)
	}
	return json.Marshal(out)
}

// UnmarshalSpansJSON parses a JSON span array produced by
// MarshalSpansJSON (the soap response envelope carries remote span
// subtrees in this form).
func UnmarshalSpansJSON(data []byte) ([]Span, error) {
	var in []jsonSpan
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("telemetry: bad span array: %w", err)
	}
	out := make([]Span, len(in))
	for i, js := range in {
		out[i] = fromJSONSpan(js)
	}
	return out, nil
}
