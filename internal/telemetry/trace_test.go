package telemetry

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDeriveTraceID(t *testing.T) {
	a := DeriveTraceID("/site//hotel", "doc.axml")
	if len(a) != 32 || strings.ToLower(a) != a {
		t.Fatalf("not 32 lowercase hex chars: %q", a)
	}
	if a != DeriveTraceID("/site//hotel", "doc.axml") {
		t.Fatal("same inputs must derive the same ID")
	}
	if a == DeriveTraceID("/site//hotel", "other.axml") {
		t.Fatal("different inputs must derive different IDs")
	}
	// The separator must keep part boundaries significant.
	if DeriveTraceID("ab", "c") == DeriveTraceID("a", "bc") {
		t.Fatal("part boundaries must be part of the derivation")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if _, ok := TraceFrom(nil); ok {
		t.Fatal("nil context must carry no trace")
	}
	tc := TraceContext{TraceID: DeriveTraceID("q"), Parent: 7, MaxSpans: 64}
	got, ok := TraceFrom(WithTrace(nil, tc))
	if !ok || got.TraceID != tc.TraceID || got.Parent != 7 || got.MaxSpans != 64 {
		t.Fatalf("round trip: %+v ok=%t", got, ok)
	}
	if _, ok := TraceFrom(WithTrace(nil, TraceContext{})); ok {
		t.Fatal("empty trace ID must read as no trace")
	}
}

func TestTracerStampsTraceID(t *testing.T) {
	tr := NewTracer(4)
	tr.SetTrace("deadbeefdeadbeefdeadbeefdeadbeef")
	tr.Emit(Span{Name: "a"})
	tr.Emit(Span{Name: "b", Trace: "otherotherotherotherotherothero1"})
	spans := tr.Spans(0)
	if spans[0].Trace != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("span not stamped: %+v", spans[0])
	}
	if spans[1].Trace != "otherotherotherotherotherothero1" {
		t.Fatal("an explicit trace ID (a grafted remote span) must be preserved")
	}
	var nilTr *Tracer
	nilTr.SetTrace("x")
	if nilTr.Trace() != "" {
		t.Fatal("nil tracer trace must be empty")
	}
}

// TestGraftRemote: grafted spans get fresh local IDs with their internal
// parent edges remapped; spans whose parent is unknown (or the remote
// root, parent 0) attach under the given local parent.
func TestGraftRemote(t *testing.T) {
	remoteTr := NewTracer(8)
	remoteTr.SetTrace("feedfacefeedfacefeedfacefeedface")
	root := remoteTr.Start("http-invoke", 0)
	child := remoteTr.Start("service", root.ID())
	grand := remoteTr.Start("push-invoke", child.ID())
	grand.End()
	child.End()
	root.End()
	remote := remoteTr.Spans(0)

	local := NewTracer(8)
	inv := local.Emit(Span{Name: "invoke"})
	local.GraftRemote(inv, remote)
	spans := local.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("want invoke + 3 grafted, got %d", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["http-invoke"].Parent != inv {
		t.Fatalf("remote root must hang under the invoke span: %+v", byName["http-invoke"])
	}
	if byName["service"].Parent != byName["http-invoke"].ID {
		t.Fatal("internal parent edge lost")
	}
	if byName["push-invoke"].Parent != byName["service"].ID {
		t.Fatal("nested parent edge lost")
	}
	for _, name := range []string{"http-invoke", "service", "push-invoke"} {
		if byName[name].Trace != "feedfacefeedfacefeedfacefeedface" {
			t.Fatalf("grafted span lost its trace ID: %+v", byName[name])
		}
		if byName[name].ID == 0 || byName[name].ID == inv {
			t.Fatalf("grafted span must get a fresh local ID: %+v", byName[name])
		}
	}
	// Idempotent no-ops.
	local.GraftRemote(inv, nil)
	var nilTr *Tracer
	nilTr.GraftRemote(0, remote)
}

// TestRingDropAccounting: wrapping the ring counts dropped spans on
// axml_spans_dropped_total and warns exactly once.
func TestRingDropAccounting(t *testing.T) {
	tr := NewTracer(4)
	reg := NewRegistry()
	tr.InstrumentDrops(reg)
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Name: "s"})
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := reg.Snapshot().Counters[MetricSpansDropped]; got != 6 {
		t.Fatalf("%s = %d, want 6", MetricSpansDropped, got)
	}
}

// TestInstrumentDropsBackfill: wiring the counter after drops already
// happened accounts for them.
func TestInstrumentDropsBackfill(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(Span{Name: "s"})
	}
	reg := NewRegistry()
	tr.InstrumentDrops(reg)
	if got := reg.Snapshot().Counters[MetricSpansDropped]; got != 3 {
		t.Fatalf("backfill = %d, want 3", got)
	}
	tr.Emit(Span{Name: "s"})
	if got := reg.Snapshot().Counters[MetricSpansDropped]; got != 4 {
		t.Fatalf("after wire = %d, want 4", got)
	}
}

// TestDecodeJSONLTornTail: a torn final line (the crash shape for a
// streamed sink) yields the decoded prefix plus a typed error naming
// the bad record.
func TestDecodeJSONLTornTail(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Span{Name: "a", Wall: time.Millisecond})
	tr.Emit(Span{Name: "b"})
	var sb strings.Builder
	if err := EncodeJSONL(&sb, tr.Spans(0)); err != nil {
		t.Fatal(err)
	}
	whole := sb.String()
	torn := whole[:len(whole)-7] // cut mid-way through the final record

	spans, err := DecodeJSONL(strings.NewReader(torn))
	if err == nil {
		t.Fatal("torn tail must error")
	}
	var ce *CorruptTraceError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptTraceError, got %T: %v", err, err)
	}
	if ce.Record != 2 {
		t.Fatalf("bad record index %d, want 2", ce.Record)
	}
	if len(spans) != 1 || spans[0].Name != "a" {
		t.Fatalf("intact prefix must be returned: %+v", spans)
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("error must name the record: %v", err)
	}
}

func TestUnmarshalSpansJSON(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("http-invoke", 0)
	root.SetAttr("service", "getRating")
	root.End()
	data, err := MarshalSpansJSON(tr.Spans(0))
	if err != nil {
		t.Fatal(err)
	}
	spans, err := UnmarshalSpansJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "http-invoke" || spans[0].Attr("service") != "getRating" {
		t.Fatalf("round trip: %+v", spans)
	}
	if _, err := UnmarshalSpansJSON([]byte("{")); err == nil {
		t.Fatal("bad payload accepted")
	}
}
