package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Mount attaches the live introspection endpoints to a mux:
//
//	GET /metrics            Prometheus text exposition of reg
//	GET /debug/trace?last=N recent finished spans as a JSON array
//	GET /debug/pprof/...    net/http/pprof profiles
//
// reg and tr may be nil; the endpoints then answer with empty bodies
// rather than 404, so dashboards can be wired before telemetry is.
func Mount(mux *http.ServeMux, reg *Registry, tr *Tracer) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		last := 100
		if v := r.URL.Query().Get("last"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			last = n
		}
		body, err := MarshalSpansJSON(tr.Spans(last))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone introspection handler (axmlquery
// -serve-debug uses it; axmlserver mounts the same endpoints next to
// its service endpoints).
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg, tr)
	return mux
}
