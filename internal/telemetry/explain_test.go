package telemetry

import (
	"strings"
	"testing"
	"time"
)

// spansFixture is a hand-built evaluate → layer → detect/invoke profile.
func spansFixture() []Span {
	now := time.Now()
	return []Span{
		{ID: 1, Name: "evaluate", Start: now, Wall: 10 * time.Millisecond,
			Attrs: []Attr{{Key: "calls_invoked", Value: "2"}, {Key: "calls_pruned", Value: "7"}}},
		{ID: 2, Parent: 1, Name: "layer", Start: now, Wall: 8 * time.Millisecond},
		{ID: 3, Parent: 2, Name: "detect", Start: now, Wall: 3 * time.Millisecond},
		{ID: 4, Parent: 2, Name: "detect", Shard: 1, Start: now, Wall: 2 * time.Millisecond},
		{ID: 5, Parent: 2, Name: "invoke", Worker: 1, Start: now, Wall: 1 * time.Millisecond,
			Virtual: 20 * time.Millisecond},
	}
}

func TestBuildTreeAndSelf(t *testing.T) {
	roots := BuildTree(spansFixture())
	if len(roots) != 1 || roots[0].Name != "evaluate" {
		t.Fatalf("roots: %+v", roots)
	}
	eval := roots[0]
	if got := eval.Self(); got != 2*time.Millisecond {
		t.Fatalf("evaluate self = %v, want 2ms", got)
	}
	layer := eval.Children[0]
	if got := layer.Self(); got != 2*time.Millisecond {
		t.Fatalf("layer self = %v, want 2ms", got)
	}
	// The self times partition the root's wall time.
	var sum time.Duration
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		sum += n.Self()
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(eval)
	if sum != eval.Wall {
		t.Fatalf("self times sum to %v, root wall is %v", sum, eval.Wall)
	}
}

// TestBuildTreeOrphans: spans whose parent is missing become roots
// instead of vanishing.
func TestBuildTreeOrphans(t *testing.T) {
	roots := BuildTree([]Span{
		{ID: 5, Parent: 99, Name: "orphan", Wall: time.Millisecond},
		{ID: 2, Name: "root", Wall: time.Millisecond},
	})
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	if roots[0].Name != "root" || roots[1].Name != "orphan" {
		t.Fatalf("root order: %s, %s", roots[0].Name, roots[1].Name)
	}
}

func TestWriteTree(t *testing.T) {
	var sb strings.Builder
	WriteTree(&sb, spansFixture())
	out := sb.String()
	for _, want := range []string{
		"evaluate",
		"calls_invoked=2",
		"calls_pruned=7",
		"detect#1",  // shard marker
		"invoke@w1", // invocation-pool worker marker
		"virt",
		"phases: evaluate 2.000ms + layer 2.000ms + detect 5.000ms + invoke 1.000ms = 10.000ms (total 10.000ms)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output misses %q:\n%s", want, out)
		}
	}
	// Indentation shows the hierarchy.
	if !strings.Contains(out, "\n  layer") || !strings.Contains(out, "\n    detect") {
		t.Errorf("tree not indented:\n%s", out)
	}
}
