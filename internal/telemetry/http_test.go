package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricHTTPRequests).Add(5)
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Emit(Span{Name: "http-invoke", Start: time.Now(), Wall: time.Millisecond})
	}
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "axml_http_requests_total 5") {
		t.Fatalf("/metrics: %d %q", code, body)
	}

	code, body = get("/debug/trace?last=2")
	if code != 200 {
		t.Fatalf("/debug/trace: %d", code)
	}
	var spans []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Name != "http-invoke" {
		t.Fatalf("/debug/trace spans: %+v", spans)
	}

	if code, _ := get("/debug/trace?last=nope"); code != 400 {
		t.Fatalf("bad last parameter answered %d, want 400", code)
	}

	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

// TestHandlerNilBackends: endpoints answer empty rather than 404 when
// telemetry is not wired yet.
func TestHandlerNilBackends(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/trace"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d, want 200", path, resp.StatusCode)
		}
	}
}
