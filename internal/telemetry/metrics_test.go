package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestNilSafety: a nil registry and nil instruments must swallow every
// operation — this is the disabled-telemetry fast path.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(time.Second)
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if c := r.Counter("c"); c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry exposition not empty: %q", sb.String())
	}
}

// TestBucketBoundaries pins the log-scale bucketing at its exact edges:
// zero and negative durations, sub-microsecond, exact powers of two, the
// values just past them, and the overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},     // 1µs: first non-zero bucket
		{2 * time.Microsecond, 2}, // exact power: starts the next bucket
		{3 * time.Microsecond, 2}, // [2µs, 4µs)
		{4 * time.Microsecond, 3}, // exact power again
		{1024 * time.Microsecond, 11},
		{1 << 62, HistBuckets - 1}, // overflow clamps to the last bucket
	}
	for _, c := range cases {
		if got := BucketOf(c.d); got != c.want {
			t.Errorf("BucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// BucketBound is the exclusive upper edge: a duration equal to the
	// bound of bucket i lands in bucket i+1.
	for i := 1; i < HistBuckets-1; i++ {
		if got := BucketOf(BucketBound(i) - time.Microsecond); got != i {
			t.Fatalf("bucket %d: upper-bound-1µs landed in %d", i, got)
		}
		if i < HistBuckets-2 {
			if got := BucketOf(BucketBound(i)); got != i+1 {
				t.Fatalf("bucket %d: its bound %v landed in %d, want %d", i, BucketBound(i), got, i+1)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if q := h.snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 90 fast observations and 10 slow ones: p50 sits in the fast
	// bucket, p99 in the slow one, and the top is reported as Max.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond)
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.50); got != 4*time.Microsecond {
		t.Fatalf("p50 = %v, want the 4µs bucket bound", got)
	}
	if got := s.Quantile(0.99); got != s.Max {
		t.Fatalf("p99 = %v, want max %v", got, s.Max)
	}
	if s.Max != 3*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Fatalf("p100 = %v, want max", got)
	}
	// A zero observation lands in bucket 0 and reports 0.
	var hz Histogram
	hz.Observe(0)
	if got := hz.snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("zero-only quantile = %v", got)
	}
	// Observations past the largest finite bucket report Max, not a
	// bucket bound.
	var ho Histogram
	ho.Observe(1 << 62)
	if got := ho.snapshot().Quantile(0.5); got != ho.snapshot().Max {
		t.Fatalf("overflow quantile = %v, want max", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricCallsInvoked).Add(17)
	r.Gauge(MetricCacheEntries).Set(3)
	r.Histogram(MetricDetectSeconds).Observe(100 * time.Microsecond)
	r.Histogram(MetricDetectSeconds).Observe(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE axml_calls_invoked_total counter",
		"axml_calls_invoked_total 17",
		"# TYPE axml_cache_entries gauge",
		"axml_cache_entries 3",
		"# TYPE axml_detect_seconds histogram",
		`axml_detect_seconds_bucket{le="+Inf"} 2`,
		"axml_detect_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
}
