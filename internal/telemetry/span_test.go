package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTracerBasics(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("evaluate", 0)
	root.SetAttr("strategy", "lazy-nfq")
	child := tr.Start("detect", root.ID())
	child.SetInt("calls", 3)
	child.SetShard(2)
	child.AddVirtual(10 * time.Millisecond)
	child.End()
	child.End() // idempotent
	root.End()

	spans := tr.Spans(0)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Finish order: the child ended first.
	if spans[0].Name != "detect" || spans[1].Name != "evaluate" {
		t.Fatalf("order: %s, %s", spans[0].Name, spans[1].Name)
	}
	d := spans[0]
	if d.Parent != spans[1].ID || d.Shard != 2 || d.Virtual != 10*time.Millisecond {
		t.Fatalf("child span wrong: %+v", d)
	}
	if d.Attr("calls") != "3" || d.Attr("missing") != "" {
		t.Fatalf("attrs wrong: %+v", d.Attrs)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestNilTracerSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", 0)
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.SetShard(1)
	s.AddVirtual(time.Second)
	s.End()
	if s != nil {
		t.Fatal("nil tracer must return a nil active span")
	}
	if tr.Emit(Span{Name: "y"}) != 0 {
		t.Fatal("nil tracer Emit must return 0")
	}
	tr.SetSink(func(Span) {})
	if tr.Len() != 0 || tr.Spans(0) != nil {
		t.Fatal("nil tracer must be empty")
	}
}

// TestRingBuffer: the tracer retains only the most recent capacity spans
// but keeps counting all of them.
func TestRingBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Name: "s", Start: time.Now()})
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	spans := tr.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want 4", len(spans))
	}
	// Oldest-first: the retained IDs are the last four assigned.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID != spans[i-1].ID+1 {
			t.Fatalf("retained spans out of order: %v", spans)
		}
	}
	if spans[len(spans)-1].ID != 10 {
		t.Fatalf("newest retained = %d, want 10", spans[len(spans)-1].ID)
	}
	if got := tr.Spans(2); len(got) != 2 || got[1].ID != 10 {
		t.Fatalf("Spans(2) = %v", got)
	}
}

// TestJSONLRoundTrip emits a realistic span tree, streams it through the
// JSONL sink, parses it back, and requires the reconstructed tree to be
// identical (attribute order is canonicalised to sorted-by-key on both
// sides of the comparison).
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(16)
	tr.SetSink(SinkJSONL(&buf))

	eval := tr.Start("evaluate", 0)
	eval.SetAttr("strategy", "lazy-nfq")
	layer := tr.Start("layer", eval.ID())
	layer.SetInt("layer", 0)
	tr.Emit(Span{
		Parent:  layer.ID(),
		Name:    "detect",
		Shard:   1,
		Start:   time.Now(),
		Wall:    42 * time.Microsecond,
		Virtual: time.Millisecond,
		Attrs:   []Attr{{Key: "calls", Value: "2"}, {Key: "round", Value: "1"}},
	})
	tr.Emit(Span{
		Parent:  layer.ID(),
		Name:    "invoke",
		Worker:  2,
		Start:   time.Now(),
		Wall:    100 * time.Microsecond,
		Virtual: 2 * time.Millisecond,
		Attrs:   []Attr{{Key: "service", Value: "getRating"}},
	})
	layer.End()
	eval.AddVirtual(5 * time.Millisecond)
	eval.End()

	emitted := tr.Spans(0)
	decoded, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(emitted) {
		t.Fatalf("decoded %d spans, want %d", len(decoded), len(emitted))
	}

	canon := func(spans []Span) []Span {
		out := make([]Span, len(spans))
		for i, s := range spans {
			// JSON truncates to microseconds and canonicalises attribute
			// order; apply the same to the emitted side.
			s.Start = s.Start.Truncate(time.Microsecond)
			s.Wall = s.Wall.Truncate(time.Microsecond)
			attrs := append([]Attr(nil), s.Attrs...)
			for j := 1; j < len(attrs); j++ {
				for k := j; k > 0 && attrs[k].Key < attrs[k-1].Key; k-- {
					attrs[k], attrs[k-1] = attrs[k-1], attrs[k]
				}
			}
			s.Attrs = attrs
			out[i] = s
		}
		return out
	}
	want, got := canon(emitted), canon(decoded)
	for i := range want {
		if !want[i].Start.Equal(got[i].Start) {
			t.Fatalf("span %d start drifted: %v vs %v", i, want[i].Start, got[i].Start)
		}
		want[i].Start, got[i].Start = time.Time{}, time.Time{}
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	// The reconstructed tree has the same shape.
	wantTree := treeShape(BuildTree(emitted))
	gotTree := treeShape(BuildTree(decoded))
	if wantTree != gotTree {
		t.Fatalf("tree shape changed:\n got %s\nwant %s", gotTree, wantTree)
	}
	if !strings.Contains(wantTree, "evaluate(layer(detect,invoke))") {
		t.Fatalf("unexpected tree shape %s", wantTree)
	}
}

// treeShape renders a span tree as name(child,child) text.
func treeShape(roots []*SpanNode) string {
	var sb strings.Builder
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		sb.WriteString(n.Name)
		if len(n.Children) > 0 {
			sb.WriteString("(")
			for i, c := range n.Children {
				if i > 0 {
					sb.WriteString(",")
				}
				walk(c)
			}
			sb.WriteString(")")
		}
	}
	for i, r := range roots {
		if i > 0 {
			sb.WriteString(";")
		}
		walk(r)
	}
	return sb.String()
}

func TestDecodeJSONLBadInput(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader("{nope}\n")); err == nil {
		t.Fatal("bad JSONL accepted")
	}
	spans, err := DecodeJSONL(strings.NewReader(""))
	if err != nil || len(spans) != 0 {
		t.Fatalf("empty input: %v, %v", spans, err)
	}
}
