package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SpanNode is one node of a reconstructed span tree.
type SpanNode struct {
	Span
	Children []*SpanNode
}

// Self returns the span's self wall time: its duration minus its
// children's (never negative). Because every child interval lies inside
// its parent, the self times of a tree partition the root's wall time,
// which is what lets explain profiles assert that per-phase times sum
// to the total.
func (n *SpanNode) Self() time.Duration {
	d := n.Wall
	for _, c := range n.Children {
		d -= c.Wall
	}
	if d < 0 {
		return 0
	}
	return d
}

// BuildTree reconstructs the span hierarchy from a flat span list
// (spans whose parent is missing from the list become roots). Roots and
// children are ordered by span ID, i.e. start order, so trees render
// deterministically regardless of finish order.
func BuildTree(spans []Span) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{Span: s}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

// WriteTree renders the spans as an indented explain profile: one line
// per span with cumulative and self wall time, charged virtual time and
// attributes, followed by a per-phase summary whose self-time buckets
// sum (exactly, before rounding) to each root's total.
func WriteTree(w io.Writer, spans []Span) {
	roots := BuildTree(spans)
	for _, root := range roots {
		writeNode(w, root, 0)
	}
	for _, root := range roots {
		writePhaseSummary(w, root)
	}
}

func writeNode(w io.Writer, n *SpanNode, depth int) {
	var sb strings.Builder
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Name)
	if n.Shard > 0 {
		fmt.Fprintf(&sb, "#%d", n.Shard)
	}
	if n.Worker > 0 {
		fmt.Fprintf(&sb, "@w%d", n.Worker)
	}
	pad := 34 - sb.Len()
	if pad < 1 {
		pad = 1
	}
	sb.WriteString(strings.Repeat(" ", pad))
	fmt.Fprintf(&sb, "wall %9s  self %9s", fmtDur(n.Wall), fmtDur(n.Self()))
	if n.Virtual > 0 {
		fmt.Fprintf(&sb, "  virt %9s", fmtDur(n.Virtual))
	}
	for _, a := range n.Attrs {
		fmt.Fprintf(&sb, "  %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w, sb.String())
	for _, c := range n.Children {
		writeNode(w, c, depth+1)
	}
}

// writePhaseSummary buckets the tree's self times by span name and
// prints the arithmetic identity sum(phases) = total.
func writePhaseSummary(w io.Writer, root *SpanNode) {
	phases := map[string]time.Duration{}
	var order []string
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		if _, seen := phases[n.Name]; !seen {
			order = append(order, n.Name)
		}
		phases[n.Name] += n.Self()
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	var parts []string
	var sum time.Duration
	for _, name := range order {
		parts = append(parts, fmt.Sprintf("%s %s", name, fmtDur(phases[name])))
		sum += phases[name]
	}
	fmt.Fprintf(w, "phases: %s = %s (total %s)\n",
		strings.Join(parts, " + "), fmtDur(sum), fmtDur(root.Wall))
}

// fmtDur renders durations with stable millisecond precision so explain
// columns align and phase sums round consistently.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
