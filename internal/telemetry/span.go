package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Tracer. IDs are assigned in start
// order and never reused; 0 means "no span" (the root has Parent 0).
type SpanID uint64

// Attr is one key/value annotation on a span. Attributes are stored as
// an ordered slice — emission order is meaningful for rendering — and
// serialised as a JSON object.
type Attr struct {
	Key   string
	Value string
}

// Span is one finished node of an evaluation's trace tree. The engine
// emits evaluate → layer → round → detect/invoke hierarchies; the soap
// transport emits request/handler spans.
type Span struct {
	// ID is the span's identity within its tracer.
	ID SpanID
	// Parent is the enclosing span, or 0 for roots.
	Parent SpanID
	// Name is the span kind, e.g. "evaluate", "layer", "detect",
	// "invoke".
	Name string
	// Shard identifies which detection shard produced the span when the
	// engine runs a parallel detection pool (Options.Workers); 0
	// otherwise.
	Shard int
	// Worker identifies which invocation-pool worker ran the span when
	// the engine invokes a batch on a bounded pool
	// (Options.InvokeWorkers); 0 otherwise. The member→worker assignment
	// is deterministic (batch member i runs on worker i mod pool width),
	// so traces compare stably across runs.
	Worker int
	// Start is the wall-clock start time.
	Start time.Time
	// Wall is the measured wall-clock duration.
	Wall time.Duration
	// Virtual is the simulated (virtual-clock) duration charged during
	// the span, when the instrumented operation charges one.
	Virtual time.Duration
	// Attrs annotate the span (service names, call counts, errors…).
	Attrs []Attr
}

// Attr returns the value of the named attribute, or "".
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// DefaultSpanCapacity bounds the tracer ring buffer when NewTracer is
// given a non-positive capacity.
const DefaultSpanCapacity = 4096

// Tracer collects finished spans into a bounded in-memory ring buffer
// and optionally streams them to a JSONL sink. It is safe for
// concurrent use: parallel detection shards and batch invocations emit
// through the same tracer. A nil *Tracer is a valid no-op: Start
// returns a nil *ActiveSpan whose methods do nothing, so disabled
// tracing costs one pointer test per instrumentation point.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int // next write position
	count int // total spans ever recorded
	sink  func(Span)
}

// NewTracer returns a tracer retaining the last capacity finished spans
// (DefaultSpanCapacity when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// SetSink streams every subsequently finished span to fn, in finish
// order, under the tracer's lock (fn must be fast and must not call
// back into the tracer). SinkJSONL adapts an io.Writer.
func (t *Tracer) SetSink(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Start opens a span under the given parent (0 for a root). The
// returned ActiveSpan is owned by one goroutine until End.
func (t *Tracer) Start(name string, parent SpanID) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, s: Span{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
	}}
}

// Emit records a pre-built span, assigning an ID when the span carries
// none. It is the low-level entry used by bridges that measure spans
// themselves (e.g. the engine's parallel detection pool, which measures
// per-shard durations in workers and emits deterministically from the
// coordinator).
func (t *Tracer) Emit(s Span) SpanID {
	if t == nil {
		return 0
	}
	if s.ID == 0 {
		s.ID = SpanID(t.nextID.Add(1))
	}
	t.record(s)
	return s.ID
}

// record appends a finished span to the ring and the sink.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.count++
	sink := t.sink
	if sink != nil {
		sink(s)
	}
	t.mu.Unlock()
}

// Len returns the total number of spans recorded (including ones the
// ring has since dropped).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Spans returns up to the last n retained spans in record order
// (oldest first); n ≤ 0 means every retained span.
func (t *Tracer) Spans(n int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
	} else {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// ActiveSpan is a span being measured. All methods are nil-safe so
// instrumented code can unconditionally call through a possibly-nil
// tracer.
type ActiveSpan struct {
	t *Tracer
	s Span
}

// ID returns the span's identity (0 for a nil span), for parenting
// children.
func (a *ActiveSpan) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// SetAttr annotates the span.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.s.Attrs = append(a.s.Attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (a *ActiveSpan) SetInt(key string, v int64) {
	if a == nil {
		return
	}
	a.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetShard stamps the detection shard identity.
func (a *ActiveSpan) SetShard(shard int) {
	if a == nil {
		return
	}
	a.s.Shard = shard
}

// AddVirtual charges simulated time to the span.
func (a *ActiveSpan) AddVirtual(d time.Duration) {
	if a == nil {
		return
	}
	a.s.Virtual += d
}

// End measures the wall duration and records the span. It must be
// called exactly once; further calls are ignored.
func (a *ActiveSpan) End() {
	if a == nil || a.t == nil {
		return
	}
	a.s.Wall = time.Since(a.s.Start)
	a.t.record(a.s)
	a.t = nil
}
