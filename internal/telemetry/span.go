package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Tracer. IDs are assigned in start
// order and never reused; 0 means "no span" (the root has Parent 0).
type SpanID uint64

// Attr is one key/value annotation on a span. Attributes are stored as
// an ordered slice — emission order is meaningful for rendering — and
// serialised as a JSON object.
type Attr struct {
	Key   string
	Value string
}

// Span is one finished node of an evaluation's trace tree. The engine
// emits evaluate → layer → round → detect/invoke hierarchies; the soap
// transport emits request/handler spans.
type Span struct {
	// ID is the span's identity within its tracer.
	ID SpanID
	// Parent is the enclosing span, or 0 for roots.
	Parent SpanID
	// Name is the span kind, e.g. "evaluate", "layer", "detect",
	// "invoke".
	Name string
	// Shard identifies which detection shard produced the span when the
	// engine runs a parallel detection pool (Options.Workers); 0
	// otherwise.
	Shard int
	// Worker identifies which invocation-pool worker ran the span when
	// the engine invokes a batch on a bounded pool
	// (Options.InvokeWorkers); 0 otherwise. The member→worker assignment
	// is deterministic (batch member i runs on worker i mod pool width),
	// so traces compare stably across runs.
	Worker int
	// Start is the wall-clock start time.
	Start time.Time
	// Wall is the measured wall-clock duration.
	Wall time.Duration
	// Virtual is the simulated (virtual-clock) duration charged during
	// the span, when the instrumented operation charges one.
	Virtual time.Duration
	// Trace is the distributed trace the span belongs to (a 32-hex-digit
	// ID, empty when tracing is process-local). Spans grafted from a
	// remote process keep their trace ID, which is how a stitched tree
	// proves every side ran under the same trace.
	Trace string
	// Attrs annotate the span (service names, call counts, errors…).
	Attrs []Attr
}

// Attr returns the value of the named attribute, or "".
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// DefaultSpanCapacity bounds the tracer ring buffer when NewTracer is
// given a non-positive capacity.
const DefaultSpanCapacity = 4096

// Tracer collects finished spans into a bounded in-memory ring buffer
// and optionally streams them to a JSONL sink. It is safe for
// concurrent use: parallel detection shards and batch invocations emit
// through the same tracer. A nil *Tracer is a valid no-op: Start
// returns a nil *ActiveSpan whose methods do nothing, so disabled
// tracing costs one pointer test per instrumentation point.
type Tracer struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []Span
	ringCap int // retention bound; the ring grows lazily up to it
	next    int // next write position once the ring is full
	count   int // total spans ever recorded
	sink    func(Span)
	trace   string // trace ID stamped on spans emitted without one
	dropped uint64 // spans overwritten after the ring wrapped

	dropWarn sync.Once
	dropCtr  *Counter
}

// NewTracer returns a tracer retaining the last capacity finished spans
// (DefaultSpanCapacity when capacity ≤ 0). The ring grows lazily up to
// the capacity, so short-lived tracers — the soap server allocates one
// per traced request — cost what they record, not what they could.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ringCap: capacity}
}

// SetSink streams every subsequently finished span to fn, in finish
// order, under the tracer's lock (fn must be fast and must not call
// back into the tracer). SinkJSONL adapts an io.Writer.
func (t *Tracer) SetSink(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// SetTrace sets the trace ID stamped on every subsequently emitted span
// that does not already carry one. Callers that need cross-process
// trace stitching derive a deterministic ID (DeriveTraceID) so repeated
// runs stay diffable.
func (t *Tracer) SetTrace(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.trace = id
	t.mu.Unlock()
}

// Trace returns the tracer's trace ID ("" when unset or the tracer is
// nil, i.e. when cross-process propagation is off).
func (t *Tracer) Trace() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trace
}

// InstrumentDrops mirrors the tracer's ring evictions into
// MetricSpansDropped on the registry, so silent span loss is visible on
// /metrics.
func (t *Tracer) InstrumentDrops(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	ctr := reg.Counter(MetricSpansDropped)
	t.mu.Lock()
	t.dropCtr = ctr
	ctr.Add(int64(t.dropped)) // backfill drops that happened before wiring
	t.mu.Unlock()
}

// Dropped returns how many spans the ring has overwritten since the
// tracer was created.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Start opens a span under the given parent (0 for a root). The
// returned ActiveSpan is owned by one goroutine until End.
func (t *Tracer) Start(name string, parent SpanID) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, s: Span{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
	}}
}

// Emit records a pre-built span, assigning an ID when the span carries
// none. It is the low-level entry used by bridges that measure spans
// themselves (e.g. the engine's parallel detection pool, which measures
// per-shard durations in workers and emits deterministically from the
// coordinator).
func (t *Tracer) Emit(s Span) SpanID {
	if t == nil {
		return 0
	}
	if s.ID == 0 {
		s.ID = SpanID(t.nextID.Add(1))
	}
	t.record(s)
	return s.ID
}

// record appends a finished span to the ring and the sink.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if s.Trace == "" {
		s.Trace = t.trace
	}
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.ringCap
		t.dropped++
		if t.dropCtr != nil {
			t.dropCtr.Add(1)
		}
		t.dropWarn.Do(func() {
			log.Printf("telemetry: span ring wrapped at capacity %d; oldest spans are being dropped (tracked by %s)",
				t.ringCap, MetricSpansDropped)
		})
	}
	t.count++
	sink := t.sink
	if sink != nil {
		sink(s)
	}
	t.mu.Unlock()
}

// GraftRemote re-emits a remote span subtree under parent: every span
// gets a fresh local ID, parent links internal to the batch are
// remapped, and spans whose parent is absent from the batch are rooted
// at parent. Remote trace IDs and attributes are preserved. Call it
// from a coordinating goroutine in deterministic order (the engine
// grafts in document order) so stitched traces stay diffable.
func (t *Tracer) GraftRemote(parent SpanID, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	ids := make(map[SpanID]SpanID, len(spans))
	for _, s := range spans {
		if s.ID != 0 {
			ids[s.ID] = SpanID(t.nextID.Add(1))
		}
	}
	for _, s := range spans {
		ns := s
		ns.ID = ids[s.ID]
		if p, ok := ids[s.Parent]; ok && s.Parent != 0 {
			ns.Parent = p
		} else {
			ns.Parent = parent
		}
		t.Emit(ns)
	}
}

// DeriveTraceID maps the given parts to a stable 32-hex-digit trace ID.
// Deterministic inputs (query text, document path) give deterministic
// IDs, which keeps cross-process explain trees bit-identical across
// repeated runs.
func DeriveTraceID(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Len returns the total number of spans recorded (including ones the
// ring has since dropped).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Spans returns up to the last n retained spans in record order
// (oldest first); n ≤ 0 means every retained span.
func (t *Tracer) Spans(n int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if len(t.ring) < t.ringCap {
		out = append(out, t.ring...)
	} else {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// ActiveSpan is a span being measured. All methods are nil-safe so
// instrumented code can unconditionally call through a possibly-nil
// tracer.
type ActiveSpan struct {
	t *Tracer
	s Span
}

// ID returns the span's identity (0 for a nil span), for parenting
// children.
func (a *ActiveSpan) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// SetAttr annotates the span.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.s.Attrs = append(a.s.Attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (a *ActiveSpan) SetInt(key string, v int64) {
	if a == nil {
		return
	}
	a.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetShard stamps the detection shard identity.
func (a *ActiveSpan) SetShard(shard int) {
	if a == nil {
		return
	}
	a.s.Shard = shard
}

// AddVirtual charges simulated time to the span.
func (a *ActiveSpan) AddVirtual(d time.Duration) {
	if a == nil {
		return
	}
	a.s.Virtual += d
}

// End measures the wall duration and records the span. It must be
// called exactly once; further calls are ignored.
func (a *ActiveSpan) End() {
	if a == nil || a.t == nil {
		return
	}
	a.s.Wall = time.Since(a.s.Start)
	a.t.record(a.s)
	a.t = nil
}
