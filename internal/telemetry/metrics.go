// Package telemetry is the observability layer of the AXML engine: a
// metrics registry (counters, gauges, log-scale latency histograms with
// zero-allocation hot-path updates and Prometheus-style exposition), a
// hierarchical span tracer with a bounded in-memory ring buffer and an
// optional JSONL sink, an explain-profile renderer, and HTTP handlers
// for live introspection (/metrics, /debug/trace, /debug/pprof).
//
// The paper's central claims are quantitative — lazy pruning cuts
// evaluation time "by orders of magnitude" (Sections 1, 8) — and this
// package is how a running engine proves it: every evaluation can emit
// a span tree (evaluate → layer → round → detect/invoke) whose
// per-phase times sum to the total, and every serving process can be
// scraped for tail latencies.
//
// Metric names are a stable interface: see the constants below and the
// table in doc/OBSERVABILITY.md. Renaming a metric is a breaking change.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stable metric names. Instrumented packages (core, service, soap)
// register through these constants so the exposition surface cannot
// drift silently; doc/OBSERVABILITY.md documents each.
const (
	// Engine (internal/core).
	MetricEvaluations          = "axml_evaluations_total"
	MetricCallsInvoked         = "axml_calls_invoked_total"
	MetricCallsPruned          = "axml_calls_pruned_total"
	MetricRetries              = "axml_retries_total"
	MetricGiveUps              = "axml_giveups_total"
	MetricPushedCalls          = "axml_pushed_calls_total"
	MetricEvalSeconds          = "axml_eval_seconds"
	MetricDetectSeconds        = "axml_detect_seconds"
	MetricInvokeWallSeconds    = "axml_invoke_wall_seconds"
	MetricInvokeVirtualSeconds = "axml_invoke_virtual_seconds"

	// Response cache (internal/service.Cache).
	MetricCacheHits        = "axml_cache_hits_total"
	MetricCacheMisses      = "axml_cache_misses_total"
	MetricCacheCoalesced   = "axml_cache_coalesced_total"
	MetricCacheEvictions   = "axml_cache_evictions_total"
	MetricCacheExpirations = "axml_cache_expirations_total"
	MetricCacheEntries     = "axml_cache_entries"

	// Fault injector (internal/service.Faults).
	MetricFaultsInjected = "axml_faults_injected_total"

	// Multi-tenant query sessions (internal/session).
	MetricSessionsTotal       = "axml_sessions_total"
	MetricSessionsActive      = "axml_sessions_active"
	MetricSessionsQueued      = "axml_sessions_queued"
	MetricSessionsShed        = "axml_sessions_shed_total"
	MetricSessionsMemo        = "axml_sessions_memo_total"
	MetricSessionSeconds      = "axml_session_seconds"
	MetricSessionQueueSeconds = "axml_session_queue_seconds"
	MetricInvokeInflight      = "axml_invocations_inflight"

	// F-guide lifecycle (internal/core, internal/session). Builds counts
	// full constructions (cold paths), Warm counts engine runs that
	// reused an externally supplied guide, Patches counts incremental
	// ApplyExpansion updates — a warm restart shows Warm > 0 with Builds
	// staying at 0.
	MetricGuideBuilds  = "axml_fguide_builds_total"
	MetricGuideWarm    = "axml_fguide_warm_total"
	MetricGuidePatches = "axml_fguide_patches_total"

	// Persistent indexed repository (internal/repo).
	MetricRepoWarmOpens   = "axml_repo_warm_opens_total"
	MetricRepoRebuilds    = "axml_repo_index_rebuilds_total"
	MetricRepoRepairs     = "axml_repo_index_repairs_total"
	MetricRepoCorruptions = "axml_repo_corruptions_total"

	// HTTP transport (internal/soap).
	MetricHTTPRequests       = "axml_http_requests_total"
	MetricHTTPFaults         = "axml_http_faults_total"
	MetricHTTPHandlerSeconds = "axml_http_handler_seconds"
	MetricHTTPClientSeconds  = "axml_http_client_seconds"
	MetricHTTPClientRetries  = "axml_http_client_retries_total"

	// Cost-based invocation planner (internal/plan). Batches counts
	// batches planned; Reorders counts batches whose execution schedule
	// differs from static document-order striping; WidthTrims counts
	// batches run below the requested pool width; PushVetoes counts
	// calls whose subquery was withheld from a provably push-ignoring
	// service; Deferred counts speculative calls pushed to a later
	// round by the latency budget. Seconds is planning time itself.
	MetricPlanBatches    = "axml_plan_batches_total"
	MetricPlanReorders   = "axml_plan_reorders_total"
	MetricPlanWidthTrims = "axml_plan_width_trims_total"
	MetricPlanPushVetoes = "axml_plan_push_vetoes_total"
	MetricPlanDeferred   = "axml_plan_speculative_deferred_total"
	MetricPlanSeconds    = "axml_plan_seconds"

	// Tracer ring evictions (Tracer.InstrumentDrops) — non-zero means
	// /debug/trace and -explain are showing a truncated window.
	MetricSpansDropped = "axml_spans_dropped_total"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; updates are a single atomic add.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (e.g. current cache
// entries). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of log-scale histogram buckets. Bucket 0
// holds sub-microsecond (and zero) observations; bucket i (1 ≤ i <
// HistBuckets-1) holds durations d with 2^(i-1)µs ≤ d < 2^i µs; the
// last bucket is the overflow (+Inf) bucket. 40 buckets reach 2^38 µs
// ≈ 3.2 days, far past any latency this system charges.
const HistBuckets = 40

// Histogram is a log-scale latency histogram. The zero value is ready
// to use; Observe is a bucket index computation plus three atomic adds
// and never allocates — safe on the engine's hot paths.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // microseconds
	max     atomic.Int64 // microseconds
	buckets [HistBuckets]atomic.Uint64
}

// BucketOf returns the bucket index a duration falls in.
func BucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i (2^i µs);
// the last bucket is unbounded and reports its lower bound.
func BucketBound(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	if i >= HistBuckets-1 {
		i = HistBuckets - 2
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sum.Add(us)
	h.buckets[BucketOf(d)].Add(1)
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			break
		}
	}
}

// Load restores a previously snapshotted state into an empty histogram
// — the service profiler reopens persisted latency profiles through it.
// Loading into a histogram that has already observed values gives the
// sum of both states.
func (h *Histogram) Load(s HistogramSnapshot) {
	if h == nil {
		return
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum.Microseconds())
	for i := 0; i < len(s.Buckets) && i < HistBuckets; i++ {
		h.buckets[i].Add(s.Buckets[i])
	}
	us := s.Max.Microseconds()
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			break
		}
	}
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.snapshot()
}

// snapshot copies the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()) * time.Microsecond,
		Max:     time.Duration(h.max.Load()) * time.Microsecond,
		Buckets: make([]uint64, HistBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Sum is the total observed duration.
	Sum time.Duration
	// Max is the largest single observation.
	Max time.Duration
	// Buckets holds per-bucket counts (see HistBuckets for the scale).
	Buckets []uint64
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket the rank falls in — a conservative log-scale estimate. The
// top bucket reports Max, and an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			if i == len(s.Buckets)-1 {
				return s.Max
			}
			b := BucketBound(i)
			if s.Max > 0 && b > s.Max {
				return s.Max
			}
			return b
		}
	}
	return s.Max
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Registry is a named collection of metrics. Instruments are created on
// first use and live for the registry's lifetime, so hot paths resolve
// an instrument once and update it with atomics only. A nil *Registry
// is a valid no-op sink: every getter returns nil and the nil
// instruments swallow updates, which is how "telemetry disabled" costs
// a single pointer test.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	extra    []func(io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, for tests and
// JSON export.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteProm renders the registry in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative le-bucketed series with _sum and _count, durations in
// seconds.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		pf("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pf("# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pf("# TYPE %s histogram\n", name)
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			if n == 0 && i != len(h.Buckets)-1 {
				continue // keep the exposition compact: only non-empty buckets plus +Inf
			}
			if i == len(h.Buckets)-1 {
				pf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
			} else {
				pf("%s_bucket{le=%q} %d\n", name, promSeconds(BucketBound(i)), cum)
			}
		}
		pf("%s_sum %s\n", name, promSeconds(h.Sum))
		pf("%s_count %d\n", name, h.Count)
	}
	if err != nil || r == nil {
		return err
	}
	r.mu.RLock()
	extra := append([]func(io.Writer) error(nil), r.extra...)
	r.mu.RUnlock()
	for _, fn := range extra {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// AddPromWriter registers an extra exposition writer that WriteProm
// invokes after the registry's own series. The flat registry holds
// unlabeled series only; subsystems that expose labeled families (the
// per-service profiler's axml_service_* series) append themselves here
// so one /metrics scrape covers everything.
func (r *Registry) AddPromWriter(fn func(io.Writer) error) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.extra = append(r.extra, fn)
	r.mu.Unlock()
}

// promSeconds formats a duration as seconds for Prometheus samples.
func promSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
