package telemetry

import "context"

// TraceContext is the cross-process trace state threaded through
// invocation paths via context.Context. The soap client injects it into
// the request envelope (W3C-traceparent style: trace ID + parent span);
// the soap server reconstructs it, continues the trace in a per-request
// tracer, and hands that tracer back through the context so nested
// work (recursive-push materialisation, chained providers) emits into
// the same trace.
type TraceContext struct {
	// TraceID is the distributed trace identity (32 hex digits,
	// DeriveTraceID). Empty means propagation is off.
	TraceID string
	// Parent is the span the next remote call should nest under.
	Parent SpanID
	// MaxSpans bounds how many remote spans the callee may return in the
	// response envelope; 0 opts out of span return (the trace still
	// propagates and the server still records it locally).
	MaxSpans int
	// Tracer, when non-nil, is the tracer nested in-process work should
	// emit into (the soap server's per-request tracer). It is nil on the
	// client side, where the engine owns the tracer.
	Tracer *Tracer
}

type traceCtxKey struct{}

// WithTrace attaches the trace context to ctx (nil means Background).
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the trace context from ctx; ok reports whether one
// with a non-empty trace ID is present.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.TraceID != ""
}
