package workload

import (
	"time"

	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// Scenario is one named document with the queries clients run against
// it — a unit of the mixed serving workload Suite assembles.
type Scenario struct {
	// Name is the document name the serving layer registers.
	Name string
	// Doc is a fresh document instance; the caller owns it (the session
	// manager materialises it in place).
	Doc *tree.Document
	// Schema carries the scenario's service signatures; nil means the
	// scenario runs untyped.
	Schema *schema.Schema
	// Queries are the tree-pattern sources clients draw from. Every
	// query projects onto variables, so results compare across
	// evaluation modes by value.
	Queries []string
}

// Suite assembles the mixed multi-tenant serving workload: one shared
// registry and four scenario documents — the paper's running example
// (travel), its value-join variant (distributed), the introduction's
// city guide (nightlife) and the aggregation page of the activation
// discussion (newsfeed). One registry serves all four documents, the
// shape of a provider farm behind a query server: hotel services come
// from the spec (with tags enabled so the join workload qualifies),
// guide and feed services are pure deterministic handlers with the
// spec's latency.
//
// Everything is deterministic and every handler is pure, so any
// interleaving of queries over any number of sessions yields the same
// results as a serial run — the property the session layer's
// differential tests assert.
func Suite(spec HotelSpec) (*service.Registry, []Scenario) {
	if spec.TagJoinEvery == 0 {
		spec.TagJoinEvery = 2
	}
	w := Hotels(spec)
	reg := w.Registry
	registerGuideServices(reg, spec.Latency)
	registerFeedServices(reg, spec.Latency)

	scenarios := []Scenario{
		{
			Name:   "travel",
			Doc:    w.Doc,
			Schema: w.Schema,
			Queries: []string{
				`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`,
				`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//*[rating="*****"][name=$X] -> $X`,
			},
		},
		{
			Name:   "distributed",
			Doc:    Hotels(spec).Doc,
			Schema: w.Schema,
			Queries: []string{
				`/hotels/hotel[name=$N][tag=$N][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $N, $X`,
				`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`,
			},
		},
		{
			Name:   "nightlife",
			Doc:    mustUnmarshal(nightlifeGuide),
			Schema: schema.MustParse(nightlifeSchema),
			Queries: []string{
				`/goingout/movies//show[title="The Hours"]/schedule/$T -> $T`,
				`/goingout/restaurants//restaurant[name=$N][address=$A] -> $N, $A`,
			},
		},
		{
			Name:   "newsfeed",
			Doc:    mustUnmarshal(newsfeedPage),
			Schema: schema.MustParse(newsfeedSchema),
			Queries: []string{
				`/page/weather/city[name="Paris"]/sky/$S -> $S`,
				`/page/headlines/item/$H -> $H`,
			},
		},
	}
	return reg, scenarios
}

// nightlifeGuide is the introduction's city guide (examples/nightlife):
// movies and restaurants, both partly intensional. The schedule query
// prunes every restaurant call by position and the review calls by
// signature.
const nightlifeGuide = `
<goingout>
  <movies>
    <theater>
      <name>Grand Rex</name>
      <axml:call service="getShows"><theater>Grand Rex</theater></axml:call>
      <axml:call service="getReviews"><theater>Grand Rex</theater></axml:call>
    </theater>
    <theater>
      <name>MK2</name>
      <axml:call service="getShows"><theater>MK2</theater></axml:call>
    </theater>
  </movies>
  <restaurants>
    <axml:call service="getRestaurants"><area>center</area></axml:call>
    <axml:call service="getRestaurants"><area>north</area></axml:call>
  </restaurants>
</goingout>`

const nightlifeSchema = `
functions:
  getShows       = [in: data, out: show*]
  getReviews     = [in: data, out: review*]
  getRestaurants = [in: data, out: restaurant*]
elements:
  show       = title.schedule
  review     = title.stars
  restaurant = name.address
  title      = data
  schedule   = data
  stars      = data
  name       = data
  address    = data
`

// newsfeedPage is the aggregation page of examples/newsfeed with every
// call left lazy. The handlers here are pure — the example's periodic
// edition counter would make results depend on invocation counts, which
// a differential workload cannot tolerate.
const newsfeedPage = `
<page>
  <masthead><axml:call service="getMasthead"/></masthead>
  <headlines><axml:call service="getHeadlines"/></headlines>
  <archive><axml:call service="getArchive"/></archive>
  <weather>
    <city><name>Paris</name><axml:call service="getWeather">Paris</axml:call></city>
    <city><name>Oslo</name><axml:call service="getWeather">Oslo</axml:call></city>
  </weather>
</page>`

const newsfeedSchema = `
functions:
  getMasthead  = [in: data, out: item]
  getHeadlines = [in: data, out: item]
  getArchive   = [in: data, out: item]
  getWeather   = [in: data, out: sky]
elements:
  item = data
  sky  = data
`

// registerGuideServices adds the nightlife city-guide services.
func registerGuideServices(reg *service.Registry, latency time.Duration) {
	mkShow := func(title, at string) *tree.Node {
		s := tree.NewElement("show")
		s.Append(tree.NewElement("title")).Append(tree.NewText(title))
		s.Append(tree.NewElement("schedule")).Append(tree.NewText(at))
		return s
	}
	reg.Register(&service.Service{
		Name: "getShows", Latency: latency,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			if len(params) > 0 && params[0].Text() == "Grand Rex" {
				return []*tree.Node{mkShow("The Hours", "20:30"), mkShow("Solaris", "22:00")}, nil
			}
			return []*tree.Node{mkShow("The Hours", "18:00")}, nil
		},
	})
	reg.Register(&service.Service{
		Name: "getReviews", Latency: latency,
		Handler: func([]*tree.Node) ([]*tree.Node, error) {
			r := tree.NewElement("review")
			r.Append(tree.NewElement("title")).Append(tree.NewText("The Hours"))
			r.Append(tree.NewElement("stars")).Append(tree.NewText("4"))
			return []*tree.Node{r}, nil
		},
	})
	reg.Register(&service.Service{
		Name: "getRestaurants", Latency: latency,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			area := "center"
			if len(params) > 0 {
				area = params[0].Text()
			}
			r := tree.NewElement("restaurant")
			r.Append(tree.NewElement("name")).Append(tree.NewText("In Delis (" + area + ")"))
			r.Append(tree.NewElement("address")).Append(tree.NewText("2nd Ave."))
			return []*tree.Node{r}, nil
		},
	})
}

// registerFeedServices adds the newsfeed page services.
func registerFeedServices(reg *service.Registry, latency time.Duration) {
	item := func(v string) service.Handler {
		return func([]*tree.Node) ([]*tree.Node, error) {
			n := tree.NewElement("item")
			n.Append(tree.NewText(v))
			return []*tree.Node{n}, nil
		}
	}
	reg.Register(&service.Service{Name: "getMasthead", Latency: latency, Handler: item("The Daily AXML")})
	reg.Register(&service.Service{Name: "getHeadlines", Latency: latency, Handler: item("lazy evaluation pays off")})
	reg.Register(&service.Service{Name: "getArchive", Latency: latency, Handler: item("42 archived stories")})
	reg.Register(&service.Service{
		Name: "getWeather", Latency: latency,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			sky := tree.NewElement("sky")
			if len(params) > 0 && params[0].Text() == "Paris" {
				sky.Append(tree.NewText("sunny"))
			} else {
				sky.Append(tree.NewText("snow"))
			}
			return []*tree.Node{sky}, nil
		},
	})
}

// mustUnmarshal parses a scenario constant; failures are programming
// errors.
func mustUnmarshal(src string) *tree.Document {
	doc, err := tree.Unmarshal([]byte(src))
	if err != nil {
		panic(err)
	}
	return doc
}
