package workload

import (
	"sort"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
)

// bindingKeys renders an outcome's variable bindings canonically so
// strategies and evaluation modes compare by value.
func bindingKeys(out *core.Outcome) []string {
	keys := make([]string, len(out.Results))
	for i, r := range out.Results {
		parts := make([]string, 0, len(r.Values))
		for k, v := range r.Values {
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		keys[i] = strings.Join(parts, ",")
	}
	sort.Strings(keys)
	return keys
}

// TestSuiteScenariosEvaluate checks every scenario query completes
// against the shared registry, produces at least one result, and agrees
// between the naive strawman and the typed lazy strategy — the
// fixed-point every serving-layer differential builds on.
func TestSuiteScenariosEvaluate(t *testing.T) {
	reg, scenarios := Suite(DefaultSpec())
	if len(scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(scenarios))
	}
	for _, sc := range scenarios {
		for _, qsrc := range sc.Queries {
			lazyDoc := sc.Doc.Clone()
			naiveDoc := sc.Doc.Clone()
			q, err := pattern.Parse(qsrc)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", sc.Name, qsrc, err)
			}
			lazy, err := core.Evaluate(lazyDoc, q, reg, core.Options{
				Strategy: core.LazyNFQTyped, Schema: sc.Schema,
			})
			if err != nil {
				t.Fatalf("%s: lazy %q: %v", sc.Name, qsrc, err)
			}
			naive, err := core.Evaluate(naiveDoc, q, reg, core.Options{Strategy: core.NaiveFixpoint})
			if err != nil {
				t.Fatalf("%s: naive %q: %v", sc.Name, qsrc, err)
			}
			if !lazy.Complete || !naive.Complete {
				t.Fatalf("%s: %q incomplete (lazy=%t naive=%t)", sc.Name, qsrc, lazy.Complete, naive.Complete)
			}
			if len(lazy.Results) == 0 {
				t.Fatalf("%s: %q produced no results", sc.Name, qsrc)
			}
			lk, nk := bindingKeys(lazy), bindingKeys(naive)
			if strings.Join(lk, ";") != strings.Join(nk, ";") {
				t.Fatalf("%s: %q lazy/naive diverge:\nlazy  %v\nnaive %v", sc.Name, qsrc, lk, nk)
			}
			if lazy.Stats.CallsInvoked > naive.Stats.CallsInvoked {
				t.Fatalf("%s: %q lazy invoked %d calls > naive %d", sc.Name, qsrc,
					lazy.Stats.CallsInvoked, naive.Stats.CallsInvoked)
			}
		}
	}
}

// TestSuiteSharedRegistryServesAllDocs checks the single registry
// resolves every service each scenario document can reach, including
// the ones hidden inside service results (naive materialises them all).
func TestSuiteSharedRegistryServesAllDocs(t *testing.T) {
	reg, scenarios := Suite(DefaultSpec())
	for _, sc := range scenarios {
		doc := sc.Doc.Clone()
		q, err := pattern.Parse(sc.Queries[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Evaluate(doc, q, reg, core.Options{Strategy: core.NaiveFixpoint}); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if left := len(doc.Calls()); left != 0 {
			t.Fatalf("%s: %d calls left after naive fixpoint", sc.Name, left)
		}
	}
}
