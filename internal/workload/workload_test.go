package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/tree"
)

func TestDefaultSpecWorld(t *testing.T) {
	w := Hotels(DefaultSpec())
	if w.Doc == nil || w.Registry == nil || w.Schema == nil || w.Query == nil {
		t.Fatal("incomplete world")
	}
	if err := w.Schema.Validate(); err != nil {
		t.Fatalf("schema invalid: %v", err)
	}
	// 40 hotels plus the getHotels call at top level.
	if got := len(w.Doc.Root.Children); got != 41 {
		t.Fatalf("top-level children = %d", got)
	}
	// Deterministic: two builds are structurally equal.
	w2 := Hotels(DefaultSpec())
	if !w.Doc.Root.Equal(w2.Doc.Root) {
		t.Fatal("generation is not deterministic")
	}
}

func TestHotelAttributes(t *testing.T) {
	spec := DefaultSpec()
	// Hotel 0: target name, five-star, intensional rating.
	if hotelName(spec, 0) != TargetName || hotelRating(spec, 0) != FiveStars {
		t.Fatal("hotel 0 should qualify")
	}
	if !qualifies(spec, 0) || qualifies(spec, 1) {
		t.Fatal("qualification misassigned")
	}
	// Hotel 2 is five-star but not target-named.
	if hotelName(spec, 2) == TargetName || hotelRating(spec, 2) != FiveStars {
		t.Fatal("hotel 2 attributes wrong")
	}
}

func TestExpectedResults(t *testing.T) {
	spec := DefaultSpec()
	// Qualifying hotels: i ≡ 0 (mod 4) and i ≡ 0 (mod 2) → i ≡ 0 (mod 4):
	// 48 hotels total → indices 0,4,...,44 → 12 hotels × 2 five-star
	// restaurants each.
	w := Hotels(spec)
	if w.ExpectedResults != 24 {
		t.Fatalf("ExpectedResults = %d, want 24", w.ExpectedResults)
	}
}

func TestServicesAreDeterministicAndPure(t *testing.T) {
	w := Hotels(DefaultSpec())
	params := []*tree.Node{tree.NewText("addr-3")}
	r1, err := w.Registry.Invoke("getNearbyRestos", params, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Registry.Invoke("getNearbyRestos", []*tree.Node{tree.NewText("addr-3")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Forest) != len(r2.Forest) {
		t.Fatal("nondeterministic service")
	}
	for i := range r1.Forest {
		if !r1.Forest[i].Equal(r2.Forest[i]) {
			t.Fatal("nondeterministic service result")
		}
	}
	if len(r1.Forest) != 5 {
		t.Fatalf("restaurants per call = %d", len(r1.Forest))
	}
	five := 0
	for _, r := range r1.Forest {
		if r.Child("rating").Value() == FiveStars {
			five++
		}
	}
	if five != 2 {
		t.Fatalf("five-star restaurants = %d, want 2", five)
	}
}

func TestRatingChain(t *testing.T) {
	spec := DefaultSpec()
	spec.RatingChainDepth = 2
	w := Hotels(spec)
	// Depth 2: first call returns a call, that returns a call, that
	// returns the value.
	resp, err := w.Registry.Invoke("getRating", []*tree.Node{tree.NewText(ratingParam(2, FiveStars))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	cur := resp.Forest
	for len(cur) == 1 && cur[0].Kind == tree.Call {
		hops++
		resp, err = w.Registry.Invoke("getRating", cloneParams(cur[0].Children), nil)
		if err != nil {
			t.Fatal(err)
		}
		cur = resp.Forest
	}
	if hops != 2 {
		t.Fatalf("chain hops = %d, want 2", hops)
	}
	if len(cur) != 1 || cur[0].Label != FiveStars {
		t.Fatalf("chain result = %v", cur)
	}
}

func cloneParams(ns []*tree.Node) []*tree.Node {
	out := make([]*tree.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}

func TestHiddenHotels(t *testing.T) {
	w := Hotels(DefaultSpec())
	resp, err := w.Registry.Invoke("getHotels", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Forest) != 8 {
		t.Fatalf("hidden hotels = %d", len(resp.Forest))
	}
	// Hidden hotels carry their own intensional parts.
	calls := 0
	for _, h := range resp.Forest {
		h.Walk(func(n *tree.Node) bool {
			if n.Kind == tree.Call {
				calls++
			}
			return true
		})
	}
	if calls == 0 {
		t.Fatal("hidden hotels should embed calls")
	}
}

func TestTeasers(t *testing.T) {
	spec := DefaultSpec()
	spec.TeaserKinds = 3
	w := Hotels(spec)
	names := w.Registry.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"getTeaser0", "getTeaser1", "getTeaser2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing teaser service %s in %v", want, names)
		}
	}
	if !w.Schema.IsFunction("getTeaser1") || !w.Schema.IsElement("teaser") {
		t.Fatal("teaser schema entries missing")
	}
	resp, err := w.Registry.Invoke("getTeaser0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tz := resp.Forest[0]
	if tz.Label != "teaser" || len(tz.Children) != 1 {
		t.Fatalf("teaser shape: %s", tz)
	}
}

func TestTagJoinWorld(t *testing.T) {
	spec := DefaultSpec()
	spec.TagJoinEvery = 2
	w := Hotels(spec)
	if w.JoinQuery == nil {
		t.Fatal("JoinQuery missing")
	}
	h0 := w.Doc.Root.Children[0]
	if h0.Child("tag").Value() != h0.Child("name").Value() {
		t.Fatal("hotel 0 tag should equal its name")
	}
	h1 := w.Doc.Root.Children[1]
	if h1.Child("tag").Value() == h1.Child("name").Value() {
		t.Fatal("hotel 1 tag should differ from its name")
	}
}

func TestTotalCalls(t *testing.T) {
	spec := HotelSpec{
		Hotels: 4, HiddenHotels: 2, TargetEvery: 2, FiveStarEvery: 2,
		IntensionalRatingEvery: 2, RestosPerCall: 1, MuseumsPerCall: 1,
		Latency: time.Millisecond,
	}
	// Per hotel: restos + museums = 2; hotels 0,2,4 add a rating call.
	// 6 hotels × 2 + 3 ratings + 1 getHotels = 16.
	if got := TotalCalls(spec); got != 16 {
		t.Fatalf("TotalCalls = %d, want 16", got)
	}
}

func TestMaterializedRestosAreBulk(t *testing.T) {
	spec := DefaultSpec()
	spec.MaterializedRestos = 3
	w := Hotels(spec)
	h0 := w.Doc.Root.Children[0]
	nearby := h0.Child("nearby")
	restos := 0
	for _, c := range nearby.Children {
		if c.Kind == tree.Element && c.Label == "restaurant" {
			restos++
			if c.Child("rating").Value() == FiveStars {
				t.Fatal("bulk restaurants must not match the query")
			}
		}
	}
	if restos != 3 {
		t.Fatalf("materialized restaurants = %d", restos)
	}
}

// TestWorldsConformToTheirSchema validates generated documents against
// the world's own schema — both the fresh intensional document and the
// fully materialised one (what the naive strategy produces), so service
// results are checked too.
func TestWorldsConformToTheirSchema(t *testing.T) {
	specs := map[string]HotelSpec{
		"default": DefaultSpec(),
		"rich": func() HotelSpec {
			s := DefaultSpec()
			s.TagJoinEvery = 2
			s.TeaserKinds = 3
			s.RatingChainDepth = 2
			s.MaterializedRestos = 2
			return s
		}(),
	}
	for name, spec := range specs {
		w := Hotels(spec)
		if err := w.Schema.ValidateDocument(w.Doc); err != nil {
			t.Errorf("%s: fresh document violates its schema: %v", name, err)
		}
		// Materialise everything by invoking every call to a fixpoint.
		doc := w.Doc.Clone()
		for rounds := 0; rounds < 100; rounds++ {
			calls := doc.Calls()
			if len(calls) == 0 {
				break
			}
			for _, c := range calls {
				resp, err := w.Registry.Invoke(c.Label, cloneParams(c.Children), nil)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				doc.ReplaceCall(c, resp.Forest)
			}
		}
		if len(doc.Calls()) != 0 {
			t.Fatalf("%s: fixpoint not reached", name)
		}
		if err := w.Schema.ValidateDocument(doc); err != nil {
			t.Errorf("%s: materialised document violates the schema: %v", name, err)
		}
	}
}
