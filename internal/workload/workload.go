// Package workload generates the synthetic documents, service back-ends
// and schemas used to reproduce the experiments of "Lazy Query Evaluation
// for Active XML" (SIGMOD 2004). The scenario is the paper's running
// example — a hotels directory with extensional and intensional parts —
// parameterised so each experiment can scale the dimension it studies:
// document size, share of irrelevant calls, call latency, result
// selectivity, nesting depth of calls-in-results, and the number of
// service kinds.
//
// Everything is deterministic: hotel i is fully determined by its index,
// and service handlers are pure functions of their parameters, so results
// are reproducible and handlers are safe for concurrent invocation.
package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// TargetName is the hotel name the default query filters on.
const TargetName = "Best Western"

// FiveStars is the rating value the default query filters on.
const FiveStars = "*****"

// HotelSpec parameterises the hotels world. Zero values give a tiny but
// complete world; DefaultSpec gives the baseline used by the experiments.
type HotelSpec struct {
	// Hotels is the number of extensional hotels in the document.
	Hotels int
	// HiddenHotels is the number of additional hotels returned by a
	// root-level getHotels call (0 omits the call).
	HiddenHotels int
	// TargetEvery makes every k-th hotel carry TargetName (others get a
	// unique name). 0 disables target names entirely.
	TargetEvery int
	// FiveStarEvery makes every k-th hotel five-star. Others get "***".
	FiveStarEvery int
	// IntensionalRatingEvery makes every k-th hotel's rating a getRating
	// call instead of a data value. 0 keeps all ratings extensional.
	IntensionalRatingEvery int
	// RatingChainDepth makes each getRating call resolve through a chain
	// of that many further getRating calls before producing the value —
	// the calls-returning-calls nesting the layering experiment sweeps.
	RatingChainDepth int
	// RestosPerCall is the number of restaurants a getNearbyRestos call
	// returns; FiveStarRestos of them are five-star (the push
	// selectivity knob). 0 restaurants omits the call.
	RestosPerCall  int
	FiveStarRestos int
	// MaterializedRestos adds that many extensional (non-matching)
	// restaurants to each hotel's nearby zone — pure document bulk for
	// the F-guide experiment.
	MaterializedRestos int
	// MuseumsPerCall is the number of museums a getNearbyMuseums call
	// returns. 0 omits the call. Museums are never query-relevant; they
	// are the irrelevant-call population the lazy strategies must avoid.
	MuseumsPerCall int
	// TeaserKinds adds one getTeaser<i> call (i cycling over the kinds)
	// to each hotel's nearby zone. Teasers have an exclusive-choice
	// content model (name|rating): exact type analysis proves they can
	// never satisfy a [name][rating] pattern, lenient analysis cannot —
	// the exact-vs-lenient divergence of Section 6.1.
	TeaserKinds int
	// TagJoinEvery adds a tag element to every hotel, equal to the
	// hotel's name on every k-th hotel — the value-join workload for the
	// relaxed-NFQ experiment. 0 omits tags.
	TagJoinEvery int
	// ExtrasPerCall gives every hotel an extras zone holding a getExtras
	// call returning that many extra elements. The query never touches
	// extras, so even pure position analysis (LPQs) prunes these calls —
	// the paper's "/goingout/restaurants" observation. 0 omits them.
	ExtrasPerCall int
	// Latency is the simulated per-call round-trip.
	Latency time.Duration
	// ServiceLatency overrides Latency per service name, modelling a
	// heterogeneous federation (one slow partner among fast ones) for
	// scheduling experiments. Services absent from the map keep Latency.
	ServiceLatency map[string]time.Duration
	// PushCapable marks the services with extensional results (nearby
	// restaurants, museums, extras, teasers, and ratings when unchained)
	// as able to evaluate pushed queries. getHotels results always embed
	// calls and are never push targets.
	PushCapable bool
}

// DefaultSpec is the baseline world: a quarter of the hotels match the
// target name, half of those are five-star, ratings are part intensional,
// and every hotel drags along an irrelevant museums call.
func DefaultSpec() HotelSpec {
	return HotelSpec{
		Hotels:                 40,
		HiddenHotels:           8,
		TargetEvery:            4,
		FiveStarEvery:          2,
		IntensionalRatingEvery: 3,
		RestosPerCall:          5,
		FiveStarRestos:         2,
		MuseumsPerCall:         5,
		ExtrasPerCall:          5,
		Latency:                10 * time.Millisecond,
	}
}

// World bundles everything an experiment run needs.
type World struct {
	// Doc is the generated AXML document.
	Doc *tree.Document
	// Registry serves the world's Web services.
	Registry *service.Registry
	// Schema declares the signatures and content models (Figure 2 style).
	Schema *schema.Schema
	// Query is the default Figure-4-style query.
	Query *pattern.Pattern
	// JoinQuery filters hotels through a name=tag value join; only set
	// when the spec enables tags.
	JoinQuery *pattern.Pattern
	// StarQuery matches any five-star venue (restaurant or otherwise)
	// with a name — the query the teaser experiment uses.
	StarQuery *pattern.Pattern
	// ExpectedResults is the ground-truth result count of Query on the
	// fully materialised document.
	ExpectedResults int
	// Spec echoes the generating parameters.
	Spec HotelSpec
}

// Hotels builds the world for a spec.
func Hotels(spec HotelSpec) *World {
	w := &World{Spec: spec}
	w.Schema = buildSchema(spec)
	w.Registry = buildRegistry(spec)
	w.Doc = buildDoc(spec)
	w.Query = pattern.MustParse(
		`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`)
	if spec.TagJoinEvery > 0 {
		w.JoinQuery = pattern.MustParse(
			`/hotels/hotel[name=$N][tag=$N][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $N, $X`)
	}
	w.StarQuery = pattern.MustParse(
		`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//*[rating="*****"][name=$X] -> $X`)
	w.ExpectedResults = expectedResults(spec)
	return w
}

// Deterministic per-hotel attributes.

func hotelName(spec HotelSpec, i int) string {
	if spec.TargetEvery > 0 && i%spec.TargetEvery == 0 {
		return TargetName
	}
	return fmt.Sprintf("Hotel-%d", i)
}

func hotelRating(spec HotelSpec, i int) string {
	if spec.FiveStarEvery > 0 && i%spec.FiveStarEvery == 0 {
		return FiveStars
	}
	return "***"
}

func hotelAddress(i int) string { return fmt.Sprintf("addr-%d", i) }

func intensionalRating(spec HotelSpec, i int) bool {
	return spec.IntensionalRatingEvery > 0 && i%spec.IntensionalRatingEvery == 0
}

func qualifies(spec HotelSpec, i int) bool {
	return hotelName(spec, i) == TargetName && hotelRating(spec, i) == FiveStars
}

func expectedResults(spec HotelSpec) int {
	total := 0
	for i := 0; i < spec.Hotels+spec.HiddenHotels; i++ {
		if qualifies(spec, i) {
			total += spec.FiveStarRestos
		}
	}
	return total
}

// buildDoc constructs the extensional document: spec.Hotels hotels plus
// the optional root getHotels call.
func buildDoc(spec HotelSpec) *tree.Document {
	root := tree.NewElement("hotels")
	for i := 0; i < spec.Hotels; i++ {
		root.Append(hotelTree(spec, i))
	}
	if spec.HiddenHotels > 0 {
		root.Append(tree.NewCall("getHotels", tree.NewText("all")))
	}
	return tree.NewDocument(root)
}

// hotelTree builds hotel i with its intensional parts.
func hotelTree(spec HotelSpec, i int) *tree.Node {
	h := tree.NewElement("hotel")
	h.Append(tree.NewElement("name")).Append(tree.NewText(hotelName(spec, i)))
	if spec.TagJoinEvery > 0 {
		tag := hotelName(spec, i)
		if i%spec.TagJoinEvery != 0 {
			tag = fmt.Sprintf("tag-%d", i)
		}
		h.Append(tree.NewElement("tag")).Append(tree.NewText(tag))
	}
	h.Append(tree.NewElement("address")).Append(tree.NewText(hotelAddress(i)))
	rating := h.Append(tree.NewElement("rating"))
	if intensionalRating(spec, i) {
		rating.Append(tree.NewCall("getRating", tree.NewText(ratingParam(spec.RatingChainDepth, hotelRating(spec, i)))))
	} else {
		rating.Append(tree.NewText(hotelRating(spec, i)))
	}
	nearby := h.Append(tree.NewElement("nearby"))
	for j := 0; j < spec.MaterializedRestos; j++ {
		nearby.Append(restaurantTree(fmt.Sprintf("Bulk-%d-%d", i, j), hotelAddress(i), "***"))
	}
	if spec.RestosPerCall > 0 {
		nearby.Append(tree.NewCall("getNearbyRestos", tree.NewText(hotelAddress(i))))
	}
	if spec.MuseumsPerCall > 0 {
		nearby.Append(tree.NewCall("getNearbyMuseums", tree.NewText(hotelAddress(i))))
	}
	if spec.TeaserKinds > 0 {
		kind := i % spec.TeaserKinds
		nearby.Append(tree.NewCall(teaserService(kind), tree.NewText(hotelAddress(i))))
	}
	if spec.ExtrasPerCall > 0 {
		extras := h.Append(tree.NewElement("extras"))
		extras.Append(tree.NewCall("getExtras", tree.NewText(hotelAddress(i))))
	}
	return h
}

func restaurantTree(name, addr, rating string) *tree.Node {
	r := tree.NewElement("restaurant")
	r.Append(tree.NewElement("name")).Append(tree.NewText(name))
	r.Append(tree.NewElement("address")).Append(tree.NewText(addr))
	r.Append(tree.NewElement("rating")).Append(tree.NewText(rating))
	return r
}

func teaserService(kind int) string { return fmt.Sprintf("getTeaser%d", kind) }

// ratingParam encodes a getRating chain: "depth|value". A call with depth
// d > 0 returns a call with depth d-1; depth 0 returns the value.
func ratingParam(depth int, value string) string {
	return strconv.Itoa(depth) + "|" + value
}

func parseRatingParam(s string) (int, string) {
	d, v, ok := strings.Cut(s, "|")
	if !ok {
		return 0, s
	}
	depth, err := strconv.Atoi(d)
	if err != nil {
		return 0, v
	}
	return depth, v
}

// paramText extracts the single text parameter of a call.
func paramText(params []*tree.Node) string {
	if len(params) == 1 {
		return params[0].Text()
	}
	var sb strings.Builder
	for _, p := range params {
		sb.WriteString(p.Text())
	}
	return sb.String()
}

// addrIndex recovers the hotel index from an "addr-i" parameter.
func addrIndex(addr string) int {
	s, ok := strings.CutPrefix(addr, "addr-")
	if !ok {
		return 0
	}
	i, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return i
}

func buildRegistry(spec HotelSpec) *service.Registry {
	reg := service.NewRegistry()
	latencyFor := func(name string) time.Duration {
		if l, ok := spec.ServiceLatency[name]; ok {
			return l
		}
		return spec.Latency
	}
	// addExt registers a service with extensional results (eligible for
	// query pushing); add registers one whose results embed calls.
	addExt := func(name string, h service.Handler) {
		reg.Register(&service.Service{
			Name:    name,
			Latency: latencyFor(name),
			CanPush: spec.PushCapable,
			Handler: h,
		})
	}
	add := func(name string, h service.Handler) {
		reg.Register(&service.Service{Name: name, Latency: latencyFor(name), Handler: h})
	}

	addRating := add
	if spec.RatingChainDepth == 0 {
		addRating = addExt
	}
	addRating("getRating", func(params []*tree.Node) ([]*tree.Node, error) {
		depth, value := parseRatingParam(paramText(params))
		if depth > 0 {
			return []*tree.Node{
				tree.NewCall("getRating", tree.NewText(ratingParam(depth-1, value))),
			}, nil
		}
		return []*tree.Node{tree.NewText(value)}, nil
	})

	addExt("getNearbyRestos", func(params []*tree.Node) ([]*tree.Node, error) {
		i := addrIndex(paramText(params))
		out := make([]*tree.Node, 0, spec.RestosPerCall)
		for j := 0; j < spec.RestosPerCall; j++ {
			rating := "***"
			if j < spec.FiveStarRestos {
				rating = FiveStars
			}
			out = append(out, restaurantTree(
				fmt.Sprintf("Resto-%d-%d", i, j), hotelAddress(i), rating))
		}
		return out, nil
	})

	addExt("getNearbyMuseums", func(params []*tree.Node) ([]*tree.Node, error) {
		i := addrIndex(paramText(params))
		out := make([]*tree.Node, 0, spec.MuseumsPerCall)
		for j := 0; j < spec.MuseumsPerCall; j++ {
			m := tree.NewElement("museum")
			m.Append(tree.NewElement("name")).Append(tree.NewText(fmt.Sprintf("Museum-%d-%d", i, j)))
			m.Append(tree.NewElement("address")).Append(tree.NewText(hotelAddress(i)))
			out = append(out, m)
		}
		return out, nil
	})

	if spec.HiddenHotels > 0 {
		add("getHotels", func(params []*tree.Node) ([]*tree.Node, error) {
			out := make([]*tree.Node, 0, spec.HiddenHotels)
			for i := spec.Hotels; i < spec.Hotels+spec.HiddenHotels; i++ {
				out = append(out, hotelTree(spec, i))
			}
			return out, nil
		})
	}

	if spec.ExtrasPerCall > 0 {
		addExt("getExtras", func(params []*tree.Node) ([]*tree.Node, error) {
			i := addrIndex(paramText(params))
			out := make([]*tree.Node, 0, spec.ExtrasPerCall)
			for j := 0; j < spec.ExtrasPerCall; j++ {
				x := tree.NewElement("extra")
				x.Append(tree.NewText(fmt.Sprintf("extra-%d-%d", i, j)))
				out = append(out, x)
			}
			return out, nil
		})
	}

	for k := 0; k < spec.TeaserKinds; k++ {
		addExt(teaserService(k), func(params []*tree.Node) ([]*tree.Node, error) {
			// A teaser carries a name or a rating, never both: it can
			// never satisfy a [name][rating] pattern.
			tz := tree.NewElement("teaser")
			tz.Append(tree.NewElement("name")).Append(tree.NewText("Teaser"))
			return []*tree.Node{tz}, nil
		})
	}
	return reg
}

func buildSchema(spec HotelSpec) *schema.Schema {
	var sb strings.Builder
	sb.WriteString(`functions:
  getHotels        = [in: data, out: hotel*]
  getRating        = [in: data, out: data|getRating]
  getNearbyRestos  = [in: data, out: restaurant*]
  getNearbyMuseums = [in: data, out: museum*]
  getExtras        = [in: data, out: extra*]
`)
	for k := 0; k < spec.TeaserKinds; k++ {
		fmt.Fprintf(&sb, "  %s = [in: data, out: teaser]\n", teaserService(k))
	}
	sb.WriteString(`elements:
  hotels     = (hotel|getHotels)*
  hotel      = name.tag?.address.rating.nearby.extras?
  nearby     = (restaurant|getNearbyRestos|museum|getNearbyMuseums`)
	for k := 0; k < spec.TeaserKinds; k++ {
		sb.WriteString("|" + teaserService(k))
	}
	sb.WriteString("|teaser)*\n")
	sb.WriteString(`  restaurant = name.address.rating
  extras     = (extra|getExtras)*
  extra      = data
  museum     = name.address
  teaser     = name|rating
  name       = data
  tag        = data
  address    = data
  rating     = data|getRating
`)
	s := schema.MustParse(sb.String())
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// TotalCalls returns the number of calls the naive strategy will invoke
// for the spec: every call in the document plus every call nested in the
// results, recursively. It is the denominator of the pruning-ratio
// metric.
func TotalCalls(spec HotelSpec) int {
	total := 0
	perHotel := func(i int) int {
		n := 0
		if intensionalRating(spec, i) {
			n += 1 + spec.RatingChainDepth
		}
		if spec.RestosPerCall > 0 {
			n++
		}
		if spec.MuseumsPerCall > 0 {
			n++
		}
		if spec.TeaserKinds > 0 {
			n++
		}
		if spec.ExtrasPerCall > 0 {
			n++
		}
		return n
	}
	for i := 0; i < spec.Hotels+spec.HiddenHotels; i++ {
		total += perHotel(i)
	}
	if spec.HiddenHotels > 0 {
		total++ // the getHotels call itself
	}
	return total
}
