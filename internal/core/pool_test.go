package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

// normalizedStats zeroes the wall-clock Stats fields (DetectTime, AnalysisTime
// measure host scheduling, not engine behaviour) so the remainder can be
// compared exactly across invocation-pool widths.
func normalizedStats(out *Outcome) Stats {
	st := out.Stats
	st.DetectTime = 0
	st.AnalysisTime = 0
	return st
}

// TestInvokePoolDifferentialAcrossSeeds is the acceptance net of the
// bounded invocation pool: over 50 seeded workloads, evaluation with
// InvokeWorkers ∈ {0 (unbounded), 2, 4, 8} must be indistinguishable
// from in-batch sequential execution (InvokeWorkers 1) — identical
// result sets, identical Stats (virtual clock included: a batch charges
// the max of its members' costs at every pool width), and identical
// trace streams — and must agree with both the naive fixpoint and the
// fully sequential (unbatched) mode.
func TestInvokePoolDifferentialAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	configs := []Options{
		{Strategy: LazyNFQ, Layering: true, Parallel: true, Incremental: true},
		// The E8 shape: typed pruning + pushing over layered batches.
		{Strategy: LazyNFQTyped, Layering: true, Parallel: true, Push: true},
	}
	for seed := int64(0); seed < 50; seed++ {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		naive, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
		if err != nil {
			t.Fatalf("seed %d: naive failed: %v", seed, err)
		}
		want := resultKeys(naive)
		for ci, base := range configs {
			if base.Strategy == LazyNFQTyped {
				base.Schema = w.Schema
			}
			// Fully sequential mode (no batching at all) sets the
			// result-identity bar for the parallel modes.
			seqOpt := base
			seqOpt.Parallel = false
			seq, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, seqOpt)
			if err != nil {
				t.Fatalf("seed %d cfg %d: sequential failed: %v", seed, ci, err)
			}
			if got := resultKeys(seq); got != want {
				t.Fatalf("seed %d cfg %d: sequential disagrees with naive\n got %q\nwant %q", seed, ci, got, want)
			}

			run := func(invokeWorkers int) (*Outcome, []TraceEvent) {
				opt := base
				opt.InvokeWorkers = invokeWorkers
				var events []TraceEvent
				opt.Trace = func(ev TraceEvent) { events = append(events, ev) }
				out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
				if err != nil {
					t.Fatalf("seed %d cfg %d workers %d: %v", seed, ci, invokeWorkers, err)
				}
				return out, events
			}
			refOut, refEvents := run(1)
			if got := resultKeys(refOut); got != want {
				t.Fatalf("seed %d cfg %d: in-batch sequential disagrees with naive\n got %q\nwant %q",
					seed, ci, got, want)
			}
			refStats := normalizedStats(refOut)
			for _, workers := range []int{0, 2, 4, 8} {
				out, events := run(workers)
				if got := resultKeys(out); got != want {
					t.Fatalf("seed %d cfg %d workers %d: results diverge\n got %q\nwant %q",
						seed, ci, workers, got, want)
				}
				if st := normalizedStats(out); st != refStats {
					t.Fatalf("seed %d cfg %d workers %d: stats diverge\n got %+v\nwant %+v",
						seed, ci, workers, st, refStats)
				}
				if !reflect.DeepEqual(events, refEvents) {
					t.Fatalf("seed %d cfg %d workers %d: trace stream diverges (%d vs %d events)",
						seed, ci, workers, len(events), len(refEvents))
				}
			}
		}
	}
}

// TestInvokeWorkersImpliesParallel: setting only InvokeWorkers > 1 turns
// on batching, exactly like Speculative does for Parallel — the round
// count drops to the batched shape and the virtual clock charges max-
// not-sum per batch.
func TestInvokeWorkersImpliesParallel(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	batched, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry,
		Options{Strategy: LazyNFQ, Layering: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	implied, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry,
		Options{Strategy: LazyNFQ, Layering: true, InvokeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if implied.Stats.Rounds != batched.Stats.Rounds ||
		implied.Stats.VirtualTime != batched.Stats.VirtualTime {
		t.Fatalf("InvokeWorkers 4 did not imply Parallel: rounds %d vs %d, virtual %v vs %v",
			implied.Stats.Rounds, batched.Stats.Rounds,
			implied.Stats.VirtualTime, batched.Stats.VirtualTime)
	}
	if got := resultKeys(implied); got != resultKeys(batched) {
		t.Fatal("implied-parallel results diverge from explicit-parallel results")
	}
}

// TestInvokePoolWorkerSpans: invoke spans carry the deterministic
// member→worker assignment (member i on worker i mod width), and the
// span stream is identical across repeated runs.
func TestInvokePoolWorkerSpans(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	const width = 3
	type spanKey struct {
		name    string
		worker  int
		virtual time.Duration
		service string
		round   string
	}
	run := func() ([]spanKey, int) {
		tracer := telemetry.NewTracer(0)
		_, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{
			Strategy: LazyNFQ, Layering: true, InvokeWorkers: width, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		var keys []spanKey
		maxWorker := 0
		for _, s := range tracer.Spans(0) {
			if s.Name != "invoke" {
				continue
			}
			if s.Worker < 0 || s.Worker >= width {
				t.Fatalf("invoke span worker %d outside pool width %d", s.Worker, width)
			}
			if s.Worker > maxWorker {
				maxWorker = s.Worker
			}
			keys = append(keys, spanKey{s.Name, s.Worker, s.Virtual, s.Attr("service"), s.Attr("round")})
		}
		return keys, maxWorker
	}
	first, maxWorker := run()
	if len(first) == 0 {
		t.Fatal("no invoke spans recorded")
	}
	if maxWorker == 0 {
		t.Fatal("every invoke span ran on worker 0 — the pool never striped a batch")
	}
	second, _ := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("invoke span streams differ across identical runs")
	}
}

// TestInvokePoolRaceFaultsCacheRetries drives the bounded invocation
// pool against the full production stack — response cache over fault
// injector, engine retries, best effort — from several concurrent
// evaluators sharing one cache. Under -race this is the pool's
// concurrency proof; semantically every evaluator must converge to the
// fault-free result set.
func TestInvokePoolRaceFaultsCacheRetries(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
	if err != nil {
		t.Fatal(err)
	}
	want := resultKeys(baseline)

	cache := service.NewCache(service.CacheSpec{})
	reg := cache.Wrap(service.NewFaults(service.FaultSpec{
		Seed: 41, ErrorRate: 0.2, TimeoutRate: 0.05, LatencyJitter: time.Millisecond,
	}).Wrap(w.Registry))

	const evaluators = 6
	var wg sync.WaitGroup
	errs := make([]error, evaluators)
	for g := 0; g < evaluators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, err := Evaluate(w.Doc.Clone(), w.Query, reg, Options{
				Strategy: LazyNFQ, Layering: true, Incremental: true,
				Workers: 4, InvokeWorkers: 8,
				Retry:   RetryPolicy{MaxAttempts: 25, Backoff: time.Millisecond, Jitter: 0.5, Seed: int64(g)},
				Failure: BestEffort,
			})
			switch {
			case err != nil:
				errs[g] = err
			case len(out.Failures) != 0:
				errs[g] = fmt.Errorf("gave up on %d calls", len(out.Failures))
			case resultKeys(out) != want:
				errs[g] = fmt.Errorf("results disagree with fault-free baseline")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("evaluator %d: %v", g, err)
		}
	}
}
