package core

import (
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/tree"
)

// Complete reports whether the document is complete for the query
// (Definition 3 of the paper): no function call of the document is
// relevant, so the snapshot result already equals the full result. When a
// schema is supplied, relevance is the type-refined notion of Section 5
// (fewer calls are relevant); with a nil schema it is the untyped notion
// of Proposition 1. Relevant returns the relevant calls themselves, in
// ascending document-ID order, deduplicated.
func Complete(doc *tree.Document, q *pattern.Pattern, sch *schema.Schema, mode schema.Mode) (bool, error) {
	calls, err := Relevant(doc, q, sch, mode)
	if err != nil {
		return false, err
	}
	return len(calls) == 0, nil
}

// Relevant computes the calls of the document currently relevant for the
// query, by evaluating every node-focused query (Sections 3.2 and 5).
func Relevant(doc *tree.Document, q *pattern.Pattern, sch *schema.Schema, mode schema.Mode) ([]*tree.Node, error) {
	opt := rewrite.Options{}
	var an *schema.Analyzer
	if sch != nil {
		an = schema.NewAnalyzer(sch, q, mode)
		names := map[string]bool{}
		for _, n := range sch.FunctionNames() {
			names[n] = true
		}
		for _, c := range doc.Calls() {
			names[c.Label] = true
		}
		opt.Analyzer = an
		for n := range names {
			opt.Names = append(opt.Names, n)
		}
		sortStrings(opt.Names)
	}
	nfqs, err := rewrite.BuildAll(q, opt)
	if err != nil {
		return nil, err
	}
	seen := map[*tree.Node]bool{}
	var out []*tree.Node
	for _, nfq := range nfqs {
		for _, c := range pattern.MatchedCalls(doc, nfq.Query, nfq.Out) {
			if !nfq.SatisfiesOut(an, c.Label) || seen[c] {
				continue
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	sortByID(out)
	return out, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortByID(ns []*tree.Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID < ns[j-1].ID; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
