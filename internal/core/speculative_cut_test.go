package core

import (
	"testing"

	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func TestSortByDocOrder(t *testing.T) {
	w := workload.Hotels(workload.HotelSpec{
		Hotels: 4, TargetEvery: 1, FiveStarEvery: 1,
		RestosPerCall: 1, MuseumsPerCall: 1, TeaserKinds: 2,
	})
	doc := w.Doc.Clone()
	calls := doc.Calls()
	if len(calls) < 3 {
		t.Fatalf("world too small: %d calls", len(calls))
	}
	scrambled := make([]*tree.Node, len(calls))
	nfqs := make([]*rewrite.NFQ, len(calls))
	for i := range calls {
		scrambled[i] = calls[len(calls)-1-i]
	}
	sortByDocOrder(scrambled, nfqs, doc)
	for i := range calls {
		if scrambled[i] != calls[i] {
			t.Fatalf("position %d not in document order after sort", i)
		}
	}
}

// TestSpeculativeBudgetCutsInDocOrder pins the MaxCalls cut of a
// speculative batch: the invoked prefix must be the batch's
// document-order head — not whatever NFQ-retrieval order the batch was
// assembled in — and the dropped calls must leave the evaluation
// reporting Complete=false with the budget fully spent, exactly like
// the sequential MaxCalls path.
func TestSpeculativeBudgetCutsInDocOrder(t *testing.T) {
	spec := workload.HotelSpec{
		Hotels: 6, TargetEvery: 1, FiveStarEvery: 1,
		RestosPerCall: 2, MuseumsPerCall: 2, TeaserKinds: 2, ExtrasPerCall: 1,
	}
	base := Options{Strategy: LazyNFQ, Layering: true, Speculative: true}

	// Reference run: learn the first speculative batch's membership and
	// its NFQ-retrieval order.
	w := workload.Hotels(spec)
	var refEvents []TraceEvent
	ref := base
	ref.Trace = func(ev TraceEvent) { refEvents = append(refEvents, ev) }
	if _, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, ref); err != nil {
		t.Fatal(err)
	}
	firstBatch := 0
	for _, ev := range refEvents {
		if ev.Kind == TraceInvoke {
			firstBatch = ev.Calls
			break
		}
	}
	if firstBatch < 2 {
		t.Fatalf("first speculative batch too small to cut: %d", firstBatch)
	}
	budget := firstBatch - 1

	// Capped run: the budget is exhausted inside the first batch, so
	// every invoked call must come from that batch — and in document
	// order, which OnMutate observes by node identity (paths are not
	// positionally unique).
	w2 := workload.Hotels(spec)
	doc := w2.Doc.Clone()
	pos := map[*tree.Node]int{}
	for i, c := range doc.Calls() {
		pos[c] = i
	}
	var invokedPos []int
	capped := base
	capped.MaxCalls = budget
	capped.OnMutate = func(parent, call *tree.Node, inserted []*tree.Node) {
		p, ok := pos[call]
		if !ok {
			p = -1 // a later-round call, impossible under this budget
		}
		invokedPos = append(invokedPos, p)
	}
	out, err := Evaluate(doc, w2.Query, w2.Registry, capped)
	if err != nil {
		t.Fatal(err)
	}
	if len(invokedPos) != budget {
		t.Fatalf("invoked %d calls, want the cut batch of %d", len(invokedPos), budget)
	}
	for i, p := range invokedPos {
		if p < 0 {
			t.Fatalf("invocation %d is not a first-batch call", i)
		}
		if i > 0 && p <= invokedPos[i-1] {
			t.Fatalf("cut batch not in document order: positions %v", invokedPos)
		}
	}
	if out.Stats.CallsInvoked != budget {
		t.Fatalf("CallsInvoked %d, want %d", out.Stats.CallsInvoked, budget)
	}
	if out.Complete {
		t.Fatal("budget-cut evaluation claimed completeness")
	}
}
