package core

import (
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// PlanCall describes one member of an invocation batch to the planner:
// its position in the batch (member order is document order within a
// safe batch, NFQ-retrieval order within a speculative one), the
// service it targets, and whether the engine holds a pushable subquery
// for it.
type PlanCall struct {
	Index   int
	Service string
	Push    bool
}

// BatchPlan is a planner's decision for one batch. The engine only
// accepts schedules that preserve semantics: Queues must hold every
// member index exactly once, and Width must be within [1, requested].
// An invalid plan is ignored and the batch runs on the static striped
// schedule — a buggy planner can cost performance, never correctness.
type BatchPlan struct {
	// Width is the effective pool width: how many workers to run.
	Width int
	// Queues assigns members to workers: Queues[w] is worker w's run
	// list, executed sequentially in order. len(Queues) == Width.
	Queues [][]int
	// Attrs is the plan's rationale — the cost inputs behind the chosen
	// order and width — rendered on the "plan" telemetry span so
	// -explain shows not just the schedule but why.
	Attrs []telemetry.Attr
}

// InvocationPlanner decides how each invocation round executes. The
// engine consults it at three points: PlanBatch schedules a parallel
// batch (order, width), AllowPush gates shipping a subquery to a
// service, and AdmitSpeculative bounds a speculative batch under a
// latency budget. Implementations must be safe for concurrent use —
// the session layer shares one planner across evaluations.
//
// The contract is that planning never changes results: a plan may only
// reorder batch members across workers, shrink the pool, withhold a
// push from a service that provably ignores pushes (the response is
// identical either way), and defer speculative calls to a later round
// (they are re-detected and invoked before the evaluation can finish).
type InvocationPlanner interface {
	// PlanBatch schedules one batch over at most width workers.
	PlanBatch(calls []PlanCall, width int) BatchPlan
	// AllowPush reports whether a subquery should be shipped with calls
	// to the named service. Returning false must be response-neutral:
	// only veto services observed to never honour a push.
	AllowPush(service string) bool
	// AdmitSpeculative selects which members of a speculative batch to
	// launch this round, returned as ascending member indices. An empty
	// or invalid selection admits the whole batch; implementations must
	// always admit at least one call so deferral cannot livelock.
	AdmitSpeculative(calls []PlanCall) []int
}

// planCalls builds the planner's view of a batch.
func planCalls(calls []*tree.Node, pushes []*pattern.Pattern) []PlanCall {
	out := make([]PlanCall, len(calls))
	for i, c := range calls {
		out[i] = PlanCall{Index: i, Service: c.Label, Push: pushes[i] != nil}
	}
	return out
}

// validQueues reports whether a plan's queues are a permutation of the
// batch: every member index in [0, n) appears exactly once.
func validQueues(queues [][]int, n int) bool {
	seen := make([]bool, n)
	total := 0
	for _, q := range queues {
		for _, i := range q {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
			total++
		}
	}
	return total == n
}
