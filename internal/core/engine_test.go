package core

import (
	"testing"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// run evaluates the world's default query under the options and checks
// completeness and the ground-truth result count.
func run(t *testing.T, w *workload.World, opt Options) *Outcome {
	t.Helper()
	doc := w.Doc.Clone()
	if opt.Strategy == LazyNFQTyped && opt.Schema == nil {
		opt.Schema = w.Schema
	}
	out, err := Evaluate(doc, w.Query, w.Registry, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("%v: evaluation incomplete (budget too small?)", opt.Strategy)
	}
	if len(out.Results) != w.ExpectedResults {
		t.Fatalf("%v: got %d results, want %d", opt.Strategy, len(out.Results), w.ExpectedResults)
	}
	return out
}

func TestAllStrategiesAgreeOnResults(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	strategies := []Options{
		{Strategy: NaiveFixpoint},
		{Strategy: TopDownEager},
		{Strategy: LazyLPQ},
		{Strategy: LazyNFQ},
		{Strategy: LazyNFQTyped},
		{Strategy: LazyNFQ, Layering: true},
		{Strategy: LazyNFQ, Layering: true, Parallel: true},
		{Strategy: LazyNFQTyped, Layering: true, Parallel: true},
		{Strategy: LazyNFQTyped, SchemaMode: schema.Lenient},
		{Strategy: LazyNFQ, UseGuide: true},
		{Strategy: LazyNFQTyped, UseGuide: true, Layering: true, Parallel: true},
		{Strategy: LazyNFQ, RelaxJoins: true},
	}
	for _, opt := range strategies {
		run(t, w, opt)
	}
}

func TestLazyInvokesFewerCallsThanNaive(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	naive := run(t, w, Options{Strategy: NaiveFixpoint})
	lpq := run(t, w, Options{Strategy: LazyLPQ})
	nfq := run(t, w, Options{Strategy: LazyNFQ})
	typed := run(t, w, Options{Strategy: LazyNFQTyped})

	if naive.Stats.CallsInvoked != workload.TotalCalls(w.Spec) {
		t.Errorf("naive calls = %d, want %d", naive.Stats.CallsInvoked, workload.TotalCalls(w.Spec))
	}
	// The pruning hierarchy of the paper: position-only pruning (LPQ) ≥
	// condition pruning (NFQ) ≥ type pruning (NFQ+types); naive invokes
	// everything.
	if !(naive.Stats.CallsInvoked > lpq.Stats.CallsInvoked) {
		t.Errorf("LPQ (%d calls) should beat naive (%d)", lpq.Stats.CallsInvoked, naive.Stats.CallsInvoked)
	}
	if !(lpq.Stats.CallsInvoked >= nfq.Stats.CallsInvoked) {
		t.Errorf("NFQ (%d calls) should not exceed LPQ (%d)", nfq.Stats.CallsInvoked, lpq.Stats.CallsInvoked)
	}
	if !(nfq.Stats.CallsInvoked > typed.Stats.CallsInvoked) {
		t.Errorf("types (%d calls) should beat untyped NFQ (%d)", typed.Stats.CallsInvoked, nfq.Stats.CallsInvoked)
	}
}

func TestTypedPruningSkipsMuseums(t *testing.T) {
	// With signatures, no museums call is ever invoked.
	w := workload.Hotels(workload.DefaultSpec())
	doc := w.Doc.Clone()
	w.Registry.ResetStats()
	out, err := Evaluate(doc, w.Query, w.Registry, Options{Strategy: LazyNFQTyped, Schema: w.Schema})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatal("incomplete")
	}
	for _, c := range doc.Calls() {
		if c.Label == "getRating" || c.Label == "getNearbyRestos" {
			continue
		}
	}
	// Museums calls of qualifying hotels remain unexpanded in the doc.
	museums := 0
	for _, c := range doc.Calls() {
		if c.Label == "getNearbyMuseums" {
			museums++
		}
	}
	if museums == 0 {
		t.Fatal("typed evaluation should leave museum calls unexpanded")
	}
}

func TestParallelReducesVirtualTime(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Latency = 20 * time.Millisecond
	w := workload.Hotels(spec)
	seq := run(t, w, Options{Strategy: LazyNFQTyped, Layering: true})
	par := run(t, w, Options{Strategy: LazyNFQTyped, Layering: true, Parallel: true})
	if par.Stats.CallsInvoked != seq.Stats.CallsInvoked {
		t.Fatalf("parallelism changed the relevant set: %d vs %d",
			par.Stats.CallsInvoked, seq.Stats.CallsInvoked)
	}
	if par.Stats.VirtualTime >= seq.Stats.VirtualTime {
		t.Errorf("parallel virtual time %v should beat sequential %v",
			par.Stats.VirtualTime, seq.Stats.VirtualTime)
	}
	if par.Stats.Rounds >= seq.Stats.Rounds {
		t.Errorf("parallel rounds %d should beat sequential %d",
			par.Stats.Rounds, seq.Stats.Rounds)
	}
}

func TestLayeringReducesRelevanceQueries(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.RatingChainDepth = 3
	w := workload.Hotels(spec)
	flat := run(t, w, Options{Strategy: LazyNFQ})
	layered := run(t, w, Options{Strategy: LazyNFQ, Layering: true})
	if flat.Stats.CallsInvoked != layered.Stats.CallsInvoked {
		t.Fatalf("layering changed the relevant set: %d vs %d",
			flat.Stats.CallsInvoked, layered.Stats.CallsInvoked)
	}
	if layered.Stats.RelevanceQueries >= flat.Stats.RelevanceQueries {
		t.Errorf("layered NFQ evaluations %d should beat flat %d",
			layered.Stats.RelevanceQueries, flat.Stats.RelevanceQueries)
	}
}

func TestPushReducesBytes(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.PushCapable = true
	spec.RestosPerCall = 50
	spec.FiveStarRestos = 2
	w := workload.Hotels(spec)
	plain := run(t, w, Options{Strategy: LazyNFQTyped})
	pushed := run(t, w, Options{Strategy: LazyNFQTyped, Push: true})
	if pushed.Stats.PushedCalls == 0 {
		t.Fatal("no calls were pushed")
	}
	if pushed.Stats.BytesFetched >= plain.Stats.BytesFetched {
		t.Errorf("push bytes %d should beat plain %d",
			pushed.Stats.BytesFetched, plain.Stats.BytesFetched)
	}
}

func TestPushWithJoinQueryIsNotPushedUnsafely(t *testing.T) {
	// The join query shares $N between the hotel and... actually its
	// restaurant subquery only uses $X, which is a result var, so the
	// restaurant subtree is pushable; but the tag subtree ($N, not a
	// result of sub_tag) must not be pushed. Correctness is the check:
	// results must match the non-push run.
	spec := workload.DefaultSpec()
	spec.PushCapable = true
	spec.TagJoinEvery = 2
	w := workload.Hotels(spec)
	docA, docB := w.Doc.Clone(), w.Doc.Clone()
	a, err := Evaluate(docA, w.JoinQuery, w.Registry, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(docB, w.JoinQuery, w.Registry, Options{Strategy: LazyNFQ, Push: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("push changed join results: %d vs %d", len(a.Results), len(b.Results))
	}
	if len(a.Results) == 0 {
		t.Fatal("join query should have results")
	}
}

func TestGuideAgreesWithDirectDetection(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.MaterializedRestos = 5
	w := workload.Hotels(spec)
	direct := run(t, w, Options{Strategy: LazyNFQ})
	guided := run(t, w, Options{Strategy: LazyNFQ, UseGuide: true})
	if direct.Stats.CallsInvoked != guided.Stats.CallsInvoked {
		t.Fatalf("guide changed the relevant set: %d vs %d",
			direct.Stats.CallsInvoked, guided.Stats.CallsInvoked)
	}
	if guided.Stats.GuideCandidates == 0 {
		t.Fatal("guide produced no candidates")
	}
}

func TestRelaxedJoinsInvokeMoreButAgree(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.TagJoinEvery = 2
	w := workload.Hotels(spec)
	docA, docB := w.Doc.Clone(), w.Doc.Clone()
	strict, err := Evaluate(docA, w.JoinQuery, w.Registry, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Evaluate(docB, w.JoinQuery, w.Registry, Options{Strategy: LazyNFQ, RelaxJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Results) != len(relaxed.Results) {
		t.Fatalf("relaxation changed results: %d vs %d", len(strict.Results), len(relaxed.Results))
	}
	if relaxed.Stats.CallsInvoked <= strict.Stats.CallsInvoked {
		t.Errorf("relaxed joins should invoke more calls: %d vs %d",
			relaxed.Stats.CallsInvoked, strict.Stats.CallsInvoked)
	}
}

func TestExactVsLenientTypesOnTeasers(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.TeaserKinds = 4
	w := workload.Hotels(spec)
	// The star query accepts any venue kind, so only type analysis can
	// rule teasers out; exact analysis proves (name|rating) cannot hold
	// both, lenient cannot.
	docA, docB := w.Doc.Clone(), w.Doc.Clone()
	exact, err := Evaluate(docA, w.StarQuery, w.Registry,
		Options{Strategy: LazyNFQTyped, Schema: w.Schema, SchemaMode: schema.Exact})
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := Evaluate(docB, w.StarQuery, w.Registry,
		Options{Strategy: LazyNFQTyped, Schema: w.Schema, SchemaMode: schema.Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Results) != len(lenient.Results) {
		t.Fatalf("modes disagree on results: %d vs %d", len(exact.Results), len(lenient.Results))
	}
	if lenient.Stats.CallsInvoked <= exact.Stats.CallsInvoked {
		t.Errorf("lenient should invoke more calls (teasers): %d vs %d",
			lenient.Stats.CallsInvoked, exact.Stats.CallsInvoked)
	}
}

func TestBudgetStopsEvaluation(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	doc := w.Doc.Clone()
	out, err := Evaluate(doc, w.Query, w.Registry, Options{Strategy: NaiveFixpoint, MaxCalls: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete {
		t.Fatal("tiny budget should not complete")
	}
	if out.Stats.CallsInvoked > 3 {
		t.Fatalf("budget exceeded: %d", out.Stats.CallsInvoked)
	}
}

func TestTypedWithoutSchemaFails(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	_, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: LazyNFQTyped})
	if err == nil {
		t.Fatal("LazyNFQTyped without schema must fail")
	}
}

func TestExtendedQueryRejected(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	q := pattern.MustParse(`/hotels[(a|b)]`)
	if _, err := Evaluate(w.Doc.Clone(), q, w.Registry, Options{Strategy: LazyNFQ}); err == nil {
		t.Fatal("extended query must be rejected")
	}
}

func TestUnknownStrategy(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	if _, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: Strategy(99)}); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

func TestServiceErrorPropagates(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "f", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return nil, errTest
	}})
	root := tree.NewElement("r")
	root.Append(tree.NewElement("a")).Append(tree.NewCall("f"))
	doc := tree.NewDocument(root)
	q := pattern.MustParse(`/r/a/"v"`)
	if _, err := Evaluate(doc, q, reg, Options{Strategy: LazyNFQ}); err == nil {
		t.Fatal("service error must propagate")
	}
	// Also through the parallel path.
	root2 := tree.NewElement("r")
	root2.Append(tree.NewElement("a")).Append(tree.NewCall("f"))
	doc2 := tree.NewDocument(root2)
	if _, err := Evaluate(doc2, q, reg, Options{Strategy: NaiveFixpoint, Parallel: true}); err == nil {
		t.Fatal("service error must propagate from batches")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestUnknownServiceInDocument(t *testing.T) {
	// A relevant call to an unregistered service is an error.
	reg := service.NewRegistry()
	root := tree.NewElement("r")
	root.Append(tree.NewElement("a")).Append(tree.NewCall("ghost"))
	doc := tree.NewDocument(root)
	q := pattern.MustParse(`/r/a/"v"`)
	if _, err := Evaluate(doc, q, reg, Options{Strategy: LazyNFQ}); err == nil {
		t.Fatal("unknown service must fail")
	}
	// But an *irrelevant* call to an unregistered service is never
	// touched by the lazy strategies.
	root2 := tree.NewElement("r")
	root2.Append(tree.NewElement("a")).Append(tree.NewText("v"))
	root2.Append(tree.NewElement("zzz")).Append(tree.NewCall("ghost"))
	doc2 := tree.NewDocument(root2)
	out, err := Evaluate(doc2, q, reg, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatalf("irrelevant unknown service should be skipped: %v", err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("results = %v", out.Results)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		NaiveFixpoint: "naive", TopDownEager: "eager", LazyLPQ: "lazy-lpq",
		LazyNFQ: "lazy-nfq", LazyNFQTyped: "lazy-nfq-typed", Strategy(7): "strategy(7)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	out := run(t, w, Options{Strategy: LazyNFQTyped, Layering: true})
	st := out.Stats
	if st.CallsInvoked == 0 || st.RelevanceQueries == 0 || st.Rounds == 0 ||
		st.NodesVisited == 0 || st.BytesFetched == 0 || st.VirtualTime == 0 ||
		st.FinalSize == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
	if st.AnalysisTime <= 0 || st.DetectTime <= 0 {
		t.Fatalf("timers not populated: %+v", st)
	}
}

func TestSpeculativeMinimisesRounds(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.RatingChainDepth = 2
	w := workload.Hotels(spec)
	safe := run(t, w, Options{Strategy: LazyNFQ, Layering: true, Parallel: true})
	speculative := run(t, w, Options{Strategy: LazyNFQ, Layering: true, Speculative: true})
	// Speculation can only shrink rounds (and hence virtual time); it
	// may invoke extra calls that strict relevance would have skipped.
	if speculative.Stats.Rounds > safe.Stats.Rounds {
		t.Errorf("speculative rounds %d should not exceed safe %d",
			speculative.Stats.Rounds, safe.Stats.Rounds)
	}
	if speculative.Stats.CallsInvoked < safe.Stats.CallsInvoked {
		t.Errorf("speculation cannot invoke fewer calls than the relevant set: %d vs %d",
			speculative.Stats.CallsInvoked, safe.Stats.CallsInvoked)
	}
	if speculative.Stats.VirtualTime > safe.Stats.VirtualTime {
		t.Errorf("speculative virtual time %v should not exceed safe %v",
			speculative.Stats.VirtualTime, safe.Stats.VirtualTime)
	}
}

func TestSpeculativeWithPushAndGuide(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.PushCapable = true
	w := workload.Hotels(spec)
	out := run(t, w, Options{
		Strategy: LazyNFQTyped, Layering: true, Speculative: true,
		Push: true, UseGuide: true,
	})
	if out.Stats.PushedCalls == 0 {
		t.Fatal("speculative batches should still push subqueries")
	}
}

func TestCompleteAndRelevant(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	doc := w.Doc.Clone()
	ok, err := Complete(doc, w.Query, nil, schema.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fresh document cannot be complete")
	}
	// Typed relevance is a subset of untyped relevance.
	untyped, err := Relevant(doc, w.Query, nil, schema.Exact)
	if err != nil {
		t.Fatal(err)
	}
	typed, err := Relevant(doc, w.Query, w.Schema, schema.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if len(typed) >= len(untyped) {
		t.Fatalf("typed relevance %d should be smaller than untyped %d", len(typed), len(untyped))
	}
	inUntyped := map[*tree.Node]bool{}
	for _, c := range untyped {
		inUntyped[c] = true
	}
	for _, c := range typed {
		if !inUntyped[c] {
			t.Fatalf("typed-relevant call %s missing from untyped set", c.Label)
		}
	}
	// After a lazy evaluation, the document is complete for the query.
	out, err := Evaluate(doc, w.Query, w.Registry, Options{Strategy: LazyNFQ})
	if err != nil || !out.Complete {
		t.Fatalf("evaluation failed: %v", err)
	}
	ok, err = Complete(doc, w.Query, nil, schema.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		left, _ := Relevant(doc, w.Query, nil, schema.Exact)
		t.Fatalf("document not complete after lazy evaluation; %d calls left", len(left))
	}
}

// TestCompletenessInvariant is the core semantic check of Definition 3:
// after any lazy evaluation completes, continuing with the naive fixpoint
// cannot change the query result.
func TestCompletenessInvariant(t *testing.T) {
	specs := []workload.HotelSpec{
		workload.DefaultSpec(),
		func() workload.HotelSpec {
			s := workload.DefaultSpec()
			s.RatingChainDepth = 2
			s.TeaserKinds = 2
			return s
		}(),
		func() workload.HotelSpec {
			s := workload.DefaultSpec()
			s.TargetEvery = 1 // every hotel matches the name
			s.FiveStarEvery = 3
			return s
		}(),
	}
	for _, spec := range specs {
		w := workload.Hotels(spec)
		for _, opt := range []Options{
			{Strategy: LazyLPQ},
			{Strategy: LazyNFQ, Layering: true, Parallel: true},
			{Strategy: LazyNFQTyped, Schema: w.Schema, UseGuide: true},
		} {
			doc := w.Doc.Clone()
			lazy, err := Evaluate(doc, w.Query, w.Registry, opt)
			if err != nil || !lazy.Complete {
				t.Fatalf("%v: %v", opt.Strategy, err)
			}
			// Materialise everything that remains and re-evaluate.
			rest, err := Evaluate(doc, w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
			if err != nil || !rest.Complete {
				t.Fatalf("fixpoint: %v", err)
			}
			if len(rest.Results) != len(lazy.Results) {
				t.Fatalf("%v: lazy result %d != post-fixpoint result %d — lazy stopped too early",
					opt.Strategy, len(lazy.Results), len(rest.Results))
			}
		}
	}
}

// TestOnMutateObservesEveryReplacement checks the Options.OnMutate hook:
// it fires once per successful invocation, with the removed call node,
// its pre-splice parent and the inserted forest — enough for an external
// IncrementalEvaluator to Invalidate in lockstep with the engine's own
// shards, and for an external F-guide to ApplyExpansion.
func TestOnMutateObservesEveryReplacement(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	doc := w.Doc.Clone()
	type mut struct {
		parent, removed *tree.Node
		inserted        []*tree.Node
	}
	var muts []mut
	out, err := Evaluate(doc, w.Query, w.Registry, Options{
		Strategy: LazyNFQ,
		OnMutate: func(parent, removed *tree.Node, inserted []*tree.Node) {
			muts = append(muts, mut{parent, removed, inserted})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != out.Stats.CallsInvoked {
		t.Fatalf("OnMutate fired %d times, want one per invocation (%d)", len(muts), out.Stats.CallsInvoked)
	}
	for i, m := range muts {
		if m.removed == nil || m.removed.Kind != tree.Call {
			t.Fatalf("mutation %d: removed node is not a call", i)
		}
		if m.parent == nil {
			t.Fatalf("mutation %d: nil parent", i)
		}
		for _, n := range m.inserted {
			if n.Parent != m.parent {
				t.Fatalf("mutation %d: inserted root not attached under parent", i)
			}
		}
	}
	// The hook sees mutations on the document being evaluated: keeping an
	// external incremental evaluator in sync must reproduce Eval exactly.
	ie := pattern.NewIncremental(w.Query)
	doc2 := w.Doc.Clone()
	ie.EvalIncremental(doc2)
	out2, err := Evaluate(doc2, w.Query, w.Registry, Options{
		Strategy: LazyNFQ,
		OnMutate: func(parent, removed *tree.Node, _ []*tree.Node) { ie.Invalidate(parent, removed) },
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ie.EvalIncremental(doc2)
	if len(got) != len(out2.Results) {
		t.Fatalf("external incremental evaluator: %d results, engine %d", len(got), len(out2.Results))
	}
}
