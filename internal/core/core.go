// Package core implements the lazy query-evaluation engine of "Lazy Query
// Evaluation for Active XML" (SIGMOD 2004): given an AXML document, a
// tree-pattern query and a registry of Web services, it computes the
// query's *full* result while invoking as few embedded service calls as
// possible.
//
// The engine implements the paper's algorithms as selectable strategies:
//
//   - NaiveFixpoint — the strawman of Section 1: invoke every call in the
//     document, recursively, until no call remains, then evaluate.
//   - TopDownEager — the "less naive" approach of Section 1: restrict
//     invocation to calls on the query's paths (LPQ positions), but
//     invoke them one at a time, blocking, with no further analysis.
//   - LazyLPQ — the NFQA loop of Section 4.1 driven by the linear path
//     queries of Section 3.1 (the lenient relevance of Section 6.1).
//   - LazyNFQ — the NFQA loop driven by the node-focused queries of
//     Section 3.2 (exact positional+conditional relevance, Prop. 1).
//   - LazyNFQTyped — LazyNFQ refined with service signatures (Section 5).
//
// Orthogonal options enable the layering and intra-layer parallelism of
// Sections 4.3–4.4, the F-guide acceleration and relaxations of Section 6,
// and the query pushing of Section 7.
package core

import (
	"fmt"
	"time"

	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// Strategy selects the call-invocation policy.
type Strategy uint8

const (
	// NaiveFixpoint materialises the whole document before evaluating.
	NaiveFixpoint Strategy = iota
	// TopDownEager invokes calls on query paths, sequentially, with no
	// condition analysis.
	TopDownEager
	// LazyLPQ runs NFQA over linear path queries (positions only).
	LazyLPQ
	// LazyNFQ runs NFQA over node-focused queries (positions and
	// conditions, untyped).
	LazyNFQ
	// LazyNFQTyped runs NFQA over type-refined node-focused queries.
	LazyNFQTyped
)

// String returns the strategy's name as used in experiment tables.
func (s Strategy) String() string {
	switch s {
	case NaiveFixpoint:
		return "naive"
	case TopDownEager:
		return "eager"
	case LazyLPQ:
		return "lazy-lpq"
	case LazyNFQ:
		return "lazy-nfq"
	case LazyNFQTyped:
		return "lazy-nfq-typed"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Options configures an evaluation.
type Options struct {
	// Strategy is the invocation policy; the zero value is NaiveFixpoint.
	Strategy Strategy
	// Schema supplies service signatures for LazyNFQTyped; it may be nil
	// for the other strategies.
	Schema *schema.Schema
	// SchemaMode selects exact or lenient satisfiability (Section 6.1).
	SchemaMode schema.Mode
	// NoProject disables type-based document projection. With a schema
	// and the LazyNFQTyped strategy, the engine normally derives from
	// schema + query a pruning predicate (desc of Definition 6) and has
	// every pattern evaluation skip subtrees that provably cannot
	// contain a match — relevance detection and result evaluation then
	// scale with the projected document instead of the full one. Results
	// and invoked-call sequences are identical either way (the predicate
	// is sound under the same assumptions as typed relevance pruning:
	// the document conforms to the schema, services to their
	// signatures); only Stats work counters change. Set NoProject to
	// evaluate over the whole document, e.g. for differential testing or
	// on documents known to violate their schema.
	NoProject bool
	// Layering enables the layer decomposition of Section 4.3. Only
	// meaningful for the lazy strategies.
	Layering bool
	// Parallel enables parallel invocation: within a layer, an NFQ that
	// meets the independence condition (✶) of Section 4.4 fires all its
	// retrieved calls as one batch, charged at the batch's maximum
	// latency. NaiveFixpoint batches each fixpoint round when set.
	Parallel bool
	// Speculative extends Parallel beyond the safe (✶) condition: within
	// a layer, the calls retrieved by *all* member NFQs in one pass are
	// fired as a single batch, even when their position languages
	// overlap. This is the "calling functions in parallel just in case"
	// direction the paper flags as future work (Section 4.4): it can
	// invoke calls that a strictly relevant rewriting would have skipped
	// (one batch member's result may invalidate another's relevance),
	// but it minimises sequential rounds and therefore latency-bound
	// time. Results are unaffected — only the invoked set may grow.
	// Implies Parallel.
	Speculative bool
	// Push ships subqueries to push-capable services (Section 7).
	Push bool
	// UseGuide accelerates relevance detection with an F-guide
	// (Section 6.2).
	UseGuide bool
	// Guide, when set together with UseGuide, supplies a pre-built
	// F-guide for the document — typically one decoded from a
	// repository's persisted index (internal/repo) or kept warm by the
	// session layer across evaluations. The engine adopts it when it
	// describes this document and has incorporated every mutation
	// (fguide.Synced); otherwise it falls back to building one. The
	// engine maintains the adopted guide in place as calls expand, so
	// the caller's guide stays synced and can be re-used or persisted
	// after the run.
	Guide *fguide.Guide
	// Incremental keeps one persistent pattern evaluator per relevance
	// query alive across the NFQA rounds: each round's re-evaluation
	// reuses every memoised (query node, document node) match that the
	// round's single mutation cannot have changed, so detection visits
	// O(changed region) nodes instead of O(document). The invoked call
	// sequence and the results are identical to from-scratch evaluation;
	// only the work (Stats.NodesVisited vs Stats.MemoHits) changes. It
	// has no effect on guide-accelerated detection, which does not
	// evaluate patterns over the full document in the first place.
	Incremental bool
	// Workers bounds the worker pool that evaluates a round's relevance
	// queries concurrently; 0 or 1 means sequential detection. Each
	// query keeps its own evaluator shard, so workers share nothing but
	// the read-only document. With Workers > 1 every member query of the
	// current layer is evaluated each round (the sequential path stops
	// at the first query that retrieves a call), so RelevanceQueries and
	// NodesVisited counters grow even though wall-clock detection time
	// shrinks; the invoked call sequence is unchanged.
	Workers int
	// InvokeWorkers bounds the invocation pool: how many members of a
	// parallel batch (the independent relevant calls one detection round
	// yields, Section 4.4) are in flight concurrently. Values > 1 imply
	// Parallel. Batch members are assigned to workers deterministically
	// (member i runs on worker i mod InvokeWorkers) and responses are
	// applied to the document in document order after the pool drains,
	// so results, Stats and traces are identical for every pool width —
	// only wall-clock time changes, by ≈ min(InvokeWorkers, batch width)
	// over real transports. 1 runs batch members sequentially on the
	// calling goroutine; 0 preserves the historical unbounded behaviour
	// (one goroutine per batch member). Virtual-clock accounting is
	// unaffected: a batch is always charged the max, not the sum, of its
	// members' costs.
	InvokeWorkers int
	// Planner, when set, decides per round how invocation batches
	// execute: member-to-worker assignment, effective pool width (up to
	// InvokeWorkers), whether to ship pushable subqueries per service,
	// and which speculative calls fit a latency budget. A planner may
	// only reorder and resize work — results are identical with and
	// without one (see internal/plan). Nil keeps the static striped
	// schedule documented on InvokeWorkers.
	Planner InvocationPlanner
	// RelaxJoins uses the join-free relaxed NFQs of Section 6.1.
	RelaxJoins bool
	// MaxCalls bounds the number of invocations (the paper's termination
	// safeguard, Section 2); 0 means DefaultMaxCalls.
	MaxCalls int
	// Retry configures per-call fault handling: attempts, exponential
	// backoff (charged to the virtual clock) and the per-attempt
	// deadline. The zero value is one attempt, no deadline.
	Retry RetryPolicy
	// Failure selects what an unrecoverable invocation failure does to
	// the evaluation: abort (FailFast, the default) or record the
	// failure and keep going (BestEffort), downgrading completeness if
	// the failed calls stay relevant.
	Failure FailurePolicy
	// Clock receives the simulated latency charges; nil means a fresh
	// SimClock, whose total is reported in Stats.VirtualTime.
	Clock service.Clock
	// Trace, when set, receives one event per layer start, relevance
	// detection round and invocation — the engine's explain output.
	// Handlers run synchronously and must not re-enter the engine.
	// Events are emitted deterministically, ordered by (Layer, Round,
	// Shard), including under a parallel detection pool.
	Trace TraceFunc
	// Tracer, when set, receives hierarchical telemetry spans —
	// evaluate → analysis/layer → detect/invoke — with wall-clock and
	// virtual-clock durations, shard identity and per-phase attributes
	// (the data behind axmlquery -explain and /debug/trace). Span
	// emission is race-clean under Options.Workers: shard timings are
	// measured in the workers and emitted by the coordinator in
	// deterministic order. Nil disables span collection at the cost of
	// one pointer test per instrumentation point.
	Tracer *telemetry.Tracer
	// RemoteSpans bounds the span subtree a remote provider may return
	// per invocation for cross-process trace stitching (see
	// soap.MaxRemoteSpans for the server-side cap). It only takes effect
	// when Tracer carries a trace ID (telemetry.Tracer.SetTrace): the
	// trace context then propagates on the wire and returned remote spans
	// are grafted under the call's invoke span. 0 propagates the trace ID
	// without requesting spans back.
	RemoteSpans int
	// OnMutate, when set, is called synchronously after every document
	// mutation the engine performs (a call subtree rooted at removed,
	// detached from parent, replaced by the inserted response forest) —
	// the same notification the engine's own incremental evaluator
	// shards receive. External holders of pattern.IncrementalEvaluator
	// memos over the same document (the session layer's shared per-query
	// evaluators) use it to Invalidate in lockstep, and holders of a
	// persistent F-guide feed it to fguide.ApplyExpansion so the index
	// is patched in place instead of rebuilt. The hook fires after the
	// engine's own guide maintenance, so an adopted Options.Guide is
	// already synced when it runs. The callback runs on the engine
	// goroutine and must not re-enter the engine.
	OnMutate func(parent, removed *tree.Node, inserted []*tree.Node)
	// Metrics, when set, receives the engine's counters and log-scale
	// latency histograms (metric names in doc/OBSERVABILITY.md:
	// axml_evaluations_total, axml_detect_seconds, …). Instruments are
	// resolved once per evaluation; hot-path updates are atomic and
	// allocation-free. Nil disables metric recording.
	Metrics *telemetry.Registry
}

// DefaultMaxCalls bounds invocation counts when Options.MaxCalls is 0.
const DefaultMaxCalls = 100000

// RetryPolicy configures how the engine reacts to failed invocations.
// Only transient and timeout faults (service.Retryable) are retried;
// permanent errors fail immediately. All waiting is charged to the
// engine's virtual clock — simulated worlds never sleep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call; values below 2
	// mean a single attempt (no retry).
	MaxAttempts int
	// Backoff is the pause before the second attempt; it doubles for
	// each further attempt (exponential backoff).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means uncapped.
	MaxBackoff time.Duration
	// Jitter randomises each backoff downward by up to this fraction
	// (0..1), decorrelating retry storms. The draw is deterministic in
	// Seed, the call and the attempt.
	Jitter float64
	// Deadline bounds one attempt's virtual latency. An attempt whose
	// reported latency exceeds it is cut off at the deadline, charged
	// exactly Deadline, and counts as a timeout fault (retryable).
	// 0 means no deadline.
	Deadline time.Duration
	// Seed makes the backoff jitter reproducible.
	Seed int64
}

// attempts normalises MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// backoffBefore computes the pause charged before the given attempt
// (attempt ≥ 2), deterministic in the policy seed and the call identity.
func (p RetryPolicy) backoffBefore(attempt, callID int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff << uint(attempt-2)
	if d < 0 || (p.MaxBackoff > 0 && d > p.MaxBackoff) {
		d = p.MaxBackoff
		if d == 0 {
			d = p.Backoff
		}
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		u := jitterDraw(p.Seed, callID, attempt)
		d = time.Duration(float64(d) * (1 - j*u))
	}
	return d
}

// jitterDraw is a stateless splitmix64 draw in [0,1) so concurrent batch
// members need no shared RNG.
func jitterDraw(seed int64, callID, attempt int) float64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(callID)*0xbf58476d1ce4e5b9 + uint64(attempt)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// FailurePolicy selects how invocation failures that survive the retry
// policy affect the evaluation.
type FailurePolicy uint8

const (
	// FailFast aborts the evaluation on the first unrecoverable
	// invocation failure.
	FailFast FailurePolicy = iota
	// BestEffort records the failure in Outcome.Failures, leaves the
	// call unresolved in the document, and keeps evaluating everything
	// else. Outcome.Complete is then recomputed from the final document
	// (Definition 3): it stays true only if every failed call turned
	// out irrelevant for the query.
	BestEffort
)

// String names the policy.
func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("failure(%d)", uint8(p))
	}
}

// CallFailure records one call the engine gave up on under BestEffort.
type CallFailure struct {
	// Service is the call's service name.
	Service string
	// Path is the call's document path at failure time.
	Path string
	// Attempts is how many invocation attempts were made.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// Stats reports what one evaluation did — the quantities the paper's
// experiments compare.
type Stats struct {
	// CallsInvoked counts successful service invocations.
	CallsInvoked int
	// Retries counts repeated attempts after retryable faults (a call
	// that succeeds on its third attempt contributes 2).
	Retries int
	// FailedCalls counts calls given up on after exhausting the retry
	// policy (recorded in Outcome.Failures under BestEffort).
	FailedCalls int
	// DeadlineCuts counts attempts cut off by the per-call deadline.
	DeadlineCuts int
	// PushedCalls counts invocations that shipped a subquery.
	PushedCalls int
	// PushVetoed counts pushable calls whose subquery was withheld by
	// the planner (AllowPush returned false). Always 0 without a
	// planner; the veto is response-neutral by contract, so this only
	// measures saved serialization work.
	PushVetoed int
	// SpeculativeDeferred counts speculative batch members pushed to a
	// later round by the planner's latency-budget admission. Deferral
	// reshapes the schedule, never the result set.
	SpeculativeDeferred int
	// RelevanceQueries counts NFQ/LPQ evaluations (including residual
	// checks when the F-guide is active).
	RelevanceQueries int
	// GuideCandidates counts candidates produced by the F-guide before
	// filtering.
	GuideCandidates int
	// Rounds counts sequential invocation steps: a single call or one
	// parallel batch.
	Rounds int
	// NodesVisited accumulates the pattern evaluator's match attempts
	// actually computed (memo misses).
	NodesVisited int
	// MemoHits accumulates match attempts answered from a persistent
	// evaluator's memo table (Options.Incremental) — the re-evaluation
	// work the incremental engine avoided.
	MemoHits int
	// SubtreesPruned accumulates document subtrees that type-based
	// projection skipped wholesale during pattern evaluation — the work
	// the projection avoided. Zero unless the engine projects (typed
	// strategy with a schema, NoProject unset).
	SubtreesPruned int
	// BytesFetched is the serialised size of everything services
	// returned.
	BytesFetched int
	// VirtualTime is the simulated end-to-end time: latencies charged to
	// the clock (sum over rounds, max within a batch).
	VirtualTime time.Duration
	// DetectTime is the real CPU time spent detecting relevant calls.
	DetectTime time.Duration
	// AnalysisTime is the real CPU time spent on query rewriting, type
	// analysis and influence layering.
	AnalysisTime time.Duration
	// FinalSize is the document's node count after evaluation.
	FinalSize int
}

// Outcome is the result of an evaluation.
type Outcome struct {
	// Results is the snapshot result of the query on the final document
	// state — by completeness (Definition 3), the full result.
	Results []pattern.Result
	// Complete reports whether the document was made complete for the
	// query; false means the call budget ran out first, or a failed
	// call (BestEffort) is still relevant.
	Complete bool
	// Failures lists the calls the engine gave up on (BestEffort only;
	// FailFast evaluations return an error instead).
	Failures []CallFailure
	// Stats is the evaluation accounting.
	Stats Stats
}
