package core

import (
	"testing"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/workload"
)

// TestIncrementalCutsPerRoundWork is the acceptance guard for the
// incremental evaluator: on a mid-sized world (the trend grows with
// document size — see E10, which reaches >100× at 1000 hotels), keeping
// the match memo alive across rounds must cut the per-round NodesVisited
// at least 3× while leaving the invoked call sequence and the results
// untouched.
func TestIncrementalCutsPerRoundWork(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 50
	spec.HiddenHotels = 10
	w := workload.Hotels(spec)

	scratch, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	incr, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: LazyNFQ, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := resultKeys(incr), resultKeys(scratch); got != want {
		t.Fatalf("incremental results diverge\n got %q\nwant %q", got, want)
	}
	if incr.Stats.CallsInvoked != scratch.Stats.CallsInvoked {
		t.Fatalf("incremental changed the invoked set: %d vs %d calls",
			incr.Stats.CallsInvoked, scratch.Stats.CallsInvoked)
	}
	if incr.Stats.Rounds != scratch.Stats.Rounds {
		t.Fatalf("incremental changed the round count: %d vs %d",
			incr.Stats.Rounds, scratch.Stats.Rounds)
	}
	if incr.Stats.MemoHits == 0 {
		t.Fatal("incremental evaluation recorded no memo hits")
	}
	perRound := func(s Stats) float64 {
		rounds := s.Rounds
		if rounds == 0 {
			rounds = 1
		}
		return float64(s.NodesVisited) / float64(rounds)
	}
	if ratio := perRound(scratch.Stats) / perRound(incr.Stats); ratio < 3 {
		t.Fatalf("incremental cut per-round match work only %.1fx (scratch %.0f/round, incremental %.0f/round), want ≥3x",
			ratio, perRound(scratch.Stats), perRound(incr.Stats))
	}
}

// TestWorkerPoolPreservesSequence: the parallel detection pool reorders
// work, never outcomes — results, invoked calls and rounds are identical
// for any worker count, with or without layering and the response cache.
func TestWorkerPoolPreservesSequence(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	base, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	want := resultKeys(base)

	for _, workers := range []int{0, 1, 2, 8} {
		for _, layering := range []bool{false, true} {
			cached := service.NewCache(service.CacheSpec{}).Wrap(w.Registry)
			for _, reg := range []*service.Registry{w.Registry, cached} {
				out, err := Evaluate(w.Doc.Clone(), w.Query, reg, Options{
					Strategy: LazyNFQ, Incremental: true,
					Workers: workers, Layering: layering,
				})
				if err != nil {
					t.Fatalf("workers=%d layering=%v: %v", workers, layering, err)
				}
				if got := resultKeys(out); got != want {
					t.Fatalf("workers=%d layering=%v: results diverge\n got %q\nwant %q",
						workers, layering, got, want)
				}
				if out.Stats.CallsInvoked != base.Stats.CallsInvoked {
					t.Fatalf("workers=%d layering=%v: %d calls, want %d",
						workers, layering, out.Stats.CallsInvoked, base.Stats.CallsInvoked)
				}
			}
		}
	}
}

// TestIncrementalResetOnRebuild: layering rebuilds the member queries as
// calls resolve (and typed analysis bumps name versions); the persistent
// evaluators must follow the rebuilt queries rather than serve matches
// for stale query nodes.
func TestIncrementalResetOnRebuild(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.RatingChainDepth = 2
	spec.IntensionalRatingEvery = 2
	w := workload.Hotels(spec)

	base, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: LazyNFQ, Layering: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{
		Strategy: LazyNFQ, Layering: true, Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultKeys(out), resultKeys(base); got != want {
		t.Fatalf("incremental under layering diverges\n got %q\nwant %q", got, want)
	}
}
