package core

import (
	"testing"

	"github.com/activexml/axml/internal/influence"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// TestMayInfluenceIsSemanticallySound validates Proposition 3's analysis
// against actual engine behaviour: whenever the analysis says NFQ i may
// NOT influence NFQ j, invoking a call retrieved by i must never add a
// new call to j's retrieved set. The test exercises every
// (retrieved-call, NFQ) pair of several worlds.
func TestMayInfluenceIsSemanticallySound(t *testing.T) {
	specs := []workload.HotelSpec{
		workload.DefaultSpec(),
		func() workload.HotelSpec {
			s := workload.DefaultSpec()
			s.Hotels = 8
			s.RatingChainDepth = 2
			s.TeaserKinds = 2
			return s
		}(),
	}
	for _, spec := range specs {
		spec.Hotels = min(spec.Hotels, 8)
		spec.HiddenHotels = 3
		w := workload.Hotels(spec)
		nfqs, err := rewrite.BuildAll(w.Query, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		analysis := influence.New(nfqs)

		retrievedSet := func(doc *tree.Document, k int) map[uint64]string {
			out := map[uint64]string{}
			for _, c := range pattern.MatchedCalls(doc, nfqs[k].Query, nfqs[k].Out) {
				out[c.ID] = c.Label
			}
			return out
		}

		for i := range nfqs {
			// Fresh document per source NFQ; node IDs are deterministic
			// across clones (same construction order).
			doc := w.Doc.Clone()
			srcCalls := pattern.MatchedCalls(doc, nfqs[i].Query, nfqs[i].Out)
			if len(srcCalls) == 0 {
				continue
			}
			call := srcCalls[0]
			invokedID := call.ID
			before := make([]map[uint64]string, len(nfqs))
			for j := range nfqs {
				if !analysis.MayInfluence(i, j) {
					before[j] = retrievedSet(doc, j)
				}
			}
			resp, err := w.Registry.Invoke(call.Label, cloneForest(call.Children), nil)
			if err != nil {
				t.Fatal(err)
			}
			doc.ReplaceCall(call, resp.Forest)
			for j := range nfqs {
				if analysis.MayInfluence(i, j) {
					continue
				}
				after := retrievedSet(doc, j)
				for id, label := range after {
					if id == invokedID {
						continue
					}
					if _, ok := before[j][id]; !ok {
						t.Errorf("spec(%d hotels): ¬MayInfluence(%s → %s) but invoking %s added call %s (node %d) to the target set",
							spec.Hotels, nfqs[i], nfqs[j], call.Label, label, id)
					}
				}
			}
		}
	}
}
