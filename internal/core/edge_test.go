package core

import (
	"testing"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func TestFullyExtensionalDocument(t *testing.T) {
	// No calls at all: every strategy is a pure snapshot evaluation.
	doc, err := tree.Unmarshal([]byte(
		`<hotels><hotel><name>Best Western</name><rating>*****</rating>
		 <nearby><restaurant><name>Jo</name><address>2nd</address><rating>*****</rating></restaurant></nearby>
		 </hotel></hotels>`))
	if err != nil {
		t.Fatal(err)
	}
	q := pattern.MustParse(
		`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[name=$X] -> $X`)
	reg := service.NewRegistry()
	for _, s := range []Strategy{NaiveFixpoint, TopDownEager, LazyLPQ, LazyNFQ} {
		out, err := Evaluate(doc.Clone(), q, reg, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !out.Complete || out.Stats.CallsInvoked != 0 || len(out.Results) != 1 {
			t.Fatalf("%v: %+v", s, out.Stats)
		}
	}
}

func TestQueryWithNoPossibleMatch(t *testing.T) {
	// The root element label differs: nothing is relevant, nothing is
	// invoked, the result is empty.
	w := workload.Hotels(workload.DefaultSpec())
	q := pattern.MustParse(`/motels/motel[name=$X] -> $X`)
	out, err := Evaluate(w.Doc.Clone(), q, w.Registry, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || len(out.Results) != 0 || out.Stats.CallsInvoked != 0 {
		t.Fatalf("outcome = %+v", out.Stats)
	}
}

func TestEmptyServiceResult(t *testing.T) {
	// A relevant call returning an empty forest simply disappears.
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "f", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return nil, nil
	}})
	root := tree.NewElement("r")
	root.Append(tree.NewElement("zone")).Append(tree.NewCall("f"))
	doc := tree.NewDocument(root)
	q := pattern.MustParse(`/r/zone/item/$X -> $X`)
	out, err := Evaluate(doc, q, reg, Options{Strategy: LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || len(out.Results) != 0 || out.Stats.CallsInvoked != 1 {
		t.Fatalf("outcome = %+v", out.Stats)
	}
	if len(doc.Calls()) != 0 {
		t.Fatal("call not removed")
	}
}

func TestCallReturningOnlyCalls(t *testing.T) {
	// A call that returns two further calls, which return data: the NFQA
	// loop must chase the growth to completion.
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "split", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return []*tree.Node{tree.NewCall("leaf", tree.NewText("1")), tree.NewCall("leaf", tree.NewText("2"))}, nil
	}})
	reg.Register(&service.Service{Name: "leaf", Handler: func(params []*tree.Node) ([]*tree.Node, error) {
		item := tree.NewElement("item")
		item.Append(tree.NewText(params[0].Text()))
		return []*tree.Node{item}, nil
	}})
	root := tree.NewElement("r")
	root.Append(tree.NewElement("zone")).Append(tree.NewCall("split"))
	doc := tree.NewDocument(root)
	q := pattern.MustParse(`/r/zone/item/$X -> $X`)
	out, err := Evaluate(doc, q, reg, Options{Strategy: LazyNFQ, Layering: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Stats.CallsInvoked != 3 {
		t.Fatalf("results=%d calls=%d", len(out.Results), out.Stats.CallsInvoked)
	}
}

func TestDocumentOwnershipIsRespected(t *testing.T) {
	// Evaluate mutates in place; the clone idiom keeps the original.
	w := workload.Hotels(workload.DefaultSpec())
	original := w.Doc
	before := original.Size()
	if _, err := Evaluate(original.Clone(), w.Query, w.Registry, Options{Strategy: LazyNFQ}); err != nil {
		t.Fatal(err)
	}
	if original.Size() != before {
		t.Fatal("clone-based evaluation mutated the original")
	}
}
