package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/influence"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// coreMetrics holds the engine's pre-resolved telemetry instruments so
// hot-path updates are single atomic operations (no map lookups, no
// allocation). All fields are nil when Options.Metrics is unset; the
// nil instruments swallow updates.
type coreMetrics struct {
	evals       *telemetry.Counter
	calls       *telemetry.Counter
	pruned      *telemetry.Counter
	retries     *telemetry.Counter
	giveups     *telemetry.Counter
	pushed      *telemetry.Counter
	guideBuilds *telemetry.Counter
	guideWarm   *telemetry.Counter
	evalSecs    *telemetry.Histogram
	detectSecs  *telemetry.Histogram
	invokeWall  *telemetry.Histogram
	invokeVirt  *telemetry.Histogram
}

func resolveMetrics(reg *telemetry.Registry) coreMetrics {
	if reg == nil {
		return coreMetrics{}
	}
	return coreMetrics{
		evals:       reg.Counter(telemetry.MetricEvaluations),
		calls:       reg.Counter(telemetry.MetricCallsInvoked),
		pruned:      reg.Counter(telemetry.MetricCallsPruned),
		retries:     reg.Counter(telemetry.MetricRetries),
		giveups:     reg.Counter(telemetry.MetricGiveUps),
		pushed:      reg.Counter(telemetry.MetricPushedCalls),
		guideBuilds: reg.Counter(telemetry.MetricGuideBuilds),
		guideWarm:   reg.Counter(telemetry.MetricGuideWarm),
		evalSecs:    reg.Histogram(telemetry.MetricEvalSeconds),
		detectSecs:  reg.Histogram(telemetry.MetricDetectSeconds),
		invokeWall:  reg.Histogram(telemetry.MetricInvokeWallSeconds),
		invokeVirt:  reg.Histogram(telemetry.MetricInvokeVirtualSeconds),
	}
}

// Evaluate computes the full result of q over doc, invoking services from
// reg according to the options. The document is mutated in place: relevant
// calls are replaced by their results (clone the document first to keep
// the original). On success the outcome's Results hold the full query
// result; Complete reports whether every relevant call was resolved
// within the budget.
func Evaluate(doc *tree.Document, q *pattern.Pattern, reg *service.Registry, opt Options) (*Outcome, error) {
	if err := rewrite.Validate(q); err != nil {
		return nil, err
	}
	e := &engine{doc: doc, q: q, reg: reg, opt: opt,
		names: map[string]bool{}, failed: map[*tree.Node]bool{},
		incr: map[*rewrite.NFQ]*pattern.IncrementalEvaluator{},
		met:  resolveMetrics(opt.Metrics)}
	evalStart := time.Now()
	e.spanEval = opt.Tracer.Start("evaluate", 0)
	e.spanEval.SetAttr("strategy", opt.Strategy.String())
	for _, c := range doc.Calls() {
		e.names[c.Label] = true
	}
	if e.opt.Strategy == TopDownEager {
		// The eager baseline models a blocking top-down processor: one
		// call at a time, no sequencing analysis, no pushing, no
		// detection pool.
		e.opt.Layering, e.opt.Parallel, e.opt.Push = false, false, false
		e.opt.Speculative = false
		e.opt.Workers, e.opt.InvokeWorkers = 0, 0
	}
	if e.opt.Speculative || e.opt.InvokeWorkers > 1 {
		e.opt.Parallel = true
	}
	if e.opt.Clock == nil {
		e.opt.Clock = &service.SimClock{}
	}
	if e.opt.MaxCalls == 0 {
		e.opt.MaxCalls = DefaultMaxCalls
	}
	var err error
	switch opt.Strategy {
	case NaiveFixpoint:
		err = e.runNaive()
	case TopDownEager, LazyLPQ, LazyNFQ, LazyNFQTyped:
		err = e.runLazy()
	default:
		err = fmt.Errorf("core: unknown strategy %v", opt.Strategy)
	}
	if err != nil {
		e.spanEval.SetAttr("error", err.Error())
		e.spanEval.End()
		return nil, err
	}
	if len(e.failures) > 0 {
		// Best-effort left failed calls unresolved in the document. The
		// run's completeness claim no longer holds a priori; recompute
		// it from the final state (Definition 3): the result is still
		// the full result iff none of the leftover calls is relevant.
		// Type-refined relevance (sound for any strategy, Section 5)
		// applies whenever a schema is available, so a failed call whose
		// signature cannot contribute does not cost completeness.
		ok, cerr := Complete(doc, q, e.opt.Schema, e.opt.SchemaMode)
		e.complete = cerr == nil && ok
	}
	resultSpan := e.opt.Tracer.Start("result-eval", e.spanEval.ID())
	results, st := pattern.EvalProjected(doc, q, asProjector(e.userProj))
	resultSpan.SetInt("results", int64(len(results)))
	resultSpan.End()
	e.stats.NodesVisited += st.NodesVisited
	e.stats.SubtreesPruned += st.SubtreesPruned
	e.stats.VirtualTime = e.opt.Clock.Elapsed()
	e.stats.FinalSize = doc.Size()
	// Calls still pending in the final document were never deemed
	// relevant: they are the calls laziness pruned (the paper's headline
	// savings metric).
	prunedCalls := len(e.pendingCalls())
	e.spanEval.SetInt("calls_invoked", int64(e.stats.CallsInvoked))
	e.spanEval.SetInt("calls_pruned", int64(prunedCalls))
	e.spanEval.SetInt("results", int64(len(results)))
	e.spanEval.AddVirtual(e.stats.VirtualTime)
	e.spanEval.End()
	e.met.evals.Inc()
	e.met.calls.Add(int64(e.stats.CallsInvoked))
	e.met.pruned.Add(int64(prunedCalls))
	e.met.retries.Add(int64(e.stats.Retries))
	e.met.giveups.Add(int64(e.stats.FailedCalls))
	e.met.pushed.Add(int64(e.stats.PushedCalls))
	e.met.evalSecs.Observe(time.Since(evalStart))
	return &Outcome{Results: results, Complete: e.complete, Failures: e.failures, Stats: e.stats}, nil
}

type engine struct {
	doc *tree.Document
	q   *pattern.Pattern
	reg *service.Registry
	opt Options

	stats    Stats
	complete bool

	guide *fguide.Guide
	an    *schema.Analyzer
	names map[string]bool // service names seen in the document
	// failed marks calls given up on under BestEffort; they are excluded
	// from relevance detection and naive fixpoint rounds so the
	// evaluation can terminate around them.
	failed   map[*tree.Node]bool
	failures []CallFailure
	// nameVersion increments whenever a previously unseen service name
	// enters the document; refined NFQs must then be regenerated with
	// the enriched name list (Section 5, "the refined NFQs are enriched
	// accordingly").
	nameVersion int
	// incr holds the persistent evaluator shard of each live relevance
	// query (Options.Incremental). The map is reset whenever the query
	// objects are regenerated; apply funnels every document mutation to
	// the survivors so their memo tables stay sound.
	incr map[*rewrite.NFQ]*pattern.IncrementalEvaluator
	// projs holds each live relevance query's document-projection
	// predicate (typed strategy, NoProject unset). Projections memoise
	// a per-query satisfiability fixpoint, so they live exactly as long
	// as the query objects: the map resets alongside incr. Predicates
	// are immutable and shared read-only by detection pool workers.
	projs map[*rewrite.NFQ]*schema.Projection
	// userProj is the user query's own projection, applied to the final
	// result evaluation; nil when the engine does not project.
	userProj *schema.Projection
	// traceLayer is the current layer index, stamped onto trace events.
	traceLayer int
	// round is the sequential detection/invocation round counter,
	// stamped onto trace events and telemetry spans (1-based within an
	// evaluation).
	round int
	// met holds the pre-resolved telemetry instruments (all nil when
	// metrics are off).
	met coreMetrics
	// spanEval and spanLayer are the open telemetry spans detect and
	// invoke spans parent under (nil when tracing is off).
	spanEval  *telemetry.ActiveSpan
	spanLayer *telemetry.ActiveSpan
}

// spanParent is the enclosing span for detect/invoke spans: the current
// layer when layering is on, the evaluation root otherwise.
func (e *engine) spanParent() telemetry.SpanID {
	if e.spanLayer != nil {
		return e.spanLayer.ID()
	}
	return e.spanEval.ID()
}

// budgetLeft reports how many more calls may be invoked.
func (e *engine) budgetLeft() int { return e.opt.MaxCalls - e.stats.CallsInvoked }

// runNaive is the strawman: invoke every call, recursively, to a
// fixpoint, then evaluate (Section 1).
func (e *engine) runNaive() error {
	for {
		calls := e.pendingCalls()
		if len(calls) == 0 {
			e.complete = true
			return nil
		}
		if e.budgetLeft() <= 0 {
			return nil
		}
		e.round++
		if len(calls) > e.budgetLeft() {
			calls = calls[:e.budgetLeft()]
		}
		if e.opt.Parallel {
			if err := e.invokeBatch(calls, nil); err != nil {
				return err
			}
		} else {
			for _, c := range calls {
				if err := e.invokeOne(c, nil); err != nil {
					return err
				}
			}
		}
	}
}

// runLazy is the NFQA loop of Section 4.1 with the optional layering of
// Section 4.3, parallelism of Section 4.4, typing of Section 5, guide and
// relaxation of Section 6, and pushing of Section 7.
func (e *engine) runLazy() error {
	t0 := time.Now()
	analysisSpan := e.opt.Tracer.Start("analysis", e.spanEval.ID())
	if e.opt.Strategy == LazyNFQTyped {
		if e.opt.Schema == nil {
			analysisSpan.End()
			return fmt.Errorf("core: LazyNFQTyped requires a schema")
		}
		e.an = schema.NewAnalyzer(e.opt.Schema, e.q, e.opt.SchemaMode)
		if !e.opt.NoProject {
			e.userProj = e.an.Projection()
		}
	}
	// Build the relevance-query set once for the influence analysis; the
	// per-iteration query objects are regenerated as the Done set and the
	// known service names evolve, but the linear parts never change, so
	// the layer structure is computed once.
	base, err := e.buildQueries(nil)
	if err != nil {
		analysisSpan.End()
		return err
	}
	var analysis *influence.Analysis
	layers := []influence.Layer{{Members: allIndices(len(base))}}
	if e.opt.Layering {
		analysis = influence.New(base)
		layers = analysis.Layers()
	}
	e.stats.AnalysisTime += time.Since(t0)
	analysisSpan.SetInt("queries", int64(len(base)))
	analysisSpan.SetInt("layers", int64(len(layers)))
	analysisSpan.End()

	if e.opt.UseGuide {
		if g := e.opt.Guide; g != nil && g.Doc() == e.doc && fguide.Synced(g) {
			// Warm path: adopt the caller's guide (decoded from a
			// repository's persisted index, or kept in sync by the session
			// layer) instead of rebuilding. The engine maintains it in
			// place below, so it stays synced for the caller.
			e.guide = g
			e.met.guideWarm.Inc()
		} else {
			guideSpan := e.opt.Tracer.Start("guide-build", e.spanEval.ID())
			if keep := e.guideKeep(base); keep != nil {
				// Projection-aware construction: regions no relevance
				// query of this evaluation can match into are never
				// indexed, so the guide is proportional to the projected
				// document. Sound for exactly this query — such a guide
				// is engine-local and never handed back or persisted.
				e.guide = fguide.BuildFiltered(e.doc, keep)
				guideSpan.SetInt("filtered", 1)
			} else {
				e.guide = fguide.Build(e.doc)
			}
			e.met.guideBuilds.Inc()
			guideSpan.SetInt("paths", int64(e.guide.Paths()))
			guideSpan.End()
		}
	}

	done := map[int]bool{}
	for li, layer := range layers {
		members := layer.SortedMembers()
		e.traceLayer = li
		e.emit(TraceEvent{Kind: TraceLayer, Calls: len(members)})
		e.spanLayer = e.opt.Tracer.Start("layer", e.spanEval.ID())
		e.spanLayer.SetInt("layer", int64(li))
		e.spanLayer.SetInt("members", int64(len(members)))
		invokedBefore, virtBefore := e.stats.CallsInvoked, e.opt.Clock.Elapsed()
		err := e.drainLayer(members, analysis, done)
		// Per-layer pruned-vs-invoked accounting: invoked is the layer's
		// delta; skipped is what stayed pending when the layer settled —
		// calls visible to this layer's relevance analysis that it did
		// not invoke (a later layer may still take them; whatever is
		// left at the end of the evaluation was pruned outright).
		e.spanLayer.SetInt("invoked", int64(e.stats.CallsInvoked-invokedBefore))
		e.spanLayer.SetInt("skipped", int64(len(e.pendingCalls())))
		e.spanLayer.AddVirtual(e.opt.Clock.Elapsed() - virtBefore)
		e.spanLayer.End()
		e.spanLayer = nil
		if err != nil {
			return err
		}
		if e.budgetLeft() <= 0 {
			return nil
		}
		// Section 4.3: positions of a finished layer can no longer hold
		// calls; later queries drop the corresponding OR/() branches.
		for _, m := range members {
			done[base[m].For.ID] = true
		}
	}
	e.complete = true
	return nil
}

// admitSpeculative applies the planner's latency-budget admission to a
// speculative batch. Deferred calls stay in the document as pending
// calls; the next round re-detects whatever is still relevant, so
// deferral reshapes the schedule without changing results. An invalid
// selection (empty, out of range, not strictly ascending) admits the
// whole batch — like an invalid plan, a buggy admission can only cost
// performance.
func (e *engine) admitSpeculative(pl InvocationPlanner, calls []*tree.Node, nfqs []*rewrite.NFQ) ([]*tree.Node, []*rewrite.NFQ) {
	pcs := make([]PlanCall, len(calls))
	for i, c := range calls {
		pcs[i] = PlanCall{Index: i, Service: c.Label}
	}
	keep := pl.AdmitSpeculative(pcs)
	if len(keep) == 0 || len(keep) >= len(calls) {
		return calls, nfqs
	}
	prev := -1
	for _, i := range keep {
		if i <= prev || i >= len(calls) {
			return calls, nfqs
		}
		prev = i
	}
	e.stats.SpeculativeDeferred += len(calls) - len(keep)
	nc := make([]*tree.Node, len(keep))
	nq := make([]*rewrite.NFQ, len(keep))
	for j, i := range keep {
		nc[j], nq[j] = calls[i], nfqs[i]
	}
	return nc, nq
}

// sortByDocOrder re-ranks parallel call/NFQ slices into document order.
func sortByDocOrder(calls []*tree.Node, nfqs []*rewrite.NFQ, doc *tree.Document) {
	pos := make(map[*tree.Node]int, len(calls))
	for i, c := range doc.Calls() {
		pos[c] = i
	}
	sort.Sort(&docOrderBatch{calls: calls, nfqs: nfqs, pos: pos})
}

type docOrderBatch struct {
	calls []*tree.Node
	nfqs  []*rewrite.NFQ
	pos   map[*tree.Node]int
}

func (b *docOrderBatch) Len() int           { return len(b.calls) }
func (b *docOrderBatch) Less(i, j int) bool { return b.pos[b.calls[i]] < b.pos[b.calls[j]] }
func (b *docOrderBatch) Swap(i, j int) {
	b.calls[i], b.calls[j] = b.calls[j], b.calls[i]
	b.nfqs[i], b.nfqs[j] = b.nfqs[j], b.nfqs[i]
}

// pendingCalls lists the document's calls minus those given up on.
func (e *engine) pendingCalls() []*tree.Node {
	calls := e.doc.Calls()
	if len(e.failed) == 0 {
		return calls
	}
	out := calls[:0]
	for _, c := range calls {
		if !e.failed[c] {
			out = append(out, c)
		}
	}
	return out
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// drainLayer runs NFQA over the layer's members until none of them
// retrieves a relevant call.
func (e *engine) drainLayer(members []int, analysis *influence.Analysis, done map[int]bool) error {
	// The query objects only change when the done set does (handled by
	// rebuilding per layer) or, for refined NFQs, when a previously
	// unseen service name enters the document.
	var queries []*rewrite.NFQ
	builtAt := -1
	for {
		if e.budgetLeft() <= 0 {
			return nil
		}
		e.round++
		if queries == nil || (e.an != nil && builtAt != e.nameVersion) {
			t0 := time.Now()
			var err error
			queries, err = e.buildQueries(done)
			if err != nil {
				return err
			}
			builtAt = e.nameVersion
			// Regenerated query objects invalidate the evaluator shards
			// and projection predicates wholesale: both memoise per query
			// node ID, and the new queries' IDs mean different subtrees.
			e.incr = map[*rewrite.NFQ]*pattern.IncrementalEvaluator{}
			e.projs = map[*rewrite.NFQ]*schema.Projection{}
			e.stats.AnalysisTime += time.Since(t0)
		}
		progressed := false
		lpqBased := e.opt.Strategy == TopDownEager || e.opt.Strategy == LazyLPQ
		if e.opt.Speculative {
			// Gather every member NFQ's retrieved calls and fire them as
			// one batch. Calls can be retrieved by several NFQs; the
			// batch is deduplicated, and each call is pushed the
			// subquery of the first NFQ that retrieved it.
			sets := e.detectMany(members, queries)
			seen := map[*tree.Node]bool{}
			var batchCalls []*tree.Node
			var batchNFQs []*rewrite.NFQ
			for i, m := range members {
				nfq := queries[m]
				for _, c := range sets[i] {
					if !seen[c] {
						seen[c] = true
						batchCalls = append(batchCalls, c)
						batchNFQs = append(batchNFQs, nfq)
					}
				}
			}
			if len(batchCalls) == 0 {
				return nil
			}
			if pl := e.opt.Planner; pl != nil && len(batchCalls) > 1 {
				batchCalls, batchNFQs = e.admitSpeculative(pl, batchCalls, batchNFQs)
			}
			if b := e.budgetLeft(); len(batchCalls) > b {
				// The batch is assembled in NFQ-retrieval order, which
				// depends on member iteration; a budget cut must not let
				// that ordering decide which calls are dropped. Re-rank
				// the batch by document order first, so the invoked
				// prefix is deterministic and the dropped calls are
				// exactly the document's trailing ones — like the
				// sequential MaxCalls cut, they stay pending in the
				// document and the evaluation reports Complete=false.
				sortByDocOrder(batchCalls, batchNFQs, e.doc)
				batchCalls = batchCalls[:b]
				batchNFQs = batchNFQs[:b]
			}
			if err := e.invokeMixedBatch(batchCalls, batchNFQs); err != nil {
				return err
			}
			continue
		}
		// With a detection pool, every member's relevant set is computed
		// up front in one parallel pass; the member loop then consumes
		// the precomputed sets. The acted-on set is always the first
		// non-empty one, and the loop re-detects after every invocation
		// round, so the invoked sequence matches sequential detection
		// exactly — only the work accounting differs (no early exit).
		var sets [][]*tree.Node
		if e.opt.Workers > 1 && len(members) > 1 {
			sets = e.detectMany(members, queries)
		}
		for mi, m := range members {
			nfq := queries[m]
			var calls []*tree.Node
			if sets != nil {
				calls = sets[mi]
			} else {
				calls = e.relevantCalls(nfq, mi)
			}
			if len(calls) == 0 {
				continue
			}
			progressed = true
			if len(calls) > e.budgetLeft() {
				calls = calls[:e.budgetLeft()]
			}
			switch {
			case e.opt.Parallel && (analysis == nil || analysis.Independent(m)):
				if err := e.invokeBatch(calls, nfq); err != nil {
					return err
				}
			case lpqBased:
				// Position relevance cannot be invalidated by another
				// invocation (an LPQ has no conditions and the call
				// stays at its position), so the whole retrieved set is
				// invoked without re-evaluation — sequentially, each
				// call charged in full.
				for _, c := range calls {
					if err := e.invokeOne(c, nfq); err != nil {
						return err
					}
				}
			default:
				// Invoke a single call, then re-evaluate the layer's
				// queries: its result may have changed every NFQ's
				// relevant set (Section 4.1).
				if err := e.invokeOne(calls[0], nfq); err != nil {
					return err
				}
			}
			break
		}
		if !progressed {
			return nil
		}
	}
}

// buildQueries regenerates the relevance queries for the current engine
// state (strategy, done positions, known names). The result always holds
// one query per non-anchor node, in pre-order, so member indices from the
// influence analysis stay valid across regenerations. Done positions are
// only used to simplify OR/() branches inside the queries (Section 4.3):
// queries for done nodes are still present but belong to finished layers
// and are never evaluated again.
func (e *engine) buildQueries(done map[int]bool) ([]*rewrite.NFQ, error) {
	ropt := rewrite.Options{
		RelaxJoins: e.opt.RelaxJoins,
		Analyzer:   e.an,
		Names:      e.sortedNames(),
		Done:       done,
	}
	if e.opt.Strategy == TopDownEager || e.opt.Strategy == LazyLPQ {
		return e.lpqSet()
	}
	var out []*rewrite.NFQ
	for _, v := range e.q.Nodes() {
		if v.Kind == pattern.Root {
			continue
		}
		var (
			nfq *rewrite.NFQ
			err error
		)
		if done[v.ID] {
			// Finished layer: keep an index placeholder; its query is
			// never evaluated again.
			nfq, err = rewrite.LPQ(e.q, v)
		} else {
			nfq, err = rewrite.Build(e.q, v, ropt)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, nfq)
	}
	return out, nil
}

// lpqSet builds the minimized LPQ family. Minimization (containment-based
// redundancy elimination, Section 4.1) is skipped when pushing, since the
// subsumed finer queries carry more precise subqueries to push. The set
// depends only on the user query, so it is deterministic across calls and
// the influence analysis' member indices stay valid.
func (e *engine) lpqSet() ([]*rewrite.NFQ, error) {
	var out []*rewrite.NFQ
	for _, v := range e.q.Nodes() {
		if v.Kind == pattern.Root {
			continue
		}
		l, err := rewrite.LPQ(e.q, v)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	if !e.opt.Push {
		out = rewrite.Minimize(out)
	}
	return out, nil
}

func (e *engine) sortedNames() []string {
	out := make([]string, 0, len(e.names))
	for n := range e.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// detectDelta is one relevance detection's contribution to the shared
// counters. Detections return it by value so a parallel pool's workers
// never touch engine state; the coordinator merges.
type detectDelta struct {
	queried         bool // a relevance query actually ran (trace + counter)
	nodesVisited    int
	memoHits        int
	subtreesPruned  int
	guideCandidates int
}

// mergeDetect folds one detection's accounting into the engine stats.
func (e *engine) mergeDetect(d detectDelta) {
	if d.queried {
		e.stats.RelevanceQueries++
	}
	e.stats.NodesVisited += d.nodesVisited
	e.stats.MemoHits += d.memoHits
	e.stats.SubtreesPruned += d.subtreesPruned
	e.stats.GuideCandidates += d.guideCandidates
}

// incremental returns (creating on demand) the persistent evaluator shard
// for one relevance query, or nil when incremental evaluation is off.
// Only the coordinating goroutine may call it — it writes e.incr; pool
// workers rely on detectMany pre-creating every shard they will read.
func (e *engine) incremental(nfq *rewrite.NFQ) *pattern.IncrementalEvaluator {
	if !e.opt.Incremental {
		return nil
	}
	iev := e.incr[nfq]
	if iev == nil {
		iev = pattern.NewIncrementalProjected(nfq.Query, asProjector(e.projection(nfq)))
		e.incr[nfq] = iev
	}
	return iev
}

// projection returns (building on demand) the document-projection
// predicate for one relevance query, or nil when the engine does not
// project. Construction runs the per-query satisfiability fixpoint, so
// it is charged to analysis time; the predicate is then cached for the
// query object's lifetime. Only the coordinating goroutine may call it —
// it writes e.projs; pool workers rely on detectMany pre-resolving every
// predicate they will read.
func (e *engine) projection(nfq *rewrite.NFQ) *schema.Projection {
	if e.userProj == nil || nfq == nil {
		return nil
	}
	proj, ok := e.projs[nfq]
	if !ok {
		t0 := time.Now()
		proj = schema.NewProjection(e.opt.Schema, nfq.Query, e.opt.SchemaMode)
		e.stats.AnalysisTime += time.Since(t0)
		e.projs[nfq] = proj
	}
	return proj
}

// asProjector adapts a projection for the pattern evaluator: a nil or
// trivial (nothing-prunable) predicate becomes a nil interface so the
// evaluator skips the per-node check entirely.
func asProjector(p *schema.Projection) pattern.Projector {
	if p == nil || p.Trivial() {
		return nil
	}
	return p
}

// guideKeep derives the label filter for projection-aware guide
// construction: keep a label exactly when at least one relevance query
// of this evaluation could match inside elements carrying it (the
// disjunction of the per-NFQ projections — the guide serves every NFQ,
// so only a region dead for all of them may go unindexed; a call the
// filter drops could never survive detect's residual matcher). Returns
// nil (index everything) without typed projection, or when any query's
// projection is absent or trivial and filtering could lose candidates
// or buy nothing. Relevance queries regenerated in later rounds only
// drop branches of the base set, so the base projections stay sound for
// the whole evaluation.
func (e *engine) guideKeep(base []*rewrite.NFQ) func(string) bool {
	if e.userProj == nil {
		return nil
	}
	if e.projs == nil {
		e.projs = map[*rewrite.NFQ]*schema.Projection{}
	}
	projs := make([]*schema.Projection, 0, len(base))
	for _, nfq := range base {
		p := e.projection(nfq)
		if p == nil || p.Trivial() {
			return nil
		}
		projs = append(projs, p)
	}
	if len(projs) == 0 {
		return nil
	}
	return func(label string) bool {
		for _, p := range projs {
			if p.CanMatchAnyBelow(label) {
				return true
			}
		}
		return false
	}
}

// detect retrieves the calls currently relevant for one NFQ: by direct
// evaluation on the document (incremental when the NFQ has a persistent
// evaluator shard), or via the F-guide followed by type-based and
// residual filtering (Section 6.2). Type pruning on the output side
// (Section 5) applies in both paths. It reads shared engine state but
// mutates none of it, so distinct NFQs may be detected concurrently.
func (e *engine) detect(nfq *rewrite.NFQ, iev *pattern.IncrementalEvaluator, proj *schema.Projection) ([]*tree.Node, detectDelta) {
	var d detectDelta
	if nfq == nil {
		return nil, d
	}
	var calls []*tree.Node
	if e.guide != nil {
		cands := e.guide.Candidates(nfq.Lin, nfq.DescTail)
		d.guideCandidates = len(cands)
		if len(cands) == 0 {
			return nil, d
		}
		// Candidates share one residual matcher, so condition checks are
		// memoised across them and each check only explores the
		// candidate's own ancestors' subtrees (Section 6.2).
		d.queried = true
		matcher := pattern.NewResidualMatcher(nfq.Query, nfq.Out)
		for _, c := range cands {
			if e.failed[c] || !nfq.SatisfiesOut(e.an, c.Label) {
				continue
			}
			if matcher.Match(e.doc, c) {
				calls = append(calls, c)
			}
		}
		return calls, d
	}
	var got []*tree.Node
	var st pattern.Stats
	if iev != nil {
		got, st = iev.MatchedCallsIncremental(e.doc, nfq.Out)
	} else {
		got, st = pattern.MatchedCallsProjected(e.doc, nfq.Query, nfq.Out, asProjector(proj))
	}
	d.queried = true
	d.nodesVisited = st.NodesVisited
	d.memoHits = st.MemoHits
	d.subtreesPruned = st.SubtreesPruned
	for _, c := range got {
		if !e.failed[c] && nfq.SatisfiesOut(e.an, c.Label) {
			calls = append(calls, c)
		}
	}
	return calls, d
}

// relevantCalls is the sequential entry point around detect: it charges
// detection time, merges the counters, emits the trace event and the
// telemetry span. shard is the member's slot in the current layer.
func (e *engine) relevantCalls(nfq *rewrite.NFQ, shard int) []*tree.Node {
	t0 := time.Now()
	calls, d := e.detect(nfq, e.incremental(nfq), e.projection(nfq))
	elapsed := time.Since(t0)
	e.stats.DetectTime += elapsed
	e.mergeDetect(d)
	if d.queried {
		e.met.detectSecs.Observe(elapsed)
		e.emitDetectSpan(nfq, shard, t0, elapsed, len(calls))
		e.emit(TraceEvent{Kind: TraceDetect, Target: traceTarget(nfq), Shard: shard, Calls: len(calls)})
	}
	return calls
}

// emitDetectSpan records one relevance detection as a telemetry span.
func (e *engine) emitDetectSpan(nfq *rewrite.NFQ, shard int, start time.Time, wall time.Duration, calls int) {
	if e.opt.Tracer == nil {
		return
	}
	e.opt.Tracer.Emit(telemetry.Span{
		Parent: e.spanParent(),
		Name:   "detect",
		Shard:  shard,
		Start:  start,
		Wall:   wall,
		Attrs: []telemetry.Attr{
			{Key: "round", Value: strconv.Itoa(e.round)},
			{Key: "target", Value: traceTarget(nfq)},
			{Key: "calls", Value: strconv.Itoa(calls)},
		},
	})
}

// detectMany evaluates the members' relevance queries for the current
// round, sharded over a bounded worker pool when Options.Workers allows
// (each member query owns its evaluator shard, so workers share only the
// read-only document). Stats deltas are merged and trace events emitted
// by the coordinator, in member order, after the pool drains — the
// parallel rounds stay race-clean and deterministic. Detection time is
// charged as wall time: the pool's speedup is the observable quantity.
func (e *engine) detectMany(members []int, queries []*rewrite.NFQ) [][]*tree.Node {
	calls := make([][]*tree.Node, len(members))
	deltas := make([]detectDelta, len(members))
	// Resolve every shard's evaluator and projection predicate on the
	// coordinator before the pool starts: both caches are maps only the
	// coordinator may write. Predicate construction is analysis work, so
	// it happens outside the detection-time window below.
	ievs := make([]*pattern.IncrementalEvaluator, len(members))
	projs := make([]*schema.Projection, len(members))
	for i, m := range members {
		ievs[i] = e.incremental(queries[m])
		projs[i] = e.projection(queries[m])
	}
	t0 := time.Now()
	workers := e.opt.Workers
	if workers > len(members) {
		workers = len(members)
	}
	// Each shard measures its own wall time in the worker (every worker
	// writes only its own slots); the coordinator merges counters and
	// emits events and spans after the pool drains, so the stream comes
	// out ordered by (layer, round, shard) no matter how the workers
	// interleaved.
	starts := make([]time.Time, len(members))
	walls := make([]time.Duration, len(members))
	runShard := func(i int) {
		starts[i] = time.Now()
		calls[i], deltas[i] = e.detect(queries[members[i]], ievs[i], projs[i])
		walls[i] = time.Since(starts[i])
	}
	if workers <= 1 {
		for i := range members {
			runShard(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runShard(i)
				}
			}()
		}
		for i := range members {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	e.stats.DetectTime += time.Since(t0)
	for i, d := range deltas {
		e.mergeDetect(d)
		if d.queried {
			e.met.detectSecs.Observe(walls[i])
			e.emitDetectSpan(queries[members[i]], i, starts[i], walls[i], len(calls[i]))
			e.emit(TraceEvent{Kind: TraceDetect, Target: traceTarget(queries[members[i]]), Shard: i, Calls: len(calls[i])})
		}
	}
	return calls
}

// pushedQuery returns the subquery to ship with a call retrieved for nfq,
// or nil when pushing is off, impossible, or unsafe. The subquery is
// sub_v, v's subtree (Section 7); it is only pushed when the binding
// tuples it returns can stand in for a full match: every result node is a
// variable and every variable of the subtree is a result variable (a
// variable shared with the rest of the query but absent from the tuples
// could not be joined).
func (e *engine) pushedQuery(nfq *rewrite.NFQ) *pattern.Pattern {
	if !e.opt.Push || nfq == nil {
		return nil
	}
	sub := e.q.Sub(nfq.For)
	resultVars := map[string]bool{}
	for _, r := range sub.ResultNodes() {
		if r.Kind != pattern.Var {
			return nil
		}
		resultVars[r.Label] = true
	}
	for _, v := range sub.Variables() {
		if !resultVars[v] {
			return nil
		}
	}
	return sub
}

// callMeta accounts for one call's full attempt sequence: the virtual
// time it consumed (attempt latencies plus backoffs), how many attempts
// were made, how many were cut by the deadline, and the final error when
// every attempt failed. attemptLog records the per-attempt outcomes for
// trace rendering; it is collected only when a tracer is active.
type callMeta struct {
	cost       time.Duration
	attempts   int
	cuts       int
	err        error
	attemptLog []attemptRec
}

// attemptRec is one attempt's outcome: its virtual cost and the fault
// class it ended with ("" for success).
type attemptRec struct {
	cost  time.Duration
	class string
}

// invokeAttempts runs the retry loop for one call. It mutates no engine
// state (safe to run concurrently for a batch); the caller applies the
// response, charges the clock and updates stats afterwards.
func (e *engine) invokeAttempts(call *tree.Node, pushed *pattern.Pattern) (service.Response, callMeta) {
	var meta callMeta
	policy := e.opt.Retry
	collect := e.opt.Tracer != nil
	record := func(cost time.Duration, err error) {
		if !collect {
			return
		}
		class := ""
		if err != nil {
			class = service.ClassOf(err).String()
		}
		meta.attemptLog = append(meta.attemptLog, attemptRec{cost: cost, class: class})
	}
	// Propagate the trace downstream: remote providers continue the trace
	// under the enclosing layer/evaluate span and may return their span
	// subtree (Options.RemoteSpans). With no trace ID set the context
	// stays plain and the wire envelope is byte-identical to untraced
	// runs.
	ctx := context.Background()
	if id := e.opt.Tracer.Trace(); id != "" {
		ctx = telemetry.WithTrace(ctx, telemetry.TraceContext{
			TraceID:  id,
			Parent:   e.spanParent(),
			MaxSpans: e.opt.RemoteSpans,
		})
	}
	for {
		meta.attempts++
		if meta.attempts > 1 {
			meta.cost += policy.backoffBefore(meta.attempts, int(call.ID))
		}
		resp, err := e.reg.InvokeContext(ctx, call.Label, cloneForest(call.Children), pushed)
		if err == nil {
			if policy.Deadline > 0 && resp.Latency > policy.Deadline {
				// The provider answered, but past the deadline: the
				// engine stopped waiting at the cutoff, so the attempt
				// costs exactly the deadline and the answer is lost.
				meta.cost += policy.Deadline
				meta.cuts++
				err = &service.Fault{
					Service: call.Label, Class: service.Timeout, Latency: policy.Deadline,
					Msg: fmt.Sprintf("latency %v exceeded deadline %v", resp.Latency, policy.Deadline),
				}
				record(policy.Deadline, err)
			} else {
				meta.cost += resp.Latency
				record(resp.Latency, nil)
				return resp, meta
			}
		} else {
			lat := service.FaultLatency(err)
			if policy.Deadline > 0 && lat > policy.Deadline {
				lat = policy.Deadline
				meta.cuts++
			}
			meta.cost += lat
			record(lat, err)
		}
		if meta.attempts >= policy.attempts() || !service.Retryable(err) {
			meta.err = err
			return service.Response{}, meta
		}
	}
}

// chargeMeta records a finished attempt sequence's retry accounting.
func (e *engine) chargeMeta(meta callMeta) {
	e.stats.Retries += meta.attempts - 1
	e.stats.DeadlineCuts += meta.cuts
}

// giveUp handles a call whose attempts are exhausted: fail the
// evaluation (FailFast) or record the failure and park the call
// (BestEffort).
func (e *engine) giveUp(call *tree.Node, path string, meta callMeta) error {
	e.emit(TraceEvent{
		Kind: TraceGiveUp, Service: call.Label, Path: path,
		Attempts: meta.attempts, Err: meta.err.Error(),
	})
	if e.opt.Failure == FailFast {
		return meta.err
	}
	e.stats.FailedCalls++
	e.failed[call] = true
	e.failures = append(e.failures, CallFailure{
		Service: call.Label, Path: path, Attempts: meta.attempts, Err: meta.err,
	})
	return nil
}

// emitInvokeSpan records one call's full attempt sequence as a span and
// feeds the invocation histograms. worker is the invocation-pool worker
// the attempt sequence ran on (0 outside a batch). remote is the
// provider-side span subtree returned in the response envelope; it is
// grafted under the invoke span. A retried call additionally gets one
// "attempt" child span per attempt, so retry storms are visible in the
// explain tree (single-attempt calls emit no children, keeping
// fault-free trace streams unchanged).
func (e *engine) emitInvokeSpan(call *tree.Node, nfq *rewrite.NFQ, path string, worker int, start time.Time, wall time.Duration, meta callMeta, pushed bool, remote []telemetry.Span) {
	e.met.invokeWall.Observe(wall)
	e.met.invokeVirt.Observe(meta.cost)
	if e.opt.Tracer == nil {
		return
	}
	s := telemetry.Span{
		Parent:  e.spanParent(),
		Name:    "invoke",
		Worker:  worker,
		Start:   start,
		Wall:    wall,
		Virtual: meta.cost,
		Attrs: []telemetry.Attr{
			{Key: "round", Value: strconv.Itoa(e.round)},
			{Key: "service", Value: call.Label},
			{Key: "path", Value: path},
		},
	}
	if t := traceTarget(nfq); t != "" {
		s.Attrs = append(s.Attrs, telemetry.Attr{Key: "target", Value: t})
	}
	if pushed {
		s.Attrs = append(s.Attrs, telemetry.Attr{Key: "pushed", Value: "true"})
	}
	if meta.attempts > 1 {
		s.Attrs = append(s.Attrs, telemetry.Attr{Key: "attempts", Value: strconv.Itoa(meta.attempts)})
	}
	if meta.err != nil {
		s.Attrs = append(s.Attrs, telemetry.Attr{Key: "error", Value: meta.err.Error()})
	}
	id := e.opt.Tracer.Emit(s)
	if meta.attempts > 1 {
		for i, a := range meta.attemptLog {
			status := a.class
			if status == "" {
				status = "ok"
			}
			e.opt.Tracer.Emit(telemetry.Span{
				Parent:  id,
				Name:    "attempt",
				Worker:  worker,
				Start:   start,
				Virtual: a.cost,
				Attrs: []telemetry.Attr{
					{Key: "attempt", Value: strconv.Itoa(i + 1)},
					{Key: "status", Value: status},
				},
			})
		}
	}
	e.opt.Tracer.GraftRemote(id, remote)
}

// pushFor computes the subquery to ship with a call to svc, honouring
// the planner's push veto. The veto is response-neutral by contract —
// a planner may only veto services observed to never honour a push, so
// withholding the subquery saves serialization without changing the
// response.
func (e *engine) pushFor(nfq *rewrite.NFQ, svc string) *pattern.Pattern {
	p := e.pushedQuery(nfq)
	if p != nil && e.opt.Planner != nil && !e.opt.Planner.AllowPush(svc) {
		e.stats.PushVetoed++
		return nil
	}
	return p
}

// emitPlanSpan records the planner's decision for one batch: the
// schedule shape (batch size, accepted width) plus the planner's own
// rationale attrs — the per-service cost inputs behind the chosen order
// — so -explain shows not just the schedule but why.
func (e *engine) emitPlanSpan(bp BatchPlan, batch, width int, start time.Time, wall time.Duration) {
	if e.opt.Tracer == nil {
		return
	}
	attrs := append([]telemetry.Attr{
		{Key: "round", Value: strconv.Itoa(e.round)},
		{Key: "batch", Value: strconv.Itoa(batch)},
		{Key: "width", Value: strconv.Itoa(width)},
	}, bp.Attrs...)
	e.opt.Tracer.Emit(telemetry.Span{
		Parent: e.spanParent(),
		Name:   "plan",
		Start:  start,
		Wall:   wall,
		Attrs:  attrs,
	})
}

// invokeOne invokes a single call (retries included) and charges its full
// cost sequentially.
func (e *engine) invokeOne(call *tree.Node, nfq *rewrite.NFQ) error {
	path := tracePath(call)
	pushed := e.pushFor(nfq, call.Label)
	start := time.Now()
	resp, meta := e.invokeAttempts(call, pushed)
	wall := time.Since(start)
	e.chargeMeta(meta)
	e.opt.Clock.Advance(meta.cost)
	e.stats.Rounds++
	wasPushed := meta.err == nil && pushed != nil && resp.Pushed
	e.emitInvokeSpan(call, nfq, path, 0, start, wall, meta, wasPushed, resp.RemoteTrace)
	if meta.err != nil {
		return e.giveUp(call, path, meta)
	}
	if meta.attempts > 1 {
		e.emit(TraceEvent{Kind: TraceRetry, Service: call.Label, Path: path, Attempts: meta.attempts})
	}
	e.apply(call, resp, wasPushed)
	e.emit(TraceEvent{
		Kind: TraceInvoke, Target: traceTarget(nfq), Service: call.Label,
		Path: path, Calls: 1, Pushed: wasPushed,
	})
	return nil
}

// invokeBatch invokes the calls in parallel and charges the batch's
// maximum latency (Section 4.4). Service handlers run concurrently; the
// document mutations are applied sequentially afterwards.
func (e *engine) invokeBatch(calls []*tree.Node, nfq *rewrite.NFQ) error {
	nfqs := make([]*rewrite.NFQ, len(calls))
	for i := range nfqs {
		nfqs[i] = nfq
	}
	return e.invokeMixedBatch(calls, nfqs)
}

// invokeMixedBatch is invokeBatch with a per-call originating NFQ, so a
// speculative batch can push each call the subquery it was retrieved for.
// Every member runs its own retry loop concurrently and the batch is
// charged its slowest member's full cost, retries and backoffs included
// (Section 4.4). All completed members are applied before any failure is
// reported, so a mid-batch error never drops (or forgets to charge)
// responses that already arrived.
func (e *engine) invokeMixedBatch(calls []*tree.Node, nfqs []*rewrite.NFQ) error {
	type result struct {
		resp   service.Response
		meta   callMeta
		pushed bool
		start  time.Time
		wall   time.Duration
	}
	results := make([]result, len(calls))
	pushes := make([]*pattern.Pattern, len(calls))
	paths := make([]string, len(calls))
	for i, c := range calls {
		pushes[i] = e.pushFor(nfqs[i], c.Label)
		paths[i] = tracePath(c)
	}
	// Bounded invocation pool: member i runs on worker i mod W, so the
	// member→worker assignment — and the Worker stamped onto each invoke
	// span — is deterministic for a given batch regardless of goroutine
	// scheduling. Each worker walks its own stripe sequentially and writes
	// only its members' slots; the coordinator below applies responses in
	// member (document) order after the pool drains, so results, traces
	// and virtual-clock stats are identical for every pool width. W <= 0
	// keeps the historical one-goroutine-per-member behaviour; W == 1
	// degenerates to a sequential walk on the calling goroutine.
	workers := e.opt.InvokeWorkers
	if workers <= 0 || workers > len(calls) {
		workers = len(calls)
	}
	// workerOf[i] is the pool worker member i runs on: the static
	// striped assignment unless an accepted plan overrides it below.
	workerOf := make([]int, len(calls))
	for i := range calls {
		workerOf[i] = i % workers
	}
	// A planner may regroup members across workers and shrink the pool,
	// nothing more: responses are still applied in member order after
	// the pool drains and the batch is still charged its slowest
	// member, so an accepted plan changes wall-clock shape only. A plan
	// that is not an exact permutation of the batch within the width
	// bound is discarded in favour of the striped schedule.
	var queues [][]int
	if pl := e.opt.Planner; pl != nil {
		planStart := time.Now()
		bp := pl.PlanBatch(planCalls(calls, pushes), workers)
		planWall := time.Since(planStart)
		if bp.Width >= 1 && bp.Width <= workers && len(bp.Queues) == bp.Width && validQueues(bp.Queues, len(calls)) {
			workers = bp.Width
			queues = bp.Queues
			for w, q := range queues {
				for _, i := range q {
					workerOf[i] = w
				}
			}
		}
		e.emitPlanSpan(bp, len(calls), workers, planStart, planWall)
	}
	runMember := func(i int) {
		start := time.Now()
		resp, meta := e.invokeAttempts(calls[i], pushes[i])
		results[i] = result{resp, meta, pushes[i] != nil && resp.Pushed, start, time.Since(start)}
	}
	switch {
	case queues != nil && workers > 1:
		var wg sync.WaitGroup
		for _, q := range queues {
			wg.Add(1)
			go func(q []int) {
				defer wg.Done()
				for _, i := range q {
					runMember(i)
				}
			}(q)
		}
		wg.Wait()
	case queues != nil:
		for _, i := range queues[0] {
			runMember(i)
		}
	case workers == 1:
		for i := range calls {
			runMember(i)
		}
	default:
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(calls); i += workers {
					runMember(i)
				}
			}(w)
		}
		wg.Wait()
	}
	var maxCost time.Duration
	var firstErr error
	for i, c := range calls {
		r := results[i]
		e.chargeMeta(r.meta)
		if r.meta.cost > maxCost {
			maxCost = r.meta.cost
		}
		e.emitInvokeSpan(c, nfqs[i], paths[i], workerOf[i], r.start, r.wall, r.meta, r.meta.err == nil && r.pushed, r.resp.RemoteTrace)
		if r.meta.err != nil {
			if err := e.giveUp(c, paths[i], r.meta); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if r.meta.attempts > 1 {
			e.emit(TraceEvent{Kind: TraceRetry, Service: c.Label, Path: paths[i], Attempts: r.meta.attempts})
		}
		e.apply(c, r.resp, r.pushed)
		e.emit(TraceEvent{
			Kind: TraceInvoke, Target: traceTarget(nfqs[i]), Service: c.Label,
			Path: paths[i], Calls: len(calls), Pushed: r.pushed, Parallel: true,
		})
	}
	e.opt.Clock.Advance(maxCost)
	e.stats.Rounds++
	return firstErr
}

// apply splices a response into the document, maintains the guide, the
// known-name set and the incremental evaluator shards, and updates
// accounting.
func (e *engine) apply(call *tree.Node, resp service.Response, wasPushed bool) {
	parent := call.Parent
	if e.guide != nil {
		e.guide.Remove(call)
	}
	inserted := e.doc.ReplaceCall(call, resp.Forest)
	for _, n := range inserted {
		if e.guide != nil {
			e.guide.AddSubtree(n)
		}
		n.Walk(func(x *tree.Node) bool {
			if x.Kind == tree.Call && !e.names[x.Label] {
				e.names[x.Label] = true
				e.nameVersion++
			}
			return true
		})
	}
	if e.guide != nil {
		// An empty response forest triggers no Add, which would leave the
		// guide's version behind the splice's bump; the engine witnessed
		// the whole mutation, so the guide is in fact current.
		e.guide.MarkSynced()
	}
	// Every live evaluator shard drops the memo entries this splice can
	// have changed: the removed call subtree and the root-to-parent
	// spine. Everything off the spine keeps its memo (solutions depend
	// only on the keyed node's subtree).
	for _, iev := range e.incr {
		iev.Invalidate(parent, call)
	}
	// OnMutate fires last, after the engine's own guide maintenance: an
	// external holder of the adopted guide observes it already synced.
	if e.opt.OnMutate != nil {
		e.opt.OnMutate(parent, call, inserted)
	}
	e.stats.CallsInvoked++
	e.stats.BytesFetched += resp.Bytes
	if wasPushed {
		e.stats.PushedCalls++
	}
}

func cloneForest(ns []*tree.Node) []*tree.Node {
	out := make([]*tree.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}
