package core

import (
	"testing"

	"github.com/activexml/axml/internal/workload"
)

func TestJoinQueryGroundTruth(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.TagJoinEvery = 2
	spec.PushCapable = true
	w := workload.Hotels(spec)
	for _, opt := range []Options{
		{Strategy: NaiveFixpoint},
		{Strategy: LazyNFQ},
		{Strategy: LazyNFQ, Push: true},
		{Strategy: LazyNFQTyped, Schema: w.Schema, Push: true, Layering: true, Parallel: true},
	} {
		out, err := Evaluate(w.Doc.Clone(), w.JoinQuery, w.Registry, opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v push=%v: results=%d complete=%v calls=%d", opt.Strategy, opt.Push, len(out.Results), out.Complete, out.Stats.CallsInvoked)
	}
}
