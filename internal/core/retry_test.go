package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// retryPolicy is the policy the retry tests share: enough attempts to
// outlast warm-up failures, a backoff the virtual clock can observe.
func retryPolicy(seed int64) RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond, Seed: seed}
}

// oneCallWorld is a minimal document with a single relevant call, for
// tests that need exact clock arithmetic.
func oneCallWorld(latency time.Duration, handler service.Handler) (*tree.Document, *pattern.Pattern, *service.Registry) {
	root := tree.NewElement("shop")
	item := root.Append(tree.NewElement("items"))
	item.Append(tree.NewCall("getItems"))
	doc := tree.NewDocument(root)
	q := pattern.MustParse(`/shop/items/item[name=$X] -> $X`)
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "getItems", Latency: latency, Handler: handler})
	return doc, q, reg
}

func itemForest() []*tree.Node {
	it := tree.NewElement("item")
	it.Append(tree.NewElement("name")).Append(tree.NewText("lamp"))
	return []*tree.Node{it}
}

func TestRetryRecoversFromWarmupFailures(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	want := run(t, w, Options{Strategy: LazyNFQ})

	for _, strategy := range []Strategy{NaiveFixpoint, LazyLPQ, LazyNFQ} {
		flaky := service.NewFaults(service.FaultSpec{Seed: 11, FailFirst: 2}).Wrap(w.Registry)
		out, err := Evaluate(w.Doc.Clone(), w.Query, flaky, Options{
			Strategy: strategy, Retry: retryPolicy(11),
		})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if !out.Complete || len(out.Failures) != 0 {
			t.Fatalf("%v: complete=%v failures=%d", strategy, out.Complete, len(out.Failures))
		}
		if resultKeys(out) != resultKeys(want) {
			t.Fatalf("%v: flaky run disagrees with fault-free run", strategy)
		}
		// Every service fails twice before its first success, so at
		// least two retries must have happened overall.
		if out.Stats.Retries < 2 {
			t.Fatalf("%v: retries = %d, want ≥ 2", strategy, out.Stats.Retries)
		}
	}
}

func TestFailFastWithoutRetriesErrors(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	flaky := service.NewFaults(service.FaultSpec{Seed: 11, FailFirst: 1}).Wrap(w.Registry)
	_, err := Evaluate(w.Doc.Clone(), w.Query, flaky, Options{Strategy: LazyNFQ})
	if err == nil {
		t.Fatal("fail-fast evaluation without retries should surface the injected fault")
	}
	if !service.Retryable(err) {
		t.Fatalf("injected fault lost its class through the engine: %v", err)
	}
	var fault *service.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("fault not in error chain: %v", err)
	}
}

func TestBackoffChargedToVirtualClock(t *testing.T) {
	const latency = 10 * time.Millisecond
	doc, q, reg := oneCallWorld(latency, func([]*tree.Node) ([]*tree.Node, error) {
		return itemForest(), nil
	})
	flaky := service.NewFaults(service.FaultSpec{Seed: 1, FailFirst: 2}).Wrap(reg)
	out, err := Evaluate(doc, q, flaky, Options{
		Strategy: LazyNFQ,
		Retry:    RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two failed attempts at the service latency, a 100ms backoff, a
	// 200ms (doubled) backoff, then the successful attempt.
	want := 3*latency + 300*time.Millisecond
	if out.Stats.VirtualTime != want {
		t.Fatalf("virtual time = %v, want %v", out.Stats.VirtualTime, want)
	}
	if out.Stats.Retries != 2 || len(out.Results) != 1 {
		t.Fatalf("retries = %d, results = %d", out.Stats.Retries, len(out.Results))
	}
}

func TestBackoffJitterIsDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond,
		MaxBackoff: 250 * time.Millisecond, Jitter: 0.5, Seed: 42}
	for attempt := 2; attempt <= 5; attempt++ {
		a := p.backoffBefore(attempt, 7)
		b := p.backoffBefore(attempt, 7)
		if a != b {
			t.Fatalf("attempt %d: jittered backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		full := 100 * time.Millisecond << uint(attempt-2)
		if full > 250*time.Millisecond {
			full = 250 * time.Millisecond
		}
		if a > full || a < full/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, a, full/2, full)
		}
	}
	if p.backoffBefore(3, 7) == p.backoffBefore(3, 8) &&
		p.backoffBefore(4, 7) == p.backoffBefore(4, 8) {
		t.Fatal("jitter does not vary across calls")
	}
}

func TestDeadlineCutsSlowCalls(t *testing.T) {
	doc, q, reg := oneCallWorld(500*time.Millisecond, func([]*tree.Node) ([]*tree.Node, error) {
		return itemForest(), nil
	})
	out, err := Evaluate(doc, q, reg, Options{
		Strategy: LazyNFQ,
		Retry:    RetryPolicy{MaxAttempts: 2, Deadline: 100 * time.Millisecond},
		Failure:  BestEffort,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both attempts stall past the deadline; each is charged exactly
	// the deadline and the call is abandoned.
	if out.Stats.VirtualTime != 200*time.Millisecond {
		t.Fatalf("virtual time = %v, want 200ms", out.Stats.VirtualTime)
	}
	if out.Stats.DeadlineCuts != 2 || out.Stats.FailedCalls != 1 {
		t.Fatalf("cuts = %d, failed = %d", out.Stats.DeadlineCuts, out.Stats.FailedCalls)
	}
	if out.Complete {
		t.Fatal("a failed relevant call must downgrade completeness")
	}
	if len(out.Failures) != 1 || service.ClassOf(out.Failures[0].Err) != service.Timeout {
		t.Fatalf("failures = %+v", out.Failures)
	}
}

func TestBestEffortKeepsEvaluatingAroundPermanentFailures(t *testing.T) {
	// Restaurant lookups fail permanently; hotel ratings still resolve.
	// Best effort must deliver the partial result (hotels whose
	// restaurants were extensional) instead of erroring.
	spec := workload.DefaultSpec()
	w := workload.Hotels(spec)
	flaky := service.NewFaults(service.FaultSpec{
		Seed: 3, PermanentRate: 1, Services: []string{"getNearbyRestos"},
	}).Wrap(w.Registry)
	out, err := Evaluate(w.Doc.Clone(), w.Query, flaky, Options{
		Strategy: LazyNFQ, Retry: retryPolicy(3), Failure: BestEffort,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) == 0 || out.Stats.FailedCalls != len(out.Failures) {
		t.Fatalf("expected recorded failures, got %+v", out.Failures)
	}
	if out.Complete {
		t.Fatal("relevant failed calls must leave the outcome incomplete")
	}
	for _, f := range out.Failures {
		if f.Service != "getNearbyRestos" || f.Attempts != 1 {
			t.Fatalf("unexpected failure record: %+v", f)
		}
		if !strings.Contains(f.Path, "nearby") {
			t.Fatalf("failure path not recorded: %+v", f)
		}
	}
}

func TestBestEffortIrrelevantFailureStaysComplete(t *testing.T) {
	// Museums never contribute to the default query — but only the
	// schema can prove it (positionally a museum call could return a
	// restaurant). Failing every museum call under the *naive* strategy
	// (which does try to invoke them) must still yield the complete,
	// correct result: the typed completeness recheck proves the failed
	// calls irrelevant.
	w := workload.Hotels(workload.DefaultSpec())
	flaky := service.NewFaults(service.FaultSpec{
		Seed: 5, PermanentRate: 1, Services: []string{"getNearbyMuseums"},
	}).Wrap(w.Registry)
	out, err := Evaluate(w.Doc.Clone(), w.Query, flaky, Options{
		Strategy: NaiveFixpoint, Failure: BestEffort, Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) == 0 {
		t.Fatal("museum calls should have failed")
	}
	if !out.Complete {
		t.Fatal("irrelevant failures must not downgrade completeness")
	}
	if len(out.Results) != w.ExpectedResults {
		t.Fatalf("got %d results, want %d", len(out.Results), w.ExpectedResults)
	}
}

func TestRetryAndGiveUpTraces(t *testing.T) {
	doc, q, reg := oneCallWorld(time.Millisecond, func([]*tree.Node) ([]*tree.Node, error) {
		return itemForest(), nil
	})
	flaky := service.NewFaults(service.FaultSpec{Seed: 1, FailFirst: 1}).Wrap(reg)
	var retries, giveups int
	out, err := Evaluate(doc, q, flaky, Options{
		Strategy: LazyNFQ, Retry: RetryPolicy{MaxAttempts: 2},
		Trace: func(ev TraceEvent) {
			switch ev.Kind {
			case TraceRetry:
				retries++
				if ev.Attempts != 2 || ev.Service != "getItems" {
					t.Errorf("retry event = %+v", ev)
				}
				if !strings.Contains(ev.String(), "succeeded on attempt 2") {
					t.Errorf("retry event renders as %q", ev)
				}
			case TraceGiveUp:
				giveups++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 || giveups != 0 || len(out.Results) != 1 {
		t.Fatalf("retries=%d giveups=%d results=%d", retries, giveups, len(out.Results))
	}

	// Exhausting attempts under best effort emits a give-up event.
	doc2, q2, reg2 := oneCallWorld(time.Millisecond, func([]*tree.Node) ([]*tree.Node, error) {
		return itemForest(), nil
	})
	flaky2 := service.NewFaults(service.FaultSpec{Seed: 1, FailFirst: 5}).Wrap(reg2)
	giveups = 0
	_, err = Evaluate(doc2, q2, flaky2, Options{
		Strategy: LazyNFQ, Retry: RetryPolicy{MaxAttempts: 2}, Failure: BestEffort,
		Trace: func(ev TraceEvent) {
			if ev.Kind == TraceGiveUp {
				giveups++
				if ev.Attempts != 2 || ev.Err == "" {
					t.Errorf("give-up event = %+v", ev)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if giveups != 1 {
		t.Fatalf("giveups = %d, want 1", giveups)
	}
}

// TestBatchFailureKeepsCompletedResponses is the regression test for the
// invokeMixedBatch early-return leak: a mid-batch failure used to drop
// the already-completed members' responses without applying or charging
// them. Under best effort every successful member must land in the
// document; under fail-fast they must land before the error returns.
func TestBatchFailureKeepsCompletedResponses(t *testing.T) {
	build := func() (*tree.Document, *pattern.Pattern, *service.Registry) {
		root := tree.NewElement("shop")
		items := root.Append(tree.NewElement("items"))
		items.Append(tree.NewCall("good1"))
		items.Append(tree.NewCall("bad"))
		items.Append(tree.NewCall("good2"))
		doc := tree.NewDocument(root)
		q := pattern.MustParse(`/shop/items/item[name=$X] -> $X`)
		reg := service.NewRegistry()
		mk := func(name, item string) {
			reg.Register(&service.Service{
				Name: name, Latency: 5 * time.Millisecond,
				Handler: func([]*tree.Node) ([]*tree.Node, error) {
					it := tree.NewElement("item")
					it.Append(tree.NewElement("name")).Append(tree.NewText(item))
					return []*tree.Node{it}, nil
				},
			})
		}
		mk("good1", "lamp")
		mk("good2", "rug")
		reg.Register(&service.Service{
			Name: "bad", Latency: 5 * time.Millisecond,
			Handler: func([]*tree.Node) ([]*tree.Node, error) {
				return nil, &service.Fault{Service: "bad", Class: service.Permanent,
					Latency: 5 * time.Millisecond, Msg: "broken"}
			},
		})
		return doc, q, reg
	}

	// Fail-fast: the error surfaces, but the two successes were applied
	// and the batch round was charged.
	doc, q, reg := build()
	_, err := Evaluate(doc, q, reg, Options{Strategy: NaiveFixpoint, Parallel: true})
	if err == nil {
		t.Fatal("fail-fast batch with a failing member should error")
	}
	if got := len(doc.Calls()); got != 1 {
		t.Fatalf("after the failed batch %d calls remain, want only the failed one", got)
	}
	if names := childNames(doc); names != "lamp,rug" {
		t.Fatalf("successful batch members not applied: %q", names)
	}

	// Best effort: same batch, no error, failure recorded, full partial
	// result.
	doc, q, reg = build()
	out, err := Evaluate(doc, q, reg, Options{
		Strategy: NaiveFixpoint, Parallel: true, Failure: BestEffort,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || len(out.Failures) != 1 || out.Failures[0].Service != "bad" {
		t.Fatalf("results=%d failures=%+v", len(out.Results), out.Failures)
	}
	if out.Complete {
		t.Fatal("the failed call could still have produced matching items; expected incomplete")
	}
}

// childNames renders the item names present in the document, sorted by
// document order.
func childNames(doc *tree.Document) string {
	var names []string
	doc.Root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Element && n.Label == "name" && len(n.Children) == 1 {
			names = append(names, n.Children[0].Label)
		}
		return true
	})
	return strings.Join(names, ",")
}
