package core

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

// TestDifferentialAcrossRandomWorlds drives every strategy (and the main
// option combinations) over randomly drawn workload configurations and
// requires bit-identical result sets. This is the broadest correctness
// net in the suite: any unsoundness in relevance detection, sequencing,
// typing, guides, relaxation or pushing shows up as a disagreement with
// the naive fixpoint.
func TestDifferentialAcrossRandomWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	check := func(seed int64) bool {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
		if err != nil {
			t.Logf("seed %d: naive failed: %v", seed, err)
			return false
		}
		want := resultKeys(baseline)
		if len(baseline.Results) != w.ExpectedResults {
			t.Logf("seed %d: naive %d results, ground truth %d (spec %+v)",
				seed, len(baseline.Results), w.ExpectedResults, spec)
			return false
		}
		for _, opt := range []Options{
			{Strategy: TopDownEager},
			{Strategy: LazyLPQ},
			{Strategy: LazyNFQ},
			{Strategy: LazyNFQ, Layering: true, Parallel: true},
			{Strategy: LazyNFQ, UseGuide: true, RelaxJoins: true},
			{Strategy: LazyNFQ, Incremental: true},
			{Strategy: LazyNFQ, Incremental: true, Workers: 4},
			{Strategy: LazyNFQ, Layering: true, Parallel: true, Incremental: true, Workers: 4},
			{Strategy: LazyNFQTyped, Schema: w.Schema},
			{Strategy: LazyNFQTyped, Schema: w.Schema, Incremental: true},
			{Strategy: LazyNFQTyped, Schema: w.Schema, SchemaMode: schema.Lenient,
				Layering: true, Speculative: true, UseGuide: true, Push: true},
		} {
			out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
			if err != nil {
				t.Logf("seed %d: %v failed: %v", seed, opt.Strategy, err)
				return false
			}
			if got := resultKeys(out); got != want {
				t.Logf("seed %d: %v (opts %+v) disagrees with naive\n got %q\nwant %q\nspec %+v",
					seed, opt.Strategy, opt, got, want, spec)
				return false
			}
		}
		// The same worlds through a shared response cache: the second
		// evaluation runs warm (its repeats are served from memory), and
		// both must still match the uncached naive baseline exactly.
		cached := service.NewCache(service.CacheSpec{}).Wrap(w.Registry)
		for _, opt := range []Options{
			{Strategy: NaiveFixpoint},
			{Strategy: LazyNFQ, Incremental: true, Workers: 4},
		} {
			out, err := Evaluate(w.Doc.Clone(), w.Query, cached, opt)
			if err != nil {
				t.Logf("seed %d: cached %v failed: %v", seed, opt.Strategy, err)
				return false
			}
			if got := resultKeys(out); got != want {
				t.Logf("seed %d: cached %v disagrees with uncached naive\n got %q\nwant %q\nspec %+v",
					seed, opt.Strategy, got, want, spec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestProjectionDifferentialSweep is the acceptance net for type-based
// document projection: over 50 random worlds, the typed strategy with
// projection on must agree bit-for-bit with projection off AND with the
// naive fixpoint at every detection/invocation pool width — and the two
// runs must invoke exactly the same number of calls, since projection
// may only skip statically irrelevant subtrees, never change what is
// relevant. The sweep also requires that projection actually fired
// somewhere, so a silently-trivial predicate cannot fake a pass.
func TestProjectionDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	prunedTotal := 0
	for seed := int64(0); seed < 50; seed++ {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
		if err != nil {
			t.Fatalf("seed %d: naive failed: %v", seed, err)
		}
		want := resultKeys(baseline)
		for _, width := range []int{1, 2, 4, 8} {
			var outcomes [2]*Outcome
			for i, noProject := range []bool{false, true} {
				opt := Options{
					Strategy:      LazyNFQTyped,
					Schema:        w.Schema,
					Incremental:   true,
					Workers:       width,
					InvokeWorkers: width,
					NoProject:     noProject,
				}
				out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
				if err != nil {
					t.Fatalf("seed %d width %d noProject=%v: %v", seed, width, noProject, err)
				}
				if got := resultKeys(out); got != want {
					t.Fatalf("seed %d width %d noProject=%v disagrees with naive\n got %q\nwant %q\nspec %+v",
						seed, width, noProject, got, want, spec)
				}
				outcomes[i] = out
			}
			on, off := outcomes[0], outcomes[1]
			if on.Stats.CallsInvoked != off.Stats.CallsInvoked {
				t.Fatalf("seed %d width %d: projection changed invocations: %d with, %d without",
					seed, width, on.Stats.CallsInvoked, off.Stats.CallsInvoked)
			}
			if off.Stats.SubtreesPruned != 0 {
				t.Fatalf("seed %d width %d: NoProject run still pruned %d subtrees",
					seed, width, off.Stats.SubtreesPruned)
			}
			prunedTotal += on.Stats.SubtreesPruned
		}
	}
	if prunedTotal == 0 {
		t.Fatal("projection never pruned a subtree across the whole sweep")
	}
}

// TestFilteredGuideDifferentialSweep is the acceptance net for
// projection-aware F-guide construction: when the typed strategy builds
// a guide under an active projection, whole regions the analysis proves
// dead are left out of the index. Over 40 random worlds the filtered
// guide must agree bit-for-bit with the unfiltered one (NoProject) AND
// with the naive fixpoint, and must invoke exactly the same calls —
// filtering may only drop index entries for calls no query node can
// ever reach, never change what is relevant. The sweep also demands
// that the filtered build path actually fired somewhere (observed via
// the guide-build trace span), so a predicate that silently degrades to
// unfiltered cannot fake a pass.
func TestFilteredGuideDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	filteredBuilds := 0
	for seed := int64(0); seed < 40; seed++ {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
		if err != nil {
			t.Fatalf("seed %d: naive failed: %v", seed, err)
		}
		want := resultKeys(baseline)
		var outcomes [2]*Outcome
		for i, noProject := range []bool{false, true} {
			tr := telemetry.NewTracer(0)
			opt := Options{
				Strategy:  LazyNFQTyped,
				Schema:    w.Schema,
				UseGuide:  true,
				NoProject: noProject,
				Tracer:    tr,
			}
			out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
			if err != nil {
				t.Fatalf("seed %d noProject=%v: %v", seed, noProject, err)
			}
			if got := resultKeys(out); got != want {
				t.Fatalf("seed %d noProject=%v disagrees with naive\n got %q\nwant %q\nspec %+v",
					seed, noProject, got, want, spec)
			}
			outcomes[i] = out
			for _, s := range tr.Spans(tr.Len()) {
				if s.Name != "guide-build" {
					continue
				}
				if s.Attr("filtered") == "1" {
					if noProject {
						t.Fatalf("seed %d: NoProject run still built a filtered guide", seed)
					}
					filteredBuilds++
				}
			}
		}
		if a, b := outcomes[0].Stats.CallsInvoked, outcomes[1].Stats.CallsInvoked; a != b {
			t.Fatalf("seed %d: filtered guide changed invocations: %d filtered, %d unfiltered",
				seed, a, b)
		}
	}
	if filteredBuilds == 0 {
		t.Fatal("filtered guide construction never fired across the whole sweep")
	}
}

// TestDifferentialUnderInjectedFaults is the fault-tolerance half of the
// differential net, and the acceptance check of the fault-injection
// work: over ≥50 injector seeds at a 20% error rate (plus stalls),
// best-effort evaluation with retries converges — for Lazy-NFQ,
// Lazy-LPQ and the naive fixpoint alike — to exactly the result set of
// the fault-free run, with no recorded failures and full completeness;
// and on every one of those seeds, fail-fast without retries surfaces
// the injected fault instead. The injector is deterministic per
// (seed, service, invocation index), so this test is stable.
func TestDifferentialUnderInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	w := workload.Hotels(workload.DefaultSpec())
	baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
	if err != nil {
		t.Fatal(err)
	}
	want := resultKeys(baseline)

	const seeds = 50
	failFastErrors := 0
	for seed := int64(0); seed < seeds; seed++ {
		spec := service.FaultSpec{
			Seed:        seed,
			ErrorRate:   0.2,
			TimeoutRate: 0.05,
			FailFirst:   1,
		}
		// Fail-fast without retries: the very first invocation of every
		// service fails (FailFirst), so the evaluation must error.
		flaky := service.NewFaults(spec).Wrap(w.Registry)
		if _, err := Evaluate(w.Doc.Clone(), w.Query, flaky, Options{Strategy: NaiveFixpoint}); err != nil {
			failFastErrors++
		} else {
			t.Errorf("seed %d: fail-fast without retries did not surface the injected fault", seed)
		}

		// Best effort with retries: every strategy converges to the
		// fault-free result. 25 attempts outlast a 20%-rate streak with
		// probability 1 - 0.25^24 for every practical purpose.
		retry := RetryPolicy{
			MaxAttempts: 25, Backoff: time.Millisecond,
			MaxBackoff: 50 * time.Millisecond, Jitter: 0.5, Seed: seed,
		}
		for _, opt := range []Options{
			{Strategy: NaiveFixpoint},
			{Strategy: LazyLPQ},
			{Strategy: LazyNFQ},
			{Strategy: LazyNFQ, Layering: true, Parallel: true},
			{Strategy: LazyNFQ, Incremental: true},
			{Strategy: LazyNFQ, Incremental: true, Workers: 4},
		} {
			opt.Retry = retry
			opt.Failure = BestEffort
			flaky := service.NewFaults(spec).Wrap(w.Registry)
			out, err := Evaluate(w.Doc.Clone(), w.Query, flaky, opt)
			if err != nil {
				t.Fatalf("seed %d: %v best-effort errored: %v", seed, opt.Strategy, err)
			}
			if len(out.Failures) != 0 {
				t.Fatalf("seed %d: %v gave up on %d calls: %+v",
					seed, opt.Strategy, len(out.Failures), out.Failures)
			}
			if !out.Complete {
				t.Fatalf("seed %d: %v incomplete under faults", seed, opt.Strategy)
			}
			if got := resultKeys(out); got != want {
				t.Fatalf("seed %d: %v under faults disagrees with the fault-free run\n got %q\nwant %q",
					seed, opt.Strategy, got, want)
			}
		}

		// The cache layered over the injector (cache.Wrap(faults.Wrap(base)))
		// must not change any of this: faults are never stored, so retries
		// still see every injected failure, and the converged result is
		// still the fault-free one.
		for _, opt := range []Options{
			{Strategy: LazyNFQ, Incremental: true},
			{Strategy: LazyNFQ, Incremental: true, Workers: 4},
		} {
			opt.Retry = retry
			opt.Failure = BestEffort
			cached := service.NewCache(service.CacheSpec{}).Wrap(service.NewFaults(spec).Wrap(w.Registry))
			out, err := Evaluate(w.Doc.Clone(), w.Query, cached, opt)
			if err != nil {
				t.Fatalf("seed %d: cached %v best-effort errored: %v", seed, opt.Strategy, err)
			}
			if len(out.Failures) != 0 || !out.Complete {
				t.Fatalf("seed %d: cached %v failed to converge (failures=%d complete=%v)",
					seed, opt.Strategy, len(out.Failures), out.Complete)
			}
			if got := resultKeys(out); got != want {
				t.Fatalf("seed %d: cached %v under faults disagrees with the fault-free run\n got %q\nwant %q",
					seed, opt.Strategy, got, want)
			}
		}
	}
	if failFastErrors != seeds {
		t.Fatalf("fail-fast errored on %d/%d seeds", failFastErrors, seeds)
	}
}

// resultKeys renders a result set order-independently by its variable
// bindings. The workload query's result nodes are all variables, so the
// bindings fully determine each result; node captures are deliberately
// excluded because they differ representationally across strategies
// (pushed evaluations return tuples without concrete nodes, and node IDs
// follow invocation order).
func resultKeys(out *Outcome) string {
	keys := make([]string, 0, len(out.Results))
	for _, r := range out.Results {
		key := ""
		vars := make([]string, 0, len(r.Values))
		for k, v := range r.Values {
			vars = append(vars, "$"+k+"="+v)
		}
		for i := 1; i < len(vars); i++ {
			for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
				vars[j], vars[j-1] = vars[j-1], vars[j]
			}
		}
		for _, v := range vars {
			key += v + ";"
		}
		keys = append(keys, key)
	}
	// Insertion sort; sets are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	s := ""
	for _, k := range keys {
		s += k + "|"
	}
	return s
}

// randomSpec draws a small but structurally diverse world.
func randomSpec(seed int64) workload.HotelSpec {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33 % uint64(n))
	}
	spec := workload.HotelSpec{
		Hotels:         1 + next(10),
		HiddenHotels:   next(5),
		TargetEvery:    1 + next(4),
		FiveStarEvery:  1 + next(3),
		RestosPerCall:  next(5),
		FiveStarRestos: 0,
		MuseumsPerCall: next(4),
		ExtrasPerCall:  next(3),
		TeaserKinds:    next(3),
		PushCapable:    next(2) == 0,
	}
	if spec.RestosPerCall > 0 {
		spec.FiveStarRestos = next(spec.RestosPerCall + 1)
	}
	if next(2) == 0 {
		spec.IntensionalRatingEvery = 1 + next(3)
		spec.RatingChainDepth = next(3)
	}
	if next(2) == 0 {
		spec.MaterializedRestos = next(4)
	}
	return spec
}
