package core

import (
	"testing"
	"testing/quick"

	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/workload"
)

// TestDifferentialAcrossRandomWorlds drives every strategy (and the main
// option combinations) over randomly drawn workload configurations and
// requires bit-identical result sets. This is the broadest correctness
// net in the suite: any unsoundness in relevance detection, sequencing,
// typing, guides, relaxation or pushing shows up as a disagreement with
// the naive fixpoint.
func TestDifferentialAcrossRandomWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	check := func(seed int64) bool {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
		if err != nil {
			t.Logf("seed %d: naive failed: %v", seed, err)
			return false
		}
		want := resultKeys(baseline)
		if len(baseline.Results) != w.ExpectedResults {
			t.Logf("seed %d: naive %d results, ground truth %d (spec %+v)",
				seed, len(baseline.Results), w.ExpectedResults, spec)
			return false
		}
		for _, opt := range []Options{
			{Strategy: TopDownEager},
			{Strategy: LazyLPQ},
			{Strategy: LazyNFQ},
			{Strategy: LazyNFQ, Layering: true, Parallel: true},
			{Strategy: LazyNFQ, UseGuide: true, RelaxJoins: true},
			{Strategy: LazyNFQTyped, Schema: w.Schema},
			{Strategy: LazyNFQTyped, Schema: w.Schema, SchemaMode: schema.Lenient,
				Layering: true, Speculative: true, UseGuide: true, Push: true},
		} {
			out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
			if err != nil {
				t.Logf("seed %d: %v failed: %v", seed, opt.Strategy, err)
				return false
			}
			if got := resultKeys(out); got != want {
				t.Logf("seed %d: %v (opts %+v) disagrees with naive\n got %q\nwant %q\nspec %+v",
					seed, opt.Strategy, opt, got, want, spec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// resultKeys renders a result set order-independently by its variable
// bindings. The workload query's result nodes are all variables, so the
// bindings fully determine each result; node captures are deliberately
// excluded because they differ representationally across strategies
// (pushed evaluations return tuples without concrete nodes, and node IDs
// follow invocation order).
func resultKeys(out *Outcome) string {
	keys := make([]string, 0, len(out.Results))
	for _, r := range out.Results {
		key := ""
		vars := make([]string, 0, len(r.Values))
		for k, v := range r.Values {
			vars = append(vars, "$"+k+"="+v)
		}
		for i := 1; i < len(vars); i++ {
			for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
				vars[j], vars[j-1] = vars[j-1], vars[j]
			}
		}
		for _, v := range vars {
			key += v + ";"
		}
		keys = append(keys, key)
	}
	// Insertion sort; sets are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	s := ""
	for _, k := range keys {
		s += k + "|"
	}
	return s
}

// randomSpec draws a small but structurally diverse world.
func randomSpec(seed int64) workload.HotelSpec {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33 % uint64(n))
	}
	spec := workload.HotelSpec{
		Hotels:         1 + next(10),
		HiddenHotels:   next(5),
		TargetEvery:    1 + next(4),
		FiveStarEvery:  1 + next(3),
		RestosPerCall:  next(5),
		FiveStarRestos: 0,
		MuseumsPerCall: next(4),
		ExtrasPerCall:  next(3),
		TeaserKinds:    next(3),
		PushCapable:    next(2) == 0,
	}
	if spec.RestosPerCall > 0 {
		spec.FiveStarRestos = next(spec.RestosPerCall + 1)
	}
	if next(2) == 0 {
		spec.IntensionalRatingEvery = 1 + next(3)
		spec.RatingChainDepth = next(3)
	}
	if next(2) == 0 {
		spec.MaterializedRestos = next(4)
	}
	return spec
}
