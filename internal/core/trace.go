package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// TraceKind discriminates engine trace events.
type TraceKind uint8

const (
	// TraceLayer marks the start of an influence layer's processing.
	TraceLayer TraceKind = iota
	// TraceDetect reports one relevance-query evaluation round.
	TraceDetect
	// TraceInvoke reports one invocation (or parallel batch member).
	TraceInvoke
	// TraceRetry reports a call that needed repeated attempts before
	// succeeding.
	TraceRetry
	// TraceGiveUp reports a call abandoned after exhausting the retry
	// policy.
	TraceGiveUp
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceLayer:
		return "layer"
	case TraceDetect:
		return "detect"
	case TraceInvoke:
		return "invoke"
	case TraceRetry:
		return "retry"
	case TraceGiveUp:
		return "giveup"
	default:
		return fmt.Sprintf("trace(%d)", uint8(k))
	}
}

// TraceEvent is one step of an evaluation, for explain output and
// debugging. Events are emitted synchronously; handlers must be fast and
// must not re-enter the engine.
type TraceEvent struct {
	// Kind of the event.
	Kind TraceKind
	// Layer is the current influence-layer index (0 when layering is
	// off).
	Layer int
	// Round is the sequential detection/invocation round the event
	// belongs to (1-based; 0 for events outside any round, e.g.
	// TraceLayer). Together with Layer and Shard it totally orders the
	// event stream, including under a parallel detection pool.
	Round int
	// Shard identifies the detection shard (the member query's slot in
	// the current layer) that produced a TraceDetect event. Shards are
	// evaluated concurrently under Options.Workers > 1, but the
	// coordinator emits their events merged deterministically by
	// (Layer, Round, Shard), so equal configurations produce equal
	// streams.
	Shard int
	// Target describes the query node the active relevance query was
	// generated for (empty for naive invocations).
	Target string
	// Service is the invoked service (TraceInvoke).
	Service string
	// Path is the invoked call's document path (TraceInvoke).
	Path string
	// Calls is the number of relevant calls retrieved (TraceDetect) or
	// the batch size (TraceInvoke).
	Calls int
	// Pushed reports whether a subquery was shipped (TraceInvoke).
	Pushed bool
	// Parallel reports whether the invocation was part of a batch.
	Parallel bool
	// Attempts is the number of invocation attempts made
	// (TraceRetry, TraceGiveUp).
	Attempts int
	// Err is the final attempt's error message (TraceGiveUp).
	Err string
}

// String renders the event for explain output.
func (e TraceEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[L%d] %-6s", e.Layer, e.Kind)
	switch e.Kind {
	case TraceLayer:
		fmt.Fprintf(&sb, " %d relevance queries", e.Calls)
	case TraceDetect:
		fmt.Fprintf(&sb, " %-24s -> %d relevant call(s)", e.Target, e.Calls)
	case TraceInvoke:
		fmt.Fprintf(&sb, " %s at %s", e.Service, e.Path)
		if e.Target != "" {
			fmt.Fprintf(&sb, " (for %s)", e.Target)
		}
		if e.Pushed {
			sb.WriteString(" +pushed-query")
		}
		if e.Parallel {
			fmt.Fprintf(&sb, " [batch of %d]", e.Calls)
		}
	case TraceRetry:
		fmt.Fprintf(&sb, " %s at %s succeeded on attempt %d", e.Service, e.Path, e.Attempts)
	case TraceGiveUp:
		fmt.Fprintf(&sb, " %s at %s failed after %d attempt(s): %s", e.Service, e.Path, e.Attempts, e.Err)
	}
	return sb.String()
}

// TraceFunc receives engine events. Set it through Options.Trace.
type TraceFunc func(TraceEvent)

// emit sends an event to the configured tracer, if any, stamping the
// current layer and round.
func (e *engine) emit(ev TraceEvent) {
	if e.opt.Trace != nil {
		ev.Layer = e.traceLayer
		ev.Round = e.round
		e.opt.Trace(ev)
	}
}

// BridgeTrace adapts a telemetry tracer into a TraceFunc: every engine
// event becomes one zero-duration span under parent, named after the
// event kind and annotated with the event's fields. It is the bridge
// for consumers that only hold an event stream; engine-native spans
// (Options.Tracer) additionally carry durations. The engine emits
// events ordered by (Layer, Round, Shard), so bridged spans inherit
// that deterministic merge.
func BridgeTrace(tr *telemetry.Tracer, parent telemetry.SpanID) TraceFunc {
	return func(ev TraceEvent) {
		if tr == nil {
			return
		}
		s := telemetry.Span{
			Parent: parent,
			Name:   "event." + ev.Kind.String(),
			Shard:  ev.Shard,
			Start:  time.Now(),
			Attrs: []telemetry.Attr{
				{Key: "layer", Value: strconv.Itoa(ev.Layer)},
				{Key: "round", Value: strconv.Itoa(ev.Round)},
			},
		}
		if ev.Target != "" {
			s.Attrs = append(s.Attrs, telemetry.Attr{Key: "target", Value: ev.Target})
		}
		if ev.Service != "" {
			s.Attrs = append(s.Attrs, telemetry.Attr{Key: "service", Value: ev.Service})
		}
		if ev.Path != "" {
			s.Attrs = append(s.Attrs, telemetry.Attr{Key: "path", Value: ev.Path})
		}
		if ev.Calls != 0 {
			s.Attrs = append(s.Attrs, telemetry.Attr{Key: "calls", Value: strconv.Itoa(ev.Calls)})
		}
		if ev.Attempts != 0 {
			s.Attrs = append(s.Attrs, telemetry.Attr{Key: "attempts", Value: strconv.Itoa(ev.Attempts)})
		}
		if ev.Err != "" {
			s.Attrs = append(s.Attrs, telemetry.Attr{Key: "error", Value: ev.Err})
		}
		tr.Emit(s)
	}
}

// traceTarget labels the node an NFQ was generated for.
func traceTarget(nfq *rewrite.NFQ) string {
	if nfq == nil {
		return ""
	}
	return nfq.TargetLabel()
}

func tracePath(call *tree.Node) string {
	if call.Parent == nil {
		return "(detached)"
	}
	return call.PathString()
}
