package core

import (
	"strings"
	"testing"

	"github.com/activexml/axml/internal/workload"
)

func TestTraceEvents(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 6
	spec.HiddenHotels = 2
	spec.PushCapable = true
	w := workload.Hotels(spec)
	var events []TraceEvent
	opt := Options{
		Strategy: LazyNFQTyped, Schema: w.Schema,
		Layering: true, Parallel: true, Push: true,
		Trace: func(e TraceEvent) { events = append(events, e) },
	}
	out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
	if err != nil {
		t.Fatal(err)
	}
	var layers, detects, invokes, pushed, parallel int
	for _, e := range events {
		switch e.Kind {
		case TraceLayer:
			layers++
		case TraceDetect:
			detects++
		case TraceInvoke:
			invokes++
			if e.Service == "" || e.Path == "" {
				t.Errorf("invoke event incomplete: %+v", e)
			}
			if e.Pushed {
				pushed++
			}
			if e.Parallel {
				parallel++
			}
		}
	}
	if layers < 2 {
		t.Errorf("layers traced = %d", layers)
	}
	if detects == 0 || detects != out.Stats.RelevanceQueries {
		t.Errorf("detect events %d vs relevance queries %d", detects, out.Stats.RelevanceQueries)
	}
	if invokes != out.Stats.CallsInvoked {
		t.Errorf("invoke events %d vs calls %d", invokes, out.Stats.CallsInvoked)
	}
	if pushed != out.Stats.PushedCalls {
		t.Errorf("pushed events %d vs stat %d", pushed, out.Stats.PushedCalls)
	}
	if parallel == 0 {
		t.Error("no parallel invocations traced")
	}
	// Rendering covers every kind.
	for _, e := range events {
		s := e.String()
		if !strings.Contains(s, e.Kind.String()) {
			t.Fatalf("render misses kind: %q", s)
		}
	}
}

func TestTraceSequentialAndNaive(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	var invokes int
	opt := Options{Strategy: NaiveFixpoint, Trace: func(e TraceEvent) {
		if e.Kind == TraceInvoke {
			invokes++
			if e.Target != "" {
				t.Errorf("naive invocations have no target: %+v", e)
			}
		}
	}}
	out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
	if err != nil {
		t.Fatal(err)
	}
	if invokes != out.Stats.CallsInvoked {
		t.Fatalf("traced %d of %d invocations", invokes, out.Stats.CallsInvoked)
	}
}

func TestTraceKindString(t *testing.T) {
	for k, want := range map[TraceKind]string{
		TraceLayer: "layer", TraceDetect: "detect", TraceInvoke: "invoke", TraceKind(9): "trace(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
