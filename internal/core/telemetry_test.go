package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

// TestParallelTraceDeterminism: under a parallel detection pool the
// coordinator must emit trace events merged deterministically by
// (Layer, Round, Shard) — two identical runs see identical streams.
func TestParallelTraceDeterminism(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 8
	spec.HiddenHotels = 2
	stream := func() []string {
		w := workload.Hotels(spec)
		var events []string
		opt := Options{
			Strategy: LazyNFQ, Layering: true, Parallel: true, Workers: 4,
			Trace: func(e TraceEvent) {
				events = append(events, fmt.Sprintf("%d/%d/%d %s %s %s",
					e.Layer, e.Round, e.Shard, e.Kind, e.Target, e.Service))
			},
		}
		if _, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt); err != nil {
			t.Fatal(err)
		}
		return events
	}
	a := stream()
	for run := 0; run < 3; run++ {
		b := stream()
		if len(a) != len(b) {
			t.Fatalf("run %d: %d events vs %d", run, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d event %d: %q vs %q", run, i, b[i], a[i])
			}
		}
	}
	// Within each layer, detect events are ordered by (round, shard).
	w := workload.Hotels(spec)
	var last struct{ layer, round, shard int }
	last.layer = -1
	opt := Options{
		Strategy: LazyNFQ, Layering: true, Parallel: true, Workers: 4,
		Trace: func(e TraceEvent) {
			if e.Kind != TraceDetect {
				return
			}
			if e.Layer == last.layer && (e.Round < last.round ||
				(e.Round == last.round && e.Shard <= last.shard && e.Shard != 0)) {
				t.Errorf("detect order violated: layer %d round %d shard %d after round %d shard %d",
					e.Layer, e.Round, e.Shard, last.round, last.shard)
			}
			last.layer, last.round, last.shard = e.Layer, e.Round, e.Shard
		},
	}
	if _, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSpans: an instrumented evaluation emits a span tree whose
// root accounts for the invoked-vs-pruned split and whose per-phase self
// times sum to the evaluation's total (the -explain acceptance identity).
func TestEngineSpans(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 6
	spec.HiddenHotels = 2
	w := workload.Hotels(spec)
	tr := telemetry.NewTracer(0)
	reg := telemetry.NewRegistry()
	out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{
		Strategy: LazyNFQ, Layering: true, Tracer: tr, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	roots := telemetry.BuildTree(tr.Spans(0))
	if len(roots) != 1 || roots[0].Name != "evaluate" {
		t.Fatalf("want a single evaluate root, got %+v", roots)
	}
	eval := roots[0]
	if got := eval.Span.Attr("calls_invoked"); got != strconv.Itoa(out.Stats.CallsInvoked) {
		t.Errorf("calls_invoked attr = %q, stats say %d", got, out.Stats.CallsInvoked)
	}
	pruned, _ := strconv.Atoi(eval.Span.Attr("calls_pruned"))
	if pruned <= 0 {
		t.Errorf("lazy evaluation pruned nothing? attr=%q", eval.Span.Attr("calls_pruned"))
	}

	var names = map[string]int{}
	var detects, invokes int
	var selfSum time.Duration
	var walk func(n *telemetry.SpanNode)
	walk = func(n *telemetry.SpanNode) {
		names[n.Name]++
		selfSum += n.Self()
		switch n.Name {
		case "detect":
			detects++
		case "invoke":
			invokes++
			if n.Span.Attr("service") == "" {
				t.Errorf("invoke span misses service: %+v", n.Span)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(eval)
	for _, want := range []string{"analysis", "layer", "detect", "invoke", "result-eval"} {
		if names[want] == 0 {
			t.Errorf("span tree misses %q spans: %v", want, names)
		}
	}
	if detects != out.Stats.RelevanceQueries {
		t.Errorf("detect spans %d vs relevance queries %d", detects, out.Stats.RelevanceQueries)
	}
	if invokes != out.Stats.CallsInvoked {
		t.Errorf("invoke spans %d vs calls %d", invokes, out.Stats.CallsInvoked)
	}
	if selfSum != eval.Wall {
		t.Errorf("phase self times sum to %v, root wall is %v", selfSum, eval.Wall)
	}

	// Metrics agree with the outcome's stats.
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricCallsInvoked]; got != int64(out.Stats.CallsInvoked) {
		t.Errorf("metric calls = %d, stats %d", got, out.Stats.CallsInvoked)
	}
	if got := snap.Counters[telemetry.MetricCallsPruned]; got != int64(pruned) {
		t.Errorf("metric pruned = %d, attr %d", got, pruned)
	}
	if snap.Counters[telemetry.MetricEvaluations] != 1 {
		t.Errorf("evaluations counter = %d", snap.Counters[telemetry.MetricEvaluations])
	}
	if snap.Histograms[telemetry.MetricDetectSeconds].Count == 0 {
		t.Error("detect histogram empty")
	}
	if int(snap.Histograms[telemetry.MetricInvokeWallSeconds].Count) != out.Stats.CallsInvoked {
		t.Errorf("invoke histogram count = %d, calls %d",
			snap.Histograms[telemetry.MetricInvokeWallSeconds].Count, out.Stats.CallsInvoked)
	}
}

// TestEngineSpansParallelShards: under Workers > 1 the detect spans carry
// shard identities and still appear merged in deterministic order.
func TestEngineSpansParallelShards(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 8
	spec.HiddenHotels = 2
	shape := func() []string {
		w := workload.Hotels(spec)
		tr := telemetry.NewTracer(0)
		if _, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{
			Strategy: LazyNFQ, Layering: true, Parallel: true, Workers: 4, Tracer: tr,
		}); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range tr.Spans(0) {
			if s.Name == "detect" || s.Name == "invoke" {
				out = append(out, fmt.Sprintf("%s/%d/%s/%s",
					s.Name, s.Shard, s.Attr("round"), s.Attr("target")))
			}
		}
		return out
	}
	a := shape()
	b := shape()
	if len(a) == 0 {
		t.Fatal("no detect/invoke spans emitted")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("span stream not deterministic:\n%v\n%v", a, b)
	}
	var sharded bool
	for _, s := range a {
		if len(s) > 7 && s[:7] == "detect/" && s[7] != '0' {
			sharded = true
		}
	}
	if !sharded {
		t.Error("no detect span carried a non-zero shard")
	}
}

// TestBridgeTrace adapts the event stream into spans and checks the
// bridged spans carry the events' ordering attributes.
func TestBridgeTrace(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	tr := telemetry.NewTracer(0)
	root := tr.Start("session", 0)
	opt := Options{Strategy: LazyNFQ, Trace: BridgeTrace(tr, root.ID())}
	out, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	var invokes int
	for _, s := range tr.Spans(0) {
		switch s.Name {
		case "event.invoke":
			invokes++
			if s.Parent != root.ID() {
				t.Errorf("bridged span not parented under the session: %+v", s)
			}
			if s.Attr("round") == "" || s.Attr("service") == "" {
				t.Errorf("bridged invoke span misses attrs: %+v", s)
			}
		case "event.detect":
			if s.Attr("layer") == "" {
				t.Errorf("bridged detect span misses layer: %+v", s)
			}
		}
	}
	if invokes != out.Stats.CallsInvoked {
		t.Errorf("bridged invoke spans %d vs calls %d", invokes, out.Stats.CallsInvoked)
	}
	// A nil tracer bridge is a no-op TraceFunc.
	BridgeTrace(nil, 0)(TraceEvent{Kind: TraceInvoke})
}
