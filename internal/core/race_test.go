package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// These tests exist to run under `go test -race` (the Makefile's check
// target does): they drive the engine's parallel batch paths, the fault
// injector, trace emission and the shared stat counters from many
// goroutines at once, so any unsynchronised access shows up as a race
// report rather than a flaky miscount.

// TestConcurrentBatchEvaluations runs many parallel+speculative
// evaluations against one shared (flaky) registry and one shared clock,
// each with its own trace sink, and checks they all agree.
func TestConcurrentBatchEvaluations(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	flaky := service.NewFaults(service.FaultSpec{
		Seed: 17, ErrorRate: 0.2, FailFirst: 1, LatencyJitter: time.Millisecond,
	}).Wrap(w.Registry)
	baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
	if err != nil {
		t.Fatal(err)
	}
	want := resultKeys(baseline)

	sharedClock := &service.SimClock{}
	const evaluators = 8
	var wg sync.WaitGroup
	errs := make([]error, evaluators)
	for g := 0; g < evaluators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var mu sync.Mutex
			var events int
			out, err := Evaluate(w.Doc.Clone(), w.Query, flaky, Options{
				Strategy: LazyNFQ, Layering: true, Speculative: true,
				Clock:   sharedClock,
				Retry:   RetryPolicy{MaxAttempts: 25, Backoff: time.Millisecond, Jitter: 0.5, Seed: int64(g)},
				Failure: BestEffort,
				Trace: func(TraceEvent) {
					mu.Lock()
					events++
					mu.Unlock()
				},
			})
			switch {
			case err != nil:
				errs[g] = err
			case len(out.Failures) != 0:
				errs[g] = fmt.Errorf("gave up on %d calls", len(out.Failures))
			case resultKeys(out) != want:
				errs[g] = fmt.Errorf("results disagree with fault-free baseline")
			case events == 0:
				errs[g] = fmt.Errorf("trace sink saw no events")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("evaluator %d: %v", g, err)
		}
	}
}

// TestBatchesAgainstMutatingRegistry interleaves parallel batch
// invocations with concurrent registry mutation (new services being
// registered) and registry stat reads — the locking contract a live
// portal relies on.
func TestBatchesAgainstMutatingRegistry(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	reg := service.NewFaults(service.FaultSpec{Seed: 23, ErrorRate: 0.1}).Wrap(w.Registry)

	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(2)
	go func() {
		defer mutator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Register(&service.Service{
				Name:    fmt.Sprintf("late-arrival-%d", i),
				Latency: time.Millisecond,
				Handler: func([]*tree.Node) ([]*tree.Node, error) { return nil, nil },
			})
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() {
		defer mutator.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Stats()
				_ = reg.Names()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const evaluators = 4
	var wg sync.WaitGroup
	for g := 0; g < evaluators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, err := Evaluate(w.Doc.Clone(), w.Query, reg, Options{
				Strategy: NaiveFixpoint, Parallel: true,
				Retry:   RetryPolicy{MaxAttempts: 20, Seed: int64(g)},
				Failure: BestEffort,
			})
			if err != nil {
				t.Errorf("evaluator %d: %v", g, err)
				return
			}
			if len(out.Results) != w.ExpectedResults {
				t.Errorf("evaluator %d: %d results, want %d", g, len(out.Results), w.ExpectedResults)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mutator.Wait()
}

// TestParallelDetectionSharedCacheRace drives the intra-round detection
// pool (Workers) with persistent evaluator shards (Incremental) from many
// concurrent evaluations that all share one response cache — the layering
// cmd/axmlquery wires up. Under -race this covers the coordinator/worker
// hand-off, the per-NFQ evaluator shards and the cache's singleflight at
// once.
func TestParallelDetectionSharedCacheRace(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	baseline, err := Evaluate(w.Doc.Clone(), w.Query, w.Registry, Options{Strategy: NaiveFixpoint})
	if err != nil {
		t.Fatal(err)
	}
	want := resultKeys(baseline)

	cache := service.NewCache(service.CacheSpec{})
	cached := cache.Wrap(w.Registry)
	const evaluators = 8
	var wg sync.WaitGroup
	errs := make([]error, evaluators)
	for g := 0; g < evaluators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, err := Evaluate(w.Doc.Clone(), w.Query, cached, Options{
				Strategy: LazyNFQ, Layering: g%2 == 0,
				Incremental: true, Workers: 8,
			})
			switch {
			case err != nil:
				errs[g] = err
			case resultKeys(out) != want:
				errs[g] = fmt.Errorf("results disagree with naive baseline")
			case out.Stats.MemoHits == 0:
				errs[g] = fmt.Errorf("no memo hits — incremental shards inactive")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("evaluator %d: %v", g, err)
		}
	}
	if st := cache.Stats(); st.Hits+st.Coalesced == 0 {
		t.Errorf("eight identical evaluations shared no cached responses: %+v", st)
	}
}

// TestSharedInjectorConcurrentCounters hammers one injector from many
// goroutines; the per-service counters and stats must stay exact.
func TestSharedInjectorConcurrentCounters(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name: "svc", Latency: time.Microsecond,
		Handler: func([]*tree.Node) ([]*tree.Node, error) { return nil, nil },
	})
	inj := service.NewFaults(service.FaultSpec{Seed: 9, ErrorRate: 0.5})
	flaky := inj.Wrap(reg)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, _ = flaky.Invoke("svc", nil, nil)
			}
		}()
	}
	wg.Wait()
	st := inj.Stats()
	if st.Invocations != workers*perWorker {
		t.Fatalf("injector saw %d invocations, want %d", st.Invocations, workers*perWorker)
	}
	if st.Injected() == 0 || st.Injected() == st.Invocations {
		t.Fatalf("degenerate injection counts: %+v", st)
	}
}
