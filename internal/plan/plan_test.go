package plan

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/telemetry"
)

// feed records n fault-free observations of svc at a fixed latency.
func feed(p *profile.Profiler, svc string, lat time.Duration, n int) {
	for i := 0; i < n; i++ {
		p.Observe(svc, lat, 100, 10, false, false, "")
	}
}

func batch(services ...string) []core.PlanCall {
	out := make([]core.PlanCall, len(services))
	for i, s := range services {
		out[i] = core.PlanCall{Index: i, Service: s}
	}
	return out
}

// checkPermutation fails unless the plan's queues hold every member
// index exactly once within the width bound.
func checkPermutation(t *testing.T, bp core.BatchPlan, n, width int) {
	t.Helper()
	if bp.Width < 1 || bp.Width > width || len(bp.Queues) != bp.Width {
		t.Fatalf("bad width %d (offered %d, %d queues)", bp.Width, width, len(bp.Queues))
	}
	seen := make([]bool, n)
	for _, q := range bp.Queues {
		for _, i := range q {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("queues %v are not a permutation of %d members", bp.Queues, n)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("member %d missing from queues %v", i, bp.Queues)
		}
	}
}

// A cold planner has only the uniform prior to go on, so its schedule
// must collapse to the engine's static striped assignment — same order,
// same width, member i on worker i mod W.
func TestColdStartIsStriped(t *testing.T) {
	p := New(profile.New(0, nil), Options{})
	calls := batch("a", "b", "c", "d", "e", "f", "g", "h")
	bp := p.PlanBatch(calls, 4)
	checkPermutation(t, bp, len(calls), 4)
	want := [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	if bp.Width != 4 || !reflect.DeepEqual(bp.Queues, want) {
		t.Fatalf("cold plan deviated from striping: width %d queues %v", bp.Width, bp.Queues)
	}
	if st := p.Stats(); st.Reorders != 0 || st.WidthTrims != 0 {
		t.Fatalf("cold plan counted decisions: %+v", st)
	}
	// A nil profiler is equally cold.
	bp = New(nil, Options{}).PlanBatch(calls, 4)
	if !reflect.DeepEqual(bp.Queues, want) {
		t.Fatalf("nil-profiler plan deviated from striping: %v", bp.Queues)
	}
}

// A batch of one service has nothing to rank: equal costs must stripe,
// including the degenerate single-member batch.
func TestSingleServiceDegenerate(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "only", 5*time.Millisecond, 10)
	p := New(prof, Options{})
	bp := p.PlanBatch(batch("only", "only", "only", "only", "only"), 2)
	checkPermutation(t, bp, 5, 2)
	if want := [][]int{{0, 2, 4}, {1, 3}}; !reflect.DeepEqual(bp.Queues, want) {
		t.Fatalf("single-service plan %v, want striped %v", bp.Queues, want)
	}
	bp = p.PlanBatch(batch("only"), 1)
	checkPermutation(t, bp, 1, 1)
}

// Profiled costs rank the slowest call first so it overlaps the rest of
// the batch instead of straggling behind it.
func TestSlowestFirst(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "fast", time.Millisecond, 10)
	feed(prof, "slow", 100*time.Millisecond, 10)
	p := New(prof, Options{})
	bp := p.PlanBatch(batch("fast", "fast", "slow"), 2)
	checkPermutation(t, bp, 3, 2)
	if bp.Queues[0][0] != 2 {
		t.Fatalf("slow member not scheduled first: %v", bp.Queues)
	}
	if st := p.Stats(); st.Reorders != 1 {
		t.Fatalf("reorder not counted: %+v", st)
	}
}

// When one call dominates the batch, extra workers cannot improve the
// makespan; the planner trims the pool to the smallest width that
// achieves it.
func TestWidthTrim(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "slow", 100*time.Millisecond, 10)
	p := New(prof, Options{})
	bp := p.PlanBatch(batch("slow", "cold1", "cold2", "cold3"), 4)
	checkPermutation(t, bp, 4, 4)
	if bp.Width >= 4 {
		t.Fatalf("width not trimmed: %d (queues %v)", bp.Width, bp.Queues)
	}
	if st := p.Stats(); st.WidthTrims != 1 {
		t.Fatalf("trim not counted: %+v", st)
	}
}

// The same inputs must always yield the same plan.
func TestPlanDeterminism(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "a", 3*time.Millisecond, 5)
	feed(prof, "b", 7*time.Millisecond, 5)
	p := New(prof, Options{})
	calls := batch("a", "b", "a", "b", "a", "b")
	first := p.PlanBatch(calls, 3)
	for i := 0; i < 5; i++ {
		again := p.PlanBatch(calls, 3)
		if again.Width != first.Width || !reflect.DeepEqual(again.Queues, first.Queues) {
			t.Fatalf("plan %d differs: %v vs %v", i, again.Queues, first.Queues)
		}
	}
}

// AllowPush vetoes only services with MinSamples fruitless push
// attempts and not one success; everything else — cold services,
// under-sampled ones, anything that ever answered a push — keeps
// pushing.
func TestAllowPush(t *testing.T) {
	prof := profile.New(0, nil)
	// deaf: 3 successful calls, subquery shipped every time, never
	// answered with bindings.
	for i := 0; i < 3; i++ {
		prof.Observe("deaf", time.Millisecond, 10, 5, true, false, "")
	}
	// willing: same attempts, one answered.
	prof.Observe("willing", time.Millisecond, 10, 5, true, true, "")
	prof.Observe("willing", time.Millisecond, 10, 5, true, false, "")
	prof.Observe("willing", time.Millisecond, 10, 5, true, false, "")
	// sparse: too few attempts to judge.
	prof.Observe("sparse", time.Millisecond, 10, 5, true, false, "")
	p := New(prof, Options{})
	if p.AllowPush("deaf") {
		t.Fatal("push-deaf service not vetoed")
	}
	for _, svc := range []string{"willing", "sparse", "cold"} {
		if !p.AllowPush(svc) {
			t.Fatalf("%s wrongly vetoed", svc)
		}
	}
	if st := p.Stats(); st.PushVetoes != 1 {
		t.Fatalf("veto count %d, want 1", st.PushVetoes)
	}
}

func TestAdmitSpeculative(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "fast", time.Millisecond, 5)
	feed(prof, "slow", 200*time.Millisecond, 5)
	// Budget off: everything admitted (nil means "no selection").
	if keep := New(prof, Options{}).AdmitSpeculative(batch("slow", "slow")); keep != nil {
		t.Fatalf("budget off still selected %v", keep)
	}
	p := New(prof, Options{SpeculativeBudget: 50 * time.Millisecond})
	// Mixed batch: the slow call is deferred, the fast and cold ones
	// (prior well under budget) admitted, indices ascending.
	keep := p.AdmitSpeculative(batch("fast", "slow", "cold", "fast"))
	if want := []int{0, 2, 3}; !reflect.DeepEqual(keep, want) {
		t.Fatalf("admitted %v, want %v", keep, want)
	}
	if st := p.Stats(); st.SpeculativeDeferred != 1 {
		t.Fatalf("deferral count %+v", st)
	}
}

// A stale profile claiming absurd latencies must not stall evaluation:
// when nothing fits the budget, exactly one call (the cheapest) is
// admitted so every round still makes progress.
func TestAdmitSpeculativeStaleProfileTerminates(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "stale", 10*time.Second, 5)
	p := New(prof, Options{SpeculativeBudget: time.Millisecond})
	for round := 0; round < 3; round++ {
		keep := p.AdmitSpeculative(batch("stale", "stale", "stale"))
		if len(keep) != 1 {
			t.Fatalf("round %d admitted %v, want exactly one call", round, keep)
		}
	}
}

// Instrument wires the axml_plan_* families; decisions must show up on
// a scrape, and a nil registry must be a no-op.
func TestInstrument(t *testing.T) {
	New(profile.New(0, nil), Options{}).Instrument(nil) // must not panic
	reg := telemetry.NewRegistry()
	p := New(profile.New(0, nil), Options{})
	p.Instrument(reg)
	p.PlanBatch(batch("a", "b"), 2)
	if got := reg.Counter(telemetry.MetricPlanBatches).Value(); got != 1 {
		t.Fatalf("axml_plan_batches_total = %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), telemetry.MetricPlanBatches) {
		t.Fatalf("scrape missing %s:\n%s", telemetry.MetricPlanBatches, sb.String())
	}
}

// The plan rationale must name each service's cost inputs — that is
// what -explain renders.
func TestRationaleAttrs(t *testing.T) {
	prof := profile.New(0, nil)
	feed(prof, "slow", 100*time.Millisecond, 10)
	p := New(prof, Options{})
	bp := p.PlanBatch(batch("slow", "cold"), 2)
	byKey := map[string]string{}
	for _, a := range bp.Attrs {
		byKey[a.Key] = a.Value
	}
	if v := byKey["svc:slow"]; !strings.Contains(v, "src=profile") {
		t.Fatalf("slow rationale %q lacks profile source", v)
	}
	if v := byKey["svc:cold"]; !strings.Contains(v, "src=prior") {
		t.Fatalf("cold rationale %q lacks prior source", v)
	}
	if byKey["makespan"] == "" || byKey["reordered"] == "" {
		t.Fatalf("schedule summary missing from attrs: %v", bp.Attrs)
	}
}
