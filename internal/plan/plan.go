// Package plan implements the cost-based invocation planner the
// roadmap's item 4 calls for: each invocation round consults the
// per-service statistics profiles (internal/profile) learned from live
// traffic and decides how the round's batch executes — which worker
// runs which calls (slowest first, balanced by longest-processing-time
// assignment), how wide the pool actually needs to be, whether to ship
// a pushable subquery per service, and which speculative calls fit a
// latency budget.
//
// Planning never changes what an evaluation computes. The engine-side
// contract (core.InvocationPlanner) only lets a plan reorder and resize
// work: responses are applied in member order after the pool drains and
// a batch is charged its slowest member either way, so results, Stats
// and trace events are bit-identical with the planner on or off — the
// differential tests in this package pin that across seeds, widths and
// injected faults. A cold planner (no profiles yet) assigns every
// service the same uniform prior cost, which collapses its schedule to
// the engine's static striped assignment.
package plan

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/telemetry"
)

// DefaultMinSamples is how many observed wire calls a service profile
// needs before the planner trusts it over the uniform prior — and how
// many fruitless push attempts it takes to veto pushing to a service.
const DefaultMinSamples = 3

// uniformPrior is the cost assumed for a service with no (or too few)
// observations. Its absolute value is irrelevant; what matters is that
// it is equal across unprofiled services, so a cold planner has no
// grounds to deviate from the static schedule.
const uniformPrior = 10 * time.Millisecond

// refreshEvery bounds how stale the cached profile snapshot may get on
// the sequential path, where AllowPush is consulted without a
// surrounding PlanBatch (which always refreshes).
const refreshEvery = 32

// Options configures a CostPlanner.
type Options struct {
	// MinSamples is the observation threshold for trusting a profile
	// (0 means DefaultMinSamples).
	MinSamples int
	// SpeculativeBudget is the latency budget for speculative batches:
	// calls whose estimated cost exceeds it are deferred to a later
	// round. 0 disables admission control (every call is admitted).
	SpeculativeBudget time.Duration
}

// PlanStats are the planner's cumulative decision counters, surfaced
// under -stats alongside the engine's own numbers.
type PlanStats struct {
	// Batches counts PlanBatch consultations.
	Batches int
	// Reorders counts batches scheduled in a non-static order.
	Reorders int
	// WidthTrims counts batches run on fewer workers than offered.
	WidthTrims int
	// PushVetoes counts subqueries withheld from push-deaf services.
	PushVetoes int
	// SpeculativeDeferred counts speculative calls pushed to a later
	// round by the latency budget.
	SpeculativeDeferred int
}

// estimate is one service's planning view, derived from its profile.
type estimate struct {
	cost         time.Duration
	selectivity  float64
	calls        uint64
	faultRate    float64
	pushAttempts uint64
	pushed       uint64
	profiled     bool
}

// CostPlanner is a core.InvocationPlanner over live service profiles.
// It is safe for concurrent use, so the session layer can share one
// planner (and one profiler) across every evaluation it serves.
type CostPlanner struct {
	prof *profile.Profiler
	opt  Options

	mu      sync.Mutex
	est     map[string]estimate
	sinceRF int
	stats   PlanStats

	metBatches  *telemetry.Counter
	metReorders *telemetry.Counter
	metTrims    *telemetry.Counter
	metVetoes   *telemetry.Counter
	metDeferred *telemetry.Counter
	metSeconds  *telemetry.Histogram
}

var _ core.InvocationPlanner = (*CostPlanner)(nil)

// New returns a planner reading from prof. A nil profiler is valid:
// every service stays at the uniform prior and the planner never
// deviates from the static schedule.
func New(prof *profile.Profiler, opt Options) *CostPlanner {
	if opt.MinSamples <= 0 {
		opt.MinSamples = DefaultMinSamples
	}
	return &CostPlanner{prof: prof, opt: opt, est: map[string]estimate{}}
}

// Instrument resolves the axml_plan_* instruments against reg, so the
// planner's decisions show up on /metrics. Optional; without it the
// planner only keeps its own PlanStats.
func (p *CostPlanner) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.metBatches = reg.Counter(telemetry.MetricPlanBatches)
	p.metReorders = reg.Counter(telemetry.MetricPlanReorders)
	p.metTrims = reg.Counter(telemetry.MetricPlanWidthTrims)
	p.metVetoes = reg.Counter(telemetry.MetricPlanPushVetoes)
	p.metDeferred = reg.Counter(telemetry.MetricPlanDeferred)
	p.metSeconds = reg.Histogram(telemetry.MetricPlanSeconds)
}

// Stats returns the cumulative decision counters.
func (p *CostPlanner) Stats() PlanStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// refreshLocked re-derives the estimate table from the profiler. A
// service is trusted once it has MinSamples wire calls: its cost is the
// P95 effective latency inflated by the fault rate (a flaky service
// costs its retries too). Below the threshold it keeps the uniform
// prior.
func (p *CostPlanner) refreshLocked() {
	p.sinceRF = 0
	if p.prof == nil {
		return
	}
	for _, s := range p.prof.Snapshot() {
		e := estimate{
			cost:         uniformPrior,
			selectivity:  s.Selectivity,
			calls:        s.Calls,
			faultRate:    s.FaultRate,
			pushAttempts: s.PushAttempts,
			pushed:       s.Pushed,
		}
		if s.Calls >= uint64(p.opt.MinSamples) {
			e.cost = time.Duration(float64(s.P95) * (1 + s.FaultRate))
			e.profiled = true
		}
		p.est[s.Service] = e
	}
}

// estimateLocked returns a service's planning view, defaulting cold
// services to the uniform prior.
func (p *CostPlanner) estimateLocked(service string) estimate {
	if e, ok := p.est[service]; ok {
		return e
	}
	return estimate{cost: uniformPrior}
}

// PlanBatch schedules one batch: members are ranked most-expensive
// first (ties broken toward lower selectivity, then batch order) and
// assigned greedily to the least-loaded worker queue — the classic
// longest-processing-time heuristic, which a batch charged max-member
// cost rewards directly. The width is then trimmed to the smallest pool
// that still achieves the same predicted makespan, so equal-cost tails
// do not fan out over idle workers.
func (p *CostPlanner) PlanBatch(calls []core.PlanCall, width int) core.BatchPlan {
	t0 := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refreshLocked()
	p.stats.Batches++
	p.metBatches.Inc()
	if width < 1 {
		width = 1
	}
	n := len(calls)
	costs := make([]time.Duration, n)
	ests := make([]estimate, n)
	for i, c := range calls {
		ests[i] = p.estimateLocked(c.Service)
		costs[i] = ests[i].cost
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if costs[ia] != costs[ib] {
			return costs[ia] > costs[ib]
		}
		return ests[ia].selectivity < ests[ib].selectivity
	})
	assign := func(w int) ([][]int, time.Duration) {
		queues := make([][]int, w)
		loads := make([]time.Duration, w)
		for _, i := range order {
			best := 0
			for q := 1; q < w; q++ {
				if loads[q] < loads[best] {
					best = q
				}
			}
			queues[best] = append(queues[best], i)
			loads[best] += costs[i]
		}
		makespan := loads[0]
		for _, l := range loads[1:] {
			if l > makespan {
				makespan = l
			}
		}
		return queues, makespan
	}
	queues, makespan := assign(width)
	chosen := width
	for w := 1; w < width; w++ {
		if q, m := assign(w); m <= makespan {
			queues, makespan, chosen = q, m, w
			break
		}
	}
	if chosen < width {
		p.stats.WidthTrims++
		p.metTrims.Inc()
	}
	reordered := false
	for i, o := range order {
		if i != o {
			reordered = true
			break
		}
	}
	if reordered {
		p.stats.Reorders++
		p.metReorders.Inc()
	}
	bp := core.BatchPlan{
		Width:  chosen,
		Queues: queues,
		Attrs:  p.rationaleLocked(calls, ests, chosen, width, makespan, reordered),
	}
	p.metSeconds.Observe(time.Since(t0))
	return bp
}

// rationaleLocked renders the cost inputs behind a plan as span attrs:
// one line per distinct service in the batch plus the schedule summary,
// so -explain answers "why this order and width".
func (p *CostPlanner) rationaleLocked(calls []core.PlanCall, ests []estimate, chosen, offered int, makespan time.Duration, reordered bool) []telemetry.Attr {
	attrs := []telemetry.Attr{
		{Key: "makespan", Value: makespan.String()},
		{Key: "reordered", Value: strconv.FormatBool(reordered)},
	}
	if chosen < offered {
		attrs = append(attrs, telemetry.Attr{Key: "width_trimmed_from", Value: strconv.Itoa(offered)})
	}
	seen := map[string]bool{}
	const maxLines = 12
	for i, c := range calls {
		if seen[c.Service] {
			continue
		}
		seen[c.Service] = true
		if len(seen) > maxLines {
			attrs = append(attrs, telemetry.Attr{Key: "services_elided", Value: strconv.Itoa(countDistinct(calls) - maxLines)})
			break
		}
		e := ests[i]
		src := "prior"
		if e.profiled {
			src = "profile"
		}
		attrs = append(attrs, telemetry.Attr{
			Key: "svc:" + c.Service,
			Value: fmt.Sprintf("cost=%v calls=%d fault=%.2f sel=%.1f src=%s",
				e.cost, e.calls, e.faultRate, e.selectivity, src),
		})
	}
	return attrs
}

func countDistinct(calls []core.PlanCall) int {
	seen := map[string]bool{}
	for _, c := range calls {
		seen[c.Service] = true
	}
	return len(seen)
}

// AllowPush vetoes shipping subqueries to a service that provably
// ignores them: at least MinSamples successful invocations carried a
// subquery and not one was answered with bindings. The response of such
// a service is identical with or without the subquery, so the veto only
// saves serialization and wire bytes — it can never change a result.
func (p *CostPlanner) AllowPush(service string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sinceRF++
	if p.sinceRF >= refreshEvery || len(p.est) == 0 {
		p.refreshLocked()
	}
	e, ok := p.est[service]
	if !ok || e.pushAttempts < uint64(p.opt.MinSamples) || e.pushed > 0 {
		return true
	}
	p.stats.PushVetoes++
	p.metVetoes.Inc()
	return false
}

// AdmitSpeculative keeps the speculative calls whose estimated cost
// fits the latency budget and defers the rest to a later round (they
// stay pending in the document and are re-detected; a call that turns
// out relevant is always invoked eventually). If nothing fits, the
// single cheapest call is admitted anyway, so a stale profile claiming
// absurd latencies can delay an evaluation by at most one call per
// round — never stall it.
func (p *CostPlanner) AdmitSpeculative(calls []core.PlanCall) []int {
	if p.opt.SpeculativeBudget <= 0 || len(calls) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refreshLocked()
	keep := make([]int, 0, len(calls))
	cheapest := 0
	var cheapestCost time.Duration
	for i, c := range calls {
		cost := p.estimateLocked(c.Service).cost
		if cost <= p.opt.SpeculativeBudget {
			keep = append(keep, i)
		}
		if i == 0 || cost < cheapestCost {
			cheapest, cheapestCost = i, cost
		}
	}
	if len(keep) == 0 {
		keep = append(keep, cheapest)
	}
	if d := len(calls) - len(keep); d > 0 {
		p.stats.SpeculativeDeferred += d
		p.metDeferred.Add(int64(d))
	}
	return keep
}
