package plan

import (
	"reflect"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/workload"
)

// randomSpec mirrors the core package's differential world generator
// (same mixed congruential draw, so the two suites stress comparable
// structures).
func randomSpec(seed int64) workload.HotelSpec {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33 % uint64(n))
	}
	spec := workload.HotelSpec{
		Hotels:         1 + next(10),
		HiddenHotels:   next(5),
		TargetEvery:    1 + next(4),
		FiveStarEvery:  1 + next(3),
		RestosPerCall:  next(5),
		FiveStarRestos: 0,
		MuseumsPerCall: next(4),
		ExtrasPerCall:  next(3),
		TeaserKinds:    next(3),
		PushCapable:    next(2) == 0,
	}
	if spec.RestosPerCall > 0 {
		spec.FiveStarRestos = next(spec.RestosPerCall + 1)
	}
	if next(2) == 0 {
		spec.IntensionalRatingEvery = 1 + next(3)
		spec.RatingChainDepth = next(3)
	}
	if next(2) == 0 {
		spec.MaterializedRestos = next(4)
	}
	return spec
}

// resultKeys canonicalizes a result set into one comparable string
// (variable bindings only, same scheme as the core differentials).
func resultKeys(out *core.Outcome) string {
	keys := make([]string, 0, len(out.Results))
	for _, r := range out.Results {
		key := ""
		vars := make([]string, 0, len(r.Values))
		for k, v := range r.Values {
			vars = append(vars, "$"+k+"="+v)
		}
		for i := 1; i < len(vars); i++ {
			for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
				vars[j], vars[j-1] = vars[j-1], vars[j]
			}
		}
		for _, v := range vars {
			key += v + ";"
		}
		keys = append(keys, key)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	s := ""
	for _, k := range keys {
		s += k + "|"
	}
	return s
}

// comparableStats strips the wall-clock timings and the planner's own
// decision counters from Stats. The decision counters (PushVetoed,
// SpeculativeDeferred) are nonzero only when a planner runs, by
// definition; everything the evaluation itself observes — calls,
// retries, failures, pushes, rounds, bytes, virtual time — must be
// bit-identical with the planner on or off.
func comparableStats(out *core.Outcome) core.Stats {
	st := out.Stats
	st.DetectTime = 0
	st.AnalysisTime = 0
	st.PushVetoed = 0
	st.SpeculativeDeferred = 0
	return st
}

// differentialConfigs are the option shapes the planned engine is
// pinned against, mirroring the invocation-pool acceptance net.
func differentialConfigs(w *workload.World) []core.Options {
	return []core.Options{
		{Strategy: core.LazyNFQ, Layering: true, Parallel: true, Incremental: true},
		{Strategy: core.LazyNFQTyped, Schema: w.Schema, Layering: true, Parallel: true, Push: true},
	}
}

// warmPlanner returns a CostPlanner whose profiler has observed one
// full evaluation of the world, so its schedules are driven by real
// estimates rather than priors.
func warmPlanner(t *testing.T, w *workload.World, opt core.Options) *CostPlanner {
	t.Helper()
	prof := profile.New(0, nil)
	if _, err := core.Evaluate(w.Doc.Clone(), w.Query, prof.Wrap(w.Registry), opt); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	return New(prof, Options{})
}

// TestPlannedDifferentialAcrossSeeds is the planner's acceptance net:
// over 50 seeded workloads and both option shapes, evaluation with the
// cost planner must be indistinguishable from the static engine at
// every pool width — identical result sets, identical Stats (virtual
// clock included) and an identical trace event stream. The planner may
// only reorder and resize work; anything it changes that a trace can
// see is a bug this test catches.
func TestPlannedDifferentialAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	for seed := int64(0); seed < 50; seed++ {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		for ci, base := range differentialConfigs(w) {
			planner := warmPlanner(t, w, base)
			run := func(width int, pl core.InvocationPlanner) (*core.Outcome, []core.TraceEvent) {
				opt := base
				opt.InvokeWorkers = width
				opt.Planner = pl
				var events []core.TraceEvent
				opt.Trace = func(ev core.TraceEvent) { events = append(events, ev) }
				out, err := core.Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
				if err != nil {
					t.Fatalf("seed %d cfg %d width %d planned=%v: %v", seed, ci, width, pl != nil, err)
				}
				return out, events
			}
			ref, refEvents := run(1, nil)
			want := resultKeys(ref)
			wantStats := comparableStats(ref)
			for _, width := range []int{1, 2, 4, 8} {
				for _, pl := range []core.InvocationPlanner{nil, planner} {
					out, events := run(width, pl)
					if got := resultKeys(out); got != want {
						t.Errorf("seed %d cfg %d width %d planned=%v: results diverge\n got %q\nwant %q",
							seed, ci, width, pl != nil, got, want)
					}
					if got := comparableStats(out); got != wantStats {
						t.Errorf("seed %d cfg %d width %d planned=%v: stats diverge\n got %+v\nwant %+v",
							seed, ci, width, pl != nil, got, wantStats)
					}
					if !reflect.DeepEqual(events, refEvents) {
						t.Errorf("seed %d cfg %d width %d planned=%v: trace stream diverges (%d vs %d events)",
							seed, ci, width, pl != nil, len(events), len(refEvents))
					}
				}
			}
		}
	}
}

// TestPlannedDifferentialUnderFaults drives the same off-vs-cost
// comparison through an injected fault layer with retries. At width 1
// the fault injector's per-service invocation indices are deterministic
// and the planner's stable ordering preserves each service's relative
// call order, so Stats and traces must stay bit-identical too; at
// larger widths arrival order inside the injector is scheduling-
// dependent, so (as in the pool tests) only the converged result set is
// compared.
func TestPlannedDifferentialUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	for seed := int64(0); seed < 50; seed++ {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		// The injector's per-service invocation counters are stateful, so
		// every run gets a fresh wrapper: two identically-scheduled runs
		// then draw identical fault sequences.
		freshFaults := func() *service.Registry {
			return service.NewFaults(service.FaultSpec{
				Seed: seed*2654435761 + 1, ErrorRate: 0.2, TimeoutRate: 0.05, FailFirst: 1,
			}).Wrap(w.Registry)
		}
		for ci, base := range differentialConfigs(w) {
			base.Retry = core.RetryPolicy{MaxAttempts: 25, Backoff: time.Millisecond, Jitter: 0.5, Seed: seed}
			base.Failure = core.BestEffort
			planner := warmPlanner(t, w, differentialConfigs(w)[ci])
			run := func(width int, pl core.InvocationPlanner) (*core.Outcome, []core.TraceEvent) {
				opt := base
				opt.InvokeWorkers = width
				opt.Planner = pl
				var events []core.TraceEvent
				opt.Trace = func(ev core.TraceEvent) { events = append(events, ev) }
				out, err := core.Evaluate(w.Doc.Clone(), w.Query, freshFaults(), opt)
				if err != nil {
					t.Fatalf("seed %d cfg %d width %d planned=%v: %v", seed, ci, width, pl != nil, err)
				}
				return out, events
			}
			refOut, refEvents := run(1, nil)
			want := resultKeys(refOut)
			wantStats := comparableStats(refOut)
			// Width 1: full identity, faults included.
			out, events := run(1, planner)
			if got := resultKeys(out); got != want {
				t.Errorf("seed %d cfg %d width 1 planned: faulted results diverge", seed, ci)
			}
			if got := comparableStats(out); got != wantStats {
				t.Errorf("seed %d cfg %d width 1 planned: faulted stats diverge\n got %+v\nwant %+v",
					seed, ci, got, wantStats)
			}
			if !reflect.DeepEqual(events, refEvents) {
				t.Errorf("seed %d cfg %d width 1 planned: faulted trace diverges", seed, ci)
			}
			// Wider pools: the retried evaluation must still converge to
			// the same result set with and without the planner.
			for _, width := range []int{2, 4, 8} {
				for _, pl := range []core.InvocationPlanner{nil, planner} {
					out, _ := run(width, pl)
					if got := resultKeys(out); got != want {
						t.Errorf("seed %d cfg %d width %d planned=%v: faulted results diverge",
							seed, ci, width, pl != nil)
					}
				}
			}
		}
	}
}
