// F-guide serialisation: the persistent form of the index an AXML
// repository stores next to each document. The format is a pre-order
// dump of the guide trie — label paths, per-path call annotations
// (document positions and service names of the extent) and node counts —
// in the spirit of an annotated strong dataguide: enough to reopen a
// repository with a warm index, to answer `axmlrepo index stats` without
// touching the document, and to cross-check the index against the
// document during `axmlrepo index verify`.
//
// Extents are addressed by document-order position (the index of the
// call node in a pre-order traversal of the whole tree), not by node ID:
// IDs are assigned in splice order and do not survive a marshal/parse
// round trip, while document order does. Decode therefore requires the
// freshly parsed document the guide was encoded against; any mismatch —
// wrong node count, a position that is not a call, a service name that
// moved — is reported as corruption, which repositories answer with a
// clean rebuild.
package fguide

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/activexml/axml/internal/tree"
)

// codecMagic identifies (and versions) the serialised guide format.
const codecMagic = "AXFG1\n"

// maxCodecString bounds label and service-name lengths during decode so
// corrupted or adversarial inputs cannot demand absurd allocations.
const maxCodecString = 1 << 20

// ErrCorrupt reports that serialised guide data is not a well-formed
// encoding, or does not describe the document it was decoded against.
// Callers holding the document fall back to Build.
var ErrCorrupt = errors.New("fguide: corrupt serialised guide")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Encode serialises the guide. The guide must be synced with its
// document (Synced): encoding addresses extents by current document
// positions, which a pending mutation would invalidate.
func Encode(g *Guide) ([]byte, error) {
	if !Synced(g) {
		return nil, fmt.Errorf("fguide: encode of an unsynced guide (guide %d, document %d)", g.version, g.doc.Version())
	}
	pos := map[*tree.Node]uint64{}
	var nodes uint64
	g.doc.Root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Call {
			pos[n] = nodes
		}
		nodes++
		return true
	})
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	writeUvarint(&buf, nodes)
	writeUvarint(&buf, uint64(len(g.where)))
	writeUvarint(&buf, uint64(g.paths))
	if err := encodeNode(&buf, g.root, pos); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeNode(buf *bytes.Buffer, n *gnode, pos map[*tree.Node]uint64) error {
	writeString(buf, n.label)
	// Extents in ascending document position: deterministic, and the
	// decoded extent order matches document order (which Candidates
	// relies on only up to its own final sort, but determinism makes the
	// encoding byte-stable for checksums).
	ext := make([]*tree.Node, len(n.extent))
	copy(ext, n.extent)
	for _, c := range ext {
		if _, ok := pos[c]; !ok {
			return fmt.Errorf("fguide: encode: extent call %q is not attached to the document", c.Label)
		}
	}
	sort.Slice(ext, func(i, j int) bool { return pos[ext[i]] < pos[ext[j]] })
	writeUvarint(buf, uint64(len(ext)))
	for _, c := range ext {
		writeUvarint(buf, pos[c])
		writeString(buf, c.Label)
	}
	labels := make([]string, 0, len(n.children))
	for l := range n.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	writeUvarint(buf, uint64(len(labels)))
	for _, l := range labels {
		if err := encodeNode(buf, n.children[l], pos); err != nil {
			return err
		}
	}
	return nil
}

// Decode reconstructs a guide from its serialised form against the
// document it summarises. The document must be the same tree the guide
// was encoded over, typically freshly parsed from the bytes persisted
// alongside: positions, node count and service names are all verified,
// and any disagreement returns ErrCorrupt.
func Decode(doc *tree.Document, data []byte) (*Guide, error) {
	r := &codecReader{data: data}
	if err := r.expect(codecMagic); err != nil {
		return nil, err
	}
	wantNodes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	wantCalls, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	wantPaths, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	calls := map[uint64]*tree.Node{}
	var nodes uint64
	doc.Root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Call {
			calls[nodes] = n
		}
		nodes++
		return true
	})
	if nodes != wantNodes {
		return nil, corruptf("document has %d nodes, index expects %d", nodes, wantNodes)
	}
	g := &Guide{
		doc:     doc,
		where:   map[*tree.Node]*gnode{},
		version: doc.Version(),
	}
	root, err := decodeNode(r, g, nil, calls, 0)
	if err != nil {
		return nil, err
	}
	g.root = root
	if r.rest() != 0 {
		return nil, corruptf("%d trailing bytes", r.rest())
	}
	if uint64(len(g.where)) != wantCalls {
		return nil, corruptf("index holds %d calls, header says %d", len(g.where), wantCalls)
	}
	if uint64(g.paths) != wantPaths {
		return nil, corruptf("index holds %d paths, header says %d", g.paths, wantPaths)
	}
	return g, nil
}

// maxCodecDepth bounds trie nesting during decode; label paths deeper
// than any sane document indicate corruption (and would otherwise let a
// crafted input exhaust the stack).
const maxCodecDepth = 1 << 16

func decodeNode(r *codecReader, g *Guide, parent *gnode, calls map[uint64]*tree.Node, depth int) (*gnode, error) {
	if depth > maxCodecDepth {
		return nil, corruptf("trie deeper than %d", maxCodecDepth)
	}
	label, err := r.str()
	if err != nil {
		return nil, err
	}
	n := &gnode{label: label, parent: parent, children: map[string]*gnode{}}
	extents, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < extents; i++ {
		pos, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		svc, err := r.str()
		if err != nil {
			return nil, err
		}
		c, ok := calls[pos]
		if !ok {
			return nil, corruptf("position %d is not a call node", pos)
		}
		if c.Label != svc {
			return nil, corruptf("position %d calls %q, index says %q", pos, c.Label, svc)
		}
		if _, dup := g.where[c]; dup {
			return nil, corruptf("position %d indexed twice", pos)
		}
		n.extent = append(n.extent, c)
		g.where[c] = n
	}
	if len(n.extent) > 0 {
		g.paths++
	}
	kids, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	prev := ""
	for i := uint64(0); i < kids; i++ {
		c, err := decodeNode(r, g, n, calls, depth+1)
		if err != nil {
			return nil, err
		}
		if i > 0 && c.label <= prev {
			return nil, corruptf("child labels out of order at %q", c.label)
		}
		prev = c.label
		n.children[c.label] = c
	}
	return n, nil
}

// Summary describes a serialised guide without its document — the data
// behind `axmlrepo index stats`.
type Summary struct {
	// DocNodes is the node count of the document the guide was encoded
	// against.
	DocNodes int
	// Calls is the number of indexed function nodes; Paths the number of
	// distinct call-bearing label paths.
	Calls, Paths int
	// PerPath maps each call-bearing label path (joined with "/") to its
	// per-service call counts.
	PerPath map[string]map[string]int
}

// Inspect parses a serialised guide standalone, verifying structure but
// not document agreement (no document is at hand).
func Inspect(data []byte) (*Summary, error) {
	r := &codecReader{data: data}
	if err := r.expect(codecMagic); err != nil {
		return nil, err
	}
	nodes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	calls, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	paths, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	s := &Summary{DocNodes: int(nodes), Calls: int(calls), Paths: int(paths), PerPath: map[string]map[string]int{}}
	var seenCalls, seenPaths int
	var walk func(prefix string, depth int) error
	walk = func(prefix string, depth int) error {
		if depth > maxCodecDepth {
			return corruptf("trie deeper than %d", maxCodecDepth)
		}
		label, err := r.str()
		if err != nil {
			return err
		}
		path := prefix
		if label != "" {
			if path != "" {
				path += "/"
			}
			path += label
		}
		extents, err := r.uvarint()
		if err != nil {
			return err
		}
		if extents > 0 {
			seenPaths++
			per := map[string]int{}
			for i := uint64(0); i < extents; i++ {
				if _, err := r.uvarint(); err != nil { // position
					return err
				}
				svc, err := r.str()
				if err != nil {
					return err
				}
				per[svc]++
				seenCalls++
			}
			s.PerPath[path] = per
		}
		kids, err := r.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < kids; i++ {
			if err := walk(path, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk("", 0); err != nil {
		return nil, err
	}
	if r.rest() != 0 {
		return nil, corruptf("%d trailing bytes", r.rest())
	}
	if seenCalls != s.Calls || seenPaths != s.Paths {
		return nil, corruptf("header counts (%d calls, %d paths) disagree with body (%d, %d)",
			s.Calls, s.Paths, seenCalls, seenPaths)
	}
	return s, nil
}

// codecReader is a bounds-checked cursor over serialised guide bytes.
type codecReader struct {
	data []byte
	off  int
}

func (r *codecReader) rest() int { return len(r.data) - r.off }

func (r *codecReader) expect(magic string) error {
	if r.rest() < len(magic) || string(r.data[r.off:r.off+len(magic)]) != magic {
		return corruptf("bad magic")
	}
	r.off += len(magic)
	return nil
}

func (r *codecReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *codecReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxCodecString {
		return "", corruptf("string of %d bytes exceeds the %d limit", n, maxCodecString)
	}
	if uint64(r.rest()) < n {
		return "", corruptf("truncated string at offset %d", r.off)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}
