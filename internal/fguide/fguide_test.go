package fguide

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/regex"
	"github.com/activexml/axml/internal/rewrite"
	"github.com/activexml/axml/internal/tree"
)

func doc(t *testing.T, xml string) *tree.Document {
	t.Helper()
	d, err := tree.Unmarshal([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const sample = `<hotels>
  <hotel>
    <name>Best Western</name>
    <rating><axml:call service="getRating"/></rating>
    <nearby>
      <axml:call service="getNearbyRestos"/>
      <axml:call service="getNearbyMuseums"/>
    </nearby>
  </hotel>
  <hotel>
    <name>Pennsylvania</name>
    <rating><axml:call service="getRating"/></rating>
  </hotel>
  <axml:call service="getHotels"/>
</hotels>`

func TestBuildCountsPathsAndCalls(t *testing.T) {
	g := Build(doc(t, sample))
	if g.Calls() != 5 {
		t.Fatalf("Calls = %d, want 5", g.Calls())
	}
	// Distinct call-bearing paths: /hotels, /hotels/hotel/rating,
	// /hotels/hotel/nearby.
	if g.Paths() != 3 {
		t.Fatalf("Paths = %d, want 3\n%s", g.Paths(), g)
	}
}

func TestCandidatesChildEdge(t *testing.T) {
	g := Build(doc(t, sample))
	// Calls whose parent path is /hotels/hotel/rating.
	lin := []regex.PathStep{{Label: "hotels"}, {Label: "hotel"}, {Label: "rating"}}
	got := g.Candidates(lin, false)
	if len(got) != 2 {
		t.Fatalf("rating candidates = %d, want 2", len(got))
	}
	for _, c := range got {
		if c.Label != "getRating" {
			t.Fatalf("unexpected candidate %s", c.Label)
		}
	}
	// Calls directly under the root element.
	got = g.Candidates([]regex.PathStep{{Label: "hotels"}}, false)
	if len(got) != 1 || got[0].Label != "getHotels" {
		t.Fatalf("root candidates = %v", got)
	}
}

func TestCandidatesDescTailAndWildcards(t *testing.T) {
	g := Build(doc(t, sample))
	// Any call at any depth below a hotel.
	lin := []regex.PathStep{{Label: "hotels"}, {Label: "hotel"}}
	got := g.Candidates(lin, true)
	if len(got) != 4 {
		t.Fatalf("descTail candidates = %d, want 4", len(got))
	}
	// Wildcard step.
	lin = []regex.PathStep{{Label: "hotels"}, {Label: regex.Any}, {Label: "nearby"}}
	got = g.Candidates(lin, false)
	if len(got) != 2 {
		t.Fatalf("wildcard candidates = %d, want 2", len(got))
	}
	// AnyDepth step: //rating.
	lin = []regex.PathStep{{Label: "rating", AnyDepth: true}}
	got = g.Candidates(lin, false)
	if len(got) != 2 {
		t.Fatalf("anydepth candidates = %d, want 2", len(got))
	}
	// No match.
	if g.Candidates([]regex.PathStep{{Label: "museums"}}, true) != nil {
		t.Fatal("expected no candidates")
	}
}

func TestGuideAgreesWithLPQsOnDocument(t *testing.T) {
	// Section 6.2: "the linear path queries of Section 3 yield the same
	// result on a document and on its F-guide".
	d := doc(t, sample)
	g := Build(d)
	q := pattern.MustParse(`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`)
	lpqs, err := rewrite.LPQs(q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lpqs {
		onDoc := pattern.MatchedCalls(d, l.Query, l.Out)
		onGuide := g.Candidates(l.Lin, l.DescTail)
		if len(onDoc) != len(onGuide) {
			t.Errorf("%s: doc=%d guide=%d", l.Query, len(onDoc), len(onGuide))
			continue
		}
		for i := range onDoc {
			if onDoc[i] != onGuide[i] {
				t.Errorf("%s: candidate %d differs", l.Query, i)
			}
		}
	}
}

func TestRemoveAndPrune(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	var hotelsCall *tree.Node
	for _, c := range d.Calls() {
		if c.Label == "getHotels" {
			hotelsCall = c
		}
	}
	g.Remove(hotelsCall)
	if g.Calls() != 4 {
		t.Fatalf("Calls after remove = %d", g.Calls())
	}
	if got := g.Candidates([]regex.PathStep{{Label: "hotels"}}, false); got != nil {
		t.Fatalf("removed call still a candidate: %v", got)
	}
	// Removing again is a no-op.
	g.Remove(hotelsCall)
	if g.Calls() != 4 {
		t.Fatal("double remove changed the count")
	}
}

func TestPruneKeepsSharedBranches(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	// Remove one of the two getRating calls: the rating path must stay.
	var ratings []*tree.Node
	for _, c := range d.Calls() {
		if c.Label == "getRating" {
			ratings = append(ratings, c)
		}
	}
	g.Remove(ratings[0])
	lin := []regex.PathStep{{Label: "hotels"}, {Label: "hotel"}, {Label: "rating"}}
	if got := g.Candidates(lin, false); len(got) != 1 {
		t.Fatalf("rating extent after partial removal = %d, want 1", len(got))
	}
	if g.Paths() != 3 {
		t.Fatalf("Paths = %d, want 3 (path still occupied)", g.Paths())
	}
}

func TestMaintenanceAcrossReplaceCall(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	var restos *tree.Node
	for _, c := range d.Calls() {
		if c.Label == "getNearbyRestos" {
			restos = c
		}
	}
	// Result: a restaurant with a nested rating call.
	result, err := tree.UnmarshalForest([]byte(
		`<restaurant><name>Jo</name><rating><axml:call service="getRating"/></rating></restaurant>`))
	if err != nil {
		t.Fatal(err)
	}
	g.Remove(restos)
	inserted := d.ReplaceCall(restos, result)
	for _, n := range inserted {
		g.AddSubtree(n)
	}
	if !Synced(g) {
		t.Fatal("guide out of sync after maintenance")
	}
	// The nested call is now reachable under the new path.
	lin := []regex.PathStep{
		{Label: "hotels"}, {Label: "hotel"}, {Label: "nearby"},
		{Label: "restaurant"}, {Label: "rating"},
	}
	got := g.Candidates(lin, false)
	if len(got) != 1 || got[0].Label != "getRating" {
		t.Fatalf("nested call not indexed: %v\n%s", got, g)
	}
}

func TestAddPanicsOnNonCall(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Add(d.Root)
}

func TestStringShape(t *testing.T) {
	g := Build(doc(t, sample))
	s := g.String()
	if !strings.Contains(s, "hotels") || !strings.Contains(s, "rating (2 calls)") {
		t.Fatalf("String = %q", s)
	}
	// Pruned: no name branch (no calls below name).
	if strings.Contains(s, "name") {
		t.Fatalf("pruned branch rendered: %q", s)
	}
}

// TestGuideEquivalenceProperty: on random documents, guide candidates for
// random linear paths equal a direct document scan.
func TestGuideEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed)
		g := Build(d)
		lin, descTail := randomLin(seed * 31)
		fromGuide := g.Candidates(lin, descTail)
		want := scanCalls(d, lin, descTail)
		if len(fromGuide) != len(want) {
			return false
		}
		for i := range want {
			if fromGuide[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// scanCalls is the reference implementation: walk the document and test
// each call's parent path against the lin steps (NFA-style).
func scanCalls(d *tree.Document, lin []regex.PathStep, descTail bool) []*tree.Node {
	nfa := regex.CompilePath(lin)
	var out []*tree.Node
	d.Root.Walk(func(n *tree.Node) bool {
		if n.Kind != tree.Call {
			return true
		}
		path := n.Path()
		parent := path[:len(path)-1]
		if nfa.Matches(parent) {
			out = append(out, n)
			return true
		}
		if descTail {
			for i := 0; i < len(parent); i++ {
				if nfa.Matches(parent[:i]) {
					out = append(out, n)
					return true
				}
			}
		}
		return true
	})
	return out
}

func randomDoc(seed int64) *tree.Document {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 7
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	labels := []string{"a", "b", "c"}
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		if depth <= 0 || next(5) == 0 {
			if next(2) == 0 {
				return tree.NewCall("f")
			}
			return tree.NewText("v")
		}
		n := tree.NewElement(labels[next(len(labels))])
		for i := 0; i < next(4); i++ {
			n.Append(build(depth - 1))
		}
		return n
	}
	root := tree.NewElement("r")
	for i := 0; i < 1+next(4); i++ {
		root.Append(build(4))
	}
	return tree.NewDocument(root)
}

func randomLin(seed int64) ([]regex.PathStep, bool) {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 13
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	labels := []string{"r", "a", "b", "c", regex.Any}
	steps := []regex.PathStep{{Label: "r"}}
	for i := 0; i < next(4); i++ {
		steps = append(steps, regex.PathStep{
			Label:    labels[next(len(labels))],
			AnyDepth: next(3) == 0,
		})
	}
	return steps, next(2) == 0
}

func TestToDocumentIsQueryable(t *testing.T) {
	// Section 6.2: the F-guide serialises as an XML document that the
	// same linear path queries can be run on. Each (path, call) of the
	// guide appears in the guide document, so an LPQ retrieves calls on
	// the guide document exactly when it retrieves calls on the original.
	d := doc(t, sample)
	g := Build(d)
	gd := g.ToDocument()
	if gd.Root.Label != "hotels" {
		t.Fatalf("guide document root = %s", gd.Root.Label)
	}
	// The guide document serialises like any AXML document.
	if _, err := tree.Marshal(gd.Root); err != nil {
		t.Fatal(err)
	}
	q := pattern.MustParse(`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`)
	lpqs, err := rewrite.LPQs(q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lpqs {
		onOriginal := pattern.MatchedCalls(d, l.Query, l.Out)
		onGuideDoc := pattern.MatchedCalls(gd, l.Query, l.Out)
		if (len(onOriginal) > 0) != (len(onGuideDoc) > 0) {
			t.Errorf("%s: original %d calls, guide document %d", l.Query, len(onOriginal), len(onGuideDoc))
		}
		// Service-name multisets agree up to per-path dedup: every
		// service retrieved on the original appears on the guide doc.
		names := map[string]bool{}
		for _, c := range onGuideDoc {
			names[c.Label] = true
		}
		for _, c := range onOriginal {
			if !names[c.Label] {
				t.Errorf("%s: service %s missing from guide document", l.Query, c.Label)
			}
		}
	}
}

func TestToDocumentEmptyGuide(t *testing.T) {
	d := doc(t, `<r><a>no calls here</a></r>`)
	g := Build(d)
	gd := g.ToDocument()
	if gd.Root.Label != "fguide" || len(gd.Root.Children) != 0 {
		t.Fatalf("empty guide document = %s", gd.Root)
	}
}
