// Package fguide implements the function call guides of Section 6.2 of
// "Lazy Query Evaluation for Active XML" (SIGMOD 2004): a dataguide-style
// trie that summarises, with a single occurrence per path, the label paths
// of the document that lead to function nodes, together with their extents
// (pointers to the function nodes found under each path).
//
// Linear path queries yield the same candidate set on a document and on
// its F-guide, and the guide is typically far smaller, which is what makes
// relevance detection fast: the engine runs the linear part of each
// relevance query on the guide and then filters the (few) candidates by
// output type and by the residual conditions of the NFQ.
package fguide

import (
	"fmt"
	"sort"
	"strings"

	"github.com/activexml/axml/internal/regex"
	"github.com/activexml/axml/internal/tree"
)

// Guide is an F-guide over one document. It must be kept in sync with the
// document through Remove and Add as calls are invoked; Synced reports
// whether it has seen every mutation.
type Guide struct {
	doc     *tree.Document
	root    *gnode
	where   map[*tree.Node]*gnode // call → trie node holding it
	version uint64
	paths   int
}

// gnode is one trie node: a distinct label path of the document under
// which at least one function node occurs (or occurred; emptied nodes are
// pruned unless they still have children).
type gnode struct {
	label    string
	parent   *gnode
	children map[string]*gnode
	extent   []*tree.Node
}

// Build constructs the F-guide of the document in a single document-order
// traversal (linear time, as the paper notes).
func Build(doc *tree.Document) *Guide {
	return BuildFiltered(doc, nil)
}

// BuildFiltered constructs the F-guide while skipping every element
// subtree whose label the keep predicate rejects — the projection-aware
// construction: regions a type-based projection proves irrelevant for
// the query at hand are never indexed, so the guide stays proportional
// to the projected document. A nil keep indexes everything (Build).
//
// Soundness mirrors the projection's: a skipped subtree must be one no
// relevance query of the driving user query can match into, so the calls
// under it can never be retrieved as relevant. The resulting guide is a
// restriction of the full guide; every Candidates answer is a subset.
func BuildFiltered(doc *tree.Document, keep func(label string) bool) *Guide {
	g := &Guide{
		doc:     doc,
		root:    &gnode{children: map[string]*gnode{}},
		where:   map[*tree.Node]*gnode{},
		version: doc.Version(),
	}
	var walk func(n *tree.Node, at *gnode)
	walk = func(n *tree.Node, at *gnode) {
		if n.Kind == tree.Call {
			g.attach(at, n)
			return
		}
		if n.Kind != tree.Element {
			return
		}
		if keep != nil && !keep(n.Label) {
			return
		}
		next := g.child(at, n.Label)
		for _, c := range n.Children {
			walk(c, next)
		}
	}
	// The root element's own label is the first path component.
	walk(doc.Root, g.root)
	g.prune(g.root)
	return g
}

// Doc returns the document this guide indexes.
func (g *Guide) Doc() *tree.Document { return g.doc }

// child returns (creating if needed) the trie child for a label.
func (g *Guide) child(at *gnode, label string) *gnode {
	if c, ok := at.children[label]; ok {
		return c
	}
	c := &gnode{label: label, parent: at, children: map[string]*gnode{}}
	at.children[label] = c
	return c
}

func (g *Guide) attach(at *gnode, call *tree.Node) {
	if len(at.extent) == 0 {
		g.paths++
	}
	at.extent = append(at.extent, call)
	g.where[call] = at
}

// prune drops trie branches with no extent anywhere below, so the guide
// only keeps paths leading to function calls.
func (g *Guide) prune(n *gnode) bool {
	useful := len(n.extent) > 0
	for label, c := range n.children {
		if g.prune(c) {
			useful = true
		} else {
			delete(n.children, label)
		}
	}
	return useful
}

// Remove unregisters a function node, called just before the engine
// expands it. Emptied trie branches are pruned.
func (g *Guide) Remove(call *tree.Node) {
	at, ok := g.where[call]
	if !ok {
		return
	}
	delete(g.where, call)
	for i, c := range at.extent {
		if c == call {
			at.extent = append(at.extent[:i], at.extent[i+1:]...)
			break
		}
	}
	if len(at.extent) == 0 {
		g.paths--
		for n := at; n.parent != nil && len(n.extent) == 0 && len(n.children) == 0; n = n.parent {
			delete(n.parent.children, n.label)
		}
	}
	g.version = g.doc.Version()
}

// Add registers a function node newly inserted into the document (e.g.
// found in a call result). The node must be attached to the document.
// Adding an already-indexed call is a no-op, so maintenance paths that
// may overlap (the engine's in-place upkeep and a repository's
// ApplyExpansion hook) compose without duplicating extents.
func (g *Guide) Add(call *tree.Node) {
	if call.Kind != tree.Call {
		panic("fguide: Add of a non-call node")
	}
	if _, dup := g.where[call]; dup {
		return
	}
	at := g.root
	path := call.Path()
	for _, label := range path[:len(path)-1] {
		at = g.child(at, label)
	}
	g.attach(at, call)
	g.version = g.doc.Version()
}

// AddSubtree registers every function node of a freshly inserted subtree.
func (g *Guide) AddSubtree(n *tree.Node) {
	n.Walk(func(x *tree.Node) bool {
		if x.Kind == tree.Call {
			g.Add(x)
			return false
		}
		return x.Kind == tree.Element
	})
}

// ApplyExpansion incorporates one call expansion (Document.ReplaceCall
// of removed under parent, splicing in the inserted forest) into the
// guide: the expanded call leaves the index and every function node of
// the inserted trees enters it. It is the incremental update path a
// persistent index uses instead of a full rebuild, and it is idempotent
// — applying an expansion the engine's own in-place upkeep already
// performed only resynchronises the version stamp.
//
// When the caller no longer knows the inserted roots (inserted nil), the
// whole subtree under parent is rescanned for unindexed calls — a
// bounded fallback, linear in the parent's subtree rather than the
// document.
func (g *Guide) ApplyExpansion(parent, removed *tree.Node, inserted []*tree.Node) {
	if removed != nil && removed.Kind == tree.Call {
		g.Remove(removed)
	}
	if inserted != nil {
		for _, n := range inserted {
			g.AddSubtree(n)
		}
	} else if parent != nil {
		parent.Walk(func(x *tree.Node) bool {
			if x.Kind == tree.Call {
				g.Add(x)
				return false
			}
			return x == parent || x.Kind == tree.Element
		})
	}
	g.MarkSynced()
}

// MarkSynced stamps the guide as having incorporated every mutation of
// its document up to now. Maintenance paths that track mutations exactly
// (the engine's Remove/AddSubtree upkeep) call it after a splice whose
// version bumps they witnessed in full, e.g. an expansion whose result
// forest was empty and therefore triggered no Add.
func (g *Guide) MarkSynced() { g.version = g.doc.Version() }

// Synced reports whether the guide has incorporated every document
// mutation (its version matches the document's).
func Synced(g *Guide) bool { return g.version == g.doc.Version() }

// Paths returns the number of distinct call-bearing paths in the guide.
func (g *Guide) Paths() int { return g.paths }

// Calls returns the number of function nodes currently indexed.
func (g *Guide) Calls() int { return len(g.where) }

// Candidates evaluates a linear path query on the guide: lin is the label
// path the call's *parent* must match (wildcard steps use regex.Any;
// AnyDepth steps may be preceded by arbitrary labels), and descTail
// selects whether the call may also sit at any depth below a lin match
// (descendant-edge targets). The result is every function node in the
// extents of the matching trie nodes, in ascending node-ID order.
func (g *Guide) Candidates(lin []regex.PathStep, descTail bool) []*tree.Node {
	cur := map[*gnode]bool{g.root: true}
	for _, step := range lin {
		next := map[*gnode]bool{}
		if step.AnyDepth {
			for n := range cur {
				collectDescendants(n, step.Label, next)
			}
		} else {
			for n := range cur {
				for label, c := range n.children {
					if step.Label == regex.Any || step.Label == label {
						next[c] = true
					}
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	seen := map[*tree.Node]bool{}
	var out []*tree.Node
	var take func(n *gnode, deep bool)
	take = func(n *gnode, deep bool) {
		for _, c := range n.extent {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		if deep {
			for _, ch := range n.children {
				take(ch, true)
			}
		}
	}
	for n := range cur {
		take(n, descTail)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// collectDescendants adds to out every proper descendant of n whose label
// matches (regex.Any matches all).
func collectDescendants(n *gnode, label string, out map[*gnode]bool) {
	for _, c := range n.children {
		if label == regex.Any || label == c.label {
			out[c] = true
		}
		collectDescendants(c, label, out)
	}
}

// ToDocument materialises the guide as an AXML document — "since
// F-guides are trees, they can naturally be represented as XML documents,
// and therefore be serialized and queried just as the data they
// summarize" (Section 6.2). Each trie node becomes an element with its
// label; each indexed call becomes a call node to the same service at the
// corresponding path. Evaluating a linear path query over the guide
// document therefore retrieves one representative call per (path,
// service) occurrence, mirroring Candidates.
func (g *Guide) ToDocument() *tree.Document {
	var build func(n *gnode, parent *tree.Node)
	build = func(n *gnode, parent *tree.Node) {
		for _, c := range n.extent {
			parent.Append(tree.NewCall(c.Label))
		}
		labels := make([]string, 0, len(n.children))
		for l := range n.children {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			e := parent.Append(tree.NewElement(l))
			build(n.children[l], e)
		}
	}
	// The trie's single first level is the summarised document's root
	// element (the virtual trie root holds no extents: calls always have
	// a data parent). A guide with no calls at all summarises to an
	// empty placeholder root.
	if len(g.root.children) == 1 {
		for label, child := range g.root.children {
			root := tree.NewElement(label)
			build(child, root)
			return tree.NewDocument(root)
		}
	}
	return tree.NewDocument(tree.NewElement("fguide"))
}

// String renders the guide as an indented path tree with extent sizes, in
// the spirit of the paper's Figure 8. Deterministic for tests and
// debugging.
func (g *Guide) String() string {
	var sb strings.Builder
	var walk func(n *gnode, depth int)
	walk = func(n *gnode, depth int) {
		if n != g.root {
			sb.WriteString(strings.Repeat("  ", depth-1))
			sb.WriteString(n.label)
			if len(n.extent) > 0 {
				fmt.Fprintf(&sb, " (%d call", len(n.extent))
				if len(n.extent) > 1 {
					sb.WriteString("s")
				}
				sb.WriteString(")")
			}
			sb.WriteString("\n")
		}
		labels := make([]string, 0, len(n.children))
		for l := range n.children {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			walk(n.children[l], depth+1)
		}
	}
	walk(g.root, 0)
	return sb.String()
}
