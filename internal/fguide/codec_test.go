package fguide

import (
	"bytes"
	"errors"
	"testing"

	"github.com/activexml/axml/internal/regex"
	"github.com/activexml/axml/internal/tree"
)

// reparse runs the document through the tree codec, as a repository does
// between persisting and reopening: same bytes, fresh node identities.
func reparse(t *testing.T, d *tree.Document) *tree.Document {
	t.Helper()
	data, err := tree.Marshal(d.Root)
	if err != nil {
		t.Fatal(err)
	}
	return doc(t, string(data))
}

func candidatePaths(g *Guide, lin []regex.PathStep, descTail bool) []string {
	var out []string
	for _, c := range g.Candidates(lin, descTail) {
		out = append(out, c.PathString())
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	fresh := reparse(t, d)
	g2, err := Decode(fresh, data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.String() != g.String() {
		t.Fatalf("decoded guide differs:\n%s\nvs\n%s", g2, g)
	}
	if g2.Calls() != g.Calls() || g2.Paths() != g.Paths() {
		t.Fatalf("decoded counts = (%d, %d), want (%d, %d)", g2.Calls(), g2.Paths(), g.Calls(), g.Paths())
	}
	if !Synced(g2) {
		t.Fatal("decoded guide not synced with its document")
	}
	for _, tc := range []struct {
		lin      []regex.PathStep
		descTail bool
	}{
		{[]regex.PathStep{{Label: "hotels"}, {Label: "hotel"}, {Label: "rating"}}, false},
		{[]regex.PathStep{{Label: "hotels"}, {Label: "hotel"}}, true},
		{[]regex.PathStep{{Label: "hotels"}, {Label: regex.Any}, {Label: "nearby"}}, false},
		{[]regex.PathStep{{Label: "rating", AnyDepth: true}}, false},
	} {
		want := candidatePaths(g, tc.lin, tc.descTail)
		got := candidatePaths(g2, tc.lin, tc.descTail)
		if !equalStrings(got, want) {
			t.Fatalf("Candidates(%v, %v) = %v, want %v", tc.lin, tc.descTail, got, want)
		}
	}
	// Re-encoding the decoded guide is byte-identical: checksums over the
	// serialised index are stable across open/close cycles.
	data2, err := Encode(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding the decoded guide changed bytes")
	}
}

func TestCodecRoundTripAfterExpansion(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	// Expand one getRating call into a result that itself carries a call,
	// maintaining the guide incrementally — the persisted-index patch path.
	var call *tree.Node
	d.Root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Call && n.Label == "getRating" && call == nil {
			call = n
		}
		return true
	})
	result := tree.NewElement("stars")
	result.Append(tree.NewCall("getReviews"))
	parent := call.Parent
	inserted := d.ReplaceCall(call, []*tree.Node{result})
	g.ApplyExpansion(parent, call, inserted)
	if !Synced(g) {
		t.Fatal("guide not synced after ApplyExpansion")
	}

	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(reparse(t, d), data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.String() != g.String() {
		t.Fatalf("decoded patched guide differs:\n%s\nvs\n%s", g2, g)
	}
	// The patched guide equals a cold rebuild of the mutated document.
	if want := Build(d).String(); g2.String() != want {
		t.Fatalf("patched guide differs from cold rebuild:\n%s\nvs\n%s", g2, want)
	}
}

func TestEncodeRejectsUnsyncedGuide(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	var call *tree.Node
	d.Root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Call && call == nil {
			call = n
		}
		return true
	})
	d.ReplaceCall(call, nil) // mutate behind the guide's back
	if _, err := Encode(g); err == nil {
		t.Fatal("Encode accepted a guide that missed a mutation")
	}
}

func TestDecodeRejectsWrongDocument(t *testing.T) {
	d := doc(t, sample)
	data, err := Encode(Build(d))
	if err != nil {
		t.Fatal(err)
	}
	other := doc(t, `<hotels><axml:call service="getHotels"/></hotels>`)
	if _, err := Decode(other, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode against wrong document: err = %v, want ErrCorrupt", err)
	}
	// Same shape, different service name at one call site.
	renamed := doc(t, sample)
	renamed.Root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Call && n.Label == "getHotels" {
			n.Label = "getMotels"
		}
		return true
	})
	if _, err := Decode(renamed, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode against renamed service: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTruncationAndNoise(t *testing.T) {
	d := doc(t, sample)
	data, err := Encode(Build(d))
	if err != nil {
		t.Fatal(err)
	}
	fresh := reparse(t, d)
	for k := 0; k < len(data); k++ {
		if _, err := Decode(fresh, data[:k]); err == nil {
			t.Fatalf("Decode accepted truncation to %d/%d bytes", k, len(data))
		}
	}
	if _, err := Decode(fresh, append(append([]byte{}, data...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode accepted trailing bytes: %v", err)
	}
	if _, err := Decode(fresh, []byte("not a guide")); !errors.Is(err, ErrCorrupt) {
		t.Fatal("Decode accepted garbage")
	}
}

func TestInspect(t *testing.T) {
	d := doc(t, sample)
	g := Build(d)
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Calls != g.Calls() || s.Paths != g.Paths() {
		t.Fatalf("Inspect counts = (%d, %d), want (%d, %d)", s.Calls, s.Paths, g.Calls(), g.Paths())
	}
	var nodes int
	d.Root.Walk(func(*tree.Node) bool { nodes++; return true })
	if s.DocNodes != nodes {
		t.Fatalf("Inspect.DocNodes = %d, want %d", s.DocNodes, nodes)
	}
	per, ok := s.PerPath["hotels/hotel/rating"]
	if !ok || per["getRating"] != 2 {
		t.Fatalf("Inspect.PerPath = %v, want hotels/hotel/rating → getRating:2", s.PerPath)
	}
	if per := s.PerPath["hotels"]; per["getHotels"] != 1 {
		t.Fatalf("Inspect.PerPath[hotels] = %v", per)
	}
	if _, err := Inspect(data[:len(data)-1]); err == nil {
		t.Fatal("Inspect accepted truncated data")
	}
}
