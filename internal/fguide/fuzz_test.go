package fguide

import (
	"bytes"
	"testing"

	"github.com/activexml/axml/internal/tree"
)

// FuzzGuideCodecRoundTrip drives the guide codec from both ends: any
// parseable document must round-trip its guide bit-stably through
// Encode/Decode against a fresh parse of the same bytes (the repository
// reopen path), and arbitrary bytes fed to Decode/Inspect must be
// rejected cleanly, never crash — the property the corruption-recovery
// path in internal/repo relies on.
func FuzzGuideCodecRoundTrip(f *testing.F) {
	f.Add([]byte(`<hotels><hotel><rating><axml:call service="getRating"/></rating></hotel><axml:call service="getHotels"/></hotels>`), []byte("AXFG1\n"))
	f.Add([]byte(`<r><a><axml:call service="s"/></a><a><b><axml:call service="s"/></b></a></r>`), []byte{})
	f.Add([]byte(`<r>text<axml:call service="s"><axml:call service="nested"/></axml:call></r>`), []byte("AXFG1\n\x05\x01\x01"))
	f.Fuzz(func(t *testing.T, xml, raw []byte) {
		if d, err := tree.Unmarshal(xml); err == nil {
			// Parse the document's canonical form twice, as a repository
			// does across a close/open cycle: the guide is encoded against
			// one parse and decoded against the other.
			canon, err := tree.Marshal(d.Root)
			if err != nil {
				t.Skip()
			}
			d1, err1 := tree.Unmarshal(canon)
			d2, err2 := tree.Unmarshal(canon)
			if err1 != nil || err2 != nil {
				t.Skip()
			}
			g := Build(d1)
			data, err := Encode(g)
			if err != nil {
				t.Fatalf("Encode of a fresh guide: %v", err)
			}
			g2, err := Decode(d2, data)
			if err != nil {
				t.Fatalf("Decode against identical parse: %v", err)
			}
			if g2.String() != g.String() {
				t.Fatalf("round trip changed guide:\n%s\nvs\n%s", g2, g)
			}
			if g2.Calls() != g.Calls() || g2.Paths() != g.Paths() {
				t.Fatalf("round trip changed counts: (%d,%d) vs (%d,%d)",
					g2.Calls(), g2.Paths(), g.Calls(), g.Paths())
			}
			data2, err := Encode(g2)
			if err != nil {
				t.Fatalf("re-Encode: %v", err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatal("encoding not byte-stable across a round trip")
			}
			// Decoding arbitrary bytes against a real document must fail
			// cleanly or produce a self-consistent guide — never panic.
			if gr, err := Decode(d2, raw); err == nil {
				_ = gr.String()
			}
		}
		// Standalone inspection of arbitrary bytes must never panic.
		if s, err := Inspect(raw); err == nil && s.Calls < 0 {
			t.Fatal("negative call count")
		}
	})
}
