package subscribe

import (
	"sync"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/service"
)

// TestConcurrentPollsAndBackgroundLoop exists to run under the race
// detector: explicit Poll calls, the Start-driven background loop,
// controller refreshes and Stop all interleave. The watcher serialises
// polls internally, so changes must still arrive one at a time and the
// final Stop must not race the ticker goroutine.
func TestConcurrentPollsAndBackgroundLoop(t *testing.T) {
	ctl, reg, q, _, _ := flights(t)
	var mu sync.Mutex
	var changes int
	w := Watch(ctl, q, reg, core.Options{
		Strategy: core.LazyNFQ,
		Retry:    core.RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond},
		Failure:  core.BestEffort,
	}, func(Change) {
		mu.Lock()
		changes++
		mu.Unlock()
	})
	w.Start(time.Millisecond)
	defer w.Stop()

	var pollers sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for i := 0; i < 20; i++ {
				if _, err := ctl.RefreshDue(time.Now()); err != nil {
					t.Error(err)
					return
				}
				if err := w.Poll(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	pollers.Wait()
	w.Stop()
	mu.Lock()
	defer mu.Unlock()
	if changes == 0 {
		t.Fatal("no change notifications despite rotating status")
	}
}

// TestWatcherOverFlakyRegistry polls through a fault injector with
// retries: the subscription keeps delivering consistent snapshots while
// the provider misbehaves.
func TestWatcherOverFlakyRegistry(t *testing.T) {
	ctl, reg, q, _, _ := flights(t)
	flaky := service.NewFaults(service.FaultSpec{Seed: 4, ErrorRate: 0.3}).Wrap(reg)
	var mu sync.Mutex
	sizes := map[int]bool{}
	w := Watch(ctl, q, flaky, core.Options{
		Strategy: core.LazyNFQ,
		Retry:    core.RetryPolicy{MaxAttempts: 20, Seed: 4},
		Failure:  core.BestEffort,
	}, func(c Change) {
		mu.Lock()
		sizes[c.Size] = true
		mu.Unlock()
	})
	for i := 0; i < 30; i++ {
		if _, err := ctl.RefreshDue(time.Now().Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
		if err := w.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !sizes[0] || !sizes[1] {
		t.Fatalf("expected the result to flip between present and absent, saw sizes %v", sizes)
	}
}
