// Package subscribe implements continuous queries over Active XML
// documents: a Watcher re-evaluates a query's *full* result (lazily, via
// the core engine) as the document's intensional parts evolve — typically
// driven by the activation package's periodic refreshes — and reports the
// difference to a callback. It is the subscription layer an AXML portal
// builds on: "which answers appeared or disappeared since I last looked".
//
// Each poll evaluates against a clone of the controlled document, so lazy
// materialisation during evaluation never interferes with the activation
// controller's management of the live document (periodic calls must
// survive in place).
package subscribe

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/activexml/axml/internal/activation"
	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// Change reports how the result set moved between two polls.
type Change struct {
	// Added holds results present now but not at the previous poll.
	Added []pattern.Result
	// Removed holds results present previously but gone now.
	Removed []pattern.Result
	// Size is the current result-set size.
	Size int
}

// Watcher is one continuous query.
type Watcher struct {
	mu   sync.Mutex
	ctl  *activation.Controller
	q    *pattern.Pattern
	reg  *service.Registry
	opt  core.Options
	fn   func(Change)
	last map[string]pattern.Result

	stop chan struct{}
	done chan struct{}
}

// Watch registers a continuous query over the controller's document. The
// callback fires from Poll (or the background loop) whenever the result
// set changed; the first poll reports every result as Added.
func Watch(ctl *activation.Controller, q *pattern.Pattern, reg *service.Registry, opt core.Options, fn func(Change)) *Watcher {
	return &Watcher{ctl: ctl, q: q, reg: reg, opt: opt, fn: fn, last: map[string]pattern.Result{}}
}

// Poll evaluates the query once and fires the callback if the result set
// changed since the previous poll.
func (w *Watcher) Poll() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var results []pattern.Result
	policies := w.ctl.Policies() // snapshot: the controller lock is not reentrant
	err := w.ctl.WithDocument(func(doc *tree.Document) error {
		clone := doc.Clone()
		// Periodic calls are the refresh *mechanism*; their data is what
		// the controller already materialised next to them. Evaluating
		// them again would double-fetch (and see a different instant),
		// so they are dropped from the evaluation clone.
		for _, call := range clone.Calls() {
			if policies[call.Label].Mode == activation.Periodic {
				clone.ReplaceCall(call, nil)
			}
		}
		out, err := core.Evaluate(clone, w.q, w.reg, w.opt)
		if err != nil {
			return err
		}
		results = out.Results
		return nil
	})
	if err != nil {
		return err
	}
	current := map[string]pattern.Result{}
	for _, r := range results {
		current[semanticKey(r)] = r
	}
	var change Change
	for k, r := range current {
		if _, ok := w.last[k]; !ok {
			change.Added = append(change.Added, r)
		}
	}
	for k, r := range w.last {
		if _, ok := current[k]; !ok {
			change.Removed = append(change.Removed, r)
		}
	}
	w.last = current
	change.Size = len(current)
	if len(change.Added) > 0 || len(change.Removed) > 0 {
		sortResults(change.Added)
		sortResults(change.Removed)
		w.fn(change)
	}
	return nil
}

// semanticKey identifies a result by its variable bindings — stable
// across re-evaluations, unlike document node identities.
func semanticKey(r pattern.Result) string {
	parts := make([]string, 0, len(r.Values))
	for k, v := range r.Values {
		parts = append(parts, "$"+k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func sortResults(rs []pattern.Result) {
	sort.Slice(rs, func(i, j int) bool { return semanticKey(rs[i]) < semanticKey(rs[j]) })
}

// Start launches a background loop: every tick it lets the controller
// refresh due periodic calls, then polls. Errors end the loop.
func (w *Watcher) Start(tick time.Duration) {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	stop, done := w.stop, w.done
	w.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				if _, err := w.ctl.RefreshDue(now); err != nil {
					return
				}
				if err := w.Poll(); err != nil {
					return
				}
			}
		}
	}()
}

// Stop terminates the background loop and waits for it.
func (w *Watcher) Stop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
