package subscribe

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/activexml/axml/internal/activation"
	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// flights builds a departures board whose status section is periodic: the
// service's answers rotate deterministically with each invocation.
func flights(t *testing.T) (*activation.Controller, *service.Registry, *pattern.Pattern, *sync.Mutex, *int) {
	t.Helper()
	var mu sync.Mutex
	round := 0
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name: "getStatus",
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			mu.Lock()
			defer mu.Unlock()
			round++
			status := "boarding"
			if round%2 == 0 {
				status = "delayed"
			}
			s := tree.NewElement("status")
			s.Append(tree.NewText(status))
			return []*tree.Node{s}, nil
		},
	})
	root := tree.NewElement("board")
	f := root.Append(tree.NewElement("flight"))
	f.Append(tree.NewElement("code")).Append(tree.NewText("AX-42"))
	f.Append(tree.NewCall("getStatus", tree.NewText("AX-42")))
	doc := tree.NewDocument(root)
	ctl := activation.NewController(doc, reg)
	if err := ctl.SetPolicy("getStatus", activation.Policy{Mode: activation.Periodic, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	q := pattern.MustParse(`/board/flight[status="boarding"][code=$C] -> $C`)
	return ctl, reg, q, &mu, &round
}

func TestPollReportsChanges(t *testing.T) {
	ctl, reg, q, _, _ := flights(t)
	var changes []Change
	w := Watch(ctl, q, reg, core.Options{Strategy: core.LazyNFQ}, func(c Change) {
		changes = append(changes, c)
	})
	now := time.Now()
	// Round 1: boarding → the result appears.
	if _, err := ctl.RefreshDue(now); err != nil {
		t.Fatal(err)
	}
	if err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || len(changes[0].Added) != 1 || changes[0].Added[0].Values["C"] != "AX-42" {
		t.Fatalf("first change = %+v", changes)
	}
	// No refresh: polling again reports nothing.
	if err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("idle poll fired a change: %+v", changes)
	}
	// Round 2: delayed → the result disappears.
	if _, err := ctl.RefreshDue(now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 || len(changes[1].Removed) != 1 || changes[1].Size != 0 {
		t.Fatalf("second change = %+v", changes)
	}
}

func TestPollDoesNotDisturbPeriodicCalls(t *testing.T) {
	ctl, reg, q, _, _ := flights(t)
	w := Watch(ctl, q, reg, core.Options{Strategy: core.LazyNFQ}, func(Change) {})
	if _, err := ctl.RefreshDue(time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	// The live document still holds the periodic call (polls evaluate
	// clones).
	err := ctl.WithDocument(func(doc *tree.Document) error {
		if len(doc.Calls()) != 1 {
			t.Fatalf("periodic call lost: %d calls", len(doc.Calls()))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStartStopLoop(t *testing.T) {
	ctl, reg, q, _, _ := flights(t)
	var mu sync.Mutex
	fired := 0
	w := Watch(ctl, q, reg, core.Options{Strategy: core.LazyNFQ}, func(Change) {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	w.Start(2 * time.Millisecond)
	w.Start(2 * time.Millisecond) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := fired
		mu.Unlock()
		if n >= 2 { // appeared, then disappeared (status alternates)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d changes in 2s", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent
}

func TestPollPropagatesErrors(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "boom", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return nil, errors.New("down")
	}})
	root := tree.NewElement("r")
	root.Append(tree.NewElement("a")).Append(tree.NewCall("boom"))
	ctl := activation.NewController(tree.NewDocument(root), reg)
	q := pattern.MustParse(`/r/a/"v"`)
	w := Watch(ctl, q, reg, core.Options{Strategy: core.LazyNFQ}, func(Change) {})
	if err := w.Poll(); err == nil {
		t.Fatal("evaluation error must surface")
	}
}
