// Package repo is the persistent indexed repository of AXML documents:
// the storage engine layered over the flat file store. Each document is
// persisted together with its serialized annotated F-guide (label
// paths, call-node annotations and node counts — the on-disk form of
// the Section 6.2 index, in the shape of an annotated strong dataguide)
// and a manifest carrying a format version and a checksum per part, so
// a restarted process opens documents with a warm index instead of
// rebuilding it, and call expansion patches the persisted index in
// place through fguide.ApplyExpansion instead of triggering rebuilds.
//
// The manifest is the commit point: every part is written atomically
// and the manifest last, so a crash between writes leaves at worst a
// stale index, never a torn one. Reads trust the document and verify
// the index — a bad checksum, a truncated file or a decode mismatch is
// logged and counted, the guide is rebuilt in memory, the on-disk index
// repaired, and the open still succeeds. Only the document itself is
// load-bearing: if it is missing or unparseable the repository cannot
// invent data and the error surfaces.
//
// Schemas ride along as a third part so store-restored masters keep
// typed pruning across restarts (they cannot be derived from the
// document, so a corrupt schema sidecar is dropped loudly rather than
// rebuilt).
package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// File extensions of the parts of one repository entry. DocExt matches
// internal/store so a flat store directory upgrades to an indexed
// repository in place: the first Get finds no manifest, opens cold, and
// repairs the entry to indexed form.
const (
	DocExt      = store.Extension
	GuideExt    = ".fguide"
	SchemaExt   = ".schema"
	ManifestExt = ".manifest"
)

// FormatVersion identifies the on-disk entry format (manifest layout +
// guide codec). Entries with a different version open cold and are
// repaired to the current format.
const FormatVersion = 1

// FileStamp fingerprints one persisted part.
type FileStamp struct {
	Bytes  int    `json:"bytes"`
	SHA256 string `json:"sha256"`
}

func stamp(data []byte) FileStamp {
	sum := sha256.Sum256(data)
	return FileStamp{Bytes: len(data), SHA256: hex.EncodeToString(sum[:])}
}

// Manifest describes one repository entry: which parts exist, their
// checksums, and the index's summary counts. It is written last on
// every update, making it the entry's commit point.
type Manifest struct {
	Format int        `json:"format"`
	Name   string     `json:"name"`
	Doc    FileStamp  `json:"doc"`
	Guide  *FileStamp `json:"guide,omitempty"`
	Schema *FileStamp `json:"schema,omitempty"`
	// Nodes, Calls and Paths summarise the indexed document: total tree
	// nodes, indexed function nodes, distinct call-bearing label paths.
	Nodes int `json:"nodes"`
	Calls int `json:"calls"`
	Paths int `json:"paths"`
}

// Opened is the result of Get: the document with everything persisted
// alongside it.
type Opened struct {
	Doc *tree.Document
	// Guide is the document's F-guide, decoded from the persisted index
	// (Warm) or rebuilt in memory after a cold or corrupt open. Always
	// non-nil and synced with Doc.
	Guide *fguide.Guide
	// Schema is the persisted schema, nil if none was stored (or its
	// sidecar was corrupt — logged, never fatal).
	Schema *schema.Schema
	// Warm reports that Guide came from the persisted index with every
	// checksum intact — the no-rebuild path.
	Warm bool
}

// PutOptions carries the optional parts persisted with a document.
type PutOptions struct {
	// Guide, when non-nil, must be synced with the document and is
	// persisted as-is — this is how a draining session persists an index
	// it has been patching in place, without a rebuild. When nil the
	// index is built from the document.
	Guide *fguide.Guide
	// Schema, when non-nil, is persisted alongside so a restart keeps
	// typed pruning.
	Schema *schema.Schema
}

// Repo is a persistent indexed repository over one backend. It is safe
// for concurrent use within one process; cross-process safety relies on
// the backend's atomic replacement, exactly as internal/store.
type Repo struct {
	b  Backend
	mu sync.RWMutex

	// Logger receives corruption and repair reports; defaults to stderr.
	// Replace before concurrent use.
	Logger *log.Logger

	warmOpens   *telemetry.Counter
	rebuilds    *telemetry.Counter
	repairs     *telemetry.Counter
	corruptions *telemetry.Counter
}

// New returns a repository over the given backend, sweeping orphaned
// sidecar files (index parts whose document is gone — the remains of a
// crash mid-Delete) as it opens.
func New(b Backend) (*Repo, error) {
	r := &Repo{b: b, Logger: log.New(os.Stderr, "repo: ", log.LstdFlags)}
	if err := r.sweep(); err != nil {
		return nil, err
	}
	return r, nil
}

// Open is the common case: a durable directory-backed repository.
func Open(dir string) (*Repo, error) {
	b, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return New(b)
}

// Over layers a repository on an existing flat store's directory,
// inheriting its durability setting. Documents the store wrote are
// served cold once and then repaired to indexed entries.
func Over(st *store.Store) (*Repo, error) {
	b, err := OpenDir(st.Dir())
	if err != nil {
		return nil, err
	}
	b.Sync = st.Sync
	return New(b)
}

// Instrument registers the repository's counters (warm opens, index
// rebuilds, repairs, corruption detections) with the registry. A nil
// registry detaches them.
func (r *Repo) Instrument(reg *telemetry.Registry) {
	r.warmOpens = reg.Counter(telemetry.MetricRepoWarmOpens)
	r.rebuilds = reg.Counter(telemetry.MetricRepoRebuilds)
	r.repairs = reg.Counter(telemetry.MetricRepoRepairs)
	r.corruptions = reg.Counter(telemetry.MetricRepoCorruptions)
}

func (r *Repo) logf(format string, args ...any) {
	if r.Logger != nil {
		r.Logger.Printf(format, args...)
	}
}

// sweep removes sidecar files whose document is gone: Delete removes
// the manifest first and the document last, so a crash part-way leaves
// sidecars that this pass (run at open) retires.
func (r *Repo) sweep() error {
	files, err := r.b.List()
	if err != nil {
		return fmt.Errorf("repo: sweep: %w", err)
	}
	docs := map[string]bool{}
	for _, f := range files {
		if name, ok := strings.CutSuffix(f, DocExt); ok {
			docs[name] = true
		}
	}
	for _, f := range files {
		for _, ext := range []string{GuideExt, SchemaExt, ManifestExt} {
			if name, ok := strings.CutSuffix(f, ext); ok && !docs[name] {
				r.logf("sweeping orphaned %s (no document)", f)
				if err := r.b.Remove(f); err != nil {
					return fmt.Errorf("repo: sweep %s: %w", f, err)
				}
			}
		}
	}
	return nil
}

// countNodes returns the document's total node count.
func countNodes(doc *tree.Document) int {
	var n int
	doc.Root.Walk(func(*tree.Node) bool { n++; return true })
	return n
}

// Put persists the document and its index under the given name,
// atomically replacing any previous entry. A synced guide supplied via
// opts is encoded as-is; otherwise the guide is built fresh. The
// manifest is written last, committing the entry.
func (r *Repo) Put(name string, doc *tree.Document, opts PutOptions) error {
	if err := store.ValidName(name); err != nil {
		return err
	}
	docData, err := tree.MarshalIndent(doc.Root)
	if err != nil {
		return fmt.Errorf("repo: marshal %s: %w", name, err)
	}
	docData = append(docData, '\n')

	g := opts.Guide
	if g != nil && (g.Doc() != doc || !fguide.Synced(g)) {
		return fmt.Errorf("repo: put %s: supplied guide does not describe the document", name)
	}
	if g == nil {
		g = fguide.Build(doc)
	}
	guideData, err := fguide.Encode(g)
	if err != nil {
		return fmt.Errorf("repo: put %s: %w", name, err)
	}

	man := &Manifest{
		Format: FormatVersion,
		Name:   name,
		Doc:    stamp(docData),
		Nodes:  countNodes(doc),
		Calls:  g.Calls(),
		Paths:  g.Paths(),
	}
	gs := stamp(guideData)
	man.Guide = &gs

	var schemaData []byte
	if opts.Schema != nil {
		schemaData = []byte(opts.Schema.String())
		ss := stamp(schemaData)
		man.Schema = &ss
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.b.WriteFile(name+DocExt, docData); err != nil {
		return fmt.Errorf("repo: put %s: %w", name, err)
	}
	if err := r.b.WriteFile(name+GuideExt, guideData); err != nil {
		return fmt.Errorf("repo: put %s: %w", name, err)
	}
	if opts.Schema != nil {
		if err := r.b.WriteFile(name+SchemaExt, schemaData); err != nil {
			return fmt.Errorf("repo: put %s: %w", name, err)
		}
	} else if err := r.b.Remove(name + SchemaExt); err != nil {
		return fmt.Errorf("repo: put %s: %w", name, err)
	}
	return r.writeManifest(name, man)
}

func (r *Repo) writeManifest(name string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("repo: manifest %s: %w", name, err)
	}
	data = append(data, '\n')
	if err := r.b.WriteFile(name+ManifestExt, data); err != nil {
		return fmt.Errorf("repo: manifest %s: %w", name, err)
	}
	return nil
}

// Get opens an entry. The document is load-bearing: if missing or
// unparseable, Get errors. Everything else degrades gracefully — a
// missing, stale or corrupt index is logged and counted, the guide
// rebuilt in memory, and the on-disk index repaired so the next open is
// warm again; a corrupt schema sidecar is logged and dropped. Get never
// fails a query because of index damage.
func (r *Repo) Get(name string) (*Opened, error) {
	if err := store.ValidName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	docData, err := r.b.ReadFile(name + DocExt)
	if err != nil {
		return nil, fmt.Errorf("repo: get %s: %w", name, err)
	}
	doc, err := tree.Unmarshal(docData)
	if err != nil {
		return nil, fmt.Errorf("repo: get %s: %w", name, err)
	}
	o := &Opened{Doc: doc}

	man, reason := r.loadManifest(name, docData)
	if man != nil {
		o.Schema = r.loadSchema(name, man)
		g, why := r.loadGuide(name, man, doc)
		if g != nil {
			o.Guide = g
			o.Warm = true
			r.warmOpens.Inc()
			return o, nil
		}
		reason = why
	}

	// Cold path: rebuild the index in memory and repair it on disk so
	// the next open is warm. Repair failures are logged, never fatal —
	// the caller still gets a correct, fully indexed document.
	if reason != "" {
		r.logf("get %s: %s; rebuilding index", name, reason)
	}
	o.Guide = fguide.Build(doc)
	r.rebuilds.Inc()
	if err := r.repair(name, docData, o); err != nil {
		r.logf("get %s: index repair failed: %v", name, err)
	} else {
		r.repairs.Inc()
	}
	return o, nil
}

// loadManifest reads and validates the manifest against the document
// bytes. A nil manifest with empty reason means no manifest at all (a
// flat-store entry — cold but not corrupt); a non-empty reason reports
// why the entry cannot be trusted.
func (r *Repo) loadManifest(name string, docData []byte) (*Manifest, string) {
	data, err := r.b.ReadFile(name + ManifestExt)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ""
	}
	if err != nil {
		r.corruptions.Inc()
		return nil, fmt.Sprintf("manifest unreadable (%v)", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		r.corruptions.Inc()
		return nil, fmt.Sprintf("manifest corrupt (%v)", err)
	}
	if man.Format != FormatVersion {
		// Not corruption: a format migration opens cold and rewrites.
		return nil, fmt.Sprintf("manifest format %d (want %d)", man.Format, FormatVersion)
	}
	if got := stamp(docData); man.Doc != got {
		// The document moved under the manifest (e.g. a flat-store Put
		// into an indexed directory). The document is authoritative.
		return nil, "index is stale (document checksum changed)"
	}
	return &man, ""
}

// loadSchema returns the persisted schema, or nil after logging any
// damage — schemas cannot be rebuilt from the document, so corruption
// here drops typed pruning rather than failing the open.
func (r *Repo) loadSchema(name string, man *Manifest) *schema.Schema {
	if man.Schema == nil {
		return nil
	}
	data, err := r.b.ReadFile(name + SchemaExt)
	if err != nil {
		r.corruptions.Inc()
		r.logf("get %s: schema sidecar unreadable (%v); typed pruning lost", name, err)
		return nil
	}
	if got := stamp(data); *man.Schema != got {
		r.corruptions.Inc()
		r.logf("get %s: schema sidecar checksum mismatch; typed pruning lost", name)
		return nil
	}
	s, err := schema.Parse(string(data))
	if err != nil {
		r.corruptions.Inc()
		r.logf("get %s: schema sidecar unparseable (%v); typed pruning lost", name, err)
		return nil
	}
	return s
}

// loadGuide decodes the persisted index against the document. Any
// failure is counted as corruption and explained in the reason.
func (r *Repo) loadGuide(name string, man *Manifest, doc *tree.Document) (*fguide.Guide, string) {
	if man.Guide == nil {
		return nil, "manifest has no index"
	}
	data, err := r.b.ReadFile(name + GuideExt)
	if err != nil {
		r.corruptions.Inc()
		return nil, fmt.Sprintf("index unreadable (%v)", err)
	}
	if got := stamp(data); *man.Guide != got {
		r.corruptions.Inc()
		return nil, "index checksum mismatch"
	}
	g, err := fguide.Decode(doc, data)
	if err != nil {
		r.corruptions.Inc()
		return nil, fmt.Sprintf("index decode failed (%v)", err)
	}
	return g, ""
}

// repair rewrites the index parts of an entry from an in-memory open:
// guide file, schema sidecar (when a valid schema survived), then the
// manifest over the document bytes already on disk. Caller holds mu.
func (r *Repo) repair(name string, docData []byte, o *Opened) error {
	guideData, err := fguide.Encode(o.Guide)
	if err != nil {
		return err
	}
	man := &Manifest{
		Format: FormatVersion,
		Name:   name,
		Doc:    stamp(docData),
		Nodes:  countNodes(o.Doc),
		Calls:  o.Guide.Calls(),
		Paths:  o.Guide.Paths(),
	}
	gs := stamp(guideData)
	man.Guide = &gs
	if err := r.b.WriteFile(name+GuideExt, guideData); err != nil {
		return err
	}
	if o.Schema != nil {
		schemaData := []byte(o.Schema.String())
		ss := stamp(schemaData)
		man.Schema = &ss
		if err := r.b.WriteFile(name+SchemaExt, schemaData); err != nil {
			return err
		}
	}
	return r.writeManifest(name, man)
}

// Delete removes an entry — document, index, schema and manifest.
// Deleting a missing document errors, matching the flat store. The
// manifest goes first and the document last, so a crash part-way leaves
// either a cold-openable entry or sidecars the next Open sweeps; no
// ordering can surface an index without its document.
func (r *Repo) Delete(name string) error {
	if err := store.ValidName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.b.ReadFile(name + DocExt); err != nil {
		return fmt.Errorf("repo: delete %s: %w", name, err)
	}
	for _, ext := range []string{ManifestExt, GuideExt, SchemaExt, DocExt} {
		if err := r.b.Remove(name + ext); err != nil {
			return fmt.Errorf("repo: delete %s: %w", name, err)
		}
	}
	return nil
}

// Exists reports whether a document is stored under the name.
func (r *Repo) Exists(name string) bool {
	if store.ValidName(name) != nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, err := r.b.ReadFile(name + DocExt)
	return err == nil
}

// List returns the stored document names, sorted.
func (r *Repo) List() ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	files, err := r.b.List()
	if err != nil {
		return nil, fmt.Errorf("repo: list: %w", err)
	}
	var names []string
	for _, f := range files {
		if name, ok := strings.CutSuffix(f, DocExt); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Manifest returns an entry's manifest, or nil when the entry has none
// (flat-store entries before their first indexed open).
func (r *Repo) Manifest(name string) (*Manifest, error) {
	if err := store.ValidName(name); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	data, err := r.b.ReadFile(name + ManifestExt)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("repo: manifest %s: %w", name, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("repo: manifest %s: %w", name, err)
	}
	return &man, nil
}

// Stats summarises an entry's persisted index without the document:
// the manifest plus the serialised guide's per-path call counts. The
// data behind `axmlrepo index stats`.
func (r *Repo) Stats(name string) (*Manifest, *fguide.Summary, error) {
	man, err := r.Manifest(name)
	if err != nil {
		return nil, nil, err
	}
	if man == nil || man.Guide == nil {
		return man, nil, nil
	}
	r.mu.RLock()
	data, err := r.b.ReadFile(name + GuideExt)
	r.mu.RUnlock()
	if err != nil {
		return man, nil, fmt.Errorf("repo: stats %s: %w", name, err)
	}
	sum, err := fguide.Inspect(data)
	if err != nil {
		return man, nil, fmt.Errorf("repo: stats %s: %w", name, err)
	}
	return man, sum, nil
}

// Reindex rebuilds an entry's index from its document and rewrites the
// on-disk parts, preserving a valid schema sidecar. The force behind
// `axmlrepo index build`.
func (r *Repo) Reindex(name string) (*Manifest, error) {
	if err := store.ValidName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	docData, err := r.b.ReadFile(name + DocExt)
	if err != nil {
		return nil, fmt.Errorf("repo: reindex %s: %w", name, err)
	}
	doc, err := tree.Unmarshal(docData)
	if err != nil {
		return nil, fmt.Errorf("repo: reindex %s: %w", name, err)
	}
	o := &Opened{Doc: doc, Guide: fguide.Build(doc)}
	if man, _ := r.loadManifest(name, docData); man != nil {
		o.Schema = r.loadSchema(name, man)
	}
	if err := r.repair(name, docData, o); err != nil {
		return nil, fmt.Errorf("repo: reindex %s: %w", name, err)
	}
	return r.manifestLocked(name)
}

func (r *Repo) manifestLocked(name string) (*Manifest, error) {
	data, err := r.b.ReadFile(name + ManifestExt)
	if err != nil {
		return nil, fmt.Errorf("repo: manifest %s: %w", name, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("repo: manifest %s: %w", name, err)
	}
	return &man, nil
}

// DropIndex removes an entry's index and manifest, leaving a flat-store
// entry that will open cold. Used by tooling and benchmarks to measure
// the cold path; a valid schema sidecar is left in place but unindexed
// (it is re-adopted by the repair on the next Get).
func (r *Repo) DropIndex(name string) error {
	if err := store.ValidName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.b.Remove(name + ManifestExt); err != nil {
		return fmt.Errorf("repo: drop index %s: %w", name, err)
	}
	if err := r.b.Remove(name + GuideExt); err != nil {
		return fmt.Errorf("repo: drop index %s: %w", name, err)
	}
	return nil
}

// VerifyReport is the result of VerifyIndex for one entry.
type VerifyReport struct {
	Name string
	// OK means the persisted index is present, checksummed, decodable
	// and semantically identical to a fresh build from the document.
	OK bool
	// Problems lists everything found wrong, empty when OK.
	Problems []string
	// Calls and Paths are the verified (or freshly built) index counts.
	Calls, Paths int
}

// VerifyIndex audits one entry without modifying it: checksums, codec
// round-trip against the document, and semantic agreement with a fresh
// build. The check behind `axmlrepo index verify`.
func (r *Repo) VerifyIndex(name string) (*VerifyReport, error) {
	if err := store.ValidName(name); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	docData, err := r.b.ReadFile(name + DocExt)
	if err != nil {
		return nil, fmt.Errorf("repo: verify %s: %w", name, err)
	}
	doc, err := tree.Unmarshal(docData)
	if err != nil {
		return nil, fmt.Errorf("repo: verify %s: %w", name, err)
	}
	rep := &VerifyReport{Name: name}
	fresh := fguide.Build(doc)
	rep.Calls, rep.Paths = fresh.Calls(), fresh.Paths()

	manData, err := r.b.ReadFile(name + ManifestExt)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest: %v", err))
		return rep, nil
	}
	var man Manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest: %v", err))
		return rep, nil
	}
	if man.Format != FormatVersion {
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest format %d (want %d)", man.Format, FormatVersion))
	}
	if got := stamp(docData); man.Doc != got {
		rep.Problems = append(rep.Problems, "document checksum mismatch (index is stale)")
	}
	if man.Schema != nil {
		if data, err := r.b.ReadFile(name + SchemaExt); err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("schema: %v", err))
		} else if got := stamp(data); *man.Schema != got {
			rep.Problems = append(rep.Problems, "schema checksum mismatch")
		} else if _, err := schema.Parse(string(data)); err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("schema: %v", err))
		}
	}
	if man.Guide == nil {
		rep.Problems = append(rep.Problems, "manifest has no index")
	} else if data, err := r.b.ReadFile(name + GuideExt); err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("index: %v", err))
	} else if got := stamp(data); *man.Guide != got {
		rep.Problems = append(rep.Problems, "index checksum mismatch")
	} else if g, err := fguide.Decode(doc, data); err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("index: %v", err))
	} else if g.String() != fresh.String() {
		rep.Problems = append(rep.Problems, "index disagrees with a fresh build")
	} else {
		rep.Calls, rep.Paths = g.Calls(), g.Paths()
	}
	rep.OK = len(rep.Problems) == 0
	return rep, nil
}
