package repo

import (
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

// newDirRepo opens a repository over a fresh temp directory with a
// quiet logger (corruption tests deliberately provoke reports).
func newDirRepo(t *testing.T) (*Repo, string) {
	t.Helper()
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Logger = log.New(io.Discard, "", 0)
	return r, dir
}

func counterValue(reg *telemetry.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

// resultKeys renders a result set order-independently by its variable
// bindings, mirroring the core differential tests.
func resultKeys(out *core.Outcome) string {
	keys := make([]string, 0, len(out.Results))
	for _, r := range out.Results {
		vars := make([]string, 0, len(r.Values))
		for k, v := range r.Values {
			vars = append(vars, "$"+k+"="+v)
		}
		sort.Strings(vars)
		keys = append(keys, strings.Join(vars, ";"))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func TestPutGetWarmRoundTrip(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, _ := newDirRepo(t)
	reg := telemetry.NewRegistry()
	r.Instrument(reg)

	if err := r.Put("hotels", w.Doc, PutOptions{Schema: w.Schema}); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("hotels") {
		t.Fatal("Exists = false after Put")
	}
	names, err := r.List()
	if err != nil || len(names) != 1 || names[0] != "hotels" {
		t.Fatalf("List = %v, %v", names, err)
	}

	o, err := r.Get("hotels")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Warm {
		t.Fatal("fresh Put did not open warm")
	}
	if o.Guide == nil || !fguide.Synced(o.Guide) || o.Guide.Doc() != o.Doc {
		t.Fatal("opened guide is not synced with the opened document")
	}
	if got, want := o.Guide.String(), fguide.Build(o.Doc).String(); got != want {
		t.Fatalf("decoded guide disagrees with fresh build\n got %q\nwant %q", got, want)
	}
	if o.Schema == nil {
		t.Fatal("schema did not survive the round trip")
	}
	if got, want := o.Schema.String(), w.Schema.String(); got != want {
		t.Fatalf("schema round trip changed it\n got %q\nwant %q", got, want)
	}
	if v := counterValue(reg, telemetry.MetricRepoWarmOpens); v != 1 {
		t.Fatalf("warm opens = %d, want 1", v)
	}
	if v := counterValue(reg, telemetry.MetricRepoRebuilds); v != 0 {
		t.Fatalf("rebuilds = %d, want 0", v)
	}

	man, err := r.Manifest("hotels")
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Format != FormatVersion || man.Name != "hotels" {
		t.Fatalf("manifest = %+v", man)
	}
	if man.Guide == nil || man.Schema == nil {
		t.Fatalf("manifest missing part stamps: %+v", man)
	}
	if man.Calls != o.Guide.Calls() || man.Paths != o.Guide.Paths() {
		t.Fatalf("manifest counts %d/%d, guide %d/%d",
			man.Calls, man.Paths, o.Guide.Calls(), o.Guide.Paths())
	}
}

func TestMemBackendRoundTrip(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, err := New(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put("w", w.Doc, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	o, err := r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Warm || o.Schema != nil {
		t.Fatalf("Warm=%v Schema=%v; want warm, no schema", o.Warm, o.Schema)
	}
	if err := r.Delete("w"); err != nil {
		t.Fatal(err)
	}
	if r.Exists("w") {
		t.Fatal("entry survived Delete")
	}
}

func TestPutRejectsForeignOrInvalid(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, _ := newDirRepo(t)
	if err := r.Put("../evil", w.Doc, PutOptions{}); err == nil {
		t.Fatal("path-traversal name accepted")
	}
	other := w.Doc.Clone()
	g := fguide.Build(other)
	if err := r.Put("w", w.Doc, PutOptions{Guide: g}); err == nil {
		t.Fatal("guide for a different document accepted")
	}
}

func TestFlatStoreUpgradesInPlace(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("w", w.Doc); err != nil {
		t.Fatal(err)
	}

	r, err := Over(st)
	if err != nil {
		t.Fatal(err)
	}
	r.Logger = log.New(io.Discard, "", 0)
	reg := telemetry.NewRegistry()
	r.Instrument(reg)

	o, err := r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if o.Warm {
		t.Fatal("flat-store entry opened warm before any index existed")
	}
	if o.Guide == nil || !fguide.Synced(o.Guide) {
		t.Fatal("cold open did not rebuild a synced guide")
	}
	// A missing manifest is a cold open, not corruption.
	if v := counterValue(reg, telemetry.MetricRepoCorruptions); v != 0 {
		t.Fatalf("corruptions = %d on a plain flat-store entry", v)
	}
	if v := counterValue(reg, telemetry.MetricRepoRepairs); v != 1 {
		t.Fatalf("repairs = %d, want 1", v)
	}

	o2, err := r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if !o2.Warm {
		t.Fatal("repaired entry did not open warm")
	}

	// A flat-store Put into the indexed directory makes the index stale;
	// the document is authoritative and the entry re-repairs.
	if err := st.Put("w", workload.Hotels(workload.HotelSpec{Hotels: 3, TargetEvery: 1, FiveStarEvery: 1}).Doc); err != nil {
		t.Fatal(err)
	}
	o3, err := r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if o3.Warm {
		t.Fatal("stale index served as warm after the document changed underneath")
	}
	o4, err := r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if !o4.Warm {
		t.Fatal("entry not repaired after stale open")
	}
}

// TestCorruptionNeverFailsTheQuery damages each index part in turn and
// requires Get to degrade exactly as documented: log, count, rebuild,
// repair — and the opened document still answers the workload query
// identically to the undamaged baseline.
func TestCorruptionNeverFailsTheQuery(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	baseline, err := core.Evaluate(w.Doc.Clone(), w.Query, w.Registry, core.Options{Strategy: core.NaiveFixpoint})
	if err != nil {
		t.Fatal(err)
	}
	want := resultKeys(baseline)

	cases := []struct {
		name        string
		damage      func(t *testing.T, r *Repo, dir string)
		wantWarm    bool // first Get after damage
		wantSchema  bool
		corruptions bool
	}{
		{
			name: "guide truncated",
			damage: func(t *testing.T, r *Repo, dir string) {
				p := filepath.Join(dir, "w"+GuideExt)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSchema:  true,
			corruptions: true,
		},
		{
			name: "guide garbage with matching checksum",
			damage: func(t *testing.T, r *Repo, dir string) {
				// Re-stamp the manifest over the garbage so only the codec's
				// own verification can catch it.
				garbage := []byte("AXFG1\nnot an index at all")
				if err := os.WriteFile(filepath.Join(dir, "w"+GuideExt), garbage, 0o644); err != nil {
					t.Fatal(err)
				}
				man, err := r.Manifest("w")
				if err != nil {
					t.Fatal(err)
				}
				gs := stamp(garbage)
				man.Guide = &gs
				if err := r.writeManifest("w", man); err != nil {
					t.Fatal(err)
				}
			},
			wantSchema:  true,
			corruptions: true,
		},
		{
			name: "manifest garbage",
			damage: func(t *testing.T, r *Repo, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "w"+ManifestExt), []byte("{not json"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSchema:  false, // no trusted manifest, so the sidecar is not adopted
			corruptions: true,
		},
		{
			name: "manifest missing",
			damage: func(t *testing.T, r *Repo, dir string) {
				if err := os.Remove(filepath.Join(dir, "w"+ManifestExt)); err != nil {
					t.Fatal(err)
				}
			},
			wantSchema:  false,
			corruptions: false,
		},
		{
			name: "schema sidecar corrupted",
			damage: func(t *testing.T, r *Repo, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "w"+SchemaExt), []byte("???"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantWarm:    true, // the index itself is intact
			wantSchema:  false,
			corruptions: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, dir := newDirRepo(t)
			reg := telemetry.NewRegistry()
			r.Instrument(reg)
			if err := r.Put("w", w.Doc, PutOptions{Schema: w.Schema}); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, r, dir)

			o, err := r.Get("w")
			if err != nil {
				t.Fatalf("Get failed on index damage: %v", err)
			}
			if o.Warm != tc.wantWarm {
				t.Fatalf("Warm = %v, want %v", o.Warm, tc.wantWarm)
			}
			if (o.Schema != nil) != tc.wantSchema {
				t.Fatalf("Schema = %v, want present=%v", o.Schema, tc.wantSchema)
			}
			if o.Guide == nil || !fguide.Synced(o.Guide) || o.Guide.Doc() != o.Doc {
				t.Fatal("degraded open did not deliver a synced guide")
			}
			if got := counterValue(reg, telemetry.MetricRepoCorruptions) > 0; got != tc.corruptions {
				t.Fatalf("corruptions counted = %v, want %v", got, tc.corruptions)
			}

			out, err := core.Evaluate(o.Doc, w.Query, w.Registry, core.Options{
				Strategy: core.LazyNFQ, UseGuide: true, Guide: o.Guide,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultKeys(out); got != want {
				t.Fatalf("query after %s disagrees with baseline\n got %q\nwant %q", tc.name, got, want)
			}

			// The cold paths repair in place; every case must be warm (and
			// fully re-equipped) on the next open.
			o2, err := r.Get("w")
			if err != nil {
				t.Fatal(err)
			}
			if !o2.Warm {
				t.Fatalf("entry not repaired to warm after %s", tc.name)
			}
		})
	}
}

func TestCorruptDocumentFailsGet(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, dir := newDirRepo(t)
	if err := r.Put("w", w.Doc, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "w"+DocExt), []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("w"); err == nil {
		t.Fatal("Get succeeded on an unparseable document")
	}
	if _, err := r.Get("missing"); err == nil {
		t.Fatal("Get succeeded on a missing document")
	}
}

func TestDeleteRemovesEveryPart(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, dir := newDirRepo(t)
	if err := r.Put("w", w.Doc, PutOptions{Schema: w.Schema}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("w"); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{DocExt, GuideExt, SchemaExt, ManifestExt} {
		if _, err := os.Stat(filepath.Join(dir, "w"+ext)); !os.IsNotExist(err) {
			t.Fatalf("%s survived Delete (err=%v)", ext, err)
		}
	}
	if err := r.Delete("w"); err == nil {
		t.Fatal("deleting a missing entry did not error")
	}
}

func TestOpenSweepsOrphanedSidecars(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, dir := newDirRepo(t)
	if err := r.Put("w", w.Doc, PutOptions{Schema: w.Schema}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Delete: the document went, sidecars remain.
	if err := os.Remove(filepath.Join(dir, "w"+DocExt)); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2.Logger = log.New(io.Discard, "", 0)
	for _, ext := range []string{GuideExt, SchemaExt, ManifestExt} {
		if _, err := os.Stat(filepath.Join(dir, "w"+ext)); !os.IsNotExist(err) {
			t.Fatalf("orphaned %s survived the sweep (err=%v)", ext, err)
		}
	}
}

func TestIndexTooling(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	r, dir := newDirRepo(t)
	if err := r.Put("w", w.Doc, PutOptions{Schema: w.Schema}); err != nil {
		t.Fatal(err)
	}

	rep, err := r.VerifyIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Problems) != 0 {
		t.Fatalf("fresh entry fails verification: %+v", rep)
	}
	if rep.Calls == 0 || rep.Paths == 0 {
		t.Fatalf("verification reported an empty index: %+v", rep)
	}

	man, sum, err := r.Stats("w")
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || sum == nil {
		t.Fatal("Stats returned no manifest or summary")
	}
	if sum.Calls != man.Calls || sum.Paths != man.Paths {
		t.Fatalf("summary %d/%d disagrees with manifest %d/%d",
			sum.Calls, sum.Paths, man.Calls, man.Paths)
	}

	// Damage the index: verify reports it without repairing anything.
	guidePath := filepath.Join(dir, "w"+GuideExt)
	if err := os.WriteFile(guidePath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = r.VerifyIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || len(rep.Problems) == 0 {
		t.Fatal("verification passed a junk index")
	}
	if data, err := os.ReadFile(guidePath); err != nil || string(data) != "junk" {
		t.Fatalf("VerifyIndex modified the entry (data=%q err=%v)", data, err)
	}

	// Reindex force-rebuilds and preserves the schema sidecar.
	man2, err := r.Reindex("w")
	if err != nil {
		t.Fatal(err)
	}
	if man2.Calls != man.Calls || man2.Paths != man.Paths {
		t.Fatalf("reindex changed counts: %+v vs %+v", man2, man)
	}
	rep, err = r.VerifyIndex("w")
	if err != nil || !rep.OK {
		t.Fatalf("entry fails verification after reindex: %+v, %v", rep, err)
	}
	o, err := r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Warm || o.Schema == nil {
		t.Fatalf("after reindex: Warm=%v Schema=%v", o.Warm, o.Schema != nil)
	}

	// DropIndex leaves a cold flat-store entry.
	if err := r.DropIndex("w"); err != nil {
		t.Fatal(err)
	}
	if man3, err := r.Manifest("w"); err != nil || man3 != nil {
		t.Fatalf("manifest survived DropIndex: %+v, %v", man3, err)
	}
	o, err = r.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if o.Warm {
		t.Fatal("entry opened warm right after DropIndex")
	}
}

// TestPutPersistsPatchedGuide is the no-rebuild persistence path: an
// engine adopts a caller-supplied guide, patches it through every call
// expansion, and the patched guide is persisted as-is — the decoded
// index must equal a fresh build over the expanded document.
func TestPutPersistsPatchedGuide(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	doc := w.Doc.Clone()
	g := fguide.Build(doc)
	reg := telemetry.NewRegistry()
	out, err := core.Evaluate(doc, w.Query, w.Registry, core.Options{
		Strategy: core.LazyNFQ, UseGuide: true, Guide: g, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != w.ExpectedResults {
		t.Fatalf("got %d results, want %d", len(out.Results), w.ExpectedResults)
	}
	if v := counterValue(reg, telemetry.MetricGuideWarm); v != 1 {
		t.Fatalf("engine did not adopt the supplied guide (warm=%d)", v)
	}
	if v := counterValue(reg, telemetry.MetricGuideBuilds); v != 0 {
		t.Fatalf("engine rebuilt the guide %d times despite a warm one", v)
	}
	if !fguide.Synced(g) {
		t.Fatal("guide not synced after evaluation")
	}

	r, _ := newDirRepo(t)
	if err := r.Put("w", doc, PutOptions{Guide: g}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.VerifyIndex("w")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("patched guide persisted unfaithfully: %+v", rep)
	}
}

// randomSpec mirrors the core differential tests' world generator.
func randomSpec(seed int64) workload.HotelSpec {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33 % uint64(n))
	}
	spec := workload.HotelSpec{
		Hotels:         1 + next(10),
		HiddenHotels:   next(5),
		TargetEvery:    1 + next(4),
		FiveStarEvery:  1 + next(3),
		RestosPerCall:  next(5),
		MuseumsPerCall: next(4),
		ExtrasPerCall:  next(3),
		TeaserKinds:    next(3),
		PushCapable:    next(2) == 0,
	}
	if spec.RestosPerCall > 0 {
		spec.FiveStarRestos = next(spec.RestosPerCall + 1)
	}
	if next(2) == 0 {
		spec.IntensionalRatingEvery = 1 + next(3)
		spec.RatingChainDepth = next(3)
	}
	if next(2) == 0 {
		spec.MaterializedRestos = next(4)
	}
	return spec
}

// TestWarmVsColdDifferential is the restart-path acceptance net: over 20
// random worlds persisted and reopened, a warm open (index decoded from
// disk, zero engine-side builds) and a cold open (index dropped, rebuilt
// from the document) must answer the workload query bit-identically to
// the naive fixpoint over the original in-memory world.
func TestWarmVsColdDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential testing is not short")
	}
	r, _ := newDirRepo(t)
	reg := telemetry.NewRegistry()
	r.Instrument(reg)

	const seeds = 20
	for seed := int64(0); seed < seeds; seed++ {
		spec := randomSpec(seed)
		w := workload.Hotels(spec)
		baseline, err := core.Evaluate(w.Doc.Clone(), w.Query, w.Registry, core.Options{Strategy: core.NaiveFixpoint})
		if err != nil {
			t.Fatalf("seed %d: naive failed: %v", seed, err)
		}
		want := resultKeys(baseline)

		name := "w" + string(rune('a'+seed))
		if err := r.Put(name, w.Doc, PutOptions{Schema: w.Schema}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Warm: the persisted index is adopted end to end — the engine
		// must not build a guide at all.
		warm, err := r.Get(name)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !warm.Warm || warm.Schema == nil {
			t.Fatalf("seed %d: warm open Warm=%v Schema=%v", seed, warm.Warm, warm.Schema != nil)
		}
		engineReg := telemetry.NewRegistry()
		out, err := core.Evaluate(warm.Doc, w.Query, w.Registry, core.Options{
			Strategy: core.LazyNFQTyped, Schema: warm.Schema,
			UseGuide: true, Guide: warm.Guide, Metrics: engineReg,
		})
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		if got := resultKeys(out); got != want {
			t.Fatalf("seed %d: warm open disagrees with naive\n got %q\nwant %q\nspec %+v",
				seed, got, want, spec)
		}
		if v := counterValue(engineReg, telemetry.MetricGuideBuilds); v != 0 {
			t.Fatalf("seed %d: warm evaluation built %d guides", seed, v)
		}
		if v := counterValue(engineReg, telemetry.MetricGuideWarm); v != 1 {
			t.Fatalf("seed %d: warm adoptions = %d, want 1", seed, v)
		}

		// Cold: drop the index, reopen, evaluate over the rebuilt guide.
		if err := r.DropIndex(name); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cold, err := r.Get(name)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cold.Warm {
			t.Fatalf("seed %d: open right after DropIndex claims warm", seed)
		}
		out, err = core.Evaluate(cold.Doc, w.Query, w.Registry, core.Options{
			Strategy: core.LazyNFQTyped, Schema: w.Schema,
			UseGuide: true, Guide: cold.Guide,
		})
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		if got := resultKeys(out); got != want {
			t.Fatalf("seed %d: cold open disagrees with naive\n got %q\nwant %q\nspec %+v",
				seed, got, want, spec)
		}
	}
	if v := counterValue(reg, telemetry.MetricRepoWarmOpens); v != seeds {
		t.Fatalf("repo warm opens = %d, want %d", v, seeds)
	}
	if v := counterValue(reg, telemetry.MetricRepoRebuilds); v != seeds {
		t.Fatalf("repo rebuilds = %d, want %d", v, seeds)
	}
	if v := counterValue(reg, telemetry.MetricRepoCorruptions); v != 0 {
		t.Fatalf("repo corruptions = %d, want 0", v)
	}
}
