package repo

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/activexml/axml/internal/store"
)

// Backend is the byte-level storage a Repo runs over: a flat namespace
// of files with atomic replacement. Implementations must make WriteFile
// all-or-nothing (readers see the old or the new content, never a mix)
// and Remove idempotent (removing a missing file is not an error) —
// that is what lets the repository treat the manifest as a commit point
// and recover from any crash between two writes.
type Backend interface {
	// ReadFile returns the content of a file, or an error wrapping
	// fs.ErrNotExist when it is absent.
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically creates or replaces a file.
	WriteFile(name string, data []byte) error
	// Remove deletes a file; a missing file is a no-op.
	Remove(name string) error
	// List returns every file name in the namespace, sorted.
	List() ([]string, error)
}

// DirBackend stores files in one directory with the same atomic
// temp-file + rename + fsync discipline as internal/store — the two can
// share a directory, which is how a flat store dir upgrades to an
// indexed repository in place.
type DirBackend struct {
	dir string
	// Sync makes writes durable (fsync file and directory); see
	// store.WriteFileAtomic. OpenDir sets it.
	Sync bool
}

// OpenDir prepares a directory backend, creating the directory if
// needed. Writes are durable by default.
func OpenDir(dir string) (*DirBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repo: open %s: %w", dir, err)
	}
	return &DirBackend{dir: dir, Sync: true}, nil
}

// Dir returns the backing directory.
func (b *DirBackend) Dir() string { return b.dir }

func (b *DirBackend) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(b.dir, name))
}

func (b *DirBackend) WriteFile(name string, data []byte) error {
	return store.WriteFileAtomic(b.dir, name, data, b.Sync)
}

func (b *DirBackend) Remove(name string) error {
	err := os.Remove(filepath.Join(b.dir, name))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (b *DirBackend) List() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || e.Name()[0] == '.' {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// MemBackend is an in-memory backend for tests and throwaway
// repositories. The zero value is not usable; call NewMemBackend.
type MemBackend struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: map[string][]byte{}}
}

func (b *MemBackend) ReadFile(name string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("mem: %s: %w", name, fs.ErrNotExist)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (b *MemBackend) WriteFile(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	b.files[name] = cp
	return nil
}

func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.files, name)
	return nil
}

func (b *MemBackend) List() ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.files))
	for n := range b.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
