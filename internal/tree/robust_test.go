package tree

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics feeds the decoder random bytes: errors are
// fine, panics are not.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(input []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Unmarshal(%q) panicked: %v", input, r)
				ok = false
			}
		}()
		_, _ = Unmarshal(input)
		_, _ = UnmarshalForest(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalNearMisses(t *testing.T) {
	inputs := []string{
		"<",
		"<a", "<a>", "</a>", "<a></b>", "<a/><b",
		`<a attr=">`,
		`<axml:call/>`,
		`<r><call xmlns="http://activexml.net/2004/calls"/></r>`,
		`<r><tuples xmlns="http://activexml.net/2004/calls"><tuple><x><y/></x></tuple></tuples></r>`,
		"<a>&nonsense;</a>",
		"<?xml bad",
		"<!-- unterminated",
		strings.Repeat("<a>", 2000) + strings.Repeat("</a>", 2000),
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Unmarshal(%.40q) panicked: %v", in, r)
				}
			}()
			_, _ = Unmarshal([]byte(in))
		}()
	}
}

func TestDeepDocumentOperations(t *testing.T) {
	// A 2000-deep chain must survive parse, walk, marshal and clone.
	in := strings.Repeat("<a>", 2000) + "<axml:call service=\"f\"/>" + strings.Repeat("</a>", 2000)
	d, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Size(); got != 2001 {
		t.Fatalf("size = %d", got)
	}
	c := d.Calls()
	if len(c) != 1 || c[0].Depth() != 2000 {
		t.Fatalf("call depth = %d", c[0].Depth())
	}
	if _, err := Marshal(d.Root); err != nil {
		t.Fatal(err)
	}
	if !d.Root.Equal(d.Clone().Root) {
		t.Fatal("deep clone mismatch")
	}
}
