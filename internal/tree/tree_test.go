package tree

import (
	"strings"
	"testing"
	"testing/quick"
)

// hotelDoc builds a small version of the paper's Figure 1 document: a
// hotels list with extensional and intensional parts.
func hotelDoc() *Document {
	root := NewElement("hotels")
	h := root.Append(NewElement("hotel"))
	h.Append(NewElement("name")).Append(NewText("Best Western"))
	addr := h.Append(NewElement("address"))
	addr.Append(NewText("75, 2nd Av."))
	rating := h.Append(NewElement("rating"))
	rating.Append(NewCall("getRating", NewText("Best Western")))
	nearby := h.Append(NewElement("nearby"))
	nearby.Append(NewCall("getNearbyRestos", NewText("75, 2nd Av.")))
	nearby.Append(NewCall("getNearbyMuseums", NewText("75, 2nd Av.")))
	root.Append(NewCall("getHotels", NewText("NY")))
	return NewDocument(root)
}

func TestConstructorsAndKinds(t *testing.T) {
	e := NewElement("hotel")
	if !e.IsData() || e.Kind != Element || e.Label != "hotel" {
		t.Fatalf("NewElement: got %+v", e)
	}
	x := NewText("v")
	if !x.IsData() || x.Kind != Text {
		t.Fatalf("NewText: got %+v", x)
	}
	c := NewCall("f", NewText("p"))
	if c.IsData() || c.Kind != Call || len(c.Children) != 1 {
		t.Fatalf("NewCall: got %+v", c)
	}
	tu := NewTuples("q", []Binding{{"X": "a"}})
	if tu.Kind != Tuples || tu.PushedQuery != "q" {
		t.Fatalf("NewTuples: got %+v", tu)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Element: "element", Text: "text", Call: "call", Tuples: "tuples", Kind(9): "kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAppendPanicsOnReparent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append of attached node did not panic")
		}
	}()
	p1, p2, c := NewElement("a"), NewElement("b"), NewElement("c")
	p1.Append(c)
	p2.Append(c)
}

func TestInsertBeforeAndDetach(t *testing.T) {
	p := NewElement("p")
	a := p.Append(NewElement("a"))
	c := p.Append(NewElement("c"))
	b := NewElement("b")
	p.InsertBefore(b, c)
	got := []string{}
	for _, ch := range p.Children {
		got = append(got, ch.Label)
	}
	if strings.Join(got, "") != "abc" {
		t.Fatalf("InsertBefore order = %v", got)
	}
	b.Detach()
	if len(p.Children) != 2 || b.Parent != nil {
		t.Fatalf("Detach failed: %v", p.Children)
	}
	// Detaching again is a no-op.
	b.Detach()
	_ = a
}

func TestDepthPathAndSize(t *testing.T) {
	d := hotelDoc()
	call := d.Calls()[0] // getRating
	if call.Label != "getRating" {
		t.Fatalf("document order of Calls: first is %s", call.Label)
	}
	if call.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", call.Depth())
	}
	if got := call.PathString(); got != "/hotels/hotel/rating/getRating" {
		t.Fatalf("PathString = %q", got)
	}
	if d.Size() < 10 {
		t.Fatalf("Size = %d, implausibly small", d.Size())
	}
}

func TestDocumentIDsAreUniqueAndStable(t *testing.T) {
	d := hotelDoc()
	seen := map[uint64]bool{}
	d.Root.Walk(func(n *Node) bool {
		if n.ID == 0 {
			t.Errorf("node %q has zero ID", n.Label)
		}
		if seen[n.ID] {
			t.Errorf("duplicate ID %d", n.ID)
		}
		seen[n.ID] = true
		return true
	})
	call := d.Calls()[0]
	id := call.Parent.ID
	d.ReplaceCall(call, []*Node{NewText("*****")})
	if call.Parent != nil {
		t.Error("replaced call still has a parent")
	}
	if d.NodeByID(id) == nil {
		t.Error("parent ID changed by ReplaceCall")
	}
}

func TestReplaceCallPreservesOrder(t *testing.T) {
	root := NewElement("r")
	root.Append(NewElement("a"))
	call := root.Append(NewCall("f"))
	root.Append(NewElement("z"))
	d := NewDocument(root)
	v := d.Version()
	d.ReplaceCall(call, []*Node{NewElement("b"), NewElement("c")})
	var got []string
	for _, c := range root.Children {
		got = append(got, c.Label)
	}
	if strings.Join(got, "") != "abcz" {
		t.Fatalf("sibling order after ReplaceCall = %v", got)
	}
	if d.Version() <= v {
		t.Error("ReplaceCall did not bump the version")
	}
	for _, c := range root.Children {
		if c.ID == 0 {
			t.Errorf("inserted node %q not adopted", c.Label)
		}
	}
}

func TestReplaceCallEmptyForest(t *testing.T) {
	root := NewElement("r")
	root.Append(NewElement("a"))
	call := root.Append(NewCall("f"))
	root.Append(NewElement("z"))
	d := NewDocument(root)
	d.ReplaceCall(call, nil)
	if len(root.Children) != 2 {
		t.Fatalf("empty forest should just delete the call, children=%d", len(root.Children))
	}
}

func TestReplaceCallPanics(t *testing.T) {
	d := hotelDoc()
	for name, fn := range map[string]func(){
		"non-call": func() { d.ReplaceCall(d.Root, nil) },
		"detached": func() { d.ReplaceCall(NewCall("f"), nil) },
		"attached result": func() {
			owned := NewElement("x")
			NewElement("p").Append(owned)
			d.ReplaceCall(d.Calls()[0], []*Node{owned})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCloneEqual(t *testing.T) {
	d := hotelDoc()
	c := d.Clone()
	if !d.Root.Equal(c.Root) {
		t.Fatal("clone not Equal to original")
	}
	// Mutating the clone must not affect the original.
	c.Root.Children[0].Label = "motel"
	if d.Root.Equal(c.Root) {
		t.Fatal("Equal ignored a label difference")
	}
}

func TestEqualCoversPayloads(t *testing.T) {
	a := NewTuples("q", []Binding{{"X": "1"}})
	b := NewTuples("q", []Binding{{"X": "1"}})
	if !a.Equal(b) {
		t.Fatal("identical tuples nodes not Equal")
	}
	b.PushedBindings[0]["X"] = "2"
	if a.Equal(b) {
		t.Fatal("Equal ignored binding difference")
	}
	if a.Equal(NewTuples("other", []Binding{{"X": "1"}})) {
		t.Fatal("Equal ignored query fingerprint")
	}
	if a.Equal(NewTuples("q", nil)) {
		t.Fatal("Equal ignored binding count")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) must be false for non-nil receiver")
	}
}

func TestTextAndValue(t *testing.T) {
	d := hotelDoc()
	name := d.Root.Children[0].Child("name")
	if name.Value() != "Best Western" {
		t.Fatalf("Value = %q", name.Value())
	}
	if got := name.Text(); got != "Best Western" {
		t.Fatalf("Text = %q", got)
	}
	if d.Root.Child("nosuch") != nil {
		t.Fatal("Child of missing name should be nil")
	}
	if NewCall("f").Value() != "" {
		t.Fatal("Value of a call should be empty")
	}
}

func TestBindingCloneAndString(t *testing.T) {
	b := Binding{"Y": "2", "X": "1"}
	if b.String() != "{X=1, Y=2}" {
		t.Fatalf("Binding.String = %q", b.String())
	}
	c := b.Clone()
	c["X"] = "9"
	if b["X"] != "1" {
		t.Fatal("Clone is not independent")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := hotelDoc()
	data, err := Marshal(d.Root)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if !d.Root.Equal(d2.Root) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", d.Root, d2.Root)
	}
}

func TestMarshalIndentParsesBack(t *testing.T) {
	d := hotelDoc()
	data, err := MarshalIndent(d.Root)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal of indented output: %v", err)
	}
	if !d.Root.Equal(d2.Root) {
		t.Fatal("indented round trip mismatch")
	}
}

func TestTuplesRoundTrip(t *testing.T) {
	root := NewElement("r")
	root.Append(NewTuples("//restaurant[rating=\"*****\"]", []Binding{
		{"X": "In Delis", "Y": "2nd Ave."},
		{"X": "The Capital", "Y": "2nd Ave."},
	}))
	data, err := Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	tu := d2.Root.Children[0]
	if tu.Kind != Tuples || len(tu.PushedBindings) != 2 {
		t.Fatalf("tuples round trip: %+v", tu)
	}
	if tu.PushedBindings[0]["X"] != "In Delis" {
		t.Fatalf("binding lost: %v", tu.PushedBindings[0])
	}
	if !root.Equal(d2.Root) {
		t.Fatal("Equal mismatch after tuples round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for name, in := range map[string]string{
		"two roots":        "<a/><b/>",
		"call root":        `<call xmlns="http://activexml.net/2004/calls" service="f"/>`,
		"call w/o service": `<x><call xmlns="http://activexml.net/2004/calls"/></x>`,

		"malformed":      "<a><b></a>",
		"junk in tuples": `<x><tuples xmlns="http://activexml.net/2004/calls"><y/></tuples></x>`,
		"empty":          "",
	} {
		if _, err := Unmarshal([]byte(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUnmarshalLenientNamespacePrefix(t *testing.T) {
	// Documents written by hand often use the axml prefix without binding
	// the full namespace URI; the decoder accepts Space == "axml" too.
	in := `<r><axml:call service="f"><p>1</p></axml:call></r>`
	d, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Root.Children[0]
	if c.Kind != Call || c.Label != "f" || c.Children[0].Label != "p" {
		t.Fatalf("lenient parse: %+v", c)
	}
}

func TestUnmarshalForestAndWhitespace(t *testing.T) {
	roots, err := UnmarshalForest([]byte("\n  <a>1</a>\n  <b> x y </b>\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("forest size = %d", len(roots))
	}
	if roots[1].Value() != "x y" {
		t.Fatalf("trimmed text = %q", roots[1].Value())
	}
}

// TestRoundTripProperty checks, for randomly generated trees, that
// Marshal∘Unmarshal is the identity up to Equal.
func TestRoundTripProperty(t *testing.T) {
	gen := func(seed int64) bool {
		root := randomTree(seed)
		data, err := Marshal(root)
		if err != nil {
			return false
		}
		d, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return root.Equal(d.Root)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomTree builds a deterministic pseudo-random AXML tree from a seed.
// Labels avoid characters that are not valid in XML names.
func randomTree(seed int64) *Node {
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	labels := []string{"a", "b", "hotel", "name", "rating"}
	services := []string{"f", "g", "getRating"}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		if depth <= 0 || next(4) == 0 {
			switch next(3) {
			case 0:
				return NewText("v" + labels[next(len(labels))])
			case 1:
				return NewCall(services[next(len(services))])
			default:
				return NewElement(labels[next(len(labels))])
			}
		}
		n := NewElement(labels[next(len(labels))])
		for i := 0; i < next(4); i++ {
			c := build(depth - 1)
			// Adjacent text siblings merge into one CharData token on
			// reparse, so the generator never produces them.
			if c.Kind == Text && len(n.Children) > 0 && n.Children[len(n.Children)-1].Kind == Text {
				continue
			}
			n.Append(c)
		}
		return n
	}
	root := NewElement("root")
	for i := 0; i <= next(3); i++ {
		c := build(3)
		if c.Kind == Text && len(root.Children) > 0 && root.Children[len(root.Children)-1].Kind == Text {
			continue
		}
		root.Append(c)
	}
	return root
}

func TestWalkPruning(t *testing.T) {
	d := hotelDoc()
	count := 0
	d.Root.Walk(func(n *Node) bool {
		count++
		return n.Label != "hotel" // do not descend into the hotel
	})
	if count >= d.Size() {
		t.Fatalf("Walk did not prune: visited %d of %d", count, d.Size())
	}
}

func TestNodeByIDMissing(t *testing.T) {
	d := hotelDoc()
	if d.NodeByID(99999) != nil {
		t.Fatal("NodeByID of unknown id should be nil")
	}
}

func TestCallElementParametersRoundTrip(t *testing.T) {
	// Element-shaped call parameters inherit the serialiser's default
	// AXML namespace; they must reparse as plain data.
	root := NewElement("r")
	root.Append(NewCall("f", NewElement("p"), NewText("v")))
	data, err := Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if !root.Equal(back.Root) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", root, back.Root)
	}
	// Nested calls in parameters stay calls.
	root2 := NewElement("r")
	root2.Append(NewCall("outer", NewCall("inner")))
	data2, _ := Marshal(root2)
	back2, err := Unmarshal(data2)
	if err != nil {
		t.Fatal(err)
	}
	if !root2.Equal(back2.Root) {
		t.Fatal("nested call round trip mismatch")
	}
}
