// Package tree implements the Active XML (AXML) document model: ordered
// labelled trees whose nodes are either data nodes (elements and text
// values) or function nodes (embedded calls to Web services).
//
// The model follows Section 2 of "Lazy Query Evaluation for Active XML"
// (Abiteboul et al., SIGMOD 2004). Data nodes carry element names (inner
// nodes) or data values (leaves). Function nodes are labelled with the name
// of the service they call; their children subtrees are the call's
// parameters. Invoking a call replaces the function node, in place, by the
// forest of trees the service returned — see Document.ReplaceCall.
//
// A third node kind, Tuples, does not appear in the paper's core model: it
// materialises the result of a call over which a subquery was *pushed*
// (Section 7 of the paper). Instead of a full result forest, a push-capable
// service returns bindings for the subquery's result variables; a Tuples
// node records those bindings together with a fingerprint of the pushed
// subquery, and the pattern evaluator treats it as a virtual match.
package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the three node kinds of an AXML tree.
type Kind uint8

const (
	// Element is a data node labelled with an element name.
	Element Kind = iota
	// Text is a data leaf labelled with a data value.
	Text
	// Call is a function node labelled with a service name. Its children
	// are the parameters of the call.
	Call
	// Tuples is the materialised result of a call invoked with a pushed
	// subquery: a set of variable-binding tuples standing for the
	// embeddings the remote service found (Section 7 of the paper).
	Tuples
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	case Call:
		return "call"
	case Tuples:
		return "tuples"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Binding maps variable names of a pushed subquery to the data values the
// remote service bound them to.
type Binding map[string]string

// Clone returns a deep copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// String renders the binding deterministically, e.g. {X=In Delis, Y=2nd Av}.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", k, b[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Node is a single node of an AXML tree. Nodes must only be created through
// the constructors (NewElement, NewText, NewCall, NewTuples) and attached
// with Append or InsertBefore so that parent pointers stay consistent.
type Node struct {
	// Kind tells whether this is a data node, a function node, or a
	// pushed-result node.
	Kind Kind
	// Label is the element name (Element), the data value (Text), or the
	// service name (Call). It is empty for Tuples nodes.
	Label string
	// Parent is the parent node, nil for a root or detached node.
	Parent *Node
	// Children holds the ordered children subtrees. For Call nodes these
	// are the call parameters.
	Children []*Node

	// ID is a document-unique identifier assigned when the node is
	// attached to a Document. It is stable across mutations and is used
	// by access structures (F-guides) to keep extents consistent.
	ID uint64

	// PushedQuery is the fingerprint (canonical serialisation) of the
	// subquery that was pushed over the call this Tuples node replaced.
	// Only meaningful when Kind == Tuples.
	PushedQuery string
	// PushedBindings holds the binding tuples returned by the service.
	// Only meaningful when Kind == Tuples.
	PushedBindings []Binding
}

// NewElement returns a detached element node with the given name.
func NewElement(name string) *Node { return &Node{Kind: Element, Label: name} }

// NewText returns a detached text leaf carrying the given data value.
func NewText(value string) *Node { return &Node{Kind: Text, Label: value} }

// NewCall returns a detached function node calling the named service, with
// the given parameter subtrees as children.
func NewCall(service string, params ...*Node) *Node {
	n := &Node{Kind: Call, Label: service}
	for _, p := range params {
		n.Append(p)
	}
	return n
}

// NewTuples returns a detached pushed-result node for the given subquery
// fingerprint and binding tuples.
func NewTuples(pushedQuery string, bindings []Binding) *Node {
	return &Node{Kind: Tuples, PushedQuery: pushedQuery, PushedBindings: bindings}
}

// IsData reports whether the node is a data node (element or text). Only
// data nodes participate in query embeddings (Definition 1 of the paper);
// function nodes are matched only by the function nodes of extended
// patterns.
func (n *Node) IsData() bool { return n.Kind == Element || n.Kind == Text }

// Append attaches child as the last child of n and returns child.
// It panics if child already has a parent: a node belongs to at most one
// tree, and silently re-parenting would corrupt the previous tree.
func (n *Node) Append(child *Node) *Node {
	if child.Parent != nil {
		panic("tree: Append of a node that already has a parent")
	}
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// InsertBefore attaches child immediately before the existing child ref.
// It panics if ref is not a child of n or if child already has a parent.
func (n *Node) InsertBefore(child, ref *Node) {
	if child.Parent != nil {
		panic("tree: InsertBefore of a node that already has a parent")
	}
	i := n.childIndex(ref)
	if i < 0 {
		panic("tree: InsertBefore reference is not a child")
	}
	child.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = child
}

func (n *Node) childIndex(c *Node) int {
	for i, x := range n.Children {
		if x == c {
			return i
		}
	}
	return -1
}

// Detach removes n from its parent's child list. Detaching a node without a
// parent is a no-op.
func (n *Node) Detach() {
	p := n.Parent
	if p == nil {
		return
	}
	i := p.childIndex(n)
	if i >= 0 {
		p.Children = append(p.Children[:i], p.Children[i+1:]...)
	}
	n.Parent = nil
}

// Depth returns the number of edges between n and the root of its tree.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Path returns the labels of the nodes from the root down to n, inclusive.
// It is the path the F-guide indexes function nodes under.
func (n *Node) Path() []string {
	var rev []string
	for x := n; x != nil; x = x.Parent {
		rev = append(rev, x.Label)
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathString returns Path joined with "/", prefixed with "/".
func (n *Node) PathString() string {
	return "/" + strings.Join(n.Path(), "/")
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// detached (nil parent) and carries zero IDs; attach it to a Document (or
// pass it through Document.Adopt) to assign fresh identifiers.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Label: n.Label, PushedQuery: n.PushedQuery}
	if len(n.PushedBindings) > 0 {
		c.PushedBindings = make([]Binding, len(n.PushedBindings))
		for i, b := range n.PushedBindings {
			c.PushedBindings[i] = b.Clone()
		}
	}
	for _, ch := range n.Children {
		c.Append(ch.Clone())
	}
	return c
}

// Walk calls fn for every node of the subtree rooted at n, in document
// order (pre-order). If fn returns false the children of the current node
// are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	s := 0
	n.Walk(func(*Node) bool { s++; return true })
	return s
}

// Equal reports whether the two subtrees are structurally identical: same
// kinds, labels, pushed payloads and child sequences. IDs and parents are
// ignored.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || n.Label != o.Label || n.PushedQuery != o.PushedQuery {
		return false
	}
	if len(n.PushedBindings) != len(o.PushedBindings) {
		return false
	}
	for i, b := range n.PushedBindings {
		if b.String() != o.PushedBindings[i].String() {
			return false
		}
	}
	if len(n.Children) != len(o.Children) {
		return false
	}
	for i, c := range n.Children {
		if !c.Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Text returns the concatenation of the data values of the text leaves of
// the subtree rooted at n, in document order. For a Text node this is its
// value.
func (n *Node) Text() string {
	var sb strings.Builder
	n.Walk(func(x *Node) bool {
		if x.Kind == Text {
			sb.WriteString(x.Label)
		}
		return true
	})
	return sb.String()
}

// Value returns the data value of the node if it is an element whose single
// child is a text leaf (the common <name>value</name> shape), the value
// itself for a text leaf, and "" otherwise.
func (n *Node) Value() string {
	switch n.Kind {
	case Text:
		return n.Label
	case Element:
		if len(n.Children) == 1 && n.Children[0].Kind == Text {
			return n.Children[0].Label
		}
	}
	return ""
}

// Child returns the first child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == Element && c.Label == name {
			return c
		}
	}
	return nil
}

// Document owns an AXML tree and assigns document-unique node identifiers.
// A Document tracks a version counter, bumped on every mutation, that
// access structures use to detect staleness.
type Document struct {
	// Root is the document root, always a data node in well-formed AXML.
	Root *Node

	nextID  uint64
	version uint64
}

// NewDocument wraps root into a Document and assigns IDs to every node of
// the tree.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root, nextID: 1}
	d.Adopt(root)
	return d
}

// Version returns the mutation counter of the document. It increases
// whenever the tree is structurally modified through the Document API.
func (d *Document) Version() uint64 { return d.version }

// Adopt assigns fresh IDs to every node of the given subtree that does not
// have one yet. It must be called for subtrees attached to the document
// outside of ReplaceCall.
func (d *Document) Adopt(n *Node) {
	n.Walk(func(x *Node) bool {
		if x.ID == 0 {
			x.ID = d.nextID
			d.nextID++
		}
		return true
	})
	d.version++
}

// ReplaceCall implements the rewriting step of Definition 2: the function
// node call (and the subtree rooted at it, i.e. its parameters) is deleted
// and the trees of the result forest are plugged in its place, preserving
// document order. The forest nodes are adopted (assigned fresh IDs).
// ReplaceCall returns the inserted roots.
//
// It panics if call is not a function node, if it is detached, or if it is
// the document root (AXML documents have a data root).
func (d *Document) ReplaceCall(call *Node, forest []*Node) []*Node {
	if call.Kind != Call {
		panic("tree: ReplaceCall on a non-function node")
	}
	p := call.Parent
	if p == nil {
		panic("tree: ReplaceCall on a detached or root function node")
	}
	i := p.childIndex(call)
	if i < 0 {
		panic("tree: ReplaceCall: corrupted parent link")
	}
	// Splice the forest in place of the call.
	tail := append([]*Node(nil), p.Children[i+1:]...)
	p.Children = p.Children[:i]
	for _, t := range forest {
		if t.Parent != nil {
			panic("tree: ReplaceCall result tree already has a parent")
		}
		t.Parent = p
		p.Children = append(p.Children, t)
	}
	p.Children = append(p.Children, tail...)
	call.Parent = nil
	for _, t := range forest {
		d.Adopt(t)
	}
	d.version++
	return forest
}

// Calls returns all function nodes of the document, in document order.
func (d *Document) Calls() []*Node {
	var out []*Node
	d.Root.Walk(func(n *Node) bool {
		if n.Kind == Call {
			out = append(out, n)
		}
		return true
	})
	return out
}

// NodeByID returns the node with the given ID, or nil. It is a linear scan
// and intended for tests and tooling, not hot paths.
func (d *Document) NodeByID(id uint64) *Node {
	var found *Node
	d.Root.Walk(func(n *Node) bool {
		if n.ID == id {
			found = n
			return false
		}
		return found == nil
	})
	return found
}

// Size returns the number of nodes in the document.
func (d *Document) Size() int { return d.Root.Size() }

// Clone returns an independent deep copy of the document. Node IDs are
// reassigned in the copy; structural equality is preserved.
func (d *Document) Clone() *Document {
	return NewDocument(d.Root.Clone())
}
