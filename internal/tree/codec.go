package tree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// CallNamespace is the XML namespace used to mark function nodes, in the
// style of the ActiveXML system's axml:call elements.
const CallNamespace = "http://activexml.net/2004/calls"

// Names of the special elements of the AXML wire format.
const (
	callElement    = "call"    // <axml:call service="f">params</axml:call>
	tuplesElement  = "tuples"  // pushed-result container
	tupleElement   = "tuple"   // one binding tuple
	queryAttribute = "query"   // pushed-subquery fingerprint on <tuples>
	serviceAttr    = "service" // service name on <axml:call>
)

// Marshal serialises the subtree rooted at n as XML. Function nodes become
// <axml:call service="name"> elements in CallNamespace; pushed-result nodes
// become <axml:tuples query="..."><tuple><X>v</X>...</tuple>...</axml:tuples>.
func Marshal(n *Node) ([]byte, error) {
	var sb strings.Builder
	enc := xml.NewEncoder(&sb)
	if err := encodeNode(enc, n); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// MarshalIndent is Marshal with two-space indentation, for humans.
func MarshalIndent(n *Node) ([]byte, error) {
	var sb strings.Builder
	enc := xml.NewEncoder(&sb)
	enc.Indent("", "  ")
	if err := encodeNode(enc, n); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func encodeNode(enc *xml.Encoder, n *Node) error {
	switch n.Kind {
	case Text:
		return enc.EncodeToken(xml.CharData(n.Label))
	case Element:
		start := xml.StartElement{Name: xml.Name{Local: n.Label}}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := encodeNode(enc, c); err != nil {
				return err
			}
		}
		return enc.EncodeToken(start.End())
	case Call:
		start := xml.StartElement{
			Name: xml.Name{Space: CallNamespace, Local: callElement},
			Attr: []xml.Attr{{Name: xml.Name{Local: serviceAttr}, Value: n.Label}},
		}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := encodeNode(enc, c); err != nil {
				return err
			}
		}
		return enc.EncodeToken(start.End())
	case Tuples:
		start := xml.StartElement{
			Name: xml.Name{Space: CallNamespace, Local: tuplesElement},
			Attr: []xml.Attr{{Name: xml.Name{Local: queryAttribute}, Value: n.PushedQuery}},
		}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		for _, b := range n.PushedBindings {
			ts := xml.StartElement{Name: xml.Name{Space: CallNamespace, Local: tupleElement}}
			if err := enc.EncodeToken(ts); err != nil {
				return err
			}
			for _, k := range sortedKeys(b) {
				vs := xml.StartElement{Name: xml.Name{Local: k}}
				if err := enc.EncodeToken(vs); err != nil {
					return err
				}
				if err := enc.EncodeToken(xml.CharData(b[k])); err != nil {
					return err
				}
				if err := enc.EncodeToken(vs.End()); err != nil {
					return err
				}
			}
			if err := enc.EncodeToken(ts.End()); err != nil {
				return err
			}
		}
		return enc.EncodeToken(start.End())
	default:
		return fmt.Errorf("tree: cannot marshal node of kind %v", n.Kind)
	}
}

func sortedKeys(b Binding) []string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	// Tiny maps; insertion sort keeps this dependency-free and fast.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Unmarshal parses an AXML document from XML. Elements in CallNamespace
// named "call" (or, leniently, any element named "call" with a service
// attribute) become function nodes; "tuples" elements become pushed-result
// nodes. Whitespace-only character data between elements is dropped.
func Unmarshal(data []byte) (*Document, error) {
	roots, err := UnmarshalForest(data)
	if err != nil {
		return nil, err
	}
	if len(roots) != 1 {
		return nil, fmt.Errorf("tree: document must have exactly one root, got %d", len(roots))
	}
	if roots[0].Kind != Element {
		return nil, fmt.Errorf("tree: document root must be a data element, got %v", roots[0].Kind)
	}
	return NewDocument(roots[0]), nil
}

// UnmarshalForest parses a sequence of sibling AXML trees (e.g. a service
// result forest). The returned nodes are detached and carry zero IDs.
func UnmarshalForest(data []byte) ([]*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	var roots []*Node
	var stack []*Node
	attach := func(n *Node) {
		if len(stack) == 0 {
			roots = append(roots, n)
		} else {
			stack[len(stack)-1].Append(n)
		}
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tree: malformed XML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			// Inside a <tuples> payload every element is plain data:
			// <tuple> wrappers and variable elements inherit the AXML
			// default namespace from the serialiser but must not be
			// interpreted as AXML markup.
			inTuples := false
			for _, s := range stack {
				if s.Kind == Tuples {
					inTuples = true
					break
				}
			}
			var n *Node
			var err error
			if inTuples {
				n = &Node{Kind: Element, Label: t.Name.Local}
			} else {
				n, err = startNode(t)
				if err != nil {
					return nil, err
				}
			}
			attach(n)
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("tree: unexpected end element %s", t.Name.Local)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.Kind == Tuples {
				if err := liftTuples(top); err != nil {
					return nil, err
				}
			}
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			attach(NewText(strings.TrimSpace(s)))
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored: comments and processing instructions carry no
			// query-visible data in the AXML model.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("tree: unclosed element %s", stack[len(stack)-1].Label)
	}
	return roots, nil
}

func startNode(t xml.StartElement) (*Node, error) {
	isAXML := t.Name.Space == CallNamespace || t.Name.Space == "axml"
	switch {
	case isAXML && t.Name.Local == callElement:
		svc := attrValue(t, serviceAttr)
		if svc == "" {
			return nil, fmt.Errorf("tree: <call> element without service attribute")
		}
		return &Node{Kind: Call, Label: svc}, nil
	case isAXML && t.Name.Local == tuplesElement:
		return &Node{Kind: Tuples, PushedQuery: attrValue(t, queryAttribute)}, nil
	case isAXML && t.Name.Local == tupleElement:
		// Parsed as a plain element; liftTuples folds it into the
		// enclosing Tuples node's bindings once the subtree closes.
		return &Node{Kind: Element, Label: tupleElement}, nil
	default:
		// Any other name is plain data, whatever its namespace: call
		// parameters inherit the AXML default namespace from the
		// serialiser but are ordinary trees.
		return &Node{Kind: Element, Label: t.Name.Local}, nil
	}
}

// liftTuples converts the parsed children of a <tuples> element — a
// sequence of <tuple> elements whose children are <Var>value</Var> — into
// the PushedBindings payload, and drops the children.
func liftTuples(n *Node) error {
	for _, tup := range n.Children {
		if tup.Label != tupleElement && !(tup.Kind == Element && tup.Label == tupleElement) {
			return fmt.Errorf("tree: <tuples> may only contain <tuple>, got %q", tup.Label)
		}
		b := Binding{}
		for _, kv := range tup.Children {
			if kv.Kind != Element {
				return fmt.Errorf("tree: <tuple> may only contain variable elements")
			}
			b[kv.Label] = kv.Value()
		}
		n.PushedBindings = append(n.PushedBindings, b)
	}
	n.Children = nil
	return nil
}

func attrValue(t xml.StartElement, name string) string {
	for _, a := range t.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

// String renders the subtree rooted at n as compact XML; it is meant for
// debugging and tests. Errors are rendered inline, which cannot happen for
// trees built through the constructors.
func (n *Node) String() string {
	b, err := Marshal(n)
	if err != nil {
		return fmt.Sprintf("<!-- marshal error: %v -->", err)
	}
	return string(b)
}
