package tree

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip checks the AXML wire codec on arbitrary XML: any
// forest UnmarshalForest accepts must marshal, re-parse, and marshal
// again to the same bytes. The first marshal canonicalises (namespace
// prefixes, whitespace trimming, tuple lifting); after that the codec
// must be a fixed point, because pushed results and the SOAP envelope
// both rely on re-serialising parsed trees verbatim.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, seed := range []string{
		`<hotels><hotel><name>Best Western</name><rating>*****</rating></hotel></hotels>`,
		`<hotel><name>Ritz</name><axml:call xmlns:axml="http://activexml.net/2004/calls" service="getNearbyRestos"><address>addr-1</address></axml:call></hotel>`,
		`<r><axml:tuples xmlns:axml="http://activexml.net/2004/calls" query="/restaurant[name=$X]"><axml:tuple><X>Chez Net</X></axml:tuple></axml:tuples></r>`,
		`<a>one</a><b>two</b>`,
		`<a>&lt;escaped &amp; entities&gt;</a>`,
		`<call service="plain-data-call-lookalike"></call>`,
		`<a><!-- comment --><?pi data?>text</a>`,
		`<deep><deep><deep><leaf/></deep></deep></deep>`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		forest, err := UnmarshalForest(data)
		if err != nil {
			return
		}
		first := marshalForest(t, forest)
		again, err := UnmarshalForest(first)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q: %v", first, err)
		}
		second := marshalForest(t, again)
		if !bytes.Equal(first, second) {
			t.Fatalf("codec is not a fixed point:\n input  %q\n first  %q\n second %q", data, first, second)
		}
	})
}

func marshalForest(t *testing.T, forest []*Node) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, n := range forest {
		b, err := Marshal(n)
		if err != nil {
			t.Fatalf("parsed node does not marshal: %v", err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}
