// Package construct builds result documents from query bindings — the
// return-clause half of the XQuery core whose match half the pattern
// package implements ("our tree pattern queries ... are intended to
// capture the core of XPath/XQuery", Section 2 of the paper). A template
// is an XML forest with {$X} placeholders in text positions; instantiated
// once per query result, it turns a binding set into a new AXML forest.
//
//	tmpl, _ := construct.ParseTemplate(
//	    `<venue><name>{$X}</name><address>{$Y}</address></venue>`)
//	forest, _ := construct.Build(tmpl, out.Results)
//
// Templates may themselves contain <axml:call> elements, so constructed
// documents can be intensional — the AXML way of composing services.
package construct

import (
	"fmt"
	"regexp"
	"strings"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/tree"
)

// Template is a parsed result template.
type Template struct {
	forest []*tree.Node
	vars   map[string]bool
}

var placeholder = regexp.MustCompile(`\{\$([A-Za-z_][A-Za-z0-9_-]*)\}`)

// ParseTemplate reads an XML forest whose text nodes may embed {$X}
// placeholders. The placeholders must lex as variable names; everything
// else is literal.
func ParseTemplate(src string) (*Template, error) {
	forest, err := tree.UnmarshalForest([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("construct: %w", err)
	}
	if len(forest) == 0 {
		return nil, fmt.Errorf("construct: empty template")
	}
	t := &Template{forest: forest, vars: map[string]bool{}}
	for _, n := range forest {
		n.Walk(func(x *tree.Node) bool {
			if x.Kind == tree.Text {
				for _, m := range placeholder.FindAllStringSubmatch(x.Label, -1) {
					t.vars[m[1]] = true
				}
			}
			return true
		})
	}
	return t, nil
}

// MustParseTemplate is ParseTemplate panicking on error, for literals.
func MustParseTemplate(src string) *Template {
	t, err := ParseTemplate(src)
	if err != nil {
		panic(err)
	}
	return t
}

// Variables returns the placeholder names the template references,
// sorted.
func (t *Template) Variables() []string {
	out := make([]string, 0, len(t.vars))
	for v := range t.vars {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Instantiate produces one copy of the template with every placeholder
// replaced by the result's binding. A placeholder without a binding is an
// error: silently emitting "{$X}" would corrupt the constructed document.
func (t *Template) Instantiate(r pattern.Result) ([]*tree.Node, error) {
	for v := range t.vars {
		if _, ok := r.Values[v]; !ok {
			return nil, fmt.Errorf("construct: result has no binding for $%s", v)
		}
	}
	out := make([]*tree.Node, 0, len(t.forest))
	for _, n := range t.forest {
		c := n.Clone()
		substitute(c, r.Values)
		out = append(out, c)
	}
	return out, nil
}

func substitute(n *tree.Node, values map[string]string) {
	n.Walk(func(x *tree.Node) bool {
		if x.Kind == tree.Text && strings.Contains(x.Label, "{$") {
			x.Label = placeholder.ReplaceAllStringFunc(x.Label, func(m string) string {
				name := placeholder.FindStringSubmatch(m)[1]
				return values[name]
			})
		}
		return true
	})
}

// Build instantiates the template for every result and concatenates the
// forests, in result order.
func Build(t *Template, results []pattern.Result) ([]*tree.Node, error) {
	var out []*tree.Node
	for _, r := range results {
		forest, err := t.Instantiate(r)
		if err != nil {
			return nil, err
		}
		out = append(out, forest...)
	}
	return out, nil
}

// Document wraps the constructed forest under a fresh root element and
// returns it as a document — the common "wrap the answers" shape.
func Document(rootName string, t *Template, results []pattern.Result) (*tree.Document, error) {
	forest, err := Build(t, results)
	if err != nil {
		return nil, err
	}
	root := tree.NewElement(rootName)
	for _, n := range forest {
		root.Append(n)
	}
	return tree.NewDocument(root), nil
}
