package construct

import (
	"strings"
	"testing"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/tree"
)

func results(bindings ...map[string]string) []pattern.Result {
	out := make([]pattern.Result, 0, len(bindings))
	for _, b := range bindings {
		out = append(out, pattern.Result{Values: b})
	}
	return out
}

func TestParseAndVariables(t *testing.T) {
	tmpl := MustParseTemplate(`<venue><name>{$X}</name><where>{$Y} ({$X})</where></venue>`)
	vars := tmpl.Variables()
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Fatalf("Variables = %v", vars)
	}
}

func TestInstantiate(t *testing.T) {
	tmpl := MustParseTemplate(`<venue><name>{$X}</name><where>{$Y}</where></venue>`)
	forest, err := tmpl.Instantiate(pattern.Result{Values: map[string]string{"X": "Mama", "Y": "2nd Av."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 1 {
		t.Fatalf("forest size = %d", len(forest))
	}
	v := forest[0]
	if v.Child("name").Value() != "Mama" || v.Child("where").Value() != "2nd Av." {
		t.Fatalf("instantiated = %s", v)
	}
	// The template itself is untouched.
	again, err := tmpl.Instantiate(pattern.Result{Values: map[string]string{"X": "Jo", "Y": "3rd"}})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Child("name").Value() != "Jo" {
		t.Fatal("template mutated by a previous instantiation")
	}
}

func TestMixedTextAndRepeats(t *testing.T) {
	tmpl := MustParseTemplate(`<line>{$A} and {$A} near {$B}!</line>`)
	forest, err := tmpl.Instantiate(pattern.Result{Values: map[string]string{"A": "x", "B": "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := forest[0].Text(); got != "x and x near y!" {
		t.Fatalf("mixed text = %q", got)
	}
}

func TestMissingBinding(t *testing.T) {
	tmpl := MustParseTemplate(`<v>{$X}</v>`)
	if _, err := tmpl.Instantiate(pattern.Result{Values: map[string]string{}}); err == nil {
		t.Fatal("missing binding must error")
	}
}

func TestBuildAndDocument(t *testing.T) {
	tmpl := MustParseTemplate(`<r><n>{$X}</n></r>`)
	rs := results(
		map[string]string{"X": "a"},
		map[string]string{"X": "b"},
	)
	forest, err := Build(tmpl, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 2 || forest[1].Child("n").Value() != "b" {
		t.Fatalf("Build = %v", forest)
	}
	doc, err := Document("answers", tmpl, rs)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "answers" || len(doc.Root.Children) != 2 {
		t.Fatalf("Document = %s", doc.Root)
	}
	// Build error propagates through Document.
	if _, err := Document("answers", tmpl, results(map[string]string{})); err == nil {
		t.Fatal("Document must propagate instantiation errors")
	}
}

func TestTemplateWithEmbeddedCall(t *testing.T) {
	// Constructed documents can be intensional: templates may embed
	// calls whose parameters come from bindings.
	tmpl := MustParseTemplate(
		`<city><name>{$C}</name><axml:call service="getWeather">{$C}</axml:call></city>`)
	forest, err := tmpl.Instantiate(pattern.Result{Values: map[string]string{"C": "Paris"}})
	if err != nil {
		t.Fatal(err)
	}
	var call *tree.Node
	forest[0].Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Call {
			call = n
		}
		return true
	})
	if call == nil || call.Children[0].Label != "Paris" {
		t.Fatalf("embedded call params = %s", forest[0])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "<a><b></a>", "   "} {
		if _, err := ParseTemplate(src); err == nil {
			t.Errorf("ParseTemplate(%q): expected error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseTemplate("<<<")
}

func TestLiteralBracesSurvive(t *testing.T) {
	// Text that merely looks brace-y but is not a placeholder stays.
	tmpl := MustParseTemplate(`<v>{not-a-var} {$X}</v>`)
	forest, err := tmpl.Instantiate(pattern.Result{Values: map[string]string{"X": "ok"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := forest[0].Text(); !strings.Contains(got, "{not-a-var}") || !strings.Contains(got, "ok") {
		t.Fatalf("literal braces mangled: %q", got)
	}
}
