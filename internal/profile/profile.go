// Package profile maintains per-service statistics profiles: the
// empirical latency distribution, selectivity (result nodes per call),
// fault rates per error class, payload volume and cache behaviour of
// every provider a serving process talks to. Profiles are fed inline
// from the invocation path (Profiler.Wrap slots between the response
// cache and the transport, so it observes real wire calls, not cache
// replays), exposed on /metrics as labeled axml_service_* series and on
// GET /stats/services as JSON, and persisted as checksummed JSON so a
// restarted server reopens with its learned profiles warm.
//
// Warm profiles are what the roadmap's cost-based invocation scheduling
// needs: a provider's P95 latency and selectivity, learned across
// restarts, are the inputs a planner would rank candidate calls by.
//
// Cumulative counters and histograms never reset (persistence merges
// them across process lifetimes); a small rolling window tracks recent
// call and fault activity so operators can tell a historically flaky
// provider from a currently flaky one.
package profile

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
)

// DefaultWindow is the rolling-window bucket width used by New.
const DefaultWindow = time.Minute

// windowBuckets is how many rolling buckets each service keeps; the
// recent-activity horizon is windowBuckets * window.
const windowBuckets = 5

// Profiler accumulates per-service profiles. All methods are safe for
// concurrent use. A nil *Profiler is a valid no-op sink: every observer
// method returns immediately, which is how "profiling disabled" costs a
// single pointer test at the call sites.
type Profiler struct {
	window time.Duration
	now    func() time.Time

	mu       sync.Mutex
	services map[string]*acc
}

// acc is one service's accumulator. Latency observations go to a
// log-scale histogram (shared with the metrics registry's scale, so
// quantiles are comparable); everything else is plain counters.
type acc struct {
	hist         *telemetry.Histogram
	calls        uint64
	pushAttempts uint64
	pushed       uint64
	bytes        uint64
	nodes        uint64
	faults       map[string]uint64
	hits         uint64
	misses       uint64
	coalesced    uint64
	win          [windowBuckets]winBucket
}

// winBucket is one rolling-window cell, keyed by its aligned start.
type winBucket struct {
	start  time.Time
	calls  uint64
	faults uint64
}

// New returns an empty profiler with the given rolling-window bucket
// width (0 means DefaultWindow). now is the clock used to place
// observations into window buckets; nil means time.Now. Tests inject a
// fake clock to make window rotation deterministic.
func New(window time.Duration, now func() time.Time) *Profiler {
	if window <= 0 {
		window = DefaultWindow
	}
	if now == nil {
		now = time.Now
	}
	return &Profiler{
		window:   window,
		now:      now,
		services: map[string]*acc{},
	}
}

func (p *Profiler) acc(name string) *acc {
	a := p.services[name]
	if a == nil {
		a = &acc{hist: &telemetry.Histogram{}, faults: map[string]uint64{}}
		p.services[name] = a
	}
	return a
}

// bucket returns the rolling-window cell for t, resetting it if its
// slot last held an older interval.
func (a *acc) bucket(t time.Time, window time.Duration) *winBucket {
	start := t.Truncate(window)
	idx := int(start.UnixNano()/int64(window)) % windowBuckets
	if idx < 0 {
		idx += windowBuckets
	}
	b := &a.win[idx]
	if !b.start.Equal(start) {
		*b = winBucket{start: start}
	}
	return b
}

// Observe records one completed invocation of a service: its effective
// latency, response payload size, result width in nodes, whether a
// subquery was shipped with the call (pushAttempted) and whether the
// provider actually answered it with bindings (pushed), and the fault
// class if it failed ("" for success). Failed calls contribute to the
// latency histogram too — a stalled provider's timeouts are part of
// its latency profile. The attempt/success split is what the planner's
// push-vs-pull decision learns from: a service with many attempts and
// zero successes provably ignores pushes.
func (p *Profiler) Observe(service string, latency time.Duration, bytes, nodes int, pushAttempted, pushed bool, faultClass string) {
	if p == nil {
		return
	}
	t := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.acc(service)
	a.hist.Observe(latency)
	a.calls++
	a.bytes += uint64(bytes)
	a.nodes += uint64(nodes)
	if pushAttempted {
		a.pushAttempts++
	}
	if pushed {
		a.pushed++
	}
	b := a.bucket(t, p.window)
	b.calls++
	if faultClass != "" {
		a.faults[faultClass]++
		b.faults++
	}
}

// ObserveCache records one cache lookup outcome for a service (see
// wrap.go for the service.Cache.Notify adapter).
func (p *Profiler) ObserveCache(name string, event service.CacheEvent) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.acc(name)
	switch event {
	case service.CacheHit:
		a.hits++
	case service.CacheMiss:
		a.misses++
	case service.CacheCoalesce:
		a.coalesced++
	}
}

// ServiceProfile is one service's profile at a point in time. Durations
// are conservative log-scale quantile estimates (see
// telemetry.HistogramSnapshot.Quantile).
type ServiceProfile struct {
	Service string `json:"service"`
	// Calls counts wire invocations (cache hits excluded).
	Calls uint64 `json:"calls"`
	// PushAttempts counts invocations that shipped a subquery; Pushed
	// counts those the provider actually answered with bindings.
	PushAttempts uint64 `json:"push_attempts,omitempty"`
	Pushed       uint64 `json:"pushed,omitempty"`
	// PushRate is push successes over push attempts — the planner's
	// push-vs-pull signal (0 when nothing was ever attempted).
	PushRate float64 `json:"push_rate,omitempty"`
	// Faults counts failed invocations per error class.
	Faults map[string]uint64 `json:"faults,omitempty"`
	// FaultRate is total faults over total calls.
	FaultRate float64 `json:"fault_rate"`
	Bytes     uint64  `json:"bytes"`
	Nodes     uint64  `json:"nodes"`
	// Selectivity is result nodes per call — the profile's estimate of
	// how much data one invocation of this service yields.
	Selectivity float64       `json:"selectivity"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	P99         time.Duration `json:"p99_ns"`
	Mean        time.Duration `json:"mean_ns"`
	Max         time.Duration `json:"max_ns"`
	CacheHits   uint64        `json:"cache_hits"`
	CacheMisses uint64        `json:"cache_misses"`
	Coalesced   uint64        `json:"coalesced,omitempty"`
	// HitRate is cache hits over cache lookups (hits + misses).
	HitRate float64 `json:"hit_rate"`
	// RecentCalls and RecentFaults count activity inside the rolling
	// window horizon; they are not persisted.
	RecentCalls  uint64 `json:"recent_calls"`
	RecentFaults uint64 `json:"recent_faults"`
}

// Snapshot returns every service's profile, sorted by service name so
// output is deterministic.
func (p *Profiler) Snapshot() []ServiceProfile {
	if p == nil {
		return nil
	}
	t := p.now()
	horizon := t.Add(-time.Duration(windowBuckets) * p.window)
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ServiceProfile, 0, len(p.services))
	for name, a := range p.services {
		h := a.hist.Snapshot()
		sp := ServiceProfile{
			Service:      name,
			Calls:        a.calls,
			PushAttempts: a.pushAttempts,
			Pushed:       a.pushed,
			Bytes:        a.bytes,
			Nodes:        a.nodes,
			P50:          h.Quantile(0.50),
			P95:          h.Quantile(0.95),
			P99:          h.Quantile(0.99),
			Mean:         h.Mean(),
			Max:          h.Max,
			CacheHits:    a.hits,
			CacheMisses:  a.misses,
			Coalesced:    a.coalesced,
		}
		var faults uint64
		if len(a.faults) > 0 {
			sp.Faults = make(map[string]uint64, len(a.faults))
			for c, n := range a.faults {
				sp.Faults[c] = n
				faults += n
			}
		}
		if a.calls > 0 {
			sp.FaultRate = float64(faults) / float64(a.calls)
			sp.Selectivity = float64(a.nodes) / float64(a.calls)
		}
		if a.pushAttempts > 0 {
			sp.PushRate = float64(a.pushed) / float64(a.pushAttempts)
		}
		if lookups := a.hits + a.misses; lookups > 0 {
			sp.HitRate = float64(a.hits) / float64(lookups)
		}
		for i := range a.win {
			if b := &a.win[i]; !b.start.IsZero() && !b.start.Before(horizon) {
				sp.RecentCalls += b.calls
				sp.RecentFaults += b.faults
			}
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// persisted is the durable form of one service's cumulative state. The
// rolling window is deliberately not persisted: "recent" means this
// process lifetime.
type persisted struct {
	Service      string                      `json:"service"`
	Hist         telemetry.HistogramSnapshot `json:"hist"`
	Calls        uint64                      `json:"calls"`
	PushAttempts uint64                      `json:"push_attempts,omitempty"`
	Pushed       uint64                      `json:"pushed,omitempty"`
	Bytes        uint64                      `json:"bytes,omitempty"`
	Nodes        uint64                      `json:"nodes,omitempty"`
	Faults       map[string]uint64           `json:"faults,omitempty"`
	Hits         uint64                      `json:"cache_hits,omitempty"`
	Misses       uint64                      `json:"cache_misses,omitempty"`
	Coalesced    uint64                      `json:"coalesced,omitempty"`
}

// envelope is the on-disk file shape: the payload plus its checksum, so
// a torn or bit-rotted profiles file is detected and discarded instead
// of silently seeding wrong estimates.
type envelope struct {
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Marshal renders the profiler's cumulative state as checksummed JSON.
func (p *Profiler) Marshal() ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("profile: nil profiler")
	}
	p.mu.Lock()
	recs := make([]persisted, 0, len(p.services))
	for name, a := range p.services {
		r := persisted{
			Service:      name,
			Hist:         a.hist.Snapshot(),
			Calls:        a.calls,
			PushAttempts: a.pushAttempts,
			Pushed:       a.pushed,
			Bytes:        a.bytes,
			Nodes:        a.nodes,
			Hits:         a.hits,
			Misses:       a.misses,
			Coalesced:    a.coalesced,
		}
		if len(a.faults) > 0 {
			r.Faults = make(map[string]uint64, len(a.faults))
			for c, n := range a.faults {
				r.Faults[c] = n
			}
		}
		recs = append(recs, r)
	}
	p.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Service < recs[j].Service })
	payload, err := json.Marshal(recs)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	return json.MarshalIndent(envelope{
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	}, "", "  ")
}

// Unmarshal merges checksummed profile state (a Marshal output) into
// the profiler: histograms and counters add onto whatever is already
// accumulated, so load-then-learn keeps both. A checksum mismatch or
// malformed payload returns an error and leaves the profiler untouched.
func (p *Profiler) Unmarshal(data []byte) error {
	if p == nil {
		return fmt.Errorf("profile: nil profiler")
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("profile: bad envelope: %w", err)
	}
	// The checksum covers the compact payload encoding: re-indenting the
	// file (json.MarshalIndent does, and so might a human) must not read
	// as corruption, while any semantic change does.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return fmt.Errorf("profile: bad payload: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return fmt.Errorf("profile: checksum mismatch (file corrupt)")
	}
	var recs []persisted
	if err := json.Unmarshal(env.Payload, &recs); err != nil {
		return fmt.Errorf("profile: bad payload: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range recs {
		a := p.acc(r.Service)
		a.hist.Load(r.Hist)
		a.calls += r.Calls
		a.pushAttempts += r.PushAttempts
		a.pushed += r.Pushed
		a.bytes += r.Bytes
		a.nodes += r.Nodes
		a.hits += r.Hits
		a.misses += r.Misses
		a.coalesced += r.Coalesced
		for c, n := range r.Faults {
			a.faults[c] += n
		}
	}
	return nil
}
