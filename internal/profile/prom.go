package profile

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// writeProm renders the labeled axml_service_* families in the
// Prometheus text exposition format. It is registered on the flat
// metrics registry via ExposeProm, so one /metrics scrape covers the
// unlabeled engine series and the per-service profiles.
func (p *Profiler) writeProm(w io.Writer) error {
	snap := p.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, val func(ServiceProfile) uint64) {
		pf("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range snap {
			pf("%s{service=%q} %d\n", name, s.Service, val(s))
		}
	}
	counter("axml_service_calls_total", "Wire invocations per service (cache hits excluded).",
		func(s ServiceProfile) uint64 { return s.Calls })
	counter("axml_service_push_attempts_total", "Invocations that shipped a subquery.",
		func(s ServiceProfile) uint64 { return s.PushAttempts })
	counter("axml_service_pushed_total", "Invocations answered with pushed-query bindings.",
		func(s ServiceProfile) uint64 { return s.Pushed })
	counter("axml_service_bytes_total", "Response payload bytes per service.",
		func(s ServiceProfile) uint64 { return s.Bytes })
	counter("axml_service_nodes_total", "Result nodes returned per service.",
		func(s ServiceProfile) uint64 { return s.Nodes })
	counter("axml_service_cache_hits_total", "Response cache hits per service.",
		func(s ServiceProfile) uint64 { return s.CacheHits })
	counter("axml_service_cache_misses_total", "Response cache misses per service.",
		func(s ServiceProfile) uint64 { return s.CacheMisses })

	pf("# HELP axml_service_faults_total Failed invocations per service and error class.\n")
	pf("# TYPE axml_service_faults_total counter\n")
	for _, s := range snap {
		classes := make([]string, 0, len(s.Faults))
		for c := range s.Faults {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			pf("axml_service_faults_total{service=%q,class=%q} %d\n", s.Service, c, s.Faults[c])
		}
	}

	pf("# HELP axml_service_latency_seconds Effective invocation latency quantiles per service.\n")
	pf("# TYPE axml_service_latency_seconds gauge\n")
	for _, s := range snap {
		for _, q := range []struct {
			label string
			d     time.Duration
		}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
			pf("axml_service_latency_seconds{service=%q,quantile=%q} %g\n",
				s.Service, q.label, q.d.Seconds())
		}
	}
	return err
}
