package profile

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// FileName is the profiles file written into a server's data directory.
const FileName = "profiles.json"

// Wrap returns a registry proxying reg through the profiler: every
// invocation is observed (effective latency, payload bytes, result
// nodes, push outcome, fault class) and then delegated. Place the
// wrapper *under* the response cache — cache.Wrap(p.Wrap(base)) — so
// the profile reflects real provider behaviour, not cache replays; wire
// the cache's own outcomes in with Notify.
//
// Effective latency is the larger of the wall-clock spent in the
// provider and the response's declared virtual latency, so profiles are
// meaningful in both the simulated world (wall ≈ 0, virtual carries the
// model) and over real transports (virtual often 0, wall carries the
// truth).
func (p *Profiler) Wrap(reg *service.Registry) *service.Registry {
	if p == nil {
		return reg
	}
	out := service.NewRegistry()
	for _, name := range reg.Names() {
		inner := reg.Lookup(name)
		name := name
		out.Register(&service.Service{
			Name:    name,
			Latency: inner.Latency,
			CanPush: inner.CanPush,
			RemoteCtx: func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
				start := time.Now()
				resp, err := reg.InvokeContext(ctx, name, params, pushed)
				lat := time.Since(start)
				if resp.Latency > lat {
					lat = resp.Latency
				}
				class := ""
				if err != nil {
					class = service.ClassOf(err).String()
				}
				p.Observe(name, lat, resp.Bytes, countNodes(resp.Forest),
					err == nil && pushed != nil, err == nil && resp.Pushed, class)
				return resp, err
			},
		})
	}
	return out
}

// Notify returns the service.Cache.Notify hook feeding cache outcomes
// into the profiler. The hook runs under the cache lock, so it only
// bumps counters.
func (p *Profiler) Notify() func(string, service.CacheEvent) {
	return func(name string, ev service.CacheEvent) { p.ObserveCache(name, ev) }
}

// countNodes is the size of a response forest in nodes — the numerator
// of the selectivity estimate.
func countNodes(forest []*tree.Node) int {
	n := 0
	for _, t := range forest {
		n += t.Size()
	}
	return n
}

// SaveFile persists the profiler's cumulative state to dir/FileName
// durably (checksummed payload, atomic rename, fsync — see
// store.WriteFileAtomic). Call it on drain.
func (p *Profiler) SaveFile(dir string) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(dir, FileName, data, true)
}

// LoadFile merges dir/FileName into the profiler. A missing file is a
// normal cold start (nil error); a corrupt or checksum-mismatched file
// is logged and discarded — the profiler restarts cold rather than
// seeding estimates from bad data.
func (p *Profiler) LoadFile(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := p.Unmarshal(data); err != nil {
		log.Printf("profile: discarding %s: %v", filepath.Join(dir, FileName), err)
		return nil
	}
	return nil
}

// Handler serves the profile snapshot as JSON — the GET /stats/services
// endpoint.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeSnapshotJSON(w, p.Snapshot())
	})
}

// WriteJSON renders the current snapshot to w as indented JSON (the
// same document Handler serves), for file sinks like axmlload
// -stats-out.
func (p *Profiler) WriteJSON(w io.Writer) error {
	return writeSnapshotJSON(w, p.Snapshot())
}

func writeSnapshotJSON(w io.Writer, snap []ServiceProfile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Services []ServiceProfile `json:"services"`
	}{Services: snap})
}

// ExposeProm appends the profiler's labeled axml_service_* series to
// the registry's /metrics exposition. Call once at wiring time; the
// writer snapshots on every scrape.
func (p *Profiler) ExposeProm(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.AddPromWriter(p.writeProm)
}
