package profile

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

func testRegistry() *service.Registry {
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name:    "cities",
		Latency: 5 * time.Millisecond,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			r := tree.NewElement("city")
			r.Append(tree.NewText("Paris"))
			return []*tree.Node{r}, nil
		},
	})
	reg.Register(&service.Service{
		Name:    "flaky",
		Latency: time.Millisecond,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			return nil, &service.Fault{Service: "flaky", Class: service.Transient, Msg: "boom"}
		},
	})
	return reg
}

func TestWrapObservesInvocations(t *testing.T) {
	p := New(0, nil)
	reg := p.Wrap(testRegistry())
	for i := 0; i < 3; i++ {
		if _, err := reg.Invoke("cities", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Invoke("flaky", nil, nil); err == nil {
		t.Fatal("expected fault")
	}
	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 services, got %d", len(snap))
	}
	// Sorted by name: cities before flaky.
	c, f := snap[0], snap[1]
	if c.Service != "cities" || f.Service != "flaky" {
		t.Fatalf("order: %q, %q", c.Service, f.Service)
	}
	if c.Calls != 3 || c.FaultRate != 0 {
		t.Fatalf("cities: %+v", c)
	}
	if c.Selectivity != 2 { // element + text node per call
		t.Fatalf("cities selectivity: %v", c.Selectivity)
	}
	if c.P50 == 0 || c.P95 < c.P50 {
		t.Fatalf("cities quantiles: p50=%v p95=%v", c.P50, c.P95)
	}
	if f.Calls != 1 || f.FaultRate != 1 || f.Faults["transient"] != 1 {
		t.Fatalf("flaky: %+v", f)
	}
	if c.RecentCalls != 3 || f.RecentFaults != 1 {
		t.Fatalf("recent: %+v %+v", c, f)
	}
}

func TestRollingWindowExpires(t *testing.T) {
	now := time.Unix(1000, 0)
	p := New(time.Minute, func() time.Time { return now })
	p.Observe("svc", time.Millisecond, 10, 2, false, false, "")
	if s := p.Snapshot()[0]; s.RecentCalls != 1 {
		t.Fatalf("recent before expiry: %+v", s)
	}
	now = now.Add(windowBuckets*time.Minute + time.Minute)
	s := p.Snapshot()[0]
	if s.RecentCalls != 0 {
		t.Fatalf("recent after expiry: %+v", s)
	}
	if s.Calls != 1 {
		t.Fatalf("cumulative must survive expiry: %+v", s)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	p := New(0, nil)
	reg := p.Wrap(testRegistry())
	for i := 0; i < 10; i++ {
		reg.Invoke("cities", nil, nil)
	}
	reg.Invoke("flaky", nil, nil)
	p.ObserveCache("cities", service.CacheHit)
	p.ObserveCache("cities", service.CacheMiss)

	dir := t.TempDir()
	if err := p.SaveFile(dir); err != nil {
		t.Fatal(err)
	}
	q := New(0, nil)
	if err := q.LoadFile(dir); err != nil {
		t.Fatal(err)
	}
	want, got := p.Snapshot(), q.Snapshot()
	// The rolling window is process-local by design.
	for i := range want {
		want[i].RecentCalls, want[i].RecentFaults = 0, 0
		got[i].RecentCalls, got[i].RecentFaults = 0, 0
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	if got[0].P95 == 0 || got[0].Selectivity != want[0].Selectivity {
		t.Fatalf("reloaded profile lost estimates: %+v", got[0])
	}
}

func TestLoadFileMissingIsCold(t *testing.T) {
	p := New(0, nil)
	if err := p.LoadFile(t.TempDir()); err != nil {
		t.Fatalf("missing file must be a cold start, got %v", err)
	}
	if len(p.Snapshot()) != 0 {
		t.Fatal("cold start must be empty")
	}
}

func TestLoadFileCorruptIsColdNotFatal(t *testing.T) {
	p := New(0, nil)
	p.Observe("svc", time.Millisecond, 1, 1, false, false, "")
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it.
	i := bytes.Index(data, []byte(`"svc"`))
	if i < 0 {
		t.Fatal("payload not found")
	}
	data[i+1] = 'x'
	q := New(0, nil)
	if err := q.Unmarshal(data); err == nil {
		t.Fatal("corrupt payload must fail checksum")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := q.LoadFile(dir); err != nil {
		t.Fatalf("corrupt file must degrade to cold start, got %v", err)
	}
	if len(q.Snapshot()) != 0 {
		t.Fatal("corrupt file must not seed profiles")
	}
}

func TestUnmarshalMergesOntoExisting(t *testing.T) {
	p := New(0, nil)
	p.Observe("svc", time.Millisecond, 10, 5, false, false, "")
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q := New(0, nil)
	q.Observe("svc", time.Millisecond, 10, 5, false, false, "")
	if err := q.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	s := q.Snapshot()[0]
	if s.Calls != 2 || s.Bytes != 20 || s.Nodes != 10 {
		t.Fatalf("merge must add: %+v", s)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	p := New(0, nil)
	p.Observe("svc", time.Millisecond, 10, 5, true, true, "")
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats/services", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Services []ServiceProfile `json:"services"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 1 || doc.Services[0].Service != "svc" || doc.Services[0].Pushed != 1 {
		t.Fatalf("body: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/stats/services", nil))
	if rec.Code != 405 {
		t.Fatalf("POST must be rejected, got %d", rec.Code)
	}
}

func TestWritePromLabeledSeries(t *testing.T) {
	p := New(0, nil)
	p.Observe("a", time.Millisecond, 10, 5, false, false, "transient")
	p.Observe("b", time.Millisecond, 10, 5, false, false, "")
	var sb strings.Builder
	if err := p.writeProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`axml_service_calls_total{service="a"} 1`,
		`axml_service_faults_total{service="a",class="transient"} 1`,
		`axml_service_latency_seconds{service="b",quantile="0.95"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestNilProfilerIsNoop(t *testing.T) {
	var p *Profiler
	p.Observe("svc", time.Millisecond, 1, 1, false, false, "")
	p.ObserveCache("svc", service.CacheHit)
	if p.Snapshot() != nil {
		t.Fatal("nil snapshot")
	}
	reg := testRegistry()
	if p.Wrap(reg) != reg {
		t.Fatal("nil wrap must be identity")
	}
}
