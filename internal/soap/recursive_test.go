package soap

import (
	"net/http/httptest"
	"testing"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func TestRecursivePushMaterialisesNestedCalls(t *testing.T) {
	// getHotels results embed rating and restaurant calls; a recursive
	// provider resolves them before answering a pushed query.
	spec := workload.DefaultSpec()
	spec.IntensionalRatingEvery = 2 // plenty of nested calls
	w := workload.Hotels(spec)
	peer := RecursivePush(w.Registry, 10000)

	pushed := pattern.MustParse(
		`/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $X`)
	resp, err := peer.Invoke("getHotels", nil, pushed)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pushed || len(resp.Forest) != 1 || resp.Forest[0].Kind != tree.Tuples {
		t.Fatalf("resp = %+v", resp)
	}
	// Hidden hotels 40..47; qualifying (i%4==0): 40, 44 → 2 hotels × 2
	// five-star restaurants.
	if got := len(resp.Forest[0].PushedBindings); got != 4 {
		t.Fatalf("bindings = %d, want 4 (%v)", got, resp.Forest[0].PushedBindings)
	}
}

func TestRecursivePushWithoutQueryPassesThrough(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	peer := RecursivePush(w.Registry, 10000)
	resp, err := peer.Invoke("getHotels", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Pushed || len(resp.Forest) != 8 {
		t.Fatalf("resp = %+v", resp)
	}
	// Intensional parts stay intensional when nothing is pushed.
	calls := 0
	for _, h := range resp.Forest {
		h.Walk(func(n *tree.Node) bool {
			if n.Kind == tree.Call {
				calls++
			}
			return true
		})
	}
	if calls == 0 {
		t.Fatal("pass-through should keep embedded calls")
	}
}

func TestRecursivePushBudget(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	peer := RecursivePush(w.Registry, 2)
	pushed := pattern.MustParse(`/hotel[name=$X] -> $X`)
	if _, err := peer.Invoke("getHotels", nil, pushed); err == nil {
		t.Fatal("tiny budget must fail the materialisation")
	}
}

func TestRecursivePushEndToEnd(t *testing.T) {
	// Full engine run against a recursive-push provider over HTTP:
	// every call can now be pushed, including getHotels.
	spec := workload.DefaultSpec()
	spec.Hotels = 12
	spec.HiddenHotels = 4
	w := workload.Hotels(spec)
	peer := RecursivePush(w.Registry, 100000)
	srv := httptest.NewServer(NewServer(peer, false))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	reg, err := client.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, core.Options{
		Strategy: core.LazyNFQTyped, Schema: w.Schema, Push: true,
		Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != w.ExpectedResults {
		t.Fatalf("results = %d, want %d", len(out.Results), w.ExpectedResults)
	}
	if out.Stats.PushedCalls == 0 {
		t.Fatal("no pushes against the recursive provider")
	}
}
