package soap

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// An oversized request must be rejected with an explicit 413
// permanent-classed fault, not silently truncated into a parse error.
func TestServerRejectsOversizedRequest(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	s := NewServer(w.Registry, false)
	s.MaxPayloadBytes = 1 << 10
	srv := httptest.NewServer(s)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	big := strings.Repeat("x", 2<<10)
	_, err := c.Invoke("getNearbyRestos", []*tree.Node{tree.NewText(big)}, nil)
	if err == nil {
		t.Fatal("oversized request accepted")
	}
	var fault *service.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want a classed service.Fault", err)
	}
	if fault.Class != service.Permanent {
		t.Fatalf("class = %v, want Permanent (retrying cannot shrink the payload)", fault.Class)
	}
	if !strings.Contains(err.Error(), "payload too large") {
		t.Fatalf("err = %v, want an explicit payload-too-large message", err)
	}
	if !strings.Contains(err.Error(), "413") {
		t.Fatalf("err = %v, want HTTP 413", err)
	}
}

// A request of exactly the configured limit must still go through: the
// limit detection reads one byte past the bound, it does not shrink it.
func TestServerAcceptsRequestAtLimit(t *testing.T) {
	w := workload.Hotels(workload.DefaultSpec())
	s := NewServer(w.Registry, false)
	body, err := EncodeInvoke("getNearbyRestos", []*tree.Node{tree.NewText("addr-7")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxPayloadBytes = int64(len(body))
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/services/getNearbyRestos", "application/xml", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 for a body of exactly the limit", resp.StatusCode)
	}
}

// An oversized response must surface as a permanent-classed fault on the
// client, not as a truncated-XML parse error.
func TestClientRejectsOversizedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		w.Write([]byte(`<response pushed="false"><blob>` + strings.Repeat("y", 2<<10) + `</blob></response>`))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, MaxPayloadBytes: 1 << 10}
	_, err := c.Invoke("getNearbyRestos", nil, nil)
	if err == nil {
		t.Fatal("oversized response accepted")
	}
	var fault *service.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want a classed service.Fault", err)
	}
	if fault.Class != service.Permanent {
		t.Fatalf("class = %v, want Permanent", fault.Class)
	}
	if !strings.Contains(err.Error(), "payload too large") {
		t.Fatalf("err = %v, want an explicit payload-too-large message", err)
	}
}

// The default limits are symmetric, and small payloads are unaffected.
func TestPayloadDefaultsSymmetric(t *testing.T) {
	if DefaultMaxPayloadBytes != 64<<20 {
		t.Fatalf("DefaultMaxPayloadBytes = %d", DefaultMaxPayloadBytes)
	}
	w := workload.Hotels(workload.DefaultSpec())
	srv := httptest.NewServer(NewServer(w.Registry, false))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	resp, err := c.Invoke("getNearbyRestos", []*tree.Node{tree.NewText("addr-7")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Forest) == 0 {
		t.Fatal("empty response under default limits")
	}
}
