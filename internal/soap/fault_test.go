package soap

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// flakyServer exposes one service whose handler fails the first n
// invocations with the given error, then answers normally.
func flakyServer(t *testing.T, n int, failWith error) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name: "flaky",
		Handler: func([]*tree.Node) ([]*tree.Node, error) {
			if calls.Add(1) <= int64(n) {
				return nil, failWith
			}
			return []*tree.Node{tree.NewText("ok")}, nil
		},
	})
	srv := httptest.NewServer(NewServer(reg, false))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestClientRetriesTransientFaults checks the client-side retry loop:
// two transient failures followed by a success must be absorbed inside
// one Invoke call when MaxAttempts allows it.
func TestClientRetriesTransientFaults(t *testing.T) {
	transient := &service.Fault{Service: "flaky", Class: service.Transient, Msg: "blip"}
	srv, calls := flakyServer(t, 2, transient)
	c := &Client{BaseURL: srv.URL, MaxAttempts: 4, Backoff: time.Millisecond}
	resp, err := c.Invoke("flaky", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Forest) != 1 || resp.Forest[0].Label != "ok" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestClientDoesNotRetryPermanentFaults: a permanent fault (the default
// class for plain errors) must be surfaced after a single attempt even
// when retries are configured.
func TestClientDoesNotRetryPermanentFaults(t *testing.T) {
	srv, calls := flakyServer(t, 100, fmt.Errorf("schema violation"))
	c := &Client{BaseURL: srv.URL, MaxAttempts: 5, Backoff: time.Millisecond}
	_, err := c.Invoke("flaky", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "schema violation") {
		t.Fatalf("err = %v", err)
	}
	if service.ClassOf(err) != service.Permanent {
		t.Fatalf("class = %v, want permanent", service.ClassOf(err))
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// TestFaultClassSurvivesTheWire: the class a handler attaches to its
// error must come back out of the HTTP client as the same class, via the
// fault envelope's class attribute.
func TestFaultClassSurvivesTheWire(t *testing.T) {
	for _, class := range []service.ErrorClass{service.Permanent, service.Transient, service.Timeout} {
		reg := service.NewRegistry()
		reg.Register(&service.Service{
			Name: "svc",
			Handler: func([]*tree.Node) ([]*tree.Node, error) {
				return nil, &service.Fault{Service: "svc", Class: class, Msg: "classed"}
			},
		})
		srv := httptest.NewServer(NewServer(reg, false))
		c := &Client{BaseURL: srv.URL}
		_, err := c.Invoke("svc", nil, nil)
		srv.Close()
		if err == nil {
			t.Fatalf("class %v: no error", class)
		}
		if got := service.ClassOf(err); got != class {
			t.Fatalf("class %v came back as %v (err %v)", class, got, err)
		}
		var f *service.Fault
		if !errors.As(err, &f) || f.Service != "svc" {
			t.Fatalf("class %v: error is not a service fault for svc: %v", class, err)
		}
	}
}

// TestServerDeadline: an invocation that outlives Server.Deadline
// answers 504 with a timeout-classed fault, which the client maps back
// to service.Timeout — i.e. retryable by engine policies.
func TestServerDeadline(t *testing.T) {
	reg := service.NewRegistry()
	release := make(chan struct{})
	reg.Register(&service.Service{
		Name: "stuck",
		Handler: func([]*tree.Node) ([]*tree.Node, error) {
			<-release
			return nil, nil
		},
	})
	h := NewServer(reg, false)
	h.Deadline = 20 * time.Millisecond
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	c := &Client{BaseURL: srv.URL}
	start := time.Now()
	_, err := c.Invoke("stuck", nil, nil)
	if err == nil {
		t.Fatal("deadline did not fire")
	}
	if service.ClassOf(err) != service.Timeout {
		t.Fatalf("class = %v, want timeout (err %v)", service.ClassOf(err), err)
	}
	if !strings.Contains(err.Error(), "504") {
		t.Fatalf("expected a 504 in %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline answer took implausibly long")
	}
}

// TestClientTimeout: a per-request client timeout cuts a slow provider
// and classifies the failure as a timeout.
func TestClientTimeout(t *testing.T) {
	mux := http.NewServeMux()
	release := make(chan struct{})
	mux.HandleFunc("/services/slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	defer close(release) // LIFO: unblock the handler before Close waits on it
	c := &Client{BaseURL: srv.URL, Timeout: 20 * time.Millisecond}
	_, err := c.Invoke("slow", nil, nil)
	if err == nil {
		t.Fatal("client timeout did not fire")
	}
	if service.ClassOf(err) != service.Timeout {
		t.Fatalf("class = %v, want timeout (err %v)", service.ClassOf(err), err)
	}
}

// TestInvokeContextCancellation: cancelling the caller's context stops
// both the in-flight request and any pending retries.
func TestInvokeContextCancellation(t *testing.T) {
	transient := &service.Fault{Service: "flaky", Class: service.Transient, Msg: "blip"}
	srv, calls := flakyServer(t, 100, transient)
	c := &Client{BaseURL: srv.URL, MaxAttempts: 50, Backoff: 10 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.InvokeContext(ctx, "flaky", nil, nil)
	if err == nil {
		t.Fatal("cancelled invoke succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not cut the retry loop")
	}
	if got := calls.Load(); got >= 50 {
		t.Fatalf("retries ran to exhaustion (%d attempts) despite cancellation", got)
	}
}

// TestNetworkErrorIsTransient: a connection failure (nothing listening)
// must classify as transient so retry policies treat it as such.
func TestNetworkErrorIsTransient(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"}
	_, err := c.Invoke("x", nil, nil)
	if err == nil {
		t.Fatal("unreachable provider must fail")
	}
	if service.ClassOf(err) != service.Transient {
		t.Fatalf("class = %v, want transient (err %v)", service.ClassOf(err), err)
	}
}
