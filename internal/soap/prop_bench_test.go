package soap

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// The pair below prices cross-process trace propagation per call — the
// extra envelope attributes, the server's per-request tracer, and the
// span subtree marshalled into (and parsed back out of) every response.
// E16 reports the same delta as a fraction of the sleep-dominated E11
// sweep, where it must stay under 2% of wall.

func benchReg() *service.Registry {
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name: "svc", Latency: 0,
		Handler: func(params []*tree.Node) ([]*tree.Node, error) {
			n := tree.NewElement("item")
			n.Append(tree.NewText("v"))
			return []*tree.Node{n}, nil
		},
	})
	return reg
}

func BenchmarkPropagationOff(b *testing.B) {
	srv := httptest.NewServer(NewServer(benchReg(), false))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	reg, err := c.RegistryFor()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Invoke("svc", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPropagationOn(b *testing.B) {
	srv := httptest.NewServer(NewServer(benchReg(), false))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	reg, err := c.RegistryFor()
	if err != nil {
		b.Fatal(err)
	}
	ctx := telemetry.WithTrace(context.Background(), telemetry.TraceContext{
		TraceID: telemetry.DeriveTraceID("bench"), Parent: 1, MaxSpans: 512,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.InvokeContext(ctx, "svc", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
