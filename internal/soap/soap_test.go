package soap

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func testServer(t *testing.T, spec workload.HotelSpec) (*workload.World, *httptest.Server) {
	t.Helper()
	w := workload.Hotels(spec)
	srv := httptest.NewServer(NewServer(w.Registry, false))
	t.Cleanup(srv.Close)
	return w, srv
}

func TestDescribe(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.PushCapable = true
	_, srv := testServer(t, spec)
	c := &Client{BaseURL: srv.URL}
	infos, err := c.Describe()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ServiceInfo{}
	for _, i := range infos {
		byName[i.Name] = i
	}
	restos, ok := byName["getNearbyRestos"]
	if !ok {
		t.Fatalf("descriptor misses getNearbyRestos: %v", infos)
	}
	if !restos.CanPush || restos.Latency != 10*time.Millisecond {
		t.Fatalf("descriptor entry wrong: %+v", restos)
	}
	if hotels := byName["getHotels"]; hotels.CanPush {
		t.Fatal("getHotels must not advertise push (intensional results)")
	}
}

func TestRemoteInvoke(t *testing.T) {
	_, srv := testServer(t, workload.DefaultSpec())
	c := &Client{BaseURL: srv.URL}
	resp, err := c.Invoke("getNearbyRestos", []*tree.Node{tree.NewText("addr-7")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Forest) != 5 || resp.Pushed {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Forest[0].Label != "restaurant" {
		t.Fatalf("first tree = %s", resp.Forest[0])
	}
	if resp.Bytes == 0 {
		t.Fatal("wire size not reported")
	}
}

func TestRemotePush(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.PushCapable = true
	spec.RestosPerCall = 50
	_, srv := testServer(t, spec)
	c := &Client{BaseURL: srv.URL}
	pushed := pattern.MustParse(`/restaurant[rating="*****"][name=$X] -> $X`)
	resp, err := c.Invoke("getNearbyRestos", []*tree.Node{tree.NewText("addr-7")}, pushed)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pushed || len(resp.Forest) != 1 || resp.Forest[0].Kind != tree.Tuples {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Forest[0].PushedBindings) != 2 {
		t.Fatalf("bindings = %v", resp.Forest[0].PushedBindings)
	}
	// Compare transfer sizes: pushed is far smaller.
	full, err := c.Invoke("getNearbyRestos", []*tree.Node{tree.NewText("addr-7")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bytes*5 > full.Bytes {
		t.Fatalf("push transfer %d not ≪ full %d", resp.Bytes, full.Bytes)
	}
}

func TestFaults(t *testing.T) {
	_, srv := testServer(t, workload.DefaultSpec())
	c := &Client{BaseURL: srv.URL}
	if _, err := c.Invoke("ghost", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("err = %v", err)
	}
	// Bad envelope straight over HTTP.
	resp, err := http.Post(srv.URL+"/services/getRating", "application/xml", strings.NewReader("<nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Unknown endpoint.
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestEnvelopeMismatch(t *testing.T) {
	_, srv := testServer(t, workload.DefaultSpec())
	body, err := EncodeInvoke("getRating", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/services/getHotels", "application/xml", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched envelope accepted: %d", resp.StatusCode)
	}
}

func TestEncodeInvokeEscaping(t *testing.T) {
	pushed := pattern.MustParse(`/r[a="<&>"]`)
	body, err := EncodeInvoke("svc", []*tree.Node{tree.NewText("p&q")}, pushed)
	if err != nil {
		t.Fatal(err)
	}
	params, got, _, err := decodeInvoke(body, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.String() != pushed.String() {
		t.Fatalf("pushed round trip: %v", got)
	}
	if len(params) != 1 || params[0].Label != "p&q" {
		t.Fatalf("params round trip: %v", params)
	}
}

// TestEndToEndOverHTTP runs the full lazy engine against HTTP-proxied
// services and checks the result matches a purely local evaluation — the
// E8 configuration.
func TestEndToEndOverHTTP(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 12
	spec.HiddenHotels = 4
	spec.PushCapable = true
	w, srv := testServer(t, spec)

	c := &Client{BaseURL: srv.URL}
	remoteReg, err := c.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Evaluate(w.Doc.Clone(), w.Query, w.Registry,
		core.Options{Strategy: core.LazyNFQTyped, Schema: w.Schema})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := core.Evaluate(w.Doc.Clone(), w.Query, remoteReg,
		core.Options{Strategy: core.LazyNFQTyped, Schema: w.Schema, Push: true,
			Clock: service.NewWallClock(false)})
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Results) != len(remote.Results) {
		t.Fatalf("local %d vs remote %d results", len(local.Results), len(remote.Results))
	}
	if len(remote.Results) != w.ExpectedResults {
		t.Fatalf("remote results = %d, want %d", len(remote.Results), w.ExpectedResults)
	}
	if remote.Stats.PushedCalls == 0 {
		t.Fatal("no pushes over HTTP")
	}
	if remoteReg.Stats().Invocations != remote.Stats.CallsInvoked {
		t.Fatalf("proxy accounting mismatch: %d vs %d",
			remoteReg.Stats().Invocations, remote.Stats.CallsInvoked)
	}
}

func TestServerSleepsWhenAsked(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name:    "slow",
		Latency: 30 * time.Millisecond,
		Handler: func([]*tree.Node) ([]*tree.Node, error) {
			return []*tree.Node{tree.NewText("ok")}, nil
		},
	})
	srv := httptest.NewServer(NewServer(reg, true))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	start := time.Now()
	if _, err := c.Invoke("slow", nil, nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("server did not sleep the configured latency")
	}
}

func TestClientDefaultsAndBadBase(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"} // nothing listens on port 1
	if c.HTTPClient != nil {
		t.Fatal("precondition")
	}
	if _, err := c.Invoke("x", nil, nil); err == nil {
		t.Fatal("unreachable provider must fail")
	}
	if _, err := c.Describe(); err == nil {
		t.Fatal("unreachable describe must fail")
	}
	if _, err := c.RegistryFor(); err == nil {
		t.Fatal("unreachable RegistryFor must fail")
	}
}

func TestFaultEscaping(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "bad", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return nil, fmt.Errorf("broken <tag> & more")
	}})
	srv := httptest.NewServer(NewServer(reg, false))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	_, err := c.Invoke("bad", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "broken <tag> & more") {
		t.Fatalf("fault round trip: %v", err)
	}
}

func TestBadResponsesFromServer(t *testing.T) {
	// A fake provider returning malformed payloads.
	mux := http.NewServeMux()
	mux.HandleFunc("/services/garbled", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<not-closed")
	})
	mux.HandleFunc("/services/wrongroot", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<other/>")
	})
	mux.HandleFunc("/services", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<<<")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	if _, err := c.Invoke("garbled", nil, nil); err == nil {
		t.Fatal("garbled payload accepted")
	}
	if _, err := c.Invoke("wrongroot", nil, nil); err == nil {
		t.Fatal("wrong response root accepted")
	}
	if _, err := c.Describe(); err == nil {
		t.Fatal("garbled descriptor accepted")
	}
}

func TestBadPushedQueryInEnvelope(t *testing.T) {
	_, srv := testServer(t, workload.DefaultSpec())
	body := `<invoke service="getRating" query="[[["><params/></invoke>`
	resp, err := http.Post(srv.URL+"/services/getRating", "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pushed query accepted: %d", resp.StatusCode)
	}
}
