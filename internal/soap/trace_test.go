package soap

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// traceWorld is a deterministic multi-service world for propagation
// tests: nServices extensional services, each referenced by exactly one
// call in the document, so per-service fault counters are independent
// of invocation interleaving and traces are comparable across pool
// widths.
func traceWorld(nServices int) (*service.Registry, *tree.Document, *pattern.Pattern) {
	reg := service.NewRegistry()
	root := tree.NewElement("root")
	for i := 0; i < nServices; i++ {
		name := fmt.Sprintf("svc%d", i)
		i := i
		reg.Register(&service.Service{
			Name:    name,
			Latency: time.Duration(i+1) * time.Millisecond,
			Handler: func(params []*tree.Node) ([]*tree.Node, error) {
				item := tree.NewElement("item")
				item.Append(tree.NewText(fmt.Sprintf("v%d", i)))
				return []*tree.Node{item}, nil
			},
		})
		root.Append(tree.NewCall(name))
	}
	return reg, tree.NewDocument(root), pattern.MustParse("/root/item")
}

// tracedServer serves reg with a server-side tracer attached and
// returns a client-side proxy registry for it.
func tracedServer(t *testing.T, reg *service.Registry) (*service.Registry, *telemetry.Tracer) {
	t.Helper()
	s := NewServer(reg, false)
	s.Tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL}
	remoteReg, err := c.RegistryFor()
	if err != nil {
		t.Fatal(err)
	}
	return remoteReg, s.Tracer
}

// TestTracePropagationOverHTTP: with a trace ID set on the engine
// tracer, the provider's spans come back in the response envelope and
// nest under the client's invoke spans, carrying the client's trace ID
// end to end; the server grafts the same subtree into its own ring.
func TestTracePropagationOverHTTP(t *testing.T) {
	reg, doc, q := traceWorld(4)
	remoteReg, serverTracer := tracedServer(t, reg)

	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	traceID := telemetry.DeriveTraceID("/root/item", "trace_test")
	tracer.SetTrace(traceID)
	out, err := core.Evaluate(doc, q, remoteReg, core.Options{
		Strategy: core.LazyNFQ, Tracer: tracer, RemoteSpans: 512,
		Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(out.Results))
	}

	spans := tracer.Spans(0)
	byID := map[telemetry.SpanID]telemetry.Span{}
	invokes, https, services := 0, 0, 0
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		switch s.Name {
		case "invoke":
			invokes++
		case "http-invoke":
			https++
			if p, ok := byID[s.Parent]; !ok || p.Name != "invoke" {
				t.Fatalf("http-invoke not nested under an invoke span: %+v", s)
			}
			if s.Trace != traceID {
				t.Fatalf("remote span trace = %q, want %q", s.Trace, traceID)
			}
		case "service":
			services++
			if p, ok := byID[s.Parent]; !ok || p.Name != "http-invoke" {
				t.Fatalf("service span not nested under http-invoke: %+v", s)
			}
		}
	}
	if invokes != 4 || https != 4 || services != 4 {
		t.Fatalf("spans: %d invoke, %d http-invoke, %d service (want 4 each)", invokes, https, services)
	}

	// The provider kept its own copy of the request trace.
	serverSide := 0
	for _, s := range serverTracer.Spans(0) {
		if s.Trace != traceID {
			t.Fatalf("server-side span trace = %q, want %q", s.Trace, traceID)
		}
		if s.Name == "http-invoke" {
			serverSide++
		}
	}
	if serverSide != 4 {
		t.Fatalf("server ring kept %d http-invoke spans, want 4", serverSide)
	}
}

// TestNoTraceNoRemoteSpans: without a trace ID the envelope stays
// legacy-shaped and no remote spans come back.
func TestNoTraceNoRemoteSpans(t *testing.T) {
	reg, doc, q := traceWorld(2)
	remoteReg, _ := tracedServer(t, reg)
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	_, err := core.Evaluate(doc, q, remoteReg, core.Options{
		Strategy: core.LazyNFQ, Tracer: tracer, RemoteSpans: 512,
		Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tracer.Spans(0) {
		if s.Name == "http-invoke" || s.Name == "service" {
			t.Fatalf("remote span leaked without a trace ID: %+v", s)
		}
		if s.Trace != "" {
			t.Fatalf("span carries a trace ID nobody set: %+v", s)
		}
	}
}

// TestRecursivePushSpansNested: when the provider materialises its own
// intensional results (recursive push), its per-call push-invoke spans
// ride back in the same envelope, nested under the service span.
func TestRecursivePushSpansNested(t *testing.T) {
	spec := workload.DefaultSpec()
	spec.Hotels = 8
	spec.HiddenHotels = 2
	spec.PushCapable = true
	w := workload.Hotels(spec)
	remoteReg, _ := tracedServer(t, RecursivePush(w.Registry, 100_000))

	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	tracer.SetTrace(telemetry.DeriveTraceID("recursive"))
	out, err := core.Evaluate(w.Doc.Clone(), w.Query, remoteReg, core.Options{
		Strategy: core.LazyNFQ, Push: true, Tracer: tracer, RemoteSpans: 512,
		Clock: service.NewWallClock(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != w.ExpectedResults {
		t.Fatalf("results = %d, want %d", len(out.Results), w.ExpectedResults)
	}
	byID := map[telemetry.SpanID]telemetry.Span{}
	for _, s := range tracer.Spans(0) {
		byID[s.ID] = s
	}
	pushInvokes := 0
	for _, s := range byID {
		if s.Name != "push-invoke" {
			continue
		}
		pushInvokes++
		if p, ok := byID[s.Parent]; !ok || p.Name != "service" {
			t.Fatalf("push-invoke not nested under service: %+v", s)
		}
	}
	if pushInvokes == 0 {
		t.Fatal("recursive materialisation emitted no push-invoke spans")
	}
}

// normalizeSpans zeroes wall-clock fields (Start, Wall) that vary
// between runs; everything else — names, hierarchy, workers, virtual
// costs, attributes, trace IDs — must be deterministic.
func normalizeSpans(spans []telemetry.Span) []telemetry.Span {
	out := append([]telemetry.Span(nil), spans...)
	for i := range out {
		out[i].Start = time.Time{}
		out[i].Wall = 0
	}
	return out
}

// TestExplainByteIdenticalOverHTTP is the acceptance check: two
// identical traced runs over an HTTP provider render byte-identical
// explain trees (wall-clock fields normalised, everything else exact —
// span IDs, nesting, virtual costs, attributes).
func TestExplainByteIdenticalOverHTTP(t *testing.T) {
	reg, _, q := traceWorld(6)
	remoteReg, _ := tracedServer(t, reg)
	render := func() string {
		_, doc, _ := traceWorld(6)
		tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
		tracer.SetTrace(telemetry.DeriveTraceID("/root/item", "explain"))
		// A SimClock keeps even the virtual accounting deterministic: a
		// WallClock would fold real scheduling time into the layer and
		// evaluate spans' virtual totals.
		_, err := core.Evaluate(doc, q, remoteReg, core.Options{
			Strategy: core.LazyNFQ, Parallel: true, InvokeWorkers: 3,
			Tracer: tracer, RemoteSpans: 512, Clock: &service.SimClock{},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		telemetry.WriteTree(&buf, normalizeSpans(tracer.Spans(0)))
		return buf.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("explain trees differ across identical runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if !bytes.Contains([]byte(first), []byte("http-invoke")) {
		t.Fatalf("explain tree misses remote spans:\n%s", first)
	}
}

// traceShape is the width-independent shape of one span: wall-clock and
// worker identity stripped, structure and accounting kept.
type traceShape struct {
	name    string
	parent  string // parent span name ("" for roots)
	trace   string
	virtual time.Duration
	service string
	status  string
	attempt string
}

func shapes(spans []telemetry.Span) []traceShape {
	byID := map[telemetry.SpanID]telemetry.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	out := make([]traceShape, 0, len(spans))
	for _, s := range spans {
		sh := traceShape{
			name: s.Name, trace: s.Trace, virtual: s.Virtual,
			service: s.Attr("service"), status: s.Attr("status"), attempt: s.Attr("attempt"),
		}
		if p, ok := byID[s.Parent]; ok {
			sh.parent = p.Name
		}
		out = append(out, sh)
	}
	return out
}

// TestTracePropagationUnderFaultsRetries: a retried call gets one
// attempt child span per attempt (failed attempts classed, the last
// "ok"), the surviving attempt's remote subtree still grafts under the
// invoke span with the propagated trace ID, and the whole span stream
// is identical across invocation-pool widths (worker assignment aside)
// and across repeated runs at the same width.
func TestTracePropagationUnderFaultsRetries(t *testing.T) {
	const nServices = 6
	reg, _, q := traceWorld(nServices)
	remoteReg, _ := tracedServer(t, reg)
	traceID := telemetry.DeriveTraceID("/root/item", "faults")

	run := func(width int) []telemetry.Span {
		// Fresh injector per run: each service fails its first two
		// invocations, and each service is called exactly once, so every
		// call runs exactly three attempts at every pool width.
		flaky := service.NewFaults(service.FaultSpec{Seed: 7, FailFirst: 2}).Wrap(remoteReg)
		_, doc, _ := traceWorld(nServices)
		tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
		tracer.SetTrace(traceID)
		_, err := core.Evaluate(doc, q, flaky, core.Options{
			Strategy: core.LazyNFQ, Parallel: true, InvokeWorkers: width,
			Tracer: tracer, RemoteSpans: 512,
			Retry: core.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
			Clock: &service.SimClock{},
		})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		return tracer.Spans(0)
	}

	ref := run(1)
	byID := map[telemetry.SpanID]telemetry.Span{}
	for _, s := range ref {
		byID[s.ID] = s
	}
	attemptsPerInvoke := map[telemetry.SpanID][]telemetry.Span{}
	invokes := 0
	for _, s := range ref {
		switch s.Name {
		case "invoke":
			invokes++
			if s.Attr("attempts") != "3" {
				t.Fatalf("invoke span attempts = %q, want 3: %+v", s.Attr("attempts"), s)
			}
		case "attempt":
			attemptsPerInvoke[s.Parent] = append(attemptsPerInvoke[s.Parent], s)
		case "http-invoke":
			if p := byID[s.Parent]; p.Name != "invoke" {
				t.Fatalf("remote subtree detached from invoke: %+v", s)
			}
			if s.Trace != traceID {
				t.Fatalf("remote trace = %q, want %q", s.Trace, traceID)
			}
		}
	}
	if invokes != nServices {
		t.Fatalf("invoke spans = %d, want %d", invokes, nServices)
	}
	if len(attemptsPerInvoke) != nServices {
		t.Fatalf("retried invokes with attempt children = %d, want %d", len(attemptsPerInvoke), nServices)
	}
	for id, atts := range attemptsPerInvoke {
		if len(atts) != 3 {
			t.Fatalf("invoke %d has %d attempt spans, want 3", id, len(atts))
		}
		for i, a := range atts {
			want := "transient"
			if i == 2 {
				want = "ok"
			}
			if a.Attr("attempt") != fmt.Sprint(i+1) || a.Attr("status") != want {
				t.Fatalf("attempt %d: %+v", i, a)
			}
		}
	}

	// Same width → byte-identical stream (wall-clock normalised); other
	// widths → identical shape, worker striping aside.
	if !reflect.DeepEqual(normalizeSpans(ref), normalizeSpans(run(1))) {
		t.Fatal("span streams differ across identical runs")
	}
	refShape := shapes(ref)
	for _, width := range []int{2, 4} {
		if got := shapes(run(width)); !reflect.DeepEqual(got, refShape) {
			t.Fatalf("span shape diverges at width %d", width)
		}
	}
}
