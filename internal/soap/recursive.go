package soap

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// RecursivePush upgrades a registry for peer deployment: services whose
// results embed further calls (and therefore cannot honour a pushed query
// directly — see service.Service.CanPush) are wrapped so that, when a
// query is pushed, the provider first materialises its own result by
// resolving the embedded calls against its *own* registry, then evaluates
// the pushed query over the materialised forest and returns binding
// tuples.
//
// This models the ActiveXML peer-to-peer deployment, where every provider
// is itself an AXML system able to resolve its intensional data before
// answering (the setting of Section 7 of the paper). maxCalls bounds the
// materialisation, mirroring the engine's own termination budget.
//
// The returned registry contains a wrapper for every service of reg;
// wrapped services advertise CanPush. Materialisation resolves embedded
// calls sequentially; RecursivePushWorkers bounds a concurrent pool.
func RecursivePush(reg *service.Registry, maxCalls int) *service.Registry {
	return RecursivePushWorkers(reg, maxCalls, 1)
}

// RecursivePushWorkers is RecursivePush with the provider-side
// materialisation fixpoint invoking up to workers embedded calls of each
// round concurrently (values below 2 mean sequential). Responses are
// spliced in document order after each round, so the materialised forest
// — and therefore the binding tuples returned to the peer — is identical
// for every pool width; handlers are required to be concurrent-safe
// (see service.Handler).
func RecursivePushWorkers(reg *service.Registry, maxCalls, workers int) *service.Registry {
	out := service.NewRegistry()
	for _, name := range reg.Names() {
		svc := reg.Lookup(name)
		wrapped := &service.Service{
			Name:    svc.Name,
			Latency: svc.Latency,
			CanPush: true,
		}
		wrapped.RemoteCtx = func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
			resp, err := reg.InvokeContext(ctx, svc.Name, params, nil)
			if err != nil {
				return service.Response{}, err
			}
			if pushed == nil {
				return resp, nil
			}
			forest, err := materialise(ctx, reg, resp.Forest, maxCalls, workers)
			if err != nil {
				return service.Response{}, err
			}
			results, _ := pattern.EvalForest(forest, pushed)
			bindings := make([]tree.Binding, 0, len(results))
			for _, r := range results {
				b := tree.Binding{}
				for k, v := range r.Values {
					b[k] = v
				}
				bindings = append(bindings, b)
			}
			tu := tree.NewTuples(pushed.String(), bindings)
			data, err := tree.Marshal(tu)
			if err != nil {
				return service.Response{}, err
			}
			return service.Response{
				Forest:  []*tree.Node{tu},
				Bytes:   len(data),
				Latency: svc.Latency,
				Pushed:  true,
			}, nil
		}
		out.Register(wrapped)
	}
	return out
}

// materialise resolves every call embedded in the forest, recursively, by
// invoking the registry — the provider-side fixpoint. Each round's calls
// are invoked on a pool of up to workers goroutines (striped like the
// engine's invocation pool: call i runs on worker i mod width) and the
// responses spliced sequentially in document order, so the result does
// not depend on the pool width. Only invocations run concurrently; all
// document mutation stays on the calling goroutine — which is also where
// per-call spans are emitted into the request's trace (when ctx carries
// one), keeping traces deterministic at every width.
func materialise(ctx context.Context, reg *service.Registry, forest []*tree.Node, maxCalls, workers int) ([]*tree.Node, error) {
	tc, traced := telemetry.TraceFrom(ctx)
	root := tree.NewElement("materialise")
	for _, n := range forest {
		root.Append(n)
	}
	doc := tree.NewDocument(root)
	invoked := 0
	round := 0
	for {
		calls := doc.Calls()
		if len(calls) == 0 {
			break
		}
		if invoked+len(calls) > maxCalls {
			return nil, fmt.Errorf("soap: recursive push exceeded %d call budget", maxCalls)
		}
		invoked += len(calls)
		round++
		type result struct {
			resp  service.Response
			err   error
			start time.Time
			wall  time.Duration
		}
		results := make([]result, len(calls))
		runOne := func(i int) {
			start := time.Now()
			resp, err := reg.InvokeContext(ctx, calls[i].Label, cloneForest(calls[i].Children), nil)
			results[i] = result{resp, err, start, time.Since(start)}
		}
		width := workers
		if width > len(calls) {
			width = len(calls)
		}
		if width <= 1 {
			for i := range calls {
				runOne(i)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < width; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(calls); i += width {
						runOne(i)
					}
				}(w)
			}
			wg.Wait()
		}
		for i, c := range calls {
			if results[i].err != nil {
				return nil, results[i].err
			}
			if traced && tc.Tracer != nil {
				worker := 0
				if width > 1 {
					worker = i % width
				}
				id := tc.Tracer.Emit(telemetry.Span{
					Parent:  tc.Parent,
					Name:    "push-invoke",
					Worker:  worker,
					Start:   results[i].start,
					Wall:    results[i].wall,
					Virtual: results[i].resp.Latency,
					Attrs: []telemetry.Attr{
						{Key: "service", Value: c.Label},
						{Key: "round", Value: strconv.Itoa(round)},
					},
				})
				tc.Tracer.GraftRemote(id, results[i].resp.RemoteTrace)
			}
			doc.ReplaceCall(c, results[i].resp.Forest)
		}
	}
	out := append([]*tree.Node(nil), root.Children...)
	for _, n := range out {
		n.Parent = nil
	}
	return out, nil
}

func cloneForest(ns []*tree.Node) []*tree.Node {
	out := make([]*tree.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}
