package soap

import (
	"fmt"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// RecursivePush upgrades a registry for peer deployment: services whose
// results embed further calls (and therefore cannot honour a pushed query
// directly — see service.Service.CanPush) are wrapped so that, when a
// query is pushed, the provider first materialises its own result by
// resolving the embedded calls against its *own* registry, then evaluates
// the pushed query over the materialised forest and returns binding
// tuples.
//
// This models the ActiveXML peer-to-peer deployment, where every provider
// is itself an AXML system able to resolve its intensional data before
// answering (the setting of Section 7 of the paper). maxCalls bounds the
// materialisation, mirroring the engine's own termination budget.
//
// The returned registry contains a wrapper for every service of reg;
// wrapped services advertise CanPush.
func RecursivePush(reg *service.Registry, maxCalls int) *service.Registry {
	out := service.NewRegistry()
	for _, name := range reg.Names() {
		svc := reg.Lookup(name)
		wrapped := &service.Service{
			Name:    svc.Name,
			Latency: svc.Latency,
			CanPush: true,
		}
		wrapped.Remote = func(params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
			resp, err := reg.Invoke(svc.Name, params, nil)
			if err != nil {
				return service.Response{}, err
			}
			if pushed == nil {
				return resp, nil
			}
			forest, err := materialise(reg, resp.Forest, maxCalls)
			if err != nil {
				return service.Response{}, err
			}
			results, _ := pattern.EvalForest(forest, pushed)
			bindings := make([]tree.Binding, 0, len(results))
			for _, r := range results {
				b := tree.Binding{}
				for k, v := range r.Values {
					b[k] = v
				}
				bindings = append(bindings, b)
			}
			tu := tree.NewTuples(pushed.String(), bindings)
			data, err := tree.Marshal(tu)
			if err != nil {
				return service.Response{}, err
			}
			return service.Response{
				Forest:  []*tree.Node{tu},
				Bytes:   len(data),
				Latency: svc.Latency,
				Pushed:  true,
			}, nil
		}
		out.Register(wrapped)
	}
	return out
}

// materialise resolves every call embedded in the forest, recursively, by
// invoking the registry — the provider-side fixpoint.
func materialise(reg *service.Registry, forest []*tree.Node, maxCalls int) ([]*tree.Node, error) {
	root := tree.NewElement("materialise")
	for _, n := range forest {
		root.Append(n)
	}
	doc := tree.NewDocument(root)
	invoked := 0
	for {
		calls := doc.Calls()
		if len(calls) == 0 {
			break
		}
		for _, c := range calls {
			if invoked >= maxCalls {
				return nil, fmt.Errorf("soap: recursive push exceeded %d call budget", maxCalls)
			}
			invoked++
			resp, err := reg.Invoke(c.Label, cloneForest(c.Children), nil)
			if err != nil {
				return nil, err
			}
			doc.ReplaceCall(c, resp.Forest)
		}
	}
	out := append([]*tree.Node(nil), root.Children...)
	for _, n := range out {
		n.Parent = nil
	}
	return out, nil
}

func cloneForest(ns []*tree.Node) []*tree.Node {
	out := make([]*tree.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}
