// Package soap exposes a service registry over HTTP with a small XML
// envelope, in the spirit of the Web-services standards the ActiveXML
// system builds on (Section 8 of "Lazy Query Evaluation for Active XML",
// SIGMOD 2004). It provides both sides of the wire:
//
//   - Server wraps a service.Registry into an http.Handler: one endpoint
//     per service, a descriptor document listing the available services
//     (a WSDL-lite), and optional simulated latency.
//   - Client invokes remote services; Proxy packages a remote endpoint as
//     a service.Service so the evaluation engine uses HTTP providers
//     exactly like local ones, including server-side query pushing
//     (Section 7): the pushed pattern travels in the envelope and the
//     provider returns binding tuples.
//
// The envelope is deliberately simple XML, not full SOAP 1.1 — the paper's
// techniques do not depend on the envelope details, only on XML transport
// and service descriptors:
//
//	request:  <invoke service="getNearbyRestos" query="...optional..."
//	                  trace="...optional..." span="..." spans="...">
//	             <params> ...parameter forest... </params>
//	          </invoke>
//	response: <response pushed="true|false"> ...result forest...
//	             <axml.trace> ...optional span subtree (JSON)... </axml.trace>
//	          </response>
//	fault:    <fault class="transient|timeout|permanent">message</fault>
//	          (with a non-2xx status code)
//
// Faults carry an error class so clients can map wire failures onto the
// service package's retry classification: the Client turns network
// errors, HTTP timeouts and classed faults into service.Fault values the
// evaluation engine's retry policy understands.
//
// The trace/span/spans attributes are the W3C-traceparent analogue:
// trace is the distributed trace ID, span the caller's parent span, and
// spans an opt-in bound on how many server-side spans the response may
// return in its <axml.trace> child. The server continues the trace in a
// per-request tracer (recursive-push materialisation included), grafts
// the request's subtree into its own ring for /debug/trace, and — when
// spans > 0 — ships the subtree back so the client stitches one
// cross-process explain tree.
package soap

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// Server serves a registry over HTTP.
type Server struct {
	reg *service.Registry
	// sleep makes the server physically wait each service's configured
	// latency before answering, so remote experiments feel real costs.
	sleep bool
	// Deadline bounds one invocation's handling (the handler plus the
	// simulated latency sleep); 0 means unbounded. An expired
	// invocation answers 504 with a timeout-classed fault, so remote
	// callers can classify and retry it.
	Deadline time.Duration
	// Metrics, when set, counts invocations (axml_http_requests_total),
	// fault answers (axml_http_faults_total) and handler latency
	// (axml_http_handler_seconds). Nil disables.
	Metrics *telemetry.Registry
	// Tracer, when set, records one "http-invoke" span per invocation
	// with service and status attributes. Nil disables.
	Tracer *telemetry.Tracer
	// MaxPayloadBytes bounds one request body; 0 means
	// DefaultMaxPayloadBytes. An oversized request is rejected with an
	// explicit 413 permanent-classed "payload too large" fault rather
	// than silently truncated into a confusing parse error.
	MaxPayloadBytes int64
}

// DefaultMaxPayloadBytes is the payload bound applied symmetrically by
// Server (request bodies) and Client (response bodies) when their
// MaxPayloadBytes is 0.
const DefaultMaxPayloadBytes = 64 << 20

// MaxRemoteSpans caps how many spans a server returns in one response
// envelope, whatever the request's spans attribute asks for — remote
// span return is a debugging aid, and its payload cost must stay
// bounded.
const MaxRemoteSpans = 512

// serverTraceCapacity bounds the per-request tracer a traced invocation
// records into. It is deliberately small: one invocation's subtree, not
// a process history.
const serverTraceCapacity = 1024

// traceElem is the response child carrying the returned span subtree.
// The dotted name keeps it out of the way of ordinary service result
// labels, and the client only interprets it when it asked for spans.
const traceElem = "axml.trace"

// readLimited reads at most limit bytes from r and reports whether the
// stream held more (it reads one byte past the limit to distinguish
// "exactly limit" from "over").
func readLimited(r io.Reader, limit int64) (data []byte, over bool, err error) {
	data, err = io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, false, err
	}
	if int64(len(data)) > limit {
		return nil, true, nil
	}
	return data, false, nil
}

// NewServer wraps a registry. When sleepLatency is set, each invocation
// blocks for the service's configured latency before responding.
func NewServer(reg *service.Registry, sleepLatency bool) *Server {
	return &Server{reg: reg, sleep: sleepLatency}
}

// ServeHTTP implements http.Handler:
//
//	GET  /services            → descriptor of all services
//	POST /services/<name>     → invoke <name> with an envelope body
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/services":
		s.describe(w)
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/services/"):
		s.invoke(w, r, strings.TrimPrefix(r.URL.Path, "/services/"))
	default:
		writeFault(w, http.StatusNotFound, service.Permanent, fmt.Sprintf("no such endpoint %s %s", r.Method, r.URL.Path))
	}
}

// describe writes the WSDL-lite service descriptor.
func (s *Server) describe(w http.ResponseWriter) {
	var sb strings.Builder
	sb.WriteString("<services>")
	for _, name := range s.reg.Names() {
		svc := s.reg.Lookup(name)
		fmt.Fprintf(&sb, `<service name=%q push="%t" latencyMs="%d"/>`,
			name, svc.CanPush, svc.Latency.Milliseconds())
	}
	sb.WriteString("</services>")
	w.Header().Set("Content-Type", "application/xml")
	io.WriteString(w, sb.String())
}

func (s *Server) invoke(w http.ResponseWriter, r *http.Request, name string) {
	start := time.Now()
	s.Metrics.Counter(telemetry.MetricHTTPRequests).Inc()
	status := http.StatusOK
	fail := func(code int, class service.ErrorClass, msg string) {
		status = code
		s.Metrics.Counter(telemetry.MetricHTTPFaults).Inc()
		writeFault(w, code, class, msg)
	}
	// Per-request trace state: created once the envelope reveals a trace
	// ID. finishTrace ends the request's root span exactly once, grafts
	// the subtree into the server's long-lived ring (so /debug/trace
	// shows continued traces) and returns the subtree for the response.
	var (
		rt        *telemetry.Tracer
		root      *telemetry.ActiveSpan
		traceDone bool
	)
	finishTrace := func() []telemetry.Span {
		if rt == nil || traceDone {
			return nil
		}
		traceDone = true
		root.SetAttr("status", strconv.Itoa(status))
		root.End()
		spans := rt.Spans(0)
		s.Tracer.GraftRemote(0, spans)
		return spans
	}
	defer func() {
		s.Metrics.Histogram(telemetry.MetricHTTPHandlerSeconds).Observe(time.Since(start))
		if rt != nil {
			// The traced root span replaces the flat legacy span — fault
			// paths finish it here; the success path already has.
			finishTrace()
			return
		}
		if s.Tracer != nil {
			s.Tracer.Emit(telemetry.Span{
				Name:  "http-invoke",
				Start: start,
				Wall:  time.Since(start),
				Attrs: []telemetry.Attr{
					{Key: "service", Value: name},
					{Key: "status", Value: strconv.Itoa(status)},
				},
			})
		}
	}()
	limit := s.MaxPayloadBytes
	if limit <= 0 {
		limit = DefaultMaxPayloadBytes
	}
	body, over, err := readLimited(r.Body, limit)
	if err != nil {
		fail(http.StatusBadRequest, service.Transient, "unreadable body: "+err.Error())
		return
	}
	if over {
		fail(http.StatusRequestEntityTooLarge, service.Permanent,
			fmt.Sprintf("payload too large: request body exceeds %d bytes", limit))
		return
	}
	params, pushed, tc, err := decodeInvoke(body, name)
	if err != nil {
		fail(http.StatusBadRequest, service.Permanent, err.Error())
		return
	}
	svc := s.reg.Lookup(name)
	if svc == nil {
		fail(http.StatusNotFound, service.Permanent, fmt.Sprintf("unknown service %q", name))
		return
	}
	ctx := r.Context()
	if tc.TraceID != "" {
		if tc.MaxSpans > MaxRemoteSpans {
			tc.MaxSpans = MaxRemoteSpans
		}
		rt = telemetry.NewTracer(serverTraceCapacity)
		rt.SetTrace(tc.TraceID)
		root = rt.Start("http-invoke", 0)
		root.SetAttr("service", name)
	}
	// The handler (and its simulated latency) runs under the server's
	// per-invoke deadline and the client's disconnect. On expiry the
	// goroutine is abandoned — handlers are pure, so its late result is
	// simply dropped (late spans land in the abandoned request tracer,
	// which is dropped with it).
	type invokeResult struct {
		resp service.Response
		err  error
	}
	done := make(chan invokeResult, 1)
	go func() {
		ictx := ctx
		var ss *telemetry.ActiveSpan
		if rt != nil {
			ss = rt.Start("service", root.ID())
			ss.SetAttr("service", name)
			ictx = telemetry.WithTrace(ctx, telemetry.TraceContext{
				TraceID:  tc.TraceID,
				Parent:   ss.ID(),
				MaxSpans: tc.MaxSpans,
				Tracer:   rt,
			})
		}
		resp, err := s.reg.InvokeContext(ictx, name, params, pushed)
		if ss != nil {
			ss.AddVirtual(resp.Latency)
			if resp.Pushed {
				ss.SetAttr("pushed", "true")
			}
			if err != nil {
				ss.SetAttr("error", service.ClassOf(err).String())
			}
			ss.End()
		}
		if err == nil && s.sleep {
			time.Sleep(svc.Latency)
		}
		done <- invokeResult{resp, err}
	}()
	var expired <-chan time.Time
	if s.Deadline > 0 {
		t := time.NewTimer(s.Deadline)
		defer t.Stop()
		expired = t.C
	}
	var res invokeResult
	select {
	case res = <-done:
	case <-expired:
		fail(http.StatusGatewayTimeout, service.Timeout,
			fmt.Sprintf("invocation of %s exceeded the server deadline %v", name, s.Deadline))
		return
	case <-r.Context().Done():
		return
	}
	if res.err != nil {
		fail(http.StatusInternalServerError, service.ClassOf(res.err), res.err.Error())
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<response pushed="%t">`, res.resp.Pushed)
	for _, n := range res.resp.Forest {
		b, err := tree.Marshal(n)
		if err != nil {
			fail(http.StatusInternalServerError, service.Permanent, "marshal: "+err.Error())
			return
		}
		sb.Write(b)
	}
	spans := finishTrace()
	if tc.MaxSpans > 0 && len(spans) > 0 {
		if len(spans) > tc.MaxSpans {
			// Keep the earliest spans plus the root (recorded last, since
			// it ends last): truncated middles re-root under the caller's
			// invoke span, which BuildTree already tolerates.
			head := spans[: tc.MaxSpans-1 : tc.MaxSpans-1]
			spans = append(head, spans[len(spans)-1])
		}
		// The caller sent the trace ID; repeating it on every span of
		// the subtree would be dead weight, so it travels only by its
		// absence — the client restamps it on decode. Spans from a
		// different trace (none today) keep theirs. Start timestamps are
		// this host's clock, which the caller cannot compare against its
		// own; dropping them keeps the envelope lean and the stitched
		// trace free of cross-host clock skew. (finishTrace already
		// grafted the full-fidelity subtree into /debug/trace.)
		for i := range spans {
			if spans[i].Trace == tc.TraceID {
				spans[i].Trace = ""
			}
			spans[i].Start = time.Time{}
		}
		if b, err := telemetry.MarshalSpansJSONCompact(spans); err == nil {
			sb.WriteString("<" + traceElem + ">")
			escapeCharData(&sb, b)
			sb.WriteString("</" + traceElem + ">")
		}
	}
	sb.WriteString("</response>")
	w.Header().Set("Content-Type", "application/xml")
	io.WriteString(w, sb.String())
}

// escapeCharData writes b as XML element character data, escaping only
// what character data requires (&, <, >). xml.EscapeText additionally
// escapes quotes — needed for attribute values, but a pure cost here:
// the span subtree is quote-dense JSON shipped on every traced
// invocation, and each &#34; would be five bytes escaped, shipped, and
// decoded back for nothing.
func escapeCharData(sb *strings.Builder, b []byte) {
	last := 0
	for i, c := range b {
		var esc string
		switch c {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		default:
			continue
		}
		sb.Write(b[last:i])
		sb.WriteString(esc)
		last = i + 1
	}
	sb.Write(b[last:])
}

func writeFault(w http.ResponseWriter, code int, class service.ErrorClass, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(code)
	var sb strings.Builder
	if err := xml.EscapeText(&sb, []byte(msg)); err != nil {
		sb.Reset()
		sb.WriteString("internal error")
	}
	fmt.Fprintf(w, `<fault class="%s">%s</fault>`, class, sb.String())
}

// EncodeInvoke builds the request envelope for an invocation.
func EncodeInvoke(serviceName string, params []*tree.Node, pushed *pattern.Pattern) ([]byte, error) {
	return EncodeInvokeTrace(serviceName, params, pushed, telemetry.TraceContext{})
}

// EncodeInvokeTrace builds the request envelope with trace propagation
// attributes: the trace ID, the caller's parent span and the opt-in
// remote span budget travel as attributes of the invoke element. A zero
// TraceContext encodes the plain envelope byte-for-byte.
func EncodeInvokeTrace(serviceName string, params []*tree.Node, pushed *pattern.Pattern, tc telemetry.TraceContext) ([]byte, error) {
	var sb strings.Builder
	sb.WriteString(`<invoke service="`)
	if err := xml.EscapeText(&sb, []byte(serviceName)); err != nil {
		return nil, err
	}
	sb.WriteString(`"`)
	if pushed != nil {
		sb.WriteString(` query="`)
		if err := xml.EscapeText(&sb, []byte(pushed.String())); err != nil {
			return nil, err
		}
		sb.WriteString(`"`)
	}
	if tc.TraceID != "" {
		sb.WriteString(` trace="`)
		if err := xml.EscapeText(&sb, []byte(tc.TraceID)); err != nil {
			return nil, err
		}
		sb.WriteString(`"`)
		if tc.Parent != 0 {
			fmt.Fprintf(&sb, ` span="%d"`, uint64(tc.Parent))
		}
		if tc.MaxSpans > 0 {
			fmt.Fprintf(&sb, ` spans="%d"`, tc.MaxSpans)
		}
	}
	sb.WriteString("><params>")
	for _, p := range params {
		b, err := tree.Marshal(p)
		if err != nil {
			return nil, err
		}
		sb.Write(b)
	}
	sb.WriteString("</params></invoke>")
	return []byte(sb.String()), nil
}

// decodeInvoke parses the request envelope. The name in the URL must
// match the envelope's service attribute when present. The returned
// TraceContext is zero when the caller did not propagate a trace.
func decodeInvoke(body []byte, urlName string) ([]*tree.Node, *pattern.Pattern, telemetry.TraceContext, error) {
	var tc telemetry.TraceContext
	roots, err := tree.UnmarshalForest(body)
	if err != nil {
		return nil, nil, tc, fmt.Errorf("bad envelope: %w", err)
	}
	if len(roots) != 1 || roots[0].Label != "invoke" {
		return nil, nil, tc, fmt.Errorf("bad envelope: expected a single <invoke> element")
	}
	// tree.UnmarshalForest drops attributes, so re-decode them here.
	svcName, queryText, tc, err := invokeAttrs(body)
	if err != nil {
		return nil, nil, tc, err
	}
	if svcName != "" && svcName != urlName {
		return nil, nil, tc, fmt.Errorf("envelope service %q does not match endpoint %q", svcName, urlName)
	}
	var pushed *pattern.Pattern
	if queryText != "" {
		pushed, err = pattern.ParseExact(queryText)
		if err != nil {
			return nil, nil, tc, fmt.Errorf("bad pushed query: %w", err)
		}
	}
	var params []*tree.Node
	if p := roots[0].Child("params"); p != nil {
		params = append(params, p.Children...)
		for _, c := range params {
			c.Parent = nil
		}
	}
	return params, pushed, tc, nil
}

// invokeAttrs extracts the service, query and trace-propagation
// attributes of the top-level invoke element. Malformed trace attributes
// are ignored rather than failing the call — propagation is advisory.
func invokeAttrs(body []byte) (svc, query string, tc telemetry.TraceContext, err error) {
	dec := xml.NewDecoder(bytes.NewReader(body))
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", "", tc, fmt.Errorf("bad envelope: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			for _, a := range se.Attr {
				switch a.Name.Local {
				case "service":
					svc = a.Value
				case "query":
					query = a.Value
				case "trace":
					tc.TraceID = a.Value
				case "span":
					if v, err := strconv.ParseUint(a.Value, 10, 64); err == nil {
						tc.Parent = telemetry.SpanID(v)
					}
				case "spans":
					if v, err := strconv.Atoi(a.Value); err == nil && v > 0 {
						tc.MaxSpans = v
					}
				}
			}
			return svc, query, tc, nil
		}
	}
}

// Client invokes services of one remote provider.
type Client struct {
	// BaseURL is the provider root, e.g. "http://host:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each HTTP request; an expired request surfaces as
	// a timeout-classed fault. 0 means no client-side timeout.
	Timeout time.Duration
	// MaxAttempts retries transient and timeout faults (network errors,
	// 5xx answers, expired requests) with exponential backoff before
	// giving up; values below 2 mean a single attempt. Permanent faults
	// (4xx, bad envelopes) never retry.
	MaxAttempts int
	// Backoff is the real-time pause before the second attempt,
	// doubling per further attempt; 0 means DefaultBackoff.
	Backoff time.Duration
	// Metrics, when set, observes per-attempt wire latency
	// (axml_http_client_seconds) and counts retried attempts
	// (axml_http_client_retries_total). Nil disables.
	Metrics *telemetry.Registry
	// MaxPayloadBytes bounds one response body; 0 means
	// DefaultMaxPayloadBytes (symmetric with the server's request
	// bound). An oversized response surfaces as a permanent-classed
	// "payload too large" fault instead of a truncated-XML parse error.
	MaxPayloadBytes int64
}

// DefaultBackoff is the client's initial retry pause when Backoff is 0.
const DefaultBackoff = 50 * time.Millisecond

// sharedHTTPClient is the transport clients fall back to when
// HTTPClient is unset. http.DefaultClient's transport keeps only 2 idle
// connections per host, so a bounded invocation pool hammering one
// provider would open (and TIME_WAIT-churn) a fresh TCP connection for
// most requests; raising MaxIdleConnsPerHost lets every pool worker
// reuse a warm connection. All soap.Clients share the one transport —
// connection pools are per-transport, and one per process is the
// useful granularity.
var sharedHTTPClient = newSharedHTTPClient()

func newSharedHTTPClient() *http.Client {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return &http.Client{}
	}
	t = t.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	return &http.Client{Transport: t}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return sharedHTTPClient
}

// Invoke calls the named remote service. The returned response reports
// the on-the-wire size of the result payload and whether the provider
// applied the pushed query.
func (c *Client) Invoke(name string, params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
	return c.InvokeContext(context.Background(), name, params, pushed)
}

// InvokeContext is Invoke under a caller context: cancellation aborts the
// in-flight request and any remaining retries. Transient and timeout
// faults are retried per the client's retry configuration; the error
// returned after the last attempt carries a service.Fault so engine-side
// retry policies (and callers) can classify it.
func (c *Client) InvokeContext(ctx context.Context, name string, params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
	tc, _ := telemetry.TraceFrom(ctx)
	body, err := EncodeInvokeTrace(name, params, pushed, tc)
	if err != nil {
		return service.Response{}, err
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + "/services/" + name
	attempts := c.MaxAttempts
	if attempts < 2 {
		attempts = 1
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	for attempt := 1; ; attempt++ {
		resp, err := c.post(ctx, url, name, body, tc)
		if err == nil {
			return resp, nil
		}
		if attempt >= attempts || !service.Retryable(err) {
			return service.Response{}, err
		}
		c.Metrics.Counter(telemetry.MetricHTTPClientRetries).Inc()
		select {
		case <-ctx.Done():
			return service.Response{}, err
		case <-time.After(backoff << uint(attempt-1)):
		}
	}
}

// post performs one HTTP attempt and maps every failure onto a classed
// service.Fault: network errors are transient, expired requests are
// timeouts, non-2xx answers carry the server's class (or one derived
// from the status code).
func (c *Client) post(ctx context.Context, url, name string, body []byte, tc telemetry.TraceContext) (service.Response, error) {
	start := time.Now()
	defer func() {
		c.Metrics.Histogram(telemetry.MetricHTTPClientSeconds).Observe(time.Since(start))
	}()
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return service.Response{}, fmt.Errorf("soap: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/xml")
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		class := service.Transient
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			class = service.Timeout
		}
		return service.Response{}, &service.Fault{
			Service: name, Class: class, Latency: time.Since(start),
			Msg: fmt.Sprintf("POST %s", url), Err: err,
		}
	}
	defer httpResp.Body.Close()
	limit := c.MaxPayloadBytes
	if limit <= 0 {
		limit = DefaultMaxPayloadBytes
	}
	payload, over, err := readLimited(httpResp.Body, limit)
	if err != nil {
		return service.Response{}, &service.Fault{
			Service: name, Class: service.Transient, Latency: time.Since(start),
			Msg: "read response", Err: err,
		}
	}
	if over {
		return service.Response{}, &service.Fault{
			Service: name, Class: service.Permanent, Latency: time.Since(start),
			Msg: fmt.Sprintf("payload too large: response body exceeds %d bytes", limit),
		}
	}
	if httpResp.StatusCode != http.StatusOK {
		return service.Response{}, &service.Fault{
			Service: name, Class: faultClass(payload, httpResp.StatusCode),
			Latency: time.Since(start),
			Msg:     fmt.Sprintf("%s: %s: %s", url, httpResp.Status, faultMessage(payload)),
		}
	}
	totalBytes := len(payload)
	var remote []telemetry.Span
	if tc.MaxSpans > 0 {
		// The span subtree travels as a trailing trace child of the
		// response. It is sliced out of the raw payload before XML
		// parsing: the trace body is compact JSON whose encoder escapes
		// every <, > and & inside strings, so the byte range between the
		// server-appended tags holds no markup and the expensive
		// character-data decode is skipped for the envelope's largest
		// child. Only the opted-in trailing element is interpreted, so a
		// service result that legitimately ends with the label keeps it.
		payload, remote = splitTrailingTrace(payload, tc.TraceID)
	}
	roots, err := tree.UnmarshalForest(payload)
	if err != nil {
		return service.Response{}, fmt.Errorf("soap: bad response envelope: %w", err)
	}
	if len(roots) != 1 || roots[0].Label != "response" {
		return service.Response{}, fmt.Errorf("soap: expected a single <response> element")
	}
	wasPushed, err := responsePushedAttr(payload)
	if err != nil {
		return service.Response{}, err
	}
	forest := roots[0].Children
	for _, n := range forest {
		n.Parent = nil
	}
	return service.Response{
		Forest:      forest,
		Bytes:       totalBytes,
		Pushed:      wasPushed,
		RemoteTrace: remote,
	}, nil
}

// splitTrailingTrace detaches the server-appended <axml.trace> child
// from a response payload and decodes it. The match is anchored to the
// envelope's tail — the trace child is always the last element the
// server writes — so result content can never be misread as a trace.
// The trace ID the request carried is restamped onto spans the server
// elided it from. On any shape mismatch the payload is returned intact
// and the forest path handles it as ordinary content.
func splitTrailingTrace(payload []byte, traceID string) ([]byte, []telemetry.Span) {
	const closing = "</" + traceElem + "></response>"
	if !bytes.HasSuffix(payload, []byte(closing)) {
		return payload, nil
	}
	j := len(payload) - len(closing)
	i := bytes.LastIndex(payload[:j], []byte("<"+traceElem+">"))
	if i < 0 {
		return payload, nil
	}
	spans, err := telemetry.UnmarshalSpansJSON(unescapeCharData(payload[i+len(traceElem)+2 : j]))
	if err != nil {
		return payload, nil
	}
	for k := range spans {
		if spans[k].Trace == "" {
			spans[k].Trace = traceID
		}
	}
	stripped := append(payload[:i:i], "</response>"...)
	return stripped, spans
}

// unescapeCharData undoes escapeCharData (&amp;, &lt;, &gt; only — the
// entities a compact span payload can contain). The common case is a
// zero-copy pass: the JSON encoder escapes <, > and & inside strings,
// so the payload usually holds no entities at all.
func unescapeCharData(b []byte) []byte {
	if !bytes.ContainsRune(b, '&') {
		return b
	}
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); {
		if b[i] == '&' {
			rest := b[i:]
			switch {
			case bytes.HasPrefix(rest, []byte("&amp;")):
				out = append(out, '&')
				i += 5
				continue
			case bytes.HasPrefix(rest, []byte("&lt;")):
				out = append(out, '<')
				i += 4
				continue
			case bytes.HasPrefix(rest, []byte("&gt;")):
				out = append(out, '>')
				i += 4
				continue
			}
		}
		out = append(out, b[i])
		i++
	}
	return out
}

// faultClass reads the fault envelope's class attribute; when absent it
// derives one from the HTTP status: 504 is a timeout, other 5xx are
// transient, everything else permanent.
func faultClass(payload []byte, status int) service.ErrorClass {
	dec := xml.NewDecoder(bytes.NewReader(payload))
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Local != "fault" {
				break
			}
			for _, a := range se.Attr {
				if a.Name.Local == "class" {
					return service.ParseErrorClass(a.Value)
				}
			}
			break
		}
	}
	switch {
	case status == http.StatusGatewayTimeout:
		return service.Timeout
	case status >= 500:
		return service.Transient
	default:
		return service.Permanent
	}
}

// responsePushedAttr reads the pushed attribute of the top-level response
// element.
func responsePushedAttr(payload []byte) (bool, error) {
	dec := xml.NewDecoder(bytes.NewReader(payload))
	for {
		tok, err := dec.Token()
		if err != nil {
			return false, fmt.Errorf("soap: bad response envelope: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			for _, a := range se.Attr {
				if a.Name.Local == "pushed" {
					return a.Value == "true", nil
				}
			}
			return false, nil
		}
	}
}

func faultMessage(payload []byte) string {
	roots, err := tree.UnmarshalForest(payload)
	if err == nil && len(roots) == 1 && roots[0].Label == "fault" {
		return roots[0].Text()
	}
	return strings.TrimSpace(string(payload))
}

// Describe fetches the provider's service descriptor: names, push
// capability and advertised latency.
func (c *Client) Describe() ([]ServiceInfo, error) {
	url := strings.TrimSuffix(c.BaseURL, "/") + "/services"
	httpResp, err := c.httpClient().Get(url)
	if err != nil {
		return nil, fmt.Errorf("soap: GET %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var doc struct {
		Services []struct {
			Name      string `xml:"name,attr"`
			Push      bool   `xml:"push,attr"`
			LatencyMs int64  `xml:"latencyMs,attr"`
		} `xml:"service"`
	}
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("soap: bad descriptor: %w", err)
	}
	out := make([]ServiceInfo, 0, len(doc.Services))
	for _, s := range doc.Services {
		out = append(out, ServiceInfo{
			Name:    s.Name,
			CanPush: s.Push,
			Latency: time.Duration(s.LatencyMs) * time.Millisecond,
		})
	}
	return out, nil
}

// ServiceInfo is one entry of a provider descriptor.
type ServiceInfo struct {
	Name    string
	CanPush bool
	Latency time.Duration
}

// Proxy returns a service.Service backed by the remote provider, ready to
// be registered in a local registry: the engine then invokes the remote
// service transparently, with pushing decided by the provider.
func (c *Client) Proxy(info ServiceInfo) *service.Service {
	return &service.Service{
		Name:    info.Name,
		Latency: info.Latency,
		CanPush: info.CanPush,
		RemoteCtx: func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
			if !info.CanPush {
				pushed = nil
			}
			return c.InvokeContext(ctx, info.Name, params, pushed)
		},
	}
}

// RegistryFor builds a local registry proxying every service the provider
// describes.
func (c *Client) RegistryFor() (*service.Registry, error) {
	infos, err := c.Describe()
	if err != nil {
		return nil, err
	}
	reg := service.NewRegistry()
	for _, info := range infos {
		reg.Register(c.Proxy(info))
	}
	return reg, nil
}
