package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Quick())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: ragged row %v vs columns %v", e.ID, row, tab.Columns)
				}
			}
			s := tab.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, tab.Columns[0]) {
				t.Fatalf("%s: rendering broken:\n%s", e.ID, s)
			}
		})
	}
}

// column returns the numeric value of a named column in a row.
func column(t *testing.T, tab Table, row []string, name string) float64 {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			v := strings.TrimSuffix(strings.TrimSuffix(row[i], "ms"), "KB")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("column %s: %q: %v", name, row[i], err)
			}
			return f
		}
	}
	t.Fatalf("no column %s in %v", name, tab.Columns)
	return 0
}

// rowsWhere selects rows whose column equals the value.
func rowsWhere(tab Table, col, val string) [][]string {
	idx := -1
	for i, c := range tab.Columns {
		if c == col {
			idx = i
		}
	}
	var out [][]string
	for _, r := range tab.Rows {
		if idx >= 0 && r[idx] == val {
			out = append(out, r)
		}
	}
	return out
}

func TestE1Shape(t *testing.T) {
	tab, err := E1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// At the largest size, the typed lazy strategy must beat naive on
	// both calls and virtual time — the paper's headline shape.
	size := itoa(Quick().E1Sizes[len(Quick().E1Sizes)-1])
	var naiveTime, lazyTime, naiveCalls, lazyCalls float64
	for _, r := range rowsWhere(tab, "hotels", size) {
		switch r[1] {
		case "naive":
			naiveTime = column(t, tab, r, "virt-time")
			naiveCalls = column(t, tab, r, "calls")
		case "lazy-nfq-typed+par":
			lazyTime = column(t, tab, r, "virt-time")
			lazyCalls = column(t, tab, r, "calls")
		}
	}
	if naiveCalls <= lazyCalls || naiveTime <= lazyTime {
		t.Fatalf("lazy did not win: naive %v/%v vs lazy %v/%v\n%s",
			naiveCalls, naiveTime, lazyCalls, lazyTime, tab)
	}
	if naiveTime < 4*lazyTime {
		t.Fatalf("expected a large gap, got naive=%v lazy=%v\n%s", naiveTime, lazyTime, tab)
	}
}

func TestE2GapGrowsWithLatency(t *testing.T) {
	s := Scale{E2Latencies: []time.Duration{time.Millisecond, 100 * time.Millisecond}}
	tab, err := E2(s)
	if err != nil {
		t.Fatal(err)
	}
	lo := column(t, tab, tab.Rows[0], "naive-time") - column(t, tab, tab.Rows[0], "lazy-time")
	hi := column(t, tab, tab.Rows[1], "naive-time") - column(t, tab, tab.Rows[1], "lazy-time")
	if hi <= lo {
		t.Fatalf("absolute gap should grow with latency: %v vs %v\n%s", lo, hi, tab)
	}
}

func TestE3PushSavesTransfer(t *testing.T) {
	s := Scale{E3Selectivities: []int{2}}
	tab, err := E3(s)
	if err != nil {
		t.Fatal(err)
	}
	plain := column(t, tab, tab.Rows[0], "bytes-plain")
	push := column(t, tab, tab.Rows[0], "bytes-push")
	if push >= plain/2 {
		t.Fatalf("push saving too small: %v vs %v\n%s", push, plain, tab)
	}
}

func TestE5LayeringHelps(t *testing.T) {
	s := Scale{E5Depths: []int{3}}
	tab, err := E5(s)
	if err != nil {
		t.Fatal(err)
	}
	var flat, layered float64
	for _, r := range tab.Rows {
		switch r[1] {
		case "flat":
			flat = column(t, tab, r, "nfq-evals")
		case "layered":
			layered = column(t, tab, r, "nfq-evals")
		}
	}
	if layered >= flat {
		t.Fatalf("layering did not reduce NFQ evaluations: %v vs %v\n%s", layered, flat, tab)
	}
}

func TestE6LenientInvokesMore(t *testing.T) {
	s := Scale{E6Kinds: []int{4}}
	tab, err := E6(s)
	if err != nil {
		t.Fatal(err)
	}
	var exact, lenient float64
	for _, r := range tab.Rows {
		switch r[1] {
		case "exact":
			exact = column(t, tab, r, "calls")
		case "lenient":
			lenient = column(t, tab, r, "calls")
		}
	}
	if lenient <= exact {
		t.Fatalf("lenient should invoke more calls: %v vs %v\n%s", lenient, exact, tab)
	}
}

// TestE13AllocationRegression is the allocation-regression smoke `make
// microbench` runs: on the large-document case, the streaming evaluator
// must not allocate more than the retained seed evaluator, and adding
// projection must cut allocation volume at least 5x — the acceptance
// floor the recorded BENCH_E13.json run established.
func TestE13AllocationRegression(t *testing.T) {
	tab, err := E13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	nodes := Quick().E13Nodes[len(Quick().E13Nodes)-1]
	get := func(mode string) AllocSummary {
		sum, ok := tab.Allocs[itoa(nodes)+"/"+mode]
		if !ok {
			t.Fatalf("no alloc summary for %d/%s in %v", nodes, mode, tab.Allocs)
		}
		return sum
	}
	seed, stream, proj := get("seed"), get("stream"), get("stream+proj")
	if stream.AllocsPerOp > seed.AllocsPerOp {
		t.Fatalf("streaming evaluator allocates more than the seed evaluator: %d vs %d allocs/op\n%s",
			stream.AllocsPerOp, seed.AllocsPerOp, tab)
	}
	if proj.BytesPerOp*5 > seed.BytesPerOp {
		t.Fatalf("projection reduction below the 5x floor: seed %d B/op, projected %d B/op\n%s",
			seed.BytesPerOp, proj.BytesPerOp, tab)
	}
}

// TestE14WarmBeatsCold is the acceptance check of the persistent-index
// experiment: the warm open (parse + decode) must be measurably faster
// than the cold open (parse + rebuild + repair) — E14 itself already
// fails on any result divergence between the two paths.
func TestE14WarmBeatsCold(t *testing.T) {
	tab, err := E14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		warm := column(t, tab, r, "warm-open")
		cold := column(t, tab, r, "cold-open")
		if warm >= cold {
			t.Fatalf("warm open (%vms) not faster than cold (%vms)\n%s", warm, cold, tab)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Fatal("E3 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestFormatters(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50ms" {
		t.Fatalf("ms = %q", got)
	}
	if got := kb(2048); got != "2.0KB" {
		t.Fatalf("kb = %q", got)
	}
	if got := ratio(10, 0); got != "-" {
		t.Fatalf("ratio div0 = %q", got)
	}
	if got := ratio(100, 10); got != "10.0x" {
		t.Fatalf("ratio = %q", got)
	}
}

// TestE17PlannedBeatsStatic is the planner's performance acceptance:
// at equal pool width on the heterogeneous-latency world, the
// cost-planned schedule must beat the static striped one (which
// serialises the slow service's calls on a single worker) while
// producing the identical result set — E17 itself fails the run on any
// result divergence. The margin is generous to tolerate CI jitter.
func TestE17PlannedBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("E17 sleeps real HTTP latencies")
	}
	tab, err := E17(Quick())
	if err != nil {
		t.Fatal(err)
	}
	static := rowsWhere(tab, "plan", "static")
	planned := rowsWhere(tab, "plan", "cost")
	if len(static) == 0 || len(static) != len(planned) {
		t.Fatalf("unpaired rows:\n%s", tab)
	}
	for i := range static {
		s := column(t, tab, static[i], "wall-time")
		p := column(t, tab, planned[i], "wall-time")
		if p >= s*0.95 {
			t.Fatalf("planned (%vms) not faster than static (%vms) at width %s\n%s",
				p, s, static[i][1], tab)
		}
	}
}
