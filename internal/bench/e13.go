package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/tree"
)

// E13 measures what the streaming evaluator and type-based document
// projection buy on a large document: the retained eager evaluator
// ("seed") materialises descendant lists and join cross-products, the
// streaming evaluator ("stream") pipelines the same work through lazily
// pulled solution sequences, and projection ("stream+proj") additionally
// skips the subtrees the schema proves cannot contain a match. All three
// must return the identical result sequence; only allocation volume and
// wall time move.
func E13(s Scale) (Table, error) {
	t := Table{
		ID:      "E13",
		Title:   "streaming + projection: allocation and wall time on large documents",
		Columns: []string{"nodes", "mode", "wall", "B/op", "allocs/op", "visited", "pruned", "results"},
		Allocs:  map[string]AllocSummary{},
	}
	sch, err := e13Schema()
	if err != nil {
		return t, err
	}
	q := pattern.MustParse(e13Query)
	proj := schema.NewProjection(sch, q, schema.Exact)
	if proj.Trivial() {
		return t, fmt.Errorf("E13: projection is trivial, the sweep would measure nothing")
	}
	type mode struct {
		name string
		eval func(doc *tree.Document) ([]pattern.Result, pattern.Stats)
	}
	modes := []mode{
		{"seed", func(doc *tree.Document) ([]pattern.Result, pattern.Stats) {
			return pattern.EvalNaive(doc, q)
		}},
		{"stream", func(doc *tree.Document) ([]pattern.Result, pattern.Stats) {
			return pattern.Eval(doc, q)
		}},
		{"stream+proj", func(doc *tree.Document) ([]pattern.Result, pattern.Stats) {
			return pattern.EvalProjected(doc, q, proj)
		}},
	}
	for _, nodes := range s.E13Nodes {
		doc := e13Doc(nodes)
		if err := sch.ValidateDocument(doc); err != nil {
			return t, fmt.Errorf("E13: generator broke conformance: %v", err)
		}
		baseKeys := ""
		profile := map[string]AllocSummary{}
		for _, m := range modes {
			rs, st := m.eval(doc) // warm-up, and the run the checks use
			keys := ""
			for _, r := range rs {
				keys += r.Key() + "|"
			}
			if m.name == "seed" {
				baseKeys = keys
			} else if keys != baseKeys {
				return t, fmt.Errorf("E13: %s diverges from the seed evaluator at %d nodes", m.name, nodes)
			}
			if len(rs) == 0 {
				return t, fmt.Errorf("E13: empty result set at %d nodes", nodes)
			}
			const iters = 3
			sum := measureAlloc(iters, func() { m.eval(doc) })
			key := fmt.Sprintf("%d/%s", nodes, m.name)
			t.Allocs[key] = sum
			profile[m.name] = sum
			t.Rows = append(t.Rows, []string{
				itoa(nodes), m.name,
				fmt.Sprintf("%.2fms", sum.WallMs),
				itoa(int(sum.BytesPerOp)), itoa(int(sum.AllocsPerOp)),
				itoa(st.NodesVisited), itoa(st.SubtreesPruned),
				itoa(len(rs)),
			})
		}
		seed, sp := profile["seed"], profile["stream+proj"]
		if sp.BytesPerOp > 0 && seed.WallMs > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"nodes=%d: streamed+projected allocates %.1fx less (%d → %d B/op) and runs %.1fx the seed wall time; identical results",
				nodes, float64(seed.BytesPerOp)/float64(sp.BytesPerOp),
				seed.BytesPerOp, sp.BytesPerOp, sp.WallMs/seed.WallMs))
		}
	}
	return t, nil
}

// e13Query targets the hotel region only; every archive section is
// statically irrelevant to it.
const e13Query = `//hotel[name=$N][rating=$R] -> $N, $R`

// e13Schema declares the synthetic site family: hotel sections next to
// archive sections whose content models provably cannot produce a hotel.
func e13Schema() (*schema.Schema, error) {
	return schema.Parse(`
functions:
  getInfo = [in: data, out: info*]
elements:
  site = section*
  section = hotels|archive
  hotels = hotel*
  archive = entry*
  entry = info*
  info = data
  hotel = name.rating.nearby?
  name = data
  rating = data
  nearby = restaurant*
  restaurant = name.rating
`)
}

// e13Doc grows a conforming document of roughly target tree nodes:
// about a tenth of them in one hotels section the query matches, the
// rest in archive sections projection can skip. Deterministic, so every
// mode and iteration sees the same tree.
func e13Doc(target int) *tree.Document {
	const hotelNodes = 16 // hotel + name/rating text pairs + nearby with 2 restaurants
	const entryNodes = 7  // entry + 3 info/text pairs
	hotels := target / 10 / hotelNodes
	if hotels < 1 {
		hotels = 1
	}
	entries := (target - hotels*hotelNodes) / entryNodes
	site := tree.NewElement("site")
	hs := site.Append(tree.NewElement("section")).Append(tree.NewElement("hotels"))
	ratings := []string{"*", "**", "***", "****", "*****"}
	for i := 0; i < hotels; i++ {
		h := hs.Append(tree.NewElement("hotel"))
		h.Append(tree.NewElement("name")).Append(tree.NewText(fmt.Sprintf("hotel-%d", i)))
		h.Append(tree.NewElement("rating")).Append(tree.NewText(ratings[i%len(ratings)]))
		nearby := h.Append(tree.NewElement("nearby"))
		for r := 0; r < 2; r++ {
			resto := nearby.Append(tree.NewElement("restaurant"))
			resto.Append(tree.NewElement("name")).Append(tree.NewText(fmt.Sprintf("resto-%d-%d", i, r)))
			resto.Append(tree.NewElement("rating")).Append(tree.NewText(ratings[(i+r)%len(ratings)]))
		}
	}
	// Archive sections of bounded width keep the tree bushy rather than
	// one enormous flat child list.
	const perSection = 200
	var archive *tree.Node
	for e := 0; e < entries; e++ {
		if e%perSection == 0 {
			archive = site.Append(tree.NewElement("section")).Append(tree.NewElement("archive"))
		}
		entry := archive.Append(tree.NewElement("entry"))
		for j := 0; j < 3; j++ {
			entry.Append(tree.NewElement("info")).Append(tree.NewText(fmt.Sprintf("info-%d-%d", e, j)))
		}
	}
	return tree.NewDocument(site)
}

// measureAlloc profiles f like testing.B reports B/op and allocs/op:
// MemStats deltas over iters calls, after a GC settles the heap.
func measureAlloc(iters int, f func()) AllocSummary {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	wall := time.Since(start) / time.Duration(iters)
	runtime.ReadMemStats(&after)
	return AllocSummary{
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(iters),
		WallMs:      float64(wall.Microseconds()) / 1000,
	}
}
