package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/repo"
	"github.com/activexml/axml/internal/workload"
)

// E14 measures what the persistent index buys a restarting process:
// opening a stored document warm (document parse + index decode) against
// opening it cold (document parse + full F-guide rebuild + on-disk
// repair). Both opens must deliver the same index — the decoded guide is
// compared structurally against the rebuilt one — and the workload query
// evaluated over a warm open must return results bit-identical to a cold
// one. Timings are medians over several opens of a directory-backed
// repository, so the sweep reports what axmlserver actually pays at
// startup per document size.
func E14(s Scale) (Table, error) {
	t := Table{
		ID:      "E14",
		Title:   "persistent index: warm vs cold repository opens",
		Columns: []string{"hotels", "nodes", "calls", "index-bytes", "warm-open", "cold-open", "speedup"},
	}
	const iters = 5
	for _, hotels := range s.E14Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = hotels / 5
		w := workload.Hotels(spec)

		dir, err := os.MkdirTemp("", "axml-e14-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dir)
		rp, err := repo.Open(dir)
		if err != nil {
			return t, err
		}
		rp.Logger = nil // cold opens are intentional, not reportable

		if err := rp.Put("world", w.Doc, repo.PutOptions{Schema: w.Schema}); err != nil {
			return t, err
		}
		man, err := rp.Manifest("world")
		if err != nil {
			return t, err
		}
		idx, err := os.Stat(filepath.Join(dir, "world"+repo.GuideExt))
		if err != nil {
			return t, err
		}

		var warmOpen *repo.Opened
		warm, err := median(iters, func() error {
			o, err := rp.Get("world")
			if err != nil {
				return err
			}
			if !o.Warm {
				return fmt.Errorf("E14: open of an intact entry was not warm")
			}
			warmOpen = o
			return nil
		})
		if err != nil {
			return t, err
		}

		var coldOpen *repo.Opened
		cold, err := median(iters, func() error {
			if err := rp.DropIndex("world"); err != nil {
				return err
			}
			o, err := rp.Get("world")
			if err != nil {
				return err
			}
			if o.Warm {
				return fmt.Errorf("E14: open right after DropIndex claimed warm")
			}
			coldOpen = o
			return nil
		})
		if err != nil {
			return t, err
		}

		// The decoded index must be the rebuilt one, structurally.
		if warmOpen.Guide.String() != coldOpen.Guide.String() {
			return t, fmt.Errorf("E14: warm and cold opens disagree on the index at %d hotels", hotels)
		}
		warmKeys, warmRes, err := e14Query(warmOpen, w)
		if err != nil {
			return t, fmt.Errorf("E14: warm query: %w", err)
		}
		coldKeys, _, err := e14Query(coldOpen, w)
		if err != nil {
			return t, fmt.Errorf("E14: cold query: %w", err)
		}
		if warmKeys != coldKeys {
			return t, fmt.Errorf("E14: warm and cold query results diverge at %d hotels", hotels)
		}
		if warmRes != w.ExpectedResults {
			return t, fmt.Errorf("E14: %d results, ground truth %d", warmRes, w.ExpectedResults)
		}

		t.Rows = append(t.Rows, []string{
			itoa(hotels), itoa(man.Nodes), itoa(man.Calls), itoa(int(idx.Size())),
			ms(warm), ms(cold), ratio(cold, warm),
		})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"hotels=%d: warm open decodes %d indexed calls in %s vs %s rebuilding (%s); %d query results bit-identical",
			hotels, man.Calls, ms(warm), ms(cold), ratio(cold, warm), warmRes))
	}
	return t, nil
}

// e14Query evaluates the workload query over an opened entry with the
// opened guide adopted warm, returning an order-independent result key.
func e14Query(o *repo.Opened, w *workload.World) (string, int, error) {
	opt := core.Options{Strategy: core.LazyNFQ, UseGuide: true, Guide: o.Guide}
	if o.Schema != nil {
		opt.Strategy = core.LazyNFQTyped
		opt.Schema = o.Schema
	}
	out, err := core.Evaluate(o.Doc, w.Query, w.Registry, opt)
	if err != nil {
		return "", 0, err
	}
	if !fguide.Synced(o.Guide) {
		return "", 0, fmt.Errorf("guide out of sync after evaluation")
	}
	keys := make([]string, 0, len(out.Results))
	for _, r := range out.Results {
		vars := make([]string, 0, len(r.Values))
		for k, v := range r.Values {
			vars = append(vars, k+"="+v)
		}
		sort.Strings(vars)
		keys = append(keys, strings.Join(vars, ";"))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|"), len(out.Results), nil
}

// median times f over iters runs and returns the median duration.
func median(iters int, f func() error) (time.Duration, error) {
	times := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(t0))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}
