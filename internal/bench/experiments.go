package bench

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/workload"
)

// evalWorld runs one evaluation over a fresh clone of the world's
// document and verifies the ground-truth result count.
func evalWorld(s Scale, w *workload.World, opt core.Options) (*core.Outcome, error) {
	if opt.Strategy == core.LazyNFQTyped && opt.Schema == nil {
		opt.Schema = w.Schema
	}
	opt.Metrics, opt.Tracer = s.Metrics, s.Tracer
	out, err := core.Evaluate(w.Doc.Clone(), w.Query, w.Registry, opt)
	if err != nil {
		return nil, err
	}
	if !out.Complete {
		return nil, fmt.Errorf("%v: evaluation incomplete", opt.Strategy)
	}
	if len(out.Results) != w.ExpectedResults {
		return nil, fmt.Errorf("%v: got %d results, want %d",
			opt.Strategy, len(out.Results), w.ExpectedResults)
	}
	return out, nil
}

// E1 sweeps document size and compares every strategy: the paper's
// headline claim that pruning irrelevant calls cuts end-to-end time by
// orders of magnitude (Sections 1, 8).
func E1(s Scale) (Table, error) {
	t := Table{
		ID:      "E1",
		Title:   "strategies across document sizes (latency 10ms/call)",
		Columns: []string{"hotels", "strategy", "calls", "rounds", "virt-time", "bytes", "results"},
	}
	strategies := []core.Options{
		{Strategy: core.NaiveFixpoint},
		{Strategy: core.TopDownEager},
		{Strategy: core.LazyLPQ},
		{Strategy: core.LazyNFQ},
		{Strategy: core.LazyNFQTyped, Layering: true, Parallel: true},
	}
	for _, hotels := range s.E1Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = hotels / 5
		w := workload.Hotels(spec)
		var naive, best time.Duration
		for _, opt := range strategies {
			out, err := evalWorld(s, w, opt)
			if err != nil {
				return t, err
			}
			label := opt.Strategy.String()
			if opt.Parallel {
				label += "+par"
			}
			t.Rows = append(t.Rows, []string{
				itoa(hotels), label,
				itoa(out.Stats.CallsInvoked), itoa(out.Stats.Rounds),
				ms(out.Stats.VirtualTime), kb(out.Stats.BytesFetched),
				itoa(len(out.Results)),
			})
			switch opt.Strategy {
			case core.NaiveFixpoint:
				naive = out.Stats.VirtualTime
			case core.LazyNFQTyped:
				best = out.Stats.VirtualTime
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"hotels=%d: typed-lazy is %s faster than naive (all strategies returned %d correct results)",
			hotels, ratio(naive, best), w.ExpectedResults))
	}
	return t, nil
}

// E2 sweeps per-call latency: the lazy advantage scales with call cost,
// since saved time ≈ pruned calls × latency.
func E2(s Scale) (Table, error) {
	t := Table{
		ID:      "E2",
		Title:   "naive vs typed-lazy across per-call latency",
		Columns: []string{"latency", "naive-time", "lazy-time", "speedup"},
	}
	for _, lat := range s.E2Latencies {
		spec := workload.DefaultSpec()
		spec.Latency = lat
		w := workload.Hotels(spec)
		naive, err := evalWorld(s, w, core.Options{Strategy: core.NaiveFixpoint})
		if err != nil {
			return t, err
		}
		lazy, err := evalWorld(s, w, core.Options{Strategy: core.LazyNFQTyped})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			lat.String(),
			ms(naive.Stats.VirtualTime), ms(lazy.Stats.VirtualTime),
			ratio(naive.Stats.VirtualTime, lazy.Stats.VirtualTime),
		})
	}
	return t, nil
}

// E3 sweeps result selectivity with pushing on and off (Section 7): the
// transfer saving tracks the fraction of the result the query keeps.
func E3(s Scale) (Table, error) {
	t := Table{
		ID:      "E3",
		Title:   "query pushing across selectivity (100 restaurants/call)",
		Columns: []string{"match%", "bytes-plain", "bytes-push", "saving", "time-plain", "time-push"},
	}
	for _, sel := range s.E3Selectivities {
		spec := workload.DefaultSpec()
		spec.PushCapable = true
		spec.RestosPerCall = 100
		spec.FiveStarRestos = sel
		w := workload.Hotels(spec)
		plain, err := evalWorld(s, w, core.Options{Strategy: core.LazyNFQTyped})
		if err != nil {
			return t, err
		}
		push, err := evalWorld(s, w, core.Options{Strategy: core.LazyNFQTyped, Push: true})
		if err != nil {
			return t, err
		}
		saving := "-"
		if plain.Stats.BytesFetched > 0 {
			saving = fmt.Sprintf("%.0f%%",
				100*(1-float64(push.Stats.BytesFetched)/float64(plain.Stats.BytesFetched)))
		}
		t.Rows = append(t.Rows, []string{
			itoa(sel), kb(plain.Stats.BytesFetched), kb(push.Stats.BytesFetched), saving,
			ms(plain.Stats.VirtualTime), ms(push.Stats.VirtualTime),
		})
	}
	return t, nil
}

// E4 sweeps extensional document bulk: F-guide relevance detection cost
// follows the number of call-bearing paths, direct NFQ evaluation the
// number of document nodes (Section 6.2).
func E4(s Scale) (Table, error) {
	t := Table{
		ID:      "E4",
		Title:   "relevance detection: direct NFQs vs F-guide across document bulk",
		Columns: []string{"doc-nodes", "detect-direct", "detect-guide", "speedup", "guide-cands", "calls"},
	}
	for _, bulk := range s.E4Bulks {
		spec := workload.DefaultSpec()
		spec.MaterializedRestos = bulk
		w := workload.Hotels(spec)
		direct, err := evalWorld(s, w, core.Options{Strategy: core.LazyNFQ})
		if err != nil {
			return t, err
		}
		guided, err := evalWorld(s, w, core.Options{Strategy: core.LazyNFQ, UseGuide: true})
		if err != nil {
			return t, err
		}
		if direct.Stats.CallsInvoked != guided.Stats.CallsInvoked {
			return t, fmt.Errorf("E4: guide changed the relevant set (%d vs %d)",
				direct.Stats.CallsInvoked, guided.Stats.CallsInvoked)
		}
		t.Rows = append(t.Rows, []string{
			itoa(w.Doc.Size()),
			ms(direct.Stats.DetectTime), ms(guided.Stats.DetectTime),
			ratio(direct.Stats.DetectTime, guided.Stats.DetectTime),
			itoa(guided.Stats.GuideCandidates), itoa(guided.Stats.CallsInvoked),
		})
	}
	return t, nil
}

// E5 sweeps the nesting depth of calls-returning-calls and compares plain
// NFQA against layered and layered+parallel processing (Section 4).
func E5(s Scale) (Table, error) {
	t := Table{
		ID:      "E5",
		Title:   "sequencing across call-chain depth",
		Columns: []string{"depth", "mode", "nfq-evals", "rounds", "virt-time", "calls"},
	}
	modes := []struct {
		name string
		opt  core.Options
	}{
		{"flat", core.Options{Strategy: core.LazyNFQ}},
		{"layered", core.Options{Strategy: core.LazyNFQ, Layering: true}},
		{"layered+par", core.Options{Strategy: core.LazyNFQ, Layering: true, Parallel: true}},
		// The §4.4 future-work ablation: batch whole layers even when
		// the independence condition fails. Minimal rounds, but it may
		// invoke calls a strictly relevant rewriting skips.
		{"speculative", core.Options{Strategy: core.LazyNFQ, Layering: true, Speculative: true}},
	}
	for _, depth := range s.E5Depths {
		spec := workload.DefaultSpec()
		spec.RatingChainDepth = depth
		w := workload.Hotels(spec)
		var calls int
		for _, m := range modes {
			out, err := evalWorld(s, w, m.opt)
			if err != nil {
				return t, err
			}
			if m.opt.Speculative {
				if out.Stats.CallsInvoked < calls {
					return t, fmt.Errorf("E5: speculative invoked fewer calls than the relevant set")
				}
			} else if calls == 0 {
				calls = out.Stats.CallsInvoked
			} else if calls != out.Stats.CallsInvoked {
				return t, fmt.Errorf("E5: mode %s changed the relevant set", m.name)
			}
			t.Rows = append(t.Rows, []string{
				itoa(depth), m.name,
				itoa(out.Stats.RelevanceQueries), itoa(out.Stats.Rounds),
				ms(out.Stats.VirtualTime), itoa(out.Stats.CallsInvoked),
			})
		}
	}
	return t, nil
}

// E6 sweeps the number of service kinds and compares exact against
// lenient type analysis (Sections 5, 6.1): the lenient graph schema is
// cheaper to decide but admits calls the exact analysis rules out.
func E6(s Scale) (Table, error) {
	t := Table{
		ID:      "E6",
		Title:   "exact vs lenient satisfiability across service kinds (star query)",
		Columns: []string{"kinds", "mode", "analysis", "calls", "results"},
	}
	for _, kinds := range s.E6Kinds {
		spec := workload.DefaultSpec()
		spec.TeaserKinds = kinds
		w := workload.Hotels(spec)
		for _, mode := range []schema.Mode{schema.Exact, schema.Lenient} {
			out, err := core.Evaluate(w.Doc.Clone(), w.StarQuery, w.Registry, core.Options{
				Strategy: core.LazyNFQTyped, Schema: w.Schema, SchemaMode: mode,
				Metrics: s.Metrics, Tracer: s.Tracer,
			})
			if err != nil {
				return t, err
			}
			name := "exact"
			if mode == schema.Lenient {
				name = "lenient"
			}
			t.Rows = append(t.Rows, []string{
				itoa(kinds), name,
				ms(out.Stats.AnalysisTime), itoa(out.Stats.CallsInvoked),
				itoa(len(out.Results)),
			})
		}
	}
	return t, nil
}

// E7 compares full NFQs, join-relaxed NFQs and LPQs on a join-heavy
// query: the accuracy/efficiency trade-off of Section 6.1.
func E7(s Scale) (Table, error) {
	t := Table{
		ID:      "E7",
		Title:   "join relaxation: detection cost vs calls invoked",
		Columns: []string{"hotels", "mode", "detect", "nfq-evals", "calls", "results"},
	}
	for _, hotels := range s.E7Hotels {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.TagJoinEvery = 2
		w := workload.Hotels(spec)
		modes := []struct {
			name string
			opt  core.Options
		}{
			{"nfq", core.Options{Strategy: core.LazyNFQ}},
			{"nfq-relaxed", core.Options{Strategy: core.LazyNFQ, RelaxJoins: true}},
			{"lpq", core.Options{Strategy: core.LazyLPQ}},
		}
		var want int
		for i, m := range modes {
			m.opt.Metrics, m.opt.Tracer = s.Metrics, s.Tracer
			out, err := core.Evaluate(w.Doc.Clone(), w.JoinQuery, w.Registry, m.opt)
			if err != nil {
				return t, err
			}
			if i == 0 {
				want = len(out.Results)
			} else if len(out.Results) != want {
				return t, fmt.Errorf("E7: mode %s changed the results", m.name)
			}
			t.Rows = append(t.Rows, []string{
				itoa(hotels), m.name,
				ms(out.Stats.DetectTime), itoa(out.Stats.RelevanceQueries),
				itoa(out.Stats.CallsInvoked), itoa(len(out.Results)),
			})
		}
	}
	return t, nil
}

// E8 runs the engine against real HTTP services on the loopback
// interface: the implementation check of Section 8.
func E8(s Scale) (Table, error) {
	t := Table{
		ID:      "E8",
		Title:   "end-to-end over HTTP (loopback, server sleeps 2ms/call)",
		Columns: []string{"hotels", "strategy", "http-calls", "wall-time", "results"},
	}
	for _, hotels := range s.E8Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = hotels / 5
		spec.PushCapable = true
		spec.Latency = 2 * time.Millisecond
		w := workload.Hotels(spec)
		srv := httptest.NewServer(soap.NewServer(w.Registry, true))
		client := &soap.Client{BaseURL: srv.URL}
		reg, err := client.RegistryFor()
		if err != nil {
			srv.Close()
			return t, err
		}
		for _, opt := range []core.Options{
			{Strategy: core.NaiveFixpoint},
			{Strategy: core.LazyNFQTyped, Schema: w.Schema, Push: true, Layering: true},
		} {
			opt.Clock = service.NewWallClock(false)
			opt.Metrics, opt.Tracer = s.Metrics, s.Tracer
			start := time.Now()
			out, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, opt)
			if err != nil {
				srv.Close()
				return t, err
			}
			if len(out.Results) != w.ExpectedResults {
				srv.Close()
				return t, fmt.Errorf("E8: %v got %d results, want %d",
					opt.Strategy, len(out.Results), w.ExpectedResults)
			}
			t.Rows = append(t.Rows, []string{
				itoa(hotels), opt.Strategy.String(),
				itoa(out.Stats.CallsInvoked),
				ms(time.Since(start)), itoa(len(out.Results)),
			})
		}
		srv.Close()
	}
	return t, nil
}

// E9 sweeps the injected fault rate and compares naive against lazy
// evaluation under a best-effort retry policy: laziness pays twice under
// faults, because every pruned call is also a call that can neither fail
// nor burn retry backoff. Each run must still converge to the fault-free
// result set.
func E9(s Scale) (Table, error) {
	t := Table{
		ID:      "E9",
		Title:   "fault-rate sweep: naive vs lazy, best-effort with retries",
		Columns: []string{"fault-rate", "strategy", "calls", "retries", "failed", "virt-time", "results"},
	}
	retry := core.RetryPolicy{
		MaxAttempts: 25, Backoff: time.Millisecond,
		MaxBackoff: 50 * time.Millisecond, Jitter: 0.5, Seed: 9,
	}
	strategies := []core.Options{
		{Strategy: core.NaiveFixpoint},
		{Strategy: core.LazyNFQ, Layering: true, Parallel: true},
	}
	for _, rate := range s.E9Rates {
		spec := workload.DefaultSpec()
		w := workload.Hotels(spec)
		for _, opt := range strategies {
			reg := w.Registry
			if rate > 0 {
				faults := service.NewFaults(service.FaultSpec{
					Seed: 9, ErrorRate: rate, TimeoutRate: rate / 4,
				})
				faults.Instrument(s.Metrics)
				reg = faults.Wrap(w.Registry)
			}
			opt.Retry = retry
			opt.Failure = core.BestEffort
			opt.Metrics, opt.Tracer = s.Metrics, s.Tracer
			out, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, opt)
			if err != nil {
				return t, err
			}
			if len(out.Failures) != 0 || !out.Complete {
				return t, fmt.Errorf("E9: %v at rate %.2f gave up on %d calls (complete=%t)",
					opt.Strategy, rate, len(out.Failures), out.Complete)
			}
			if len(out.Results) != w.ExpectedResults {
				return t, fmt.Errorf("E9: %v at rate %.2f got %d results, want %d",
					opt.Strategy, rate, len(out.Results), w.ExpectedResults)
			}
			label := opt.Strategy.String()
			if opt.Parallel {
				label += "+par"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", rate*100), label,
				itoa(out.Stats.CallsInvoked), itoa(out.Stats.Retries),
				itoa(out.Stats.FailedCalls),
				ms(out.Stats.VirtualTime), itoa(len(out.Results)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"every run converged to the fault-free result set with zero abandoned calls")
	return t, nil
}

// E10 measures the incremental relevance engine: persistent cross-round
// match memoization (the per-round NFQ re-evaluation visits the changed
// region instead of the whole document), the service-response cache with
// singleflight dedup, and the parallel detection pool. The from-scratch
// and incremental runs must invoke the identical call sequence — only the
// match work moves.
func E10(s Scale) (Table, error) {
	t := Table{
		ID:      "E10",
		Title:   "incremental vs from-scratch relevance evaluation across document growth",
		Columns: []string{"hotels", "mode", "visited", "visited/round", "memo-hit%", "svc-cache-hit%", "detect", "virt-time", "calls", "results"},
	}
	type mode struct {
		name  string
		opt   core.Options
		cache bool
	}
	modes := []mode{
		{"scratch", core.Options{Strategy: core.LazyNFQ}, false},
		{"incremental", core.Options{Strategy: core.LazyNFQ, Incremental: true}, false},
		{"incr+cache", core.Options{Strategy: core.LazyNFQ, Incremental: true}, true},
		{"incr+cache+pool", core.Options{Strategy: core.LazyNFQ, Incremental: true, Workers: 4}, true},
	}
	for _, hotels := range s.E10Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = hotels / 5
		w := workload.Hotels(spec)
		perRound := map[string]float64{}
		var calls int
		for _, m := range modes {
			reg := w.Registry
			var cache *service.Cache
			if m.cache {
				cache = service.NewCache(service.CacheSpec{})
				cache.Instrument(s.Metrics)
				reg = cache.Wrap(w.Registry)
			}
			m.opt.Metrics, m.opt.Tracer = s.Metrics, s.Tracer
			out, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, m.opt)
			if err != nil {
				return t, err
			}
			if !out.Complete {
				return t, fmt.Errorf("E10: %s incomplete", m.name)
			}
			if len(out.Results) != w.ExpectedResults {
				return t, fmt.Errorf("E10: %s got %d results, want %d",
					m.name, len(out.Results), w.ExpectedResults)
			}
			if calls == 0 {
				calls = out.Stats.CallsInvoked
			} else if out.Stats.CallsInvoked != calls {
				return t, fmt.Errorf("E10: %s changed the invoked set (%d vs %d)",
					m.name, out.Stats.CallsInvoked, calls)
			}
			rounds := out.Stats.Rounds
			if rounds == 0 {
				rounds = 1
			}
			perRound[m.name] = float64(out.Stats.NodesVisited) / float64(rounds)
			memoRate := "-"
			if probes := out.Stats.NodesVisited + out.Stats.MemoHits; probes > 0 {
				memoRate = fmt.Sprintf("%.0f%%", 100*float64(out.Stats.MemoHits)/float64(probes))
			}
			cacheRate := "-"
			if cache != nil {
				cacheRate = fmt.Sprintf("%.0f%%", 100*cache.Stats().HitRate())
			}
			t.Rows = append(t.Rows, []string{
				itoa(hotels), m.name,
				itoa(out.Stats.NodesVisited),
				fmt.Sprintf("%.0f", perRound[m.name]),
				memoRate, cacheRate,
				ms(out.Stats.DetectTime), ms(out.Stats.VirtualTime),
				itoa(out.Stats.CallsInvoked), itoa(len(out.Results)),
			})
		}
		if perRound["incremental"] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"hotels=%d: incremental cuts per-round match work %.1fx (%.0f → %.0f visited/round); identical call sequence and results",
				hotels, perRound["scratch"]/perRound["incremental"],
				perRound["scratch"], perRound["incremental"]))
		}
	}
	return t, nil
}

// E11 re-runs the E8 HTTP configuration across invocation-pool widths:
// with real per-call latency, a layer of n independent calls costs
// n·latency sequentially but only ceil(n/w)·latency on w pool workers,
// so wall time drops by about min(w, widest layer) while results stay
// bit-identical (responses are applied in document order after the pool
// drains). The first sweep entry (InvokeWorkers 1) is the speedup
// baseline.
func E11(s Scale) (Table, error) {
	t := Table{
		ID:      "E11",
		Title:   "invocation-pool width sweep over HTTP (loopback, server sleeps 10ms/call)",
		Columns: []string{"hotels", "invoke-workers", "http-calls", "widest-batch", "wall-time", "speedup", "results"},
	}
	// resultSig canonicalises a result set for cross-width comparison.
	resultSig := func(out *core.Outcome) string {
		keys := make([]string, len(out.Results))
		for i, r := range out.Results {
			keys[i] = r.Key()
		}
		sort.Strings(keys)
		return strings.Join(keys, "|")
	}
	for _, hotels := range s.E11Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = hotels / 5
		spec.PushCapable = true
		// Every hotel is a query target with an intensional rating that
		// resolves through a three-deep call chain: the rating layers are
		// as wide as the document and provably independent (§4.4), the
		// widest-batch case the pool is built for. Five-star hotels are
		// rare because getNearbyRestos members fail the independence
		// condition (their own responses can add matching restaurants),
		// so each one is invoked serially at any pool width.
		spec.TargetEvery = 1
		spec.IntensionalRatingEvery = 1
		spec.FiveStarEvery = 8
		spec.RatingChainDepth = 2
		w := workload.Hotels(spec)
		srv := httptest.NewServer(soap.NewServer(w.Registry, true))
		client := &soap.Client{BaseURL: srv.URL}
		reg, err := client.RegistryFor()
		if err != nil {
			srv.Close()
			return t, err
		}
		var baseWall time.Duration
		var baseSig string
		for i, workers := range s.E11Workers {
			widest := 0
			opt := core.Options{
				Strategy: core.LazyNFQTyped, Schema: w.Schema,
				Push: true, Layering: true, Parallel: true,
				InvokeWorkers: workers,
				Trace: func(ev core.TraceEvent) {
					if ev.Kind == core.TraceInvoke && ev.Calls > widest {
						widest = ev.Calls
					}
				},
			}
			opt.Clock = service.NewWallClock(false)
			opt.Metrics, opt.Tracer = s.Metrics, s.Tracer
			start := time.Now()
			out, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, opt)
			wall := time.Since(start)
			if err != nil {
				srv.Close()
				return t, err
			}
			if len(out.Results) != w.ExpectedResults {
				srv.Close()
				return t, fmt.Errorf("E11: %d workers got %d results, want %d",
					workers, len(out.Results), w.ExpectedResults)
			}
			sig := resultSig(out)
			if i == 0 {
				baseWall, baseSig = wall, sig
			} else if sig != baseSig {
				srv.Close()
				return t, fmt.Errorf("E11: %d workers changed the result set", workers)
			}
			t.Rows = append(t.Rows, []string{
				itoa(hotels), itoa(workers),
				itoa(out.Stats.CallsInvoked), itoa(widest),
				ms(wall), ratio(baseWall, wall), itoa(len(out.Results)),
			})
		}
		srv.Close()
	}
	t.Notes = append(t.Notes,
		"identical result sets at every pool width (responses applied in document order)")
	return t, nil
}
