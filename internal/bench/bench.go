// Package bench implements the experiment harness that regenerates the
// evaluation of "Lazy Query Evaluation for Active XML" (SIGMOD 2004).
// Each experiment E1…E11 (see DESIGN.md for the index and EXPERIMENTS.md
// for recorded outcomes) sweeps one dimension and prints the series the
// paper's figures report: who wins, by what factor, and where behaviour
// crosses over.
//
// The harness is shared by the root benchmark suite (go test -bench) and
// by cmd/axmlbench, which prints full tables.
package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/activexml/axml/internal/telemetry"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title describes what the experiment shows.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold the formatted series.
	Rows [][]string
	// Notes records correctness checks and observations.
	Notes []string
	// Metrics holds latency-quantile summaries per histogram name when
	// the experiment ran instrumented (RunInstrumented); empty otherwise.
	Metrics map[string]HistogramSummary `json:",omitempty"`
	// Allocs holds per-case allocation profiles for experiments that
	// measure memory (E13): bytes and allocations per evaluation, keyed
	// by "<case>/<mode>". This is the machine-readable series the
	// BENCH_*.json trajectory tracks for allocation regressions.
	Allocs map[string]AllocSummary `json:",omitempty"`
}

// AllocSummary is one benchmark case's allocation profile: allocation
// volume and count per evaluation (runtime.MemStats deltas over the
// measured iterations, the same quantities go test -bench reports as
// B/op and allocs/op) plus mean wall time.
type AllocSummary struct {
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	WallMs      float64 `json:"wall_ms"`
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Scale sizes an experiment run. Quick keeps unit-test and benchmark
// iterations fast; Full is what cmd/axmlbench prints.
type Scale struct {
	// E1Sizes are the document sizes (#hotels) of the strategy sweep.
	E1Sizes []int
	// E2Latencies are the per-call latencies of the latency sweep.
	E2Latencies []time.Duration
	// E3Selectivities are the matching fractions of the push sweep
	// (five-star restaurants per hundred returned).
	E3Selectivities []int
	// E4Bulks are the per-hotel materialised-restaurant counts of the
	// F-guide sweep.
	E4Bulks []int
	// E5Depths are the call-chain nesting depths of the layering sweep.
	E5Depths []int
	// E6Kinds are the teaser service-kind counts of the typing sweep.
	E6Kinds []int
	// E7Hotels are the document sizes of the join-relaxation sweep.
	E7Hotels []int
	// E8Sizes are the document sizes of the HTTP end-to-end sweep.
	E8Sizes []int
	// E9Rates are the injected fault rates of the fault-tolerance sweep.
	E9Rates []float64
	// E10Sizes are the document sizes (#hotels) of the incremental
	// evaluation sweep; they mirror E1Sizes so the incremental win is
	// reported on the same documents as the headline strategy sweep.
	E10Sizes []int
	// E11Sizes are the document sizes of the invocation-pool sweep
	// (the E8 HTTP configuration re-run across pool widths).
	E11Sizes []int
	// E11Workers are the InvokeWorkers pool widths of the sweep; the
	// first entry is the speedup baseline (1 = in-batch sequential).
	E11Workers []int
	// E13Nodes are the synthetic document sizes (total tree nodes) of
	// the streaming/projection allocation sweep.
	E13Nodes []int
	// E14Sizes are the document sizes (#hotels) of the warm-vs-cold
	// repository open sweep.
	E14Sizes []int
	// E17Sizes are the document sizes (#hotels) of the planned-vs-static
	// scheduling sweep; multiples of four keep the slow-teaser aliasing
	// pattern exact.
	E17Sizes []int
	// E17Widths are the pool widths the planned-vs-static comparison
	// runs at (each width is its own static baseline).
	E17Widths []int
	// Metrics, when set, is threaded through every evaluation an
	// experiment runs, accumulating detect/invoke latency histograms
	// (cmd/axmlbench -json reports their quantiles). Nil disables.
	Metrics *telemetry.Registry
	// Tracer, when set, receives every evaluation's span tree
	// (cmd/axmlbench -trace-out streams it as JSONL). Nil disables.
	Tracer *telemetry.Tracer
}

// Quick is the scale used by tests and testing.B benchmarks.
func Quick() Scale {
	return Scale{
		E1Sizes:         []int{10, 40},
		E2Latencies:     []time.Duration{time.Millisecond, 100 * time.Millisecond},
		E3Selectivities: []int{2, 50},
		E4Bulks:         []int{0, 20},
		E5Depths:        []int{0, 3},
		E6Kinds:         []int{2, 8},
		E7Hotels:        []int{20},
		E8Sizes:         []int{8},
		E9Rates:         []float64{0, 0.2},
		E10Sizes:        []int{10, 40},
		E11Sizes:        []int{8},
		E11Workers:      []int{1, 4},
		E13Nodes:        []int{15000},
		E14Sizes:        []int{40},
		E17Sizes:        []int{8},
		E17Widths:       []int{4},
	}
}

// Full is the scale cmd/axmlbench prints; it matches the orders of
// magnitude the paper sweeps.
func Full() Scale {
	return Scale{
		E1Sizes:         []int{10, 50, 100, 200, 500, 1000},
		E2Latencies:     []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second},
		E3Selectivities: []int{1, 2, 5, 10, 25, 50, 100},
		E4Bulks:         []int{0, 10, 50, 100, 250},
		E5Depths:        []int{0, 1, 2, 4, 8},
		E6Kinds:         []int{2, 4, 8, 16, 32},
		E7Hotels:        []int{20, 100, 400},
		E8Sizes:         []int{5, 15, 50},
		E9Rates:         []float64{0, 0.1, 0.2, 0.4},
		E10Sizes:        []int{10, 50, 100, 200, 500, 1000},
		E11Sizes:        []int{16, 48},
		E11Workers:      []int{1, 2, 4, 8},
		E13Nodes:        []int{30000, 120000},
		E14Sizes:        []int{40, 200, 1000},
		E17Sizes:        []int{16, 48},
		E17Widths:       []int{4, 8},
	}
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (Table, error)
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "lazy vs naive: calls and time across document sizes", E1},
		{"E2", "the lazy gap grows with service latency", E2},
		{"E3", "query pushing: transfer and time vs selectivity", E3},
		{"E4", "F-guide accelerates relevance detection", E4},
		{"E5", "layering and parallelism cut NFQ evaluations and rounds", E5},
		{"E6", "exact vs lenient type analysis", E6},
		{"E7", "relaxed NFQs trade calls for detection time", E7},
		{"E8", "end-to-end over real HTTP services", E8},
		{"E9", "lazy vs naive under injected faults with retries", E9},
		{"E10", "incremental evaluation and response caching cut re-evaluation work", E10},
		{"E11", "the bounded invocation pool cuts HTTP wall time by the layer width", E11},
		{"E13", "streaming evaluation and type-based projection cut allocation", E13},
		{"E14", "the persistent index makes repository opens warm", E14},
		{"E16", "trace propagation stays under budget; profiles reopen warm", E16},
		{"E17", "cost-based planning beats static scheduling on heterogeneous latencies", E17},
	}
}

// RunInstrumented runs the experiment with a metrics registry threaded
// through every evaluation (the scale's own, or a fresh one) and
// attaches the observed latency summaries to the returned table.
func (e Experiment) RunInstrumented(s Scale) (Table, error) {
	if s.Metrics == nil {
		s.Metrics = telemetry.NewRegistry()
	}
	t, err := e.Run(s)
	t.Metrics = Summarize(s.Metrics)
	return t, err
}

// HistogramSummary reports one latency histogram's shape for JSON
// export: observation count and log-scale quantile estimates.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Summarize extracts a quantile summary for every histogram the registry
// observed (empty histograms are skipped).
func Summarize(reg *telemetry.Registry) map[string]HistogramSummary {
	snap := reg.Snapshot()
	out := map[string]HistogramSummary{}
	toMs := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		out[name] = HistogramSummary{
			Count: h.Count,
			P50ms: toMs(h.Quantile(0.50)),
			P95ms: toMs(h.Quantile(0.95)),
			P99ms: toMs(h.Quantile(0.99)),
			MaxMs: toMs(h.Max),
		}
	}
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Formatting helpers shared by the experiments.

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ratio(num, den time.Duration) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(num)/float64(den))
}

func kb(bytes int) string { return fmt.Sprintf("%.1fKB", float64(bytes)/1024) }
