package bench

import (
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/workload"
)

// E16 measures what the observability layer costs and what it buys.
// Part one re-runs the E11 HTTP configuration (loopback services, the
// widest pool width of the sweep) with cross-process trace propagation
// off and on: propagation stamps three attributes on every request
// envelope and returns a bounded remote span subtree in every response,
// so its cost is pure protocol overhead on top of the sleeps that
// dominate the sweep. The budget is ≤2% wall overhead. Part two times
// the persistent per-service statistics profiles: a profiler learns a
// workload, saves its checksummed snapshot, and a fresh profiler opens
// it warm — the reopened quantiles and selectivities must equal the
// learned ones exactly, so a restarting server schedules with yesterday's
// knowledge instead of relearning from zero.
func E16(s Scale) (Table, error) {
	t := Table{
		ID:      "E16",
		Title:   "trace propagation overhead (E11 HTTP shape) and warm profile opens",
		Columns: []string{"case", "config", "wall-time", "overhead", "detail"},
	}
	const iters = 15
	workers := s.E11Workers[len(s.E11Workers)-1]
	resultSig := func(out *core.Outcome) string {
		keys := make([]string, len(out.Results))
		for i, r := range out.Results {
			keys[i] = r.Key()
		}
		sort.Strings(keys)
		return strings.Join(keys, "|")
	}
	for _, hotels := range s.E11Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = hotels / 5
		spec.PushCapable = true
		spec.TargetEvery = 1
		spec.IntensionalRatingEvery = 1
		spec.FiveStarEvery = 8
		spec.RatingChainDepth = 2
		w := workload.Hotels(spec)
		srv := httptest.NewServer(soap.NewServer(w.Registry, true))
		client := &soap.Client{BaseURL: srv.URL}
		reg, err := client.RegistryFor()
		if err != nil {
			srv.Close()
			return t, err
		}
		// Three configurations separate what tracing itself costs from
		// what crossing the process boundary adds: "off" is the untraced
		// reference, "local" records spans but sends nothing on the wire,
		// "propagate" additionally stamps the envelope and carries the
		// remote span subtree back in every response. The ≤2% budget is
		// on the propagate-vs-local delta — the cost of this feature, not
		// of tracing as such.
		modes := []struct {
			name      string
			traced    bool
			propagate bool
		}{
			{"off", false, false},
			{"local", true, false},
			{"propagate", true, true},
		}
		sigs := make([]string, len(modes))
		wallsAll := make([][]time.Duration, len(modes))
		var calls, remoteSpans int
		run := func(mode int) error {
			m := modes[mode]
			opt := core.Options{
				Strategy: core.LazyNFQTyped, Schema: w.Schema,
				Push: true, Layering: true, Parallel: true,
				InvokeWorkers: workers,
			}
			opt.Clock = service.NewWallClock(false)
			opt.Metrics = s.Metrics
			var tracer *telemetry.Tracer
			if m.traced {
				tracer = telemetry.NewTracer(telemetry.DefaultSpanCapacity)
				if m.propagate {
					tracer.SetTrace(telemetry.DeriveTraceID("E16", itoa(hotels)))
					opt.RemoteSpans = soap.MaxRemoteSpans
				}
				opt.Tracer = tracer
			}
			// Each timed run starts from a collected heap so one mode's
			// garbage is never charged to the next mode's wall time.
			runtime.GC()
			t0 := time.Now()
			out, err := core.Evaluate(w.Doc.Clone(), w.Query, reg, opt)
			wall := time.Since(t0)
			if err != nil {
				return err
			}
			if len(out.Results) != w.ExpectedResults {
				return fmt.Errorf("E16: got %d results, want %d", len(out.Results), w.ExpectedResults)
			}
			sigs[mode], calls = resultSig(out), out.Stats.CallsInvoked
			wallsAll[mode] = append(wallsAll[mode], wall)
			if m.propagate {
				remoteSpans = 0
				for _, sp := range tracer.Spans(0) {
					if sp.Name == "http-invoke" {
						remoteSpans++
					}
				}
			}
			return nil
		}
		// Interleave the modes inside each iteration: the sweep is
		// sleep-dominated, so sequential per-mode batches would fold
		// timer and scheduler drift into the overhead estimate. The
		// overhead is then the median of the per-iteration paired
		// ratios, which cancels whatever drift one iteration saw.
		for it := 0; it < iters; it++ {
			for mode := range modes {
				if err := run(mode); err != nil {
					srv.Close()
					return t, err
				}
			}
		}
		srv.Close()
		if sigs[0] != sigs[1] || sigs[1] != sigs[2] {
			return t, fmt.Errorf("E16: hotels=%d tracing changed the result set", hotels)
		}
		pairedPct := func(num, den []time.Duration) float64 {
			ratios := make([]float64, len(num))
			for i := range num {
				ratios[i] = float64(num[i]) / float64(den[i])
			}
			sort.Float64s(ratios)
			return 100 * (ratios[len(ratios)/2] - 1)
		}
		walls := make([]time.Duration, len(modes))
		for mode := range modes {
			ws := append([]time.Duration(nil), wallsAll[mode]...)
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			walls[mode] = ws[len(ws)/2]
		}
		tracing := pairedPct(wallsAll[1], wallsAll[0])
		propagation := pairedPct(wallsAll[2], wallsAll[1])
		t.Rows = append(t.Rows,
			[]string{"propagate", fmt.Sprintf("hotels=%d workers=%d off", hotels, workers),
				ms(walls[0]), "-", fmt.Sprintf("%d http-calls", calls)},
			[]string{"propagate", fmt.Sprintf("hotels=%d workers=%d local", hotels, workers),
				ms(walls[1]), fmt.Sprintf("%+.2f%% vs off", tracing),
				"spans recorded, nothing on the wire"},
			[]string{"propagate", fmt.Sprintf("hotels=%d workers=%d propagate", hotels, workers),
				ms(walls[2]), fmt.Sprintf("%+.2f%% vs local", propagation),
				fmt.Sprintf("%d remote spans grafted", remoteSpans)})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"hotels=%d: cross-process propagation adds %+.2f%% over local tracing (budget ≤2%%); identical result sets in all three modes",
			hotels, propagation))
	}

	// Part two: persist a learned profile and reopen it warm.
	hotels := s.E11Sizes[len(s.E11Sizes)-1]
	spec := workload.DefaultSpec()
	spec.Hotels = hotels
	spec.HiddenHotels = hotels / 5
	spec.PushCapable = true
	spec.IntensionalRatingEvery = 1
	w := workload.Hotels(spec)
	prof := profile.New(0, nil)
	opt := core.Options{
		Strategy: core.LazyNFQTyped, Schema: w.Schema,
		Push: true, Layering: true, Parallel: true,
	}
	if _, err := core.Evaluate(w.Doc.Clone(), w.Query, prof.Wrap(w.Registry), opt); err != nil {
		return t, err
	}
	learned := prof.Snapshot()
	dir, err := os.MkdirTemp("", "axml-e16-*")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir)
	saveWall, err := median(iters, func() error { return prof.SaveFile(dir) })
	if err != nil {
		return t, err
	}
	info, err := os.Stat(dir + "/" + profile.FileName)
	if err != nil {
		return t, err
	}
	var warm *profile.Profiler
	loadWall, err := median(iters, func() error {
		warm = profile.New(0, nil)
		return warm.LoadFile(dir)
	})
	if err != nil {
		return t, err
	}
	reopened := warm.Snapshot()
	// The rolling-window counters are deliberately not persisted: a
	// reopened profile is warm history, not recent activity.
	for i := range learned {
		learned[i].RecentCalls, learned[i].RecentFaults = 0, 0
	}
	if !reflect.DeepEqual(learned, reopened) {
		return t, fmt.Errorf("E16: warm-opened profiles differ from the learned ones")
	}
	t.Rows = append(t.Rows,
		[]string{"profiles", fmt.Sprintf("save (%d services)", len(learned)),
			ms(saveWall), "-", kb(int(info.Size()))},
		[]string{"profiles", "load-warm", ms(loadWall), "-",
			"quantiles and selectivities equal the learned profile"})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"a restart reopens %d service profiles (quantiles, selectivity, fault rates) in %s instead of relearning them",
		len(learned), ms(loadWall)))
	return t, nil
}
