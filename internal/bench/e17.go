package bench

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/plan"
	"github.com/activexml/axml/internal/profile"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/workload"
)

// E17 measures cost-based invocation planning against the static
// striped schedule on a heterogeneous-latency federation, the E11 HTTP
// configuration with one slow partner among fast ones.
//
// The world is built so the static assignment aliases pathologically:
// every hotel contributes [getNearbyRestos, getTeaser<i mod 4>] to one
// wide batch, so the slow kind-0 teasers (every fourth hotel) all land
// at member indices ≡ 1 (mod 8) — the same worker stripe at widths 4
// and 8. Static scheduling serialises the slow calls on that worker;
// the planner, fed a profiler warmed by one untimed pass, ranks them
// slowest-first and spreads them across the pool. Result sets must stay
// bit-identical: planning only reorders and resizes work.
func E17(s Scale) (Table, error) {
	t := Table{
		ID:      "E17",
		Title:   "cost-planned vs static invocation scheduling (one slow service over HTTP, server sleeps per call)",
		Columns: []string{"hotels", "invoke-workers", "plan", "http-calls", "wall-time", "speedup", "results"},
	}
	resultSig := func(out *core.Outcome) string {
		keys := make([]string, len(out.Results))
		for i, r := range out.Results {
			keys[i] = r.Key()
		}
		sort.Strings(keys)
		return strings.Join(keys, "|")
	}
	for _, hotels := range s.E17Sizes {
		spec := workload.DefaultSpec()
		spec.Hotels = hotels
		spec.HiddenHotels = 0
		spec.TargetEvery = 1
		spec.FiveStarEvery = 1
		spec.IntensionalRatingEvery = 0
		spec.RestosPerCall = 2
		spec.FiveStarRestos = 1
		spec.MuseumsPerCall = 0
		spec.ExtrasPerCall = 0
		spec.TeaserKinds = 4
		spec.Latency = 5 * time.Millisecond
		spec.ServiceLatency = map[string]time.Duration{"getTeaser0": 80 * time.Millisecond}
		w := workload.Hotels(spec)
		srv := httptest.NewServer(soap.NewServer(w.Registry, true))
		client := &soap.Client{BaseURL: srv.URL}
		reg, err := client.RegistryFor()
		if err != nil {
			srv.Close()
			return t, err
		}
		newOpt := func(width int) core.Options {
			opt := core.Options{Strategy: core.LazyNFQ, Parallel: true, InvokeWorkers: width}
			opt.Clock = service.NewWallClock(false)
			return opt
		}
		widest := 1
		for _, width := range s.E17Widths {
			if width > widest {
				widest = width
			}
		}
		// Warm pass: the planner only knows what the profiler observed,
		// so one untimed evaluation through a profiling wrapper teaches
		// it which partner is slow. MinSamples 2 lets the smallest world
		// (two kind-0 teasers) clear the trust threshold in one pass.
		prof := profile.New(0, nil)
		if _, err := core.Evaluate(w.Doc.Clone(), w.StarQuery, prof.Wrap(reg), newOpt(widest)); err != nil {
			srv.Close()
			return t, err
		}
		planner := plan.New(prof, plan.Options{MinSamples: 2})
		for _, width := range s.E17Widths {
			var staticWall time.Duration
			var staticSig string
			for _, planned := range []bool{false, true} {
				opt := newOpt(width)
				if planned {
					opt.Planner = planner
				}
				opt.Metrics, opt.Tracer = s.Metrics, s.Tracer
				start := time.Now()
				out, err := core.Evaluate(w.Doc.Clone(), w.StarQuery, reg, opt)
				wall := time.Since(start)
				if err != nil {
					srv.Close()
					return t, err
				}
				mode := "static"
				if planned {
					mode = "cost"
				}
				sig := resultSig(out)
				if !planned {
					staticWall, staticSig = wall, sig
				} else if sig != staticSig {
					srv.Close()
					return t, fmt.Errorf("E17: planner changed the result set at width %d", width)
				}
				t.Rows = append(t.Rows, []string{
					itoa(hotels), itoa(width), mode,
					itoa(out.Stats.CallsInvoked), ms(wall),
					ratio(staticWall, wall), itoa(len(out.Results)),
				})
			}
		}
		srv.Close()
	}
	t.Notes = append(t.Notes,
		"speedup is planned wall time vs static at the same pool width; result sets are bit-identical",
		"static striping serialises the slow service's calls on one worker; LPT planning spreads them")
	return t, nil
}
