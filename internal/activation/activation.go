// Package activation implements the service-call activation policies of
// the ActiveXML system that frame the paper's contribution: "a particular
// service call may be invoked at regular time intervals or only upon
// explicit user intervention. We are concerned here with a special kind
// of call activation: lazy service calls" (Section 1 of "Lazy Query
// Evaluation for Active XML", SIGMOD 2004).
//
// The lazy policy is the engine of package core; this package provides
// the remaining modes a complete AXML system offers:
//
//   - Immediate: a call is invoked (and replaced by its result) as soon
//     as it is swept.
//   - Periodic: a call persists in the document and is re-invoked on an
//     interval; each activation replaces the previous result, which is
//     kept as the call's preceding siblings.
//   - Manual: a call is only invoked through an explicit Activate.
//   - Lazy: the controller never touches the call; query evaluation
//     (core.Evaluate) decides.
//
// A Controller owns the coordination; it locks around document mutations
// so periodic refreshes and explicit activations do not interleave.
// Query evaluation over a controlled document must be wrapped in
// Controller.WithDocument to take the same lock.
package activation

import (
	"fmt"
	"sync"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// Mode is a call's activation policy.
type Mode uint8

const (
	// Lazy leaves invocation to query evaluation (the paper's subject).
	Lazy Mode = iota
	// Immediate invokes the call at the next sweep and replaces it.
	Immediate
	// Periodic re-invokes the call on an interval, keeping the call and
	// replacing its previous result in place.
	Periodic
	// Manual invokes only through Controller.Activate.
	Manual
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Lazy:
		return "lazy"
	case Immediate:
		return "immediate"
	case Periodic:
		return "periodic"
	case Manual:
		return "manual"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Policy is the activation policy of a service's calls.
type Policy struct {
	// Mode selects when calls to the service fire.
	Mode Mode
	// Interval is the refresh period for Periodic.
	Interval time.Duration
}

// Controller applies activation policies to the calls of one document.
type Controller struct {
	mu       sync.Mutex
	doc      *tree.Document
	reg      *service.Registry
	policies map[string]Policy
	// results tracks, per periodic call, the forest its last activation
	// produced, so a refresh can replace it.
	results map[*tree.Node][]*tree.Node
	nextDue map[*tree.Node]time.Time

	stop chan struct{}
	done chan struct{}
}

// NewController wires a document to a registry. Policies default to Lazy.
func NewController(doc *tree.Document, reg *service.Registry) *Controller {
	return &Controller{
		doc:      doc,
		reg:      reg,
		policies: map[string]Policy{},
		results:  map[*tree.Node][]*tree.Node{},
		nextDue:  map[*tree.Node]time.Time{},
	}
}

// SetPolicy assigns the policy for every call to the named service. A
// Periodic policy requires a positive interval.
func (c *Controller) SetPolicy(serviceName string, p Policy) error {
	if p.Mode == Periodic && p.Interval <= 0 {
		return fmt.Errorf("activation: periodic policy for %s needs a positive interval", serviceName)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policies[serviceName] = p
	return nil
}

// PolicyFor returns the effective policy of a service.
func (c *Controller) PolicyFor(serviceName string) Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policies[serviceName]
}

// Policies returns a copy of every explicitly set policy. Callers that
// need policy data inside WithDocument must snapshot it first: the
// controller's lock is not reentrant.
func (c *Controller) Policies() map[string]Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Policy, len(c.policies))
	for k, v := range c.policies {
		out[k] = v
	}
	return out
}

// WithDocument runs fn under the controller's lock, so callers can
// evaluate queries or inspect the document without racing refreshes.
func (c *Controller) WithDocument(fn func(doc *tree.Document) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn(c.doc)
}

// Sweep applies the Immediate policies: every call to an Immediate
// service currently in the document is invoked and replaced, repeatedly,
// until none remains (results may embed further immediate calls). It
// also schedules newly discovered Periodic calls. maxCalls bounds the
// sweep.
func (c *Controller) Sweep(maxCalls int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	invoked := 0
	for {
		progressed := false
		for _, call := range c.doc.Calls() {
			switch c.policies[call.Label].Mode {
			case Immediate:
				if invoked >= maxCalls {
					return invoked, fmt.Errorf("activation: sweep exceeded %d calls", maxCalls)
				}
				if err := c.replace(call); err != nil {
					return invoked, err
				}
				invoked++
				progressed = true
			case Periodic:
				if _, ok := c.nextDue[call]; !ok {
					c.nextDue[call] = time.Now()
				}
			}
		}
		if !progressed {
			return invoked, nil
		}
	}
}

// Activate invokes one call explicitly, regardless of its policy. A
// periodic call is refreshed (kept in place); any other call is replaced
// by its result.
func (c *Controller) Activate(call *tree.Node) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policies[call.Label].Mode == Periodic {
		return c.refresh(call)
	}
	return c.replace(call)
}

// replace performs the standard AXML rewriting step: the call disappears
// and its result takes its place.
func (c *Controller) replace(call *tree.Node) error {
	resp, err := c.reg.Invoke(call.Label, cloneForest(call.Children), nil)
	if err != nil {
		return err
	}
	c.doc.ReplaceCall(call, resp.Forest)
	return nil
}

// refresh re-invokes a periodic call: the previous result forest is
// removed and the fresh one inserted before the call, which stays in the
// document for the next round.
func (c *Controller) refresh(call *tree.Node) error {
	if call.Parent == nil {
		return fmt.Errorf("activation: refresh of a detached call")
	}
	resp, err := c.reg.Invoke(call.Label, cloneForest(call.Children), nil)
	if err != nil {
		return err
	}
	for _, old := range c.results[call] {
		old.Detach()
	}
	for _, n := range resp.Forest {
		call.Parent.InsertBefore(n, call)
		c.doc.Adopt(n)
	}
	c.results[call] = resp.Forest
	if p := c.policies[call.Label]; p.Mode == Periodic {
		c.nextDue[call] = time.Now().Add(p.Interval)
	}
	return nil
}

// RefreshDue refreshes every periodic call whose interval has elapsed
// (or that has never fired) and returns how many fired. Detached calls
// (e.g. removed by other machinery) are forgotten.
func (c *Controller) RefreshDue(now time.Time) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Discover new periodic calls.
	for _, call := range c.doc.Calls() {
		if c.policies[call.Label].Mode == Periodic {
			if _, ok := c.nextDue[call]; !ok {
				c.nextDue[call] = now
			}
		}
	}
	fired := 0
	for call, due := range c.nextDue {
		if call.Parent == nil {
			delete(c.nextDue, call)
			delete(c.results, call)
			continue
		}
		if now.Before(due) {
			continue
		}
		if err := c.refresh(call); err != nil {
			return fired, err
		}
		fired++
	}
	return fired, nil
}

// Start launches a background loop that calls RefreshDue every tick.
// Errors stop the loop silently (the next Start restarts it); production
// deployments poll RefreshDue themselves when they need error handling.
func (c *Controller) Start(tick time.Duration) {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				if _, err := c.RefreshDue(now); err != nil {
					return
				}
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func cloneForest(ns []*tree.Node) []*tree.Node {
	out := make([]*tree.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}
