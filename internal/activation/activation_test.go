package activation

import (
	"errors"
	"testing"
	"time"

	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

// tickerWorld builds a document with one call per policy kind and a
// registry whose services count invocations and return fresh data.
func tickerWorld(t *testing.T) (*tree.Document, *service.Registry, map[string]*int) {
	t.Helper()
	counts := map[string]*int{}
	reg := service.NewRegistry()
	for _, name := range []string{"now", "ticker", "byhand", "lazyone"} {
		n := new(int)
		counts[name] = n
		name := name
		reg.Register(&service.Service{
			Name: name,
			Handler: func([]*tree.Node) ([]*tree.Node, error) {
				*counts[name]++
				v := tree.NewElement("value")
				v.Append(tree.NewText(name))
				return []*tree.Node{v}, nil
			},
		})
	}
	root := tree.NewElement("r")
	root.Append(tree.NewElement("a")).Append(tree.NewCall("now"))
	root.Append(tree.NewElement("b")).Append(tree.NewCall("ticker"))
	root.Append(tree.NewElement("c")).Append(tree.NewCall("byhand"))
	root.Append(tree.NewElement("d")).Append(tree.NewCall("lazyone"))
	return tree.NewDocument(root), reg, counts
}

func TestSweepImmediate(t *testing.T) {
	doc, reg, counts := tickerWorld(t)
	c := NewController(doc, reg)
	if err := c.SetPolicy("now", Policy{Mode: Immediate}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Sweep(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || *counts["now"] != 1 {
		t.Fatalf("sweep invoked %d / count %d", n, *counts["now"])
	}
	// The immediate call was replaced; the others stay.
	if len(doc.Calls()) != 3 {
		t.Fatalf("calls left = %d", len(doc.Calls()))
	}
	// Sweeping again is a no-op.
	if n, _ := c.Sweep(100); n != 0 {
		t.Fatalf("second sweep invoked %d", n)
	}
	// Lazy and manual calls never fired.
	if *counts["lazyone"] != 0 || *counts["byhand"] != 0 {
		t.Fatal("non-immediate calls fired during sweep")
	}
}

func TestSweepChainsAndBudget(t *testing.T) {
	reg := service.NewRegistry()
	count := 0
	reg.Register(&service.Service{Name: "chain", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		count++
		if count < 3 {
			return []*tree.Node{tree.NewCall("chain")}, nil
		}
		return []*tree.Node{tree.NewText("done")}, nil
	}})
	root := tree.NewElement("r")
	root.Append(tree.NewCall("chain"))
	doc := tree.NewDocument(root)
	c := NewController(doc, reg)
	if err := c.SetPolicy("chain", Policy{Mode: Immediate}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Sweep(100)
	if err != nil || n != 3 {
		t.Fatalf("chained sweep: n=%d err=%v", n, err)
	}
	if doc.Root.Children[0].Label != "done" {
		t.Fatalf("chain not resolved: %s", doc.Root)
	}
	// Budget enforcement.
	count = 0
	root2 := tree.NewElement("r")
	root2.Append(tree.NewCall("chain"))
	doc2 := tree.NewDocument(root2)
	c2 := NewController(doc2, reg)
	if err := c2.SetPolicy("chain", Policy{Mode: Immediate}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Sweep(1); err == nil {
		t.Fatal("budget exceeded should error")
	}
}

func TestManualActivate(t *testing.T) {
	doc, reg, counts := tickerWorld(t)
	c := NewController(doc, reg)
	if err := c.SetPolicy("byhand", Policy{Mode: Manual}); err != nil {
		t.Fatal(err)
	}
	var call *tree.Node
	for _, x := range doc.Calls() {
		if x.Label == "byhand" {
			call = x
		}
	}
	if err := c.Activate(call); err != nil {
		t.Fatal(err)
	}
	if *counts["byhand"] != 1 {
		t.Fatal("manual call did not fire")
	}
	if call.Parent != nil {
		t.Fatal("manual activation should replace the call")
	}
}

func TestPeriodicRefreshKeepsCall(t *testing.T) {
	doc, reg, counts := tickerWorld(t)
	c := NewController(doc, reg)
	if err := c.SetPolicy("ticker", Policy{Mode: Periodic, Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	fired, err := c.RefreshDue(now)
	if err != nil || fired != 1 {
		t.Fatalf("first refresh: fired=%d err=%v", fired, err)
	}
	b := doc.Root.Child("b")
	if len(b.Children) != 2 { // result + the surviving call
		t.Fatalf("b children = %d", len(b.Children))
	}
	if b.Children[0].Label != "value" || b.Children[1].Kind != tree.Call {
		t.Fatalf("layout after refresh: %s", b)
	}
	// Not due yet: nothing fires.
	fired, err = c.RefreshDue(now.Add(time.Minute))
	if err != nil || fired != 0 {
		t.Fatalf("early refresh fired=%d", fired)
	}
	// Due: the old result is replaced, not accumulated.
	fired, err = c.RefreshDue(now.Add(2 * time.Hour))
	if err != nil || fired != 1 {
		t.Fatalf("due refresh fired=%d err=%v", fired, err)
	}
	if len(b.Children) != 2 || *counts["ticker"] != 2 {
		t.Fatalf("after second refresh: children=%d count=%d", len(b.Children), *counts["ticker"])
	}
}

func TestPeriodicForgetsDetachedCalls(t *testing.T) {
	doc, reg, _ := tickerWorld(t)
	c := NewController(doc, reg)
	if err := c.SetPolicy("ticker", Policy{Mode: Periodic, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RefreshDue(time.Now()); err != nil {
		t.Fatal(err)
	}
	// Remove the call from the document; the controller must drop it.
	for _, x := range doc.Calls() {
		if x.Label == "ticker" {
			x.Detach()
		}
	}
	fired, err := c.RefreshDue(time.Now().Add(time.Second))
	if err != nil || fired != 0 {
		t.Fatalf("detached call refreshed: fired=%d err=%v", fired, err)
	}
}

func TestStartStop(t *testing.T) {
	doc, reg, counts := tickerWorld(t)
	c := NewController(doc, reg)
	if err := c.SetPolicy("ticker", Policy{Mode: Periodic, Interval: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	c.Start(2 * time.Millisecond)
	c.Start(2 * time.Millisecond) // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.WithDocument(func(*tree.Document) error { return nil }); err != nil {
			t.Fatal(err)
		}
		c.mu.Lock()
		fired := *counts["ticker"]
		c.mu.Unlock()
		if fired >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic call did not fire twice in 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
}

func TestSetPolicyValidation(t *testing.T) {
	doc, reg, _ := tickerWorld(t)
	c := NewController(doc, reg)
	if err := c.SetPolicy("ticker", Policy{Mode: Periodic}); err == nil {
		t.Fatal("periodic without interval must fail")
	}
	if got := c.PolicyFor("ticker").Mode; got != Lazy {
		t.Fatalf("default policy = %v", got)
	}
}

func TestActivationErrorsPropagate(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{Name: "boom", Handler: func([]*tree.Node) ([]*tree.Node, error) {
		return nil, errors.New("down")
	}})
	root := tree.NewElement("r")
	root.Append(tree.NewCall("boom"))
	doc := tree.NewDocument(root)
	c := NewController(doc, reg)
	if err := c.Activate(doc.Calls()[0]); err == nil {
		t.Fatal("service error must propagate")
	}
	if err := c.SetPolicy("boom", Policy{Mode: Periodic, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RefreshDue(time.Now()); err == nil {
		t.Fatal("refresh error must propagate")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Lazy: "lazy", Immediate: "immediate", Periodic: "periodic",
		Manual: "manual", Mode(9): "mode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}
