package session

import (
	"context"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// LimitRegistry returns a registry proxying reg through a shared
// invocation pool of the given width: at most limit invocations are in
// flight across every concurrent session, whatever each engine's own
// Options.InvokeWorkers asks for. It is the serving-side counterpart of
// the engine's per-evaluation pool — one tenant's parallel batch cannot
// monopolise the providers that every other tenant shares.
//
// The wrapper composes with the response cache exactly like Cache.Wrap:
// sessions use cache.Wrap(LimitRegistry(base, n, reg)) so cache hits are
// answered without consuming a pool slot, and only true misses queue.
// The inflight gauge (axml_invocations_inflight) exposes the pool's
// instantaneous occupancy. limit < 1 returns reg unchanged.
func LimitRegistry(reg *service.Registry, limit int, metrics *telemetry.Registry) *service.Registry {
	if limit < 1 {
		return reg
	}
	slots := make(chan struct{}, limit)
	inflight := metrics.Gauge(telemetry.MetricInvokeInflight)
	out := service.NewRegistry()
	for _, name := range reg.Names() {
		inner := reg.Lookup(name)
		name := name
		canPush := inner.CanPush
		out.Register(&service.Service{
			Name:    name,
			Latency: inner.Latency,
			CanPush: canPush,
			RemoteCtx: func(ctx context.Context, params []*tree.Node, pushed *pattern.Pattern) (service.Response, error) {
				slots <- struct{}{}
				inflight.Add(1)
				resp, err := reg.InvokeContext(ctx, name, params, pushed)
				inflight.Add(-1)
				<-slots
				return resp, err
			},
		})
	}
	return out
}
