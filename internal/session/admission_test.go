package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionFIFOFairness checks the semaphore grants strictly in
// arrival order: with capacity 1 held, waiters enqueued 0..n-1 must be
// admitted 0..n-1 as the holder chain releases — no barging, no
// starvation.
func TestAdmissionFIFOFairness(t *testing.T) {
	a := newAdmission(1, 64)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}

	const waiters = 16
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(context.Background(), 1, time.Second); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.release(1)
		}()
		// Serialise enqueue order: wait until this goroutine is queued
		// before starting the next.
		waitFor(t, func() bool { return a.queued() == i+1 })
	}

	a.release(1)
	wg.Wait()
	close(order)
	prev := -1
	for got := range order {
		if got != prev+1 {
			t.Fatalf("waiter %d admitted after %d — not FIFO", got, prev)
		}
		prev = got
	}
}

// TestAdmissionWeightedNoStarvation checks a heavy waiter at the queue
// head blocks later light arrivals (FIFO, not best-fit): skipping ahead
// would starve the heavy query under a stream of light ones.
func TestAdmissionWeightedNoStarvation(t *testing.T) {
	a := newAdmission(4, 64)
	if err := a.acquire(context.Background(), 3, time.Second); err != nil {
		t.Fatal(err)
	}

	heavy := make(chan struct{})
	go func() {
		if err := a.acquire(context.Background(), 4, time.Second); err == nil {
			close(heavy)
		}
	}()
	waitFor(t, func() bool { return a.queued() == 1 })

	light := make(chan struct{})
	go func() {
		if err := a.acquire(context.Background(), 1, time.Second); err == nil {
			close(light)
		}
	}()
	waitFor(t, func() bool { return a.queued() == 2 })

	// One free token: the light waiter would fit, but the heavy one is
	// first in line — neither may be admitted yet.
	select {
	case <-heavy:
		t.Fatal("heavy admitted with insufficient capacity")
	case <-light:
		t.Fatal("light waiter barged past the queued heavy waiter")
	case <-time.After(30 * time.Millisecond):
	}

	a.release(3)
	<-heavy // 4 tokens free: heavy admitted first
	a.release(4)
	<-light
	a.release(1)
}

// TestAdmissionShedsPastQueueBudget checks the bounded queue: waiters
// past the budget fail fast with ShedError instead of queueing.
func TestAdmissionShedsPastQueueBudget(t *testing.T) {
	a := newAdmission(1, 2)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go func() {
			if err := a.acquire(context.Background(), 1, time.Second); err == nil {
				a.release(1)
			}
		}()
	}
	waitFor(t, func() bool { return a.queued() == 2 })

	err := a.acquire(context.Background(), 1, 250*time.Millisecond)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("got %v, want ShedError", err)
	}
	if shed.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 250ms", shed.RetryAfter)
	}
	a.release(1)
}

// TestAdmissionZeroQueueShedsWhenSaturated checks maxQueue 0: saturation
// sheds immediately, nothing ever waits.
func TestAdmissionZeroQueueShedsWhenSaturated(t *testing.T) {
	a := newAdmission(1, 0)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	var shed *ShedError
	if err := a.acquire(context.Background(), 1, time.Second); !errors.As(err, &shed) {
		t.Fatalf("got %v, want ShedError", err)
	}
	a.release(1)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
}

// TestAdmissionContextCancel checks a waiter that gives up leaves the
// queue without leaking its slot or corrupting FIFO order.
func TestAdmissionContextCancel(t *testing.T) {
	a := newAdmission(1, 8)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, 1, time.Second) }()
	waitFor(t, func() bool { return a.queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if a.queued() != 0 {
		t.Fatalf("cancelled waiter still queued")
	}
	a.release(1)
	if err := a.acquire(context.Background(), 1, time.Second); err != nil {
		t.Fatalf("slot leaked by cancelled waiter: %v", err)
	}
}

// TestAdmissionOversizedWeightClamped checks a weight above capacity is
// admissible (clamped) rather than deadlocking forever.
func TestAdmissionOversizedWeightClamped(t *testing.T) {
	a := newAdmission(2, 8)
	if err := a.acquire(context.Background(), 100, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a.active(); got != 2 {
		t.Fatalf("active = %d, want clamped 2", got)
	}
	a.release(100)
	if got := a.active(); got != 0 {
		t.Fatalf("active = %d after release, want 0", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
