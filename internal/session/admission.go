package session

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ShedError reports an admission rejection: the server is saturated (every
// execution slot busy and the wait queue at its budget) and the client
// should retry after the hinted delay. The HTTP layer renders it as
// 429 Too Many Requests with a Retry-After header.
type ShedError struct {
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("session: admission queue full, retry after %v", e.RetryAfter)
}

// admission is a weighted FIFO semaphore with a bounded wait queue — the
// server's only backpressure point. A query acquires weight tokens before
// touching any document; when no tokens are free it waits in strict FIFO
// order, and when the queue itself is full the acquire fails immediately
// with ShedError (load shedding, never unbounded buffering). Draining
// wakes every queued waiter with ErrDraining and lets active queries
// finish.
//
// FIFO matters for fairness: Go's sync.Cond and channel selects wake
// waiters in unspecified order, which under sustained overload can
// starve an unlucky client indefinitely. The explicit waiter list
// guarantees admission in arrival order.
type admission struct {
	mu       sync.Mutex
	capacity int64 // total tokens
	used     int64 // tokens held by active queries
	maxQueue int   // waiters allowed before shedding
	waiters  []*waiter
	draining bool
	idle     chan struct{} // closed when draining and used == 0
}

type waiter struct {
	weight int64
	ready  chan error // buffered(1): grant (nil), ErrDraining, or nothing if abandoned
}

func newAdmission(capacity int64, maxQueue int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// acquire obtains weight tokens, waiting in FIFO order behind earlier
// arrivals. It fails fast with ShedError when the wait queue is at budget,
// with ErrDraining when the server is shutting down, and with ctx.Err()
// when the caller gives up first. Weights above the total capacity are
// clamped so oversized requests remain admissible (they just run alone).
func (a *admission) acquire(ctx context.Context, weight int64, retryAfter time.Duration) error {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	if len(a.waiters) == 0 && a.capacity-a.used >= weight {
		a.used += weight
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		return &ShedError{RetryAfter: retryAfter}
	}
	w := &waiter{weight: weight, ready: make(chan error, 1)}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case err := <-w.ready:
		return err
	case <-ctx.Done():
		a.mu.Lock()
		for i, x := range a.waiters {
			if x == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// Already granted between ctx firing and the lock: the tokens are
		// ours, so hand them straight back.
		if err := <-w.ready; err == nil {
			a.release(weight)
		}
		return ctx.Err()
	}
}

// release returns weight tokens and grants as many queued waiters as now
// fit, in FIFO order.
func (a *admission) release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	a.used -= weight
	if a.used < 0 {
		a.used = 0
	}
	a.grantLocked()
	if a.draining && a.used == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
}

// grantLocked admits the longest-waiting queries that fit the free
// capacity. It stops at the first waiter that does not fit — skipping
// ahead would let a stream of light queries starve a heavy one.
func (a *admission) grantLocked() {
	for len(a.waiters) > 0 && !a.draining {
		w := a.waiters[0]
		if a.capacity-a.used < w.weight {
			return
		}
		a.used += w.weight
		a.waiters = a.waiters[1:]
		w.ready <- nil
	}
}

// queued reports the current wait-queue length.
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// active reports the tokens currently held.
func (a *admission) active() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// drain switches the semaphore into shutdown: queued waiters are refused
// with ErrDraining, new acquires fail the same way, and the call blocks
// until every active query has released its tokens or ctx expires.
// Draining is idempotent; concurrent drains all wait for idleness.
func (a *admission) drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	for _, w := range a.waiters {
		w.ready <- ErrDraining
	}
	a.waiters = nil
	if a.used == 0 {
		a.mu.Unlock()
		return nil
	}
	if a.idle == nil {
		a.idle = make(chan struct{})
	}
	idle := a.idle
	a.mu.Unlock()

	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
