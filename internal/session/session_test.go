package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/plan"
	"github.com/activexml/axml/internal/repo"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

// suiteSpec keeps the differential worlds small enough for the seeded
// sweeps to stay fast under -race while still covering hidden hotels,
// intensional ratings and the join workload.
func suiteSpec() workload.HotelSpec {
	spec := workload.DefaultSpec()
	spec.Hotels = 12
	spec.HiddenHotels = 4
	return spec
}

// canon renders bindings canonically: each binding's sorted k=v pairs,
// then the whole multiset sorted — the "bit-identical results" the
// differential tests compare.
func canon(bs []tree.Binding) string {
	keys := make([]string, len(bs))
	for i, b := range bs {
		parts := make([]string, 0, len(b))
		for k, v := range b {
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		keys[i] = strings.Join(parts, ",")
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// serialOracle evaluates every (scenario, query) pair on a fresh clone,
// serially — the single-tenant ground truth. Keys are "doc|query".
func serialOracle(t *testing.T, reg *service.Registry, scenarios []workload.Scenario, engine core.Options) map[string]string {
	t.Helper()
	oracle := map[string]string{}
	for _, sc := range scenarios {
		for _, qsrc := range sc.Queries {
			q, err := pattern.Parse(qsrc)
			if err != nil {
				t.Fatalf("parse %q: %v", qsrc, err)
			}
			opts := engine
			opts.Clock = &service.SimClock{}
			opts.Schema = sc.Schema
			if sc.Schema != nil && opts.Strategy == core.LazyNFQ {
				opts.Strategy = core.LazyNFQTyped
			}
			out, err := core.Evaluate(sc.Doc.Clone(), q, reg, opts)
			if err != nil {
				t.Fatalf("oracle %s %q: %v", sc.Name, qsrc, err)
			}
			if !out.Complete {
				t.Fatalf("oracle %s %q incomplete", sc.Name, qsrc)
			}
			oracle[sc.Name+"|"+qsrc] = canon(cloneBindings(out.Results))
		}
	}
	return oracle
}

// newSuiteManager assembles the full serving stack — base registry,
// shared invocation pool, shared response cache, manager — and loads
// every scenario document.
func newSuiteManager(t *testing.T, cfg Config, spec workload.HotelSpec) (*Manager, []workload.Scenario, *service.Registry) {
	t.Helper()
	reg, scenarios := workload.Suite(spec)
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	cache := service.NewCache(service.CacheSpec{MaxEntries: 4096})
	cache.Instrument(cfg.Metrics)
	cfg.Registry = cache.Wrap(LimitRegistry(reg, 16, cfg.Metrics))
	m := NewManager(cfg)
	for _, sc := range scenarios {
		if err := m.AddDocument(sc.Name, sc.Doc.Clone(), sc.Schema); err != nil {
			t.Fatal(err)
		}
	}
	return m, scenarios, reg
}

// TestHammerSharedEvaluator is the concurrency hammer: N goroutines × M
// mixed queries against one manager sharing the incremental evaluators,
// the response cache and the invocation pool, under -race. Every single
// answer must equal the serial oracle — correctness, not just survival.
func TestHammerSharedEvaluator(t *testing.T) {
	engine := core.Options{Strategy: core.LazyNFQ, Incremental: true}
	m, scenarios, reg := newSuiteManager(t, Config{
		Engine:    engine,
		MaxActive: 8,
		MaxQueued: 1 << 16, // the hammer asserts on results, not shedding
	}, suiteSpec())
	oracle := serialOracle(t, reg, scenarios, engine)

	type job struct{ doc, query string }
	var jobs []job
	for _, sc := range scenarios {
		for _, q := range sc.Queries {
			jobs = append(jobs, job{sc.Name, q})
		}
	}

	const goroutines = 8
	const perGoroutine = 50
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perGoroutine; i++ {
				j := jobs[rng.Intn(len(jobs))]
				res, err := m.Query(context.Background(), Request{
					Tenant:   fmt.Sprintf("tenant-%d", g),
					Document: j.doc,
					Query:    j.query,
				})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %s %q: %w", g, j.doc, j.query, err)
					return
				}
				if !res.Complete {
					errs <- fmt.Errorf("goroutine %d: %s %q incomplete", g, j.doc, j.query)
					return
				}
				if got, want := canon(res.Bindings), oracle[j.doc+"|"+j.query]; got != want {
					errs <- fmt.Errorf("goroutine %d: %s %q diverges from serial oracle:\n got %s\nwant %s",
						g, j.doc, j.query, got, want)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := m.Stats()
	if st.Served != goroutines*perGoroutine {
		t.Fatalf("served %d queries, want %d", st.Served, goroutines*perGoroutine)
	}
	// Sharing must have paid: once a document is complete for a query,
	// repeats are memo answers. With 400 queries over 8 query kinds the
	// overwhelming majority hit the memo.
	if st.Memo < int64(goroutines*perGoroutine/2) {
		t.Fatalf("only %d/%d memo answers — the shared evaluator is not being reused", st.Memo, st.Served)
	}
	ts := m.TenantStats()
	var total int64
	for _, v := range ts {
		total += v.Queries
	}
	if total != st.Served {
		t.Fatalf("tenant accounting %d != served %d", total, st.Served)
	}
}

// TestSharedProjectionEquivalence runs every (scenario, query) pair
// through two managers — projection enabled and disabled — and demands
// identical bindings and completeness, equal also to the serial oracle.
// Each query runs twice per manager so the second answer exercises the
// shared evaluator's memo fast path with the projected memo contents.
func TestSharedProjectionEquivalence(t *testing.T) {
	spec := suiteSpec()
	oracleReg, oracleScenarios := workload.Suite(spec)
	oracle := serialOracle(t, oracleReg, oracleScenarios, core.Options{Strategy: core.LazyNFQ, Incremental: true})

	for _, noProject := range []bool{false, true} {
		engine := core.Options{Strategy: core.LazyNFQ, Incremental: true, NoProject: noProject}
		m, scenarios, _ := newSuiteManager(t, Config{Engine: engine, MaxActive: 4}, spec)
		for _, sc := range scenarios {
			for _, qsrc := range sc.Queries {
				for pass := 0; pass < 2; pass++ {
					res, err := m.Query(context.Background(), Request{
						Tenant: "t", Document: sc.Name, Query: qsrc,
					})
					if err != nil {
						t.Fatalf("noProject=%v %s %q pass %d: %v", noProject, sc.Name, qsrc, pass, err)
					}
					if !res.Complete {
						t.Fatalf("noProject=%v %s %q pass %d: incomplete", noProject, sc.Name, qsrc, pass)
					}
					if got, want := canon(res.Bindings), oracle[sc.Name+"|"+qsrc]; got != want {
						t.Fatalf("noProject=%v %s %q pass %d diverges from oracle:\n got %s\nwant %s",
							noProject, sc.Name, qsrc, pass, got, want)
					}
				}
			}
		}
	}
}

// TestDifferentialWidths is the 20-seed sweep: the same seeded query mix
// evaluated multi-tenant at session widths 1, 2, 4 and 8 must be
// bit-identical — bindings and completeness flags — to single-tenant
// serial evaluation.
func TestDifferentialWidths(t *testing.T) {
	spec := suiteSpec()
	engine := core.Options{Strategy: core.LazyNFQ, Incremental: true}

	// One oracle serves every width and seed: scenarios and handlers are
	// deterministic, so ground truth is a function of (doc, query) only.
	oracleReg, oracleScenarios := workload.Suite(spec)
	oracle := serialOracle(t, oracleReg, oracleScenarios, engine)

	type job struct{ doc, query string }
	var jobs []job
	for _, sc := range oracleScenarios {
		for _, q := range sc.Queries {
			jobs = append(jobs, job{sc.Name, q})
		}
	}

	for _, width := range []int{1, 2, 4, 8} {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			mix := make([]job, 24)
			for i := range mix {
				mix[i] = jobs[rng.Intn(len(jobs))]
			}

			m, _, _ := newSuiteManager(t, Config{
				Engine:    engine,
				MaxActive: width,
				MaxQueued: 1 << 16,
			}, spec)

			var wg sync.WaitGroup
			errs := make(chan error, len(mix))
			for i, j := range mix {
				wg.Add(1)
				go func(i int, j job) {
					defer wg.Done()
					res, err := m.Query(context.Background(), Request{Document: j.doc, Query: j.query})
					if err != nil {
						errs <- fmt.Errorf("width %d seed %d req %d: %w", width, seed, i, err)
						return
					}
					if !res.Complete {
						errs <- fmt.Errorf("width %d seed %d req %d: incomplete (serial is complete)", width, seed, i)
						return
					}
					if got, want := canon(res.Bindings), oracle[j.doc+"|"+j.query]; got != want {
						errs <- fmt.Errorf("width %d seed %d req %d (%s %q): concurrent result differs from serial:\n got %s\nwant %s",
							width, seed, i, j.doc, j.query, got, want)
						return
					}
					errs <- nil
				}(i, j)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestIsolatedMatchesShared checks the two evaluation modes agree: a
// private-clone query returns the same bindings as shared-master
// evaluation and leaves the master untouched.
func TestIsolatedMatchesShared(t *testing.T) {
	engine := core.Options{Strategy: core.LazyNFQ}
	m, scenarios, reg := newSuiteManager(t, Config{Engine: engine, MaxActive: 4}, suiteSpec())
	oracle := serialOracle(t, reg, scenarios, engine)

	sc := scenarios[0]
	iso, err := m.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0], Isolated: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := m.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle[sc.Name+"|"+sc.Queries[0]]
	if canon(iso.Bindings) != want {
		t.Fatalf("isolated diverges from oracle:\n got %s\nwant %s", canon(iso.Bindings), want)
	}
	if canon(shared.Bindings) != want {
		t.Fatalf("shared diverges from oracle:\n got %s\nwant %s", canon(shared.Bindings), want)
	}
	if shared.Memo {
		t.Fatal("first shared query claims a memo answer — the isolated run leaked materialisation into the master")
	}
}

// TestMemoFastPath checks the repeat-query path: same document, same
// query, no interleaved mutation — the second answer must come from the
// shared evaluator's memo without an engine run, and still match.
func TestMemoFastPath(t *testing.T) {
	engine := core.Options{Strategy: core.LazyNFQ}
	m, scenarios, _ := newSuiteManager(t, Config{Engine: engine, MaxActive: 2}, suiteSpec())

	sc := scenarios[0]
	first, err := m.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if first.Memo {
		t.Fatal("first query cannot be a memo answer")
	}
	if first.Stats.CallsInvoked == 0 {
		t.Fatal("first query invoked no calls — the fixture is too materialised to test anything")
	}
	second, err := m.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Memo {
		t.Fatal("repeat query on an unchanged master should be a memo answer")
	}
	if second.Stats.CallsInvoked != 0 {
		t.Fatalf("memo answer invoked %d calls", second.Stats.CallsInvoked)
	}
	if canon(first.Bindings) != canon(second.Bindings) {
		t.Fatalf("memo answer differs from engine answer:\n got %s\nwant %s",
			canon(second.Bindings), canon(first.Bindings))
	}

	// A query that mutates the master (different query, new relevant
	// calls) invalidates the fast path; the next repeat re-runs the
	// engine and then memoises again.
	if _, err := m.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[1]}); err != nil {
		t.Fatal(err)
	}
	third, err := m.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if canon(third.Bindings) != canon(first.Bindings) {
		t.Fatal("post-mutation repeat diverged")
	}
}

// gatedWorld builds a single-call document whose service blocks until
// the gate channel is closed — the synthetic overload and drain fixture.
func gatedWorld(gate <-chan struct{}) (*tree.Document, *service.Registry) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name: "slow",
		Handler: func([]*tree.Node) ([]*tree.Node, error) {
			<-gate
			n := tree.NewElement("v")
			n.Append(tree.NewText("done"))
			return []*tree.Node{n}, nil
		},
	})
	root := tree.NewElement("r")
	root.Append(tree.NewCall("slow"))
	return tree.NewDocument(root), reg
}

const gatedQuery = `/r/v/$V -> $V`

// TestOverloadShedsWithRetryAfter drives the admission path to
// saturation: capacity 1, queue 1 — the second query queues, the third
// is shed with ShedError carrying the Retry-After hint, and the
// sessions_shed/sessions_active telemetry moves accordingly.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	doc, reg := gatedWorld(gate)
	metrics := telemetry.NewRegistry()
	m := NewManager(Config{
		Registry:   reg,
		Metrics:    metrics,
		Engine:     core.Options{Strategy: core.LazyNFQ},
		MaxActive:  1,
		MaxQueued:  1,
		RetryAfter: 1300 * time.Millisecond,
	})
	if err := m.AddDocument("d", doc, nil); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		close(started)
		_, err := m.Query(context.Background(), Request{Tenant: "a", Document: "d", Query: gatedQuery})
		first <- err
	}()
	<-started
	waitUntil(t, func() bool { return m.Stats().Active == 1 })
	if got := metrics.Snapshot().Gauges[telemetry.MetricSessionsActive]; got != 1 {
		t.Fatalf("sessions_active gauge = %d, want 1", got)
	}

	second := make(chan error, 1)
	go func() {
		_, err := m.Query(context.Background(), Request{Tenant: "b", Document: "d", Query: gatedQuery})
		second <- err
	}()
	waitUntil(t, func() bool { return m.Stats().Queued == 1 })

	// Queue full: the third query is shed immediately.
	_, err := m.Query(context.Background(), Request{Tenant: "c", Document: "d", Query: gatedQuery})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected ShedError, got %v", err)
	}
	if shed.RetryAfter != 1300*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 1300ms", shed.RetryAfter)
	}
	if got := metrics.Snapshot().Counters[telemetry.MetricSessionsShed]; got != 1 {
		t.Fatalf("sessions_shed counter = %d, want 1", got)
	}
	if ts := m.TenantStats()["c"]; ts.Shed != 1 {
		t.Fatalf("tenant c shed count = %d, want 1", ts.Shed)
	}

	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first query failed: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
	if got := metrics.Snapshot().Gauges[telemetry.MetricSessionsActive]; got != 0 {
		t.Fatalf("sessions_active gauge = %d after completion, want 0", got)
	}
	if got := metrics.Snapshot().Counters[telemetry.MetricSessionsTotal]; got != 2 {
		t.Fatalf("sessions_total = %d, want 2", got)
	}
}

// TestDrainLetsActiveFinish checks shutdown semantics: during Drain an
// in-flight query runs to completion, a queued one is refused with
// ErrDraining, and new queries are refused immediately.
func TestDrainLetsActiveFinish(t *testing.T) {
	gate := make(chan struct{})
	doc, reg := gatedWorld(gate)
	m := NewManager(Config{
		Registry:  reg,
		Engine:    core.Options{Strategy: core.LazyNFQ},
		MaxActive: 1,
		MaxQueued: 4,
	})
	if err := m.AddDocument("d", doc, nil); err != nil {
		t.Fatal(err)
	}

	first := make(chan *Result, 1)
	firstErr := make(chan error, 1)
	go func() {
		res, err := m.Query(context.Background(), Request{Document: "d", Query: gatedQuery})
		first <- res
		firstErr <- err
	}()
	waitUntil(t, func() bool { return m.Stats().Active == 1 })

	queued := make(chan error, 1)
	go func() {
		_, err := m.Query(context.Background(), Request{Document: "d", Query: gatedQuery})
		queued <- err
	}()
	waitUntil(t, func() bool { return m.Stats().Queued == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- m.Drain(ctx)
	}()

	// The queued query is refused promptly, while the active one is
	// still blocked in its service call.
	if err := <-queued; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued query: got %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("drain returned while a query was still active")
	case <-time.After(50 * time.Millisecond):
	}

	// New arrivals are refused immediately.
	if _, err := m.Query(context.Background(), Request{Document: "d", Query: gatedQuery}); !errors.Is(err, ErrDraining) {
		t.Fatalf("new query during drain: got %v, want ErrDraining", err)
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("in-flight query failed during drain: %v", err)
	}
	if res := <-first; res == nil || !res.Complete || len(res.Bindings) != 1 {
		t.Fatalf("in-flight query result corrupted by drain: %+v", res)
	}
}

// TestDrainDeadline checks a Drain whose active query never finishes
// gives up when its context expires.
func TestDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	doc, reg := gatedWorld(gate)
	m := NewManager(Config{Registry: reg, Engine: core.Options{Strategy: core.LazyNFQ}, MaxActive: 1})
	if err := m.AddDocument("d", doc, nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = m.Query(context.Background(), Request{Document: "d", Query: gatedQuery})
	}()
	waitUntil(t, func() bool { return m.Stats().Active == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: got %v, want DeadlineExceeded", err)
	}
}

// TestRequestErrors covers the client-error paths: unknown documents and
// unparsable queries classify for their HTTP statuses.
func TestRequestErrors(t *testing.T) {
	m, scenarios, _ := newSuiteManager(t, Config{Engine: core.Options{Strategy: core.LazyNFQ}}, suiteSpec())

	_, err := m.Query(context.Background(), Request{Document: "no-such-doc", Query: `/a/$X -> $X`})
	var unknown *UnknownDocumentError
	if !errors.As(err, &unknown) || unknown.Name != "no-such-doc" {
		t.Fatalf("got %v, want UnknownDocumentError", err)
	}

	_, err = m.Query(context.Background(), Request{Document: scenarios[0].Name, Query: `[[[`})
	var bad *BadQueryError
	if !errors.As(err, &bad) {
		t.Fatalf("got %v, want BadQueryError", err)
	}
}

// waitUntil polls cond with a deadline — the tests' only clock
// dependence, used for "the goroutine has reached the blocking point"
// conditions that channels cannot express without changing the code
// under test.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStoreBackedRepository checks the persistence path: Drain writes
// every master back to the store, and a fresh manager faults documents
// in from the store on first query — including the materialisation the
// previous incarnation already paid for.
func TestStoreBackedRepository(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg, scenarios := workload.Suite(suiteSpec())
	engine := core.Options{Strategy: core.LazyNFQ}
	oracle := serialOracle(t, reg, scenarios, engine)

	m1 := NewManager(Config{Registry: reg, Store: st, Engine: engine})
	sc := scenarios[0]
	if err := m1.AddDocument(sc.Name, sc.Doc.Clone(), sc.Schema); err != nil {
		t.Fatal(err)
	}
	first, err := m1.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CallsInvoked == 0 {
		t.Fatal("first query invoked nothing")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if !st.Exists(sc.Name) {
		t.Fatal("drain did not persist the master")
	}

	// Second incarnation: no AddDocument — the store supplies the
	// document, already materialised for this query.
	m2 := NewManager(Config{Registry: reg, Store: st, Engine: engine})
	res, err := m2.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canon(res.Bindings), oracle[sc.Name+"|"+sc.Queries[0]]; got != want {
		t.Fatalf("restored document diverges:\n got %s\nwant %s", got, want)
	}
	if !res.Complete {
		t.Fatal("restored query incomplete")
	}
	// The store directory is wrapped into an indexed repository, so the
	// faulted-in entry arrives with its schema and keeps typed pruning:
	// the master is already complete for this query under the same
	// strategy, and the restored run invokes nothing at all.
	if res.Stats.CallsInvoked != 0 {
		t.Fatalf("restored master re-invoked %d calls — persistence lost the materialisation or the schema",
			res.Stats.CallsInvoked)
	}
}

// TestRepoBackedRestartOpensWarm is the restart-path acceptance test for
// the persistent indexed repository: a manager serves queries (expanding
// calls, patching the entry's F-guide in place), drains, and a second
// incarnation over the same directory answers identically with ZERO
// guide builds — the index is decoded from disk and adopted by the
// engine, never rebuilt. The on-disk index must also track expansion:
// after every drain it verifies as identical to a fresh build over the
// expanded master.
func TestRepoBackedRestartOpensWarm(t *testing.T) {
	dir := t.TempDir()
	rp1, err := repo.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg, scenarios := workload.Suite(suiteSpec())
	engine := core.Options{Strategy: core.LazyNFQ, UseGuide: true}
	oracle := serialOracle(t, reg, scenarios, engine)
	sc := scenarios[0]

	met1 := telemetry.NewRegistry()
	m1 := NewManager(Config{Registry: reg, Repo: rp1, Metrics: met1, Engine: engine})
	if err := m1.AddDocument(sc.Name, sc.Doc.Clone(), sc.Schema); err != nil {
		t.Fatal(err)
	}
	if v := met1.Counter(telemetry.MetricGuideBuilds).Value(); v != 1 {
		t.Fatalf("registration built %d guides, want exactly 1", v)
	}
	first, err := m1.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CallsInvoked == 0 {
		t.Fatal("first query expanded nothing; the test needs mutations")
	}
	if v := met1.Counter(telemetry.MetricGuidePatches).Value(); v == 0 {
		t.Fatal("call expansion did not patch the entry's guide")
	}
	// The one build at registration is still the only one: every
	// expansion was an in-place patch.
	if v := met1.Counter(telemetry.MetricGuideBuilds).Value(); v != 1 {
		t.Fatalf("evaluation rebuilt the guide (builds=%d)", v)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Drain persisted the patched guide as-is; it must verify as exactly
	// the index of the expanded master.
	rep, err := rp1.VerifyIndex(sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("persisted index does not match the expanded master: %+v", rep)
	}

	// Second incarnation: fresh repository handle, fresh metrics. The
	// document, schema and index all come from disk.
	rp2, err := repo.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	met2 := telemetry.NewRegistry()
	m2 := NewManager(Config{Registry: reg, Repo: rp2, Metrics: met2, Engine: engine})
	if err := m2.Preload(sc.Name); err != nil {
		t.Fatal(err)
	}
	if v := met2.Counter(telemetry.MetricRepoWarmOpens).Value(); v != 1 {
		t.Fatalf("preload warm opens = %d, want 1", v)
	}
	res, err := m2.Query(context.Background(), Request{Document: sc.Name, Query: sc.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canon(res.Bindings), oracle[sc.Name+"|"+sc.Queries[0]]; got != want {
		t.Fatalf("restarted incarnation diverges:\n got %s\nwant %s", got, want)
	}
	if !res.Complete {
		t.Fatal("restarted query incomplete")
	}
	// The acceptance criterion: the warm reopen performed ZERO guide
	// builds anywhere — not at preload, not in the engine.
	if v := met2.Counter(telemetry.MetricGuideBuilds).Value(); v != 0 {
		t.Fatalf("restart rebuilt the guide %d times; want 0", v)
	}
	if v := met2.Counter(telemetry.MetricGuideWarm).Value(); v == 0 {
		t.Fatal("engine never adopted the warm guide")
	}
	if v := met2.Counter(telemetry.MetricRepoRebuilds).Value(); v != 0 {
		t.Fatalf("repository rebuilt %d indexes on a clean reopen", v)
	}

	// Run the rest of the scenario's queries (more expansion), drain, and
	// require the twice-persisted index to still verify exactly.
	for _, qsrc := range sc.Queries[1:] {
		out, err := m2.Query(context.Background(), Request{Document: sc.Name, Query: qsrc})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := canon(out.Bindings), oracle[sc.Name+"|"+qsrc]; got != want {
			t.Fatalf("restarted %q diverges:\n got %s\nwant %s", qsrc, got, want)
		}
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := m2.Drain(ctx2); err != nil {
		t.Fatal(err)
	}
	rep, err = rp2.VerifyIndex(sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("index persisted by the second incarnation fails verification: %+v", rep)
	}
	if v := met2.Counter(telemetry.MetricGuideBuilds).Value(); v != 0 {
		t.Fatalf("second incarnation built %d guides end to end; want 0", v)
	}
}

// TestPlannerThreadsThroughSessions pins the Config.Engine.Planner
// contract: the template is copied into every session's options, so one
// shared cost planner schedules all tenants' batches — and, being a
// pure reorder/resize layer, leaves every answer equal to the
// planner-free serial oracle.
func TestPlannerThreadsThroughSessions(t *testing.T) {
	spec := suiteSpec()
	engine := core.Options{Strategy: core.LazyNFQ, Layering: true, Parallel: true, InvokeWorkers: 4, Incremental: true}
	oracleReg, oracleScenarios := workload.Suite(spec)
	oracle := serialOracle(t, oracleReg, oracleScenarios, engine)

	planner := plan.New(nil, plan.Options{})
	engine.Planner = planner
	m, scenarios, _ := newSuiteManager(t, Config{Engine: engine, MaxActive: 4}, spec)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, sc := range scenarios {
		for _, qsrc := range sc.Queries {
			for _, isolated := range []bool{false, true} {
				wg.Add(1)
				go func(sc workload.Scenario, qsrc string, isolated bool) {
					defer wg.Done()
					res, err := m.Query(context.Background(), Request{Document: sc.Name, Query: qsrc, Isolated: isolated})
					if err != nil {
						errs <- fmt.Errorf("%s %q isolated=%v: %w", sc.Name, qsrc, isolated, err)
						return
					}
					if got, want := canon(res.Bindings), oracle[sc.Name+"|"+qsrc]; got != want {
						errs <- fmt.Errorf("%s %q isolated=%v: planned session diverges from oracle:\n got %s\nwant %s",
							sc.Name, qsrc, isolated, got, want)
					}
				}(sc, qsrc, isolated)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if planner.Stats().Batches == 0 {
		t.Fatal("shared planner was never consulted — Engine.Planner did not thread through the session template")
	}
}
