// Package session turns the lazy evaluation engine into a multi-tenant
// query service: a repository of named AXML documents, each evaluated
// lazily in place by concurrent client sessions that share one relevance
// memo, one response cache and one bounded invocation pool.
//
// The sharing is the point. The paper's laziness pays off per query —
// invoke only relevant calls — but a server amortises further across
// queries: a call materialised for one tenant's query never needs
// invoking again for anyone (the master document keeps the result), the
// response cache deduplicates identical invocations across documents,
// and a persistent pattern.IncrementalEvaluator per (document, query)
// answers repeat queries from its memo without re-walking the document.
// Soundness rests on the paper's completeness invariant (Definition 3):
// a query's full result does not depend on how much of the document is
// already materialised, so evaluating against a master that other
// tenants have partially materialised returns exactly the serial-world
// result.
//
// Concurrency control is two-level. A weighted FIFO admission semaphore
// bounds the queries executing at once and sheds load (ShedError → HTTP
// 429) when its bounded wait queue overflows — backpressure, never
// unbounded buffering. Within a document, shared-mode queries serialise
// on the entry's write lock (the engine mutates the master in place);
// isolated-mode queries clone the master under a read lock and evaluate
// the clone in parallel, paying materialisation cost for isolation.
package session

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/repo"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/telemetry"
	"github.com/activexml/axml/internal/tree"
)

// ErrDraining reports that the server is shutting down: queued and new
// queries are refused (HTTP 503) while active ones finish.
var ErrDraining = errors.New("session: server draining")

// UnknownDocumentError reports a query against a document the repository
// does not hold (HTTP 404).
type UnknownDocumentError struct{ Name string }

func (e *UnknownDocumentError) Error() string {
	return fmt.Sprintf("session: unknown document %q", e.Name)
}

// BadQueryError reports an unparsable query (HTTP 400).
type BadQueryError struct{ Err error }

func (e *BadQueryError) Error() string { return "session: bad query: " + e.Err.Error() }
func (e *BadQueryError) Unwrap() error { return e.Err }

// Config assembles a Manager. Registry is the only required field.
type Config struct {
	// Registry serves every document's Web services. Wrap it in the
	// shared cache/limiter stack before handing it over (see NewManager's
	// default) or pre-compose your own.
	Registry *service.Registry
	// Repo, when set, backs the document repository with the persistent
	// indexed store of internal/repo: documents not yet resident are
	// loaded from it on first query together with their persisted schema
	// and F-guide (so a restarted server serves queries from the warm
	// index, no rebuild), and Drain persists every master back with its
	// incrementally maintained index. Nil keeps the repository
	// memory-only unless Store is set.
	Repo *repo.Repo
	// Store, when set and Repo is nil, is wrapped into an indexed
	// repository over the same directory (repo.Over) — the upgrade path
	// for configurations predating internal/repo. Flat-store entries
	// open cold once and are repaired to indexed form.
	Store *store.Store
	// Metrics receives the session counters, gauges and latency
	// histograms (axml_sessions_*); nil disables them.
	Metrics *telemetry.Registry
	// Tracer receives the engine's evaluation spans; nil disables.
	Tracer *telemetry.Tracer
	// Engine is the evaluation template: strategy, layering, parallelism,
	// retry and failure policy for every query. Per-query fields (Clock,
	// Metrics, Tracer, OnMutate, Schema) are overridden by the manager.
	// Engine.Planner is copied through verbatim, so one shared planner
	// (plan.CostPlanner is safe for concurrent use) schedules every
	// session's batches from the same learned profile.
	Engine core.Options
	// MaxActive bounds concurrently executing queries (admission tokens);
	// 0 means GOMAXPROCS.
	MaxActive int
	// MaxQueued bounds the admission wait queue; past it queries are shed
	// with ShedError. 0 means 4×MaxActive; negative means no queue (shed
	// immediately when saturated).
	MaxQueued int
	// RetryAfter is the backoff hint attached to shed responses; 0 means
	// 500ms.
	RetryAfter time.Duration
	// Isolated, when true, evaluates every query on a private clone of
	// the master document instead of materialising the shared master —
	// full isolation, no cross-tenant amortisation. Requests can also
	// opt in individually.
	Isolated bool
	// Clock supplies a fresh virtual clock per query; nil means a new
	// SimClock each time (simulated latency, no real sleeping).
	Clock func() service.Clock
}

// Request is one query against one named document.
type Request struct {
	// Tenant identifies the client for per-tenant accounting; empty is
	// the anonymous tenant.
	Tenant string
	// Document names the target document in the repository.
	Document string
	// Query is the tree-pattern query source.
	Query string
	// Weight is the admission cost (heavier queries may take more than
	// one execution token); values below 1 mean 1.
	Weight int
	// Isolated requests a private clone for this query even when the
	// manager default is shared.
	Isolated bool
}

// Result is one query's answer.
type Result struct {
	// Bindings holds one variable-binding map per query result, cloned
	// from the evaluation — safe to retain after the master document
	// moves on. Node captures are not exposed: the master is shared and
	// mutable, so the session layer returns only immutable values.
	Bindings []tree.Binding
	// Complete reports the paper's Definition-3 completeness: the result
	// is the query's full answer.
	Complete bool
	// Memo reports that the answer came from the shared incremental
	// evaluator's memo without running the engine (the document was
	// already complete for this query).
	Memo bool
	// Stats is the engine accounting (zero for memo answers except
	// NodesVisited/MemoHits).
	Stats core.Stats
	// Queued is the time spent waiting for admission.
	Queued time.Duration
	// Elapsed is the execution time after admission.
	Elapsed time.Duration
}

// Stats is a point-in-time snapshot of the manager.
type Stats struct {
	// Documents is the number of resident documents.
	Documents int
	// Active is the number of executing queries (admission tokens held).
	Active int64
	// Queued is the admission wait-queue length.
	Queued int
	// Served counts completed queries; Shed counts admission rejections;
	// Memo counts queries answered from the shared memo.
	Served, Shed, Memo int64
}

// TenantStats accumulates per-tenant accounting.
type TenantStats struct {
	// Queries counts completed queries; Shed counts rejections.
	Queries, Shed int64
	// CallsInvoked sums engine invocations charged to the tenant.
	CallsInvoked int64
}

// Manager is the multi-tenant session coordinator. All methods are safe
// for concurrent use.
type Manager struct {
	cfg   Config
	adm   *admission
	clock func() service.Clock
	// repo is the resolved persistence backend (cfg.Repo, or cfg.Store
	// wrapped); nil means memory-only. repoErr carries a Store-wrapping
	// failure, surfaced when persistence is actually needed.
	repo    *repo.Repo
	repoErr error

	mu      sync.Mutex // guards entries and tenants maps
	entries map[string]*entry
	tenants map[string]*TenantStats

	served atomic.Int64
	memo   atomic.Int64
	shed   atomic.Int64

	mSessions  *telemetry.Counter
	mActive    *telemetry.Gauge
	mQueued    *telemetry.Gauge
	mShed      *telemetry.Counter
	mMemo      *telemetry.Counter
	mSeconds   *telemetry.Histogram
	mQueueSecs *telemetry.Histogram
}

// entry is one resident document: the shared master, its schema, its
// F-guide, the per-query incremental evaluators and the completeness
// ledger.
type entry struct {
	name   string
	schema *schema.Schema

	mu      sync.RWMutex // write: shared-mode evaluation; read: clone for isolated mode
	master  *tree.Document
	version uint64 // bumped on every master mutation
	// guide is the master's F-guide, restored warm from the repository
	// or built once at registration; the OnMutate hook patches it in
	// lockstep with engine splices, so it is always synced and Drain can
	// persist it without a rebuild. Nil when neither the repository nor
	// the engine template wants one.
	guide *fguide.Guide

	queries  map[string]*pattern.Pattern              // parsed query cache
	ievs     map[string]*pattern.IncrementalEvaluator // shared memo per query text
	complete map[string]uint64                        // query text → version at which master was complete
}

// NewManager builds a Manager. The registry is used as given — compose
// the serving stack first, e.g.:
//
//	base := workloadRegistry()
//	limited := session.LimitRegistry(base, invokeLimit, metrics)
//	cache := service.NewCache(service.CacheSpec{MaxEntries: n})
//	cache.Instrument(metrics)
//	mgr := session.NewManager(session.Config{Registry: cache.Wrap(limited), ...})
//
// so cache hits bypass the invocation pool and misses queue for a slot.
func NewManager(cfg Config) *Manager {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueued == 0:
		cfg.MaxQueued = 4 * cfg.MaxActive
	case cfg.MaxQueued < 0:
		cfg.MaxQueued = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 500 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() service.Clock { return &service.SimClock{} }
	}
	rp, repoErr := cfg.Repo, error(nil)
	if rp == nil && cfg.Store != nil {
		rp, repoErr = repo.Over(cfg.Store)
	}
	if rp != nil && cfg.Metrics != nil {
		rp.Instrument(cfg.Metrics)
	}
	m := &Manager{
		cfg:     cfg,
		adm:     newAdmission(int64(cfg.MaxActive), cfg.MaxQueued),
		clock:   clock,
		repo:    rp,
		repoErr: repoErr,
		entries: map[string]*entry{},
		tenants: map[string]*TenantStats{},

		mSessions:  cfg.Metrics.Counter(telemetry.MetricSessionsTotal),
		mActive:    cfg.Metrics.Gauge(telemetry.MetricSessionsActive),
		mQueued:    cfg.Metrics.Gauge(telemetry.MetricSessionsQueued),
		mShed:      cfg.Metrics.Counter(telemetry.MetricSessionsShed),
		mMemo:      cfg.Metrics.Counter(telemetry.MetricSessionsMemo),
		mSeconds:   cfg.Metrics.Histogram(telemetry.MetricSessionSeconds),
		mQueueSecs: cfg.Metrics.Histogram(telemetry.MetricSessionQueueSeconds),
	}
	return m
}

// AddDocument registers (or replaces) a named document. The manager owns
// doc from here on: shared-mode queries materialise it in place. sch may
// be nil; with a schema, typed strategies refine relevance per document.
func (m *Manager) AddDocument(name string, doc *tree.Document, sch *schema.Schema) error {
	if name == "" {
		return errors.New("session: empty document name")
	}
	if doc == nil {
		return errors.New("session: nil document")
	}
	e := &entry{
		name:     name,
		schema:   sch,
		master:   doc,
		queries:  map[string]*pattern.Pattern{},
		ievs:     map[string]*pattern.IncrementalEvaluator{},
		complete: map[string]uint64{},
	}
	if m.cfg.Engine.UseGuide || m.repo != nil {
		// Build the master's guide once at registration; every query then
		// opens warm and the OnMutate hook keeps it patched, so neither
		// the engine nor Drain ever rebuilds it.
		e.guide = fguide.Build(doc)
		m.cfg.Metrics.Counter(telemetry.MetricGuideBuilds).Inc()
	}
	m.mu.Lock()
	m.entries[name] = e
	m.mu.Unlock()
	return nil
}

// Preload faults a persisted document into residency without running a
// query — servers call it at startup so the first tenant query finds a
// warm entry (document, schema and index all restored). Preloading an
// unknown name returns UnknownDocumentError.
func (m *Manager) Preload(name string) error {
	_, err := m.lookup(name)
	return err
}

// Documents lists the resident document names, sorted.
func (m *Manager) Documents() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.entries))
	for n := range m.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup returns the entry for name, faulting it in from the backing
// repository when absent. Repository-faulted entries arrive complete: a
// persisted schema restores typed pruning and a persisted F-guide opens
// warm (decoded, not rebuilt), so a restarted server picks up exactly
// where the one that drained left off.
func (m *Manager) lookup(name string) (*entry, error) {
	m.mu.Lock()
	e := m.entries[name]
	m.mu.Unlock()
	if e != nil {
		return e, nil
	}
	if m.repoErr != nil {
		return nil, fmt.Errorf("session: repository unavailable: %w", m.repoErr)
	}
	if m.repo == nil || !m.repo.Exists(name) {
		return nil, &UnknownDocumentError{Name: name}
	}
	o, err := m.repo.Get(name)
	if err != nil {
		return nil, fmt.Errorf("session: load %q: %w", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if again := m.entries[name]; again != nil { // lost the load race
		return again, nil
	}
	e = &entry{
		name:     name,
		schema:   o.Schema,
		master:   o.Doc,
		guide:    o.Guide,
		queries:  map[string]*pattern.Pattern{},
		ievs:     map[string]*pattern.IncrementalEvaluator{},
		complete: map[string]uint64{},
	}
	m.entries[name] = e
	return e, nil
}

// Query runs one request to completion: admission, then shared or
// isolated evaluation. It returns ShedError/ErrDraining/ctx errors from
// admission, UnknownDocumentError or BadQueryError for bad requests, and
// the engine's error otherwise.
func (m *Manager) Query(ctx context.Context, req Request) (*Result, error) {
	weight := int64(req.Weight)
	if weight < 1 {
		weight = 1
	}
	t0 := time.Now()
	m.mQueued.Add(1)
	err := m.adm.acquire(ctx, weight, m.cfg.RetryAfter)
	m.mQueued.Add(-1)
	queued := time.Since(t0)
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			m.shed.Add(1)
			m.mShed.Inc()
			m.tenant(req.Tenant, func(ts *TenantStats) { ts.Shed++ })
		}
		return nil, err
	}
	m.mActive.Add(1)
	defer func() {
		m.mActive.Add(-1)
		m.adm.release(weight)
	}()
	m.mQueueSecs.Observe(queued)

	e, err := m.lookup(req.Document)
	if err != nil {
		return nil, err
	}
	q, err := e.parse(req.Query)
	if err != nil {
		return nil, &BadQueryError{Err: err}
	}

	t1 := time.Now()
	var res *Result
	if m.cfg.Isolated || req.Isolated {
		res, err = m.queryIsolated(e, q)
	} else {
		res, err = m.queryShared(e, req.Query, q)
	}
	if err != nil {
		return nil, err
	}
	res.Queued = queued
	res.Elapsed = time.Since(t1)
	m.served.Add(1)
	m.mSessions.Inc()
	m.mSeconds.Observe(res.Elapsed)
	if res.Memo {
		m.memo.Add(1)
		m.mMemo.Inc()
	}
	calls := int64(res.Stats.CallsInvoked)
	m.tenant(req.Tenant, func(ts *TenantStats) {
		ts.Queries++
		ts.CallsInvoked += calls
	})
	return res, nil
}

// parse returns the cached pattern for src, parsing on first use.
// Patterns are immutable after parse, so one instance serves every
// session.
func (e *entry) parse(src string) (*pattern.Pattern, error) {
	e.mu.RLock()
	q := e.queries[src]
	e.mu.RUnlock()
	if q != nil {
		return q, nil
	}
	q, err := pattern.Parse(src)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev := e.queries[src]; prev != nil {
		q = prev
	} else {
		e.queries[src] = q
	}
	e.mu.Unlock()
	return q, nil
}

// queryShared evaluates on the shared master under the entry write lock.
// Fast path: if the master is still complete for this query (no mutation
// since the last full evaluation), the shared incremental evaluator
// answers from its memo without running the engine.
func (m *Manager) queryShared(e *entry, qtext string, q *pattern.Pattern) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if v, ok := e.complete[qtext]; ok && v == e.version {
		iev := e.ievs[qtext]
		rs, st := iev.EvalIncremental(e.master)
		return &Result{
			Bindings: cloneBindings(rs),
			Complete: true,
			Memo:     true,
			Stats:    core.Stats{NodesVisited: st.NodesVisited, MemoHits: st.MemoHits, SubtreesPruned: st.SubtreesPruned},
		}, nil
	}

	opts := m.options(e)
	if e.ievs[qtext] == nil {
		e.ievs[qtext] = pattern.NewIncrementalProjected(q, m.sharedProjector(e, opts, q))
	}

	out, err := core.Evaluate(e.master, q, m.cfg.Registry, opts)
	if err != nil {
		return nil, err
	}
	if out.Complete {
		e.complete[qtext] = e.version
	}
	return &Result{
		Bindings: cloneBindings(out.Results),
		Complete: out.Complete,
		Stats:    out.Stats,
	}, nil
}

// queryIsolated clones the master under a read lock and evaluates the
// clone privately — parallel across sessions, no shared materialisation.
func (m *Manager) queryIsolated(e *entry, q *pattern.Pattern) (*Result, error) {
	e.mu.RLock()
	doc := e.master.Clone()
	opts := m.isolatedOptions(e)
	e.mu.RUnlock()

	out, err := core.Evaluate(doc, q, m.cfg.Registry, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Bindings: cloneBindings(out.Results),
		Complete: out.Complete,
		Stats:    out.Stats,
	}, nil
}

// options instantiates the engine template for one shared-mode query:
// fresh clock, shared telemetry, the entry's schema and warm guide, and
// the OnMutate hook that keeps every shared evaluator's memo, the
// entry's F-guide and the completeness ledger in lockstep with the
// engine's splices. Must be called with e.mu write-held (the hook
// mutates entry state).
func (m *Manager) options(e *entry) core.Options {
	opts := m.isolatedOptions(e)
	opts.Guide = e.guide
	patches := m.cfg.Metrics.Counter(telemetry.MetricGuidePatches)
	opts.OnMutate = func(parent, removed *tree.Node, inserted []*tree.Node) {
		e.version++
		if e.guide != nil {
			// Patch the persistent index in place. When the engine adopted
			// this guide (UseGuide) it already performed the identical
			// update; ApplyExpansion is idempotent and only resyncs then.
			e.guide.ApplyExpansion(parent, removed, inserted)
			patches.Inc()
		}
		for _, iev := range e.ievs {
			iev.Invalidate(parent, removed)
		}
	}
	return opts
}

// sharedProjector derives the document-projection predicate for a
// shared evaluator, mirroring the engine's own gating: schema resident,
// typed strategy in effect, projection not disabled. The predicate
// depends only on (schema, query), so it stays valid across master
// mutations and is safe to bake into the long-lived evaluator.
func (m *Manager) sharedProjector(e *entry, opts core.Options, q *pattern.Pattern) pattern.Projector {
	if e.schema == nil || opts.NoProject || opts.Strategy != core.LazyNFQTyped {
		return nil
	}
	proj := schema.NewProjection(e.schema, q, opts.SchemaMode)
	if proj.Trivial() {
		return nil
	}
	return proj
}

// isolatedOptions instantiates the engine template without the shared
// mutation hook (clones have no shared state to maintain — and no warm
// guide: the entry's guide describes the master, not the clone).
func (m *Manager) isolatedOptions(e *entry) core.Options {
	opts := m.cfg.Engine
	opts.Clock = m.clock()
	opts.Metrics = m.cfg.Metrics
	opts.Tracer = m.cfg.Tracer
	opts.OnMutate = nil
	opts.Guide = nil
	// Schema residency decides typing: refine the lazy strategies when
	// the document carries signatures, degrade gracefully when not.
	opts.Schema = e.schema
	if e.schema != nil && opts.Strategy == core.LazyNFQ {
		opts.Strategy = core.LazyNFQTyped
	}
	if e.schema == nil && opts.Strategy == core.LazyNFQTyped {
		opts.Strategy = core.LazyNFQ
	}
	return opts
}

// cloneBindings projects evaluation results onto immutable variable
// bindings. Node captures reference live master nodes and are not safe
// to hand across the entry lock, so only values cross the boundary.
func cloneBindings(rs []pattern.Result) []tree.Binding {
	out := make([]tree.Binding, len(rs))
	for i, r := range rs {
		b := make(tree.Binding, len(r.Values))
		for k, v := range r.Values {
			b[k] = v
		}
		out[i] = b
	}
	return out
}

// tenant applies fn to the named tenant's accounting under the manager
// lock.
func (m *Manager) tenant(name string, fn func(*TenantStats)) {
	m.mu.Lock()
	ts := m.tenants[name]
	if ts == nil {
		ts = &TenantStats{}
		m.tenants[name] = ts
	}
	fn(ts)
	m.mu.Unlock()
}

// TenantStats snapshots per-tenant accounting.
func (m *Manager) TenantStats() map[string]TenantStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TenantStats, len(m.tenants))
	for k, v := range m.tenants {
		out[k] = *v
	}
	return out
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	docs := len(m.entries)
	m.mu.Unlock()
	return Stats{
		Documents: docs,
		Active:    m.adm.active(),
		Queued:    m.adm.queued(),
		Served:    m.served.Load(),
		Shed:      m.shed.Load(),
		Memo:      m.memo.Load(),
	}
}

// Drain shuts the manager down: new and queued queries are refused with
// ErrDraining while active ones run to completion (or ctx expires), then
// every master document is persisted to the repository when one is
// configured — together with its schema and its incrementally maintained
// F-guide, so the next process opens every document warm.
func (m *Manager) Drain(ctx context.Context) error {
	if err := m.adm.drain(ctx); err != nil {
		return err
	}
	if m.repo == nil {
		return m.repoErr
	}
	m.mu.Lock()
	entries := make([]*entry, 0, len(m.entries))
	for _, e := range m.entries {
		entries = append(entries, e)
	}
	m.mu.Unlock()
	var firstErr error
	for _, e := range entries {
		e.mu.RLock()
		opts := repo.PutOptions{Schema: e.schema}
		if e.guide != nil && e.guide.Doc() == e.master && fguide.Synced(e.guide) {
			opts.Guide = e.guide // persisted as patched, no rebuild
		}
		err := m.repo.Put(e.name, e.master, opts)
		e.mu.RUnlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
