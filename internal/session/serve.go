package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// QueryRequest is the POST /query JSON body.
type QueryRequest struct {
	// Tenant identifies the client (optional).
	Tenant string `json:"tenant,omitempty"`
	// Document names the target document.
	Document string `json:"document"`
	// Query is the tree-pattern source.
	Query string `json:"query"`
	// Weight is the admission cost (optional, default 1).
	Weight int `json:"weight,omitempty"`
	// Isolated requests a private document clone (optional).
	Isolated bool `json:"isolated,omitempty"`
}

// QueryResponse is the POST /query JSON answer.
type QueryResponse struct {
	// Document echoes the target.
	Document string `json:"document"`
	// Bindings holds one variable→value map per result.
	Bindings []map[string]string `json:"bindings"`
	// Complete is the Definition-3 completeness flag.
	Complete bool `json:"complete"`
	// Memo reports a shared-memo answer (no engine run).
	Memo bool `json:"memo,omitempty"`
	// CallsInvoked, Rounds and VirtualMs summarise the engine work.
	CallsInvoked int     `json:"callsInvoked"`
	Rounds       int     `json:"rounds"`
	VirtualMs    float64 `json:"virtualMs"`
	// QueuedMs and ElapsedMs are wall-clock admission wait and execution
	// time.
	QueuedMs  float64 `json:"queuedMs"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// errorBody is the JSON error envelope every non-2xx answer carries.
type errorBody struct {
	Error string `json:"error"`
}

// Handler mounts the manager's endpoints on a new mux:
//
//	POST /query      run one query (QueryRequest → QueryResponse)
//	GET  /documents  list resident document names
//	GET  /tenants    per-tenant accounting
//	GET  /stats      manager snapshot
//
// Admission failures map to transport semantics: shed → 429 with a
// Retry-After header (whole seconds, rounded up), draining → 503,
// unknown document → 404, bad query → 400.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, m)
	return mux
}

// Mount attaches the manager's endpoints to an existing mux (axmlserver
// mounts them next to the SOAP and telemetry endpoints).
func Mount(mux *http.ServeMux, m *Manager) {
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("session: POST only"))
			return
		}
		var qr QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("session: bad request body: %w", err))
			return
		}
		res, err := m.Query(r.Context(), Request{
			Tenant:   qr.Tenant,
			Document: qr.Document,
			Query:    qr.Query,
			Weight:   qr.Weight,
			Isolated: qr.Isolated,
		})
		if err != nil {
			status, retryAfter := errStatus(err)
			if retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
			}
			writeError(w, status, err)
			return
		}
		bindings := make([]map[string]string, len(res.Bindings))
		for i, b := range res.Bindings {
			bindings[i] = b
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			Document:     qr.Document,
			Bindings:     bindings,
			Complete:     res.Complete,
			Memo:         res.Memo,
			CallsInvoked: res.Stats.CallsInvoked,
			Rounds:       res.Stats.Rounds,
			VirtualMs:    float64(res.Stats.VirtualTime) / float64(time.Millisecond),
			QueuedMs:     float64(res.Queued) / float64(time.Millisecond),
			ElapsedMs:    float64(res.Elapsed) / float64(time.Millisecond),
		})
	})
	mux.HandleFunc("/documents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Documents())
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.TenantStats())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})
}

// errStatus maps a Query error to its HTTP status and Retry-After hint.
func errStatus(err error) (status int, retryAfter time.Duration) {
	var shed *ShedError
	var unknown *UnknownDocumentError
	var bad *BadQueryError
	switch {
	case errors.As(err, &shed):
		return http.StatusTooManyRequests, shed.RetryAfter
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, 0
	case errors.As(err, &unknown):
		return http.StatusNotFound, 0
	case errors.As(err, &bad):
		return http.StatusBadRequest, 0
	default:
		return http.StatusInternalServerError, 0
	}
}

// retryAfterSeconds rounds a hint up to whole seconds — Retry-After is an
// integer header, and rounding down would tell clients to retry sooner
// than the server asked.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
