package session

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/tree"
)

func postQuery(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPQueryEndpoint round-trips one query through the JSON layer and
// checks the repository and stats endpoints answer.
func TestHTTPQueryEndpoint(t *testing.T) {
	m, scenarios, _ := newSuiteManager(t, Config{Engine: core.Options{Strategy: core.LazyNFQ}}, suiteSpec())
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	sc := scenarios[0]
	resp, body := postQuery(t, srv.URL, QueryRequest{Tenant: "t1", Document: sc.Name, Query: sc.Queries[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	if !qr.Complete || len(qr.Bindings) == 0 {
		t.Fatalf("unexpected response: %+v", qr)
	}
	if qr.CallsInvoked == 0 {
		t.Fatal("first query should have invoked calls")
	}

	// Repeat: memo answer over HTTP.
	resp, body = postQuery(t, srv.URL, QueryRequest{Document: sc.Name, Query: sc.Queries[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Memo || qr.CallsInvoked != 0 {
		t.Fatalf("repeat query not memoised: %+v", qr)
	}

	var docs []string
	r, err := http.Get(srv.URL + "/documents")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Fatalf("documents = %v, want 4 names", docs)
	}

	var ts map[string]TenantStats
	r2, err := http.Get(srv.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&ts); err != nil {
		t.Fatal(err)
	}
	if ts["t1"].Queries != 1 {
		t.Fatalf("tenant t1 stats = %+v, want 1 query", ts["t1"])
	}
}

// TestHTTPErrorMapping checks each session error reaches the client as
// its transport equivalent: 404 unknown document, 400 bad query, 405
// wrong method, 429 + Retry-After shed, 503 draining.
func TestHTTPErrorMapping(t *testing.T) {
	gate := make(chan struct{})
	doc, reg := gatedWorld(gate)
	m := NewManager(Config{
		Registry:   reg,
		Engine:     core.Options{Strategy: core.LazyNFQ},
		MaxActive:  1,
		MaxQueued:  -1, // no queue: saturation sheds immediately
		RetryAfter: 1700 * time.Millisecond,
	})
	if err := m.AddDocument("d", doc, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	if resp, _ := postQuery(t, srv.URL, QueryRequest{Document: "nope", Query: `/a/$X -> $X`}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown document: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postQuery(t, srv.URL, QueryRequest{Document: "d", Query: `[[[`}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: status %d, want 400", resp.StatusCode)
	}
	if r, err := http.Get(srv.URL + "/query"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /query: status %d, want 405", r.StatusCode)
		}
	}

	// Saturate: one in-flight query holds the only token.
	inflight := make(chan error, 1)
	go func() {
		_, err := m.Query(context.Background(), Request{Document: "d", Query: gatedQuery})
		inflight <- err
	}()
	waitFor(t, func() bool { return m.Stats().Active == 1 })

	resp, body := postQuery(t, srv.URL, QueryRequest{Document: "d", Query: gatedQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (1700ms rounded up)", got, "2")
	}

	close(gate)
	if err := <-inflight; err != nil {
		t.Fatal(err)
	}

	// Drain, then: 503.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postQuery(t, srv.URL, QueryRequest{Document: "d", Query: gatedQuery}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}
}

// TestHTTPIsolatedFlag checks the per-request isolation flag crosses the
// JSON boundary: an isolated query leaves the master unmaterialised.
func TestHTTPIsolatedFlag(t *testing.T) {
	reg := service.NewRegistry()
	reg.Register(&service.Service{
		Name: "get",
		Handler: func([]*tree.Node) ([]*tree.Node, error) {
			n := tree.NewElement("v")
			n.Append(tree.NewText("x"))
			return []*tree.Node{n}, nil
		},
	})
	root := tree.NewElement("r")
	root.Append(tree.NewCall("get"))
	m := NewManager(Config{Registry: reg, Engine: core.Options{Strategy: core.LazyNFQ}})
	if err := m.AddDocument("d", tree.NewDocument(root), nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp, body := postQuery(t, srv.URL, QueryRequest{Document: "d", Query: `/r/v/$V -> $V`, Isolated: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Bindings) != 1 || qr.Bindings[0]["V"] != "x" {
		t.Fatalf("bindings = %v", qr.Bindings)
	}

	// The shared master still embeds the call: a shared repeat must not
	// be a memo answer and must invoke the service.
	resp, body = postQuery(t, srv.URL, QueryRequest{Document: "d", Query: `/r/v/$V -> $V`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Memo || qr.CallsInvoked != 1 {
		t.Fatalf("isolated query leaked into the master: %+v", qr)
	}
}
