// Package store implements a file-backed repository of AXML documents,
// the persistence layer of an ActiveXML peer: documents live as .axml
// files in a directory, writes are atomic (temp file + rename), and names
// are validated so a repository cannot be escaped through path tricks.
//
// Lazy evaluation interacts with the repository naturally: load a
// document, evaluate (materialising only the relevant parts), and store
// the enriched document back — subsequent queries start from the already
// materialised state, which is how the ActiveXML system amortises service
// calls across queries.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"github.com/activexml/axml/internal/tree"
)

// Extension is the file suffix of stored documents.
const Extension = ".axml"

// Store is a document repository rooted at one directory. It is safe for
// concurrent use by multiple goroutines of one process; cross-process
// safety relies on the atomicity of rename.
type Store struct {
	dir string
	mu  sync.RWMutex
	// Sync makes Put durable: the temp file is fsynced before the
	// rename and the directory after it, so a crash right after Put
	// returns cannot surface the old content, a zero-length file, or a
	// missing entry. Open sets it; turn it off only for throwaway
	// repositories (tests, caches) where write latency matters more
	// than crash safety — atomicity (temp file + rename) holds either
	// way.
	Sync bool
}

// Open prepares a repository at dir, creating the directory if needed.
// The returned store syncs writes to stable storage (see Store.Sync).
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir, Sync: true}, nil
}

// Dir returns the repository root.
func (s *Store) Dir() string { return s.dir }

// ValidName guards against path traversal and unusable names. It is the
// shared naming contract of every layer that maps document names to
// files (this package and internal/repo).
func ValidName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty document name")
	}
	for _, c := range name {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("store: invalid document name %q", name)
		}
	}
	if strings.Contains(name, "..") {
		return fmt.Errorf("store: invalid document name %q", name)
	}
	return nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+Extension)
}

// Put stores the document under the given name, atomically replacing any
// previous version.
func (s *Store) Put(name string, doc *tree.Document) error {
	if err := ValidName(name); err != nil {
		return err
	}
	data, err := tree.MarshalIndent(doc.Root)
	if err != nil {
		return fmt.Errorf("store: marshal %s: %w", name, err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := WriteFileAtomic(s.dir, name+Extension, data, s.Sync); err != nil {
		return fmt.Errorf("store: put %s: %w", name, err)
	}
	return nil
}

// WriteFileAtomic writes data to dir/filename through a temp file and a
// rename, so readers only ever see the old or the new content. With sync
// set the write is also durable: rename alone only orders the directory
// entry, not the data — after a crash the new name can point at an empty
// or partial file — so the temp file is fsynced before it becomes
// reachable and the directory after, putting the rename itself on stable
// storage. Exported for the layers above the flat store (internal/repo)
// that persist sidecar files with the same guarantees.
func WriteFileAtomic(dir, filename string, data []byte, sync bool) error {
	tmp, err := os.CreateTemp(dir, "."+filename+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, filename)); err != nil {
		os.Remove(tmpName)
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Platforms whose directories reject fsync (it is optional in POSIX)
// degrade to the pre-sync behaviour rather than failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Get loads a document by name.
func (s *Store) Get(name string) (*tree.Document, error) {
	if err := ValidName(name); err != nil {
		return nil, err
	}
	s.mu.RLock()
	data, err := os.ReadFile(s.path(name))
	s.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", name, err)
	}
	doc, err := tree.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", name, err)
	}
	return doc, nil
}

// Exists reports whether a document is stored under the name.
func (s *Store) Exists(name string) bool {
	if ValidName(name) != nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := os.Stat(s.path(name))
	return err == nil
}

// Delete removes a stored document; deleting a missing document errors.
func (s *Store) Delete(name string) error {
	if err := ValidName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(name)); err != nil {
		return fmt.Errorf("store: delete %s: %w", name, err)
	}
	return nil
}

// List returns the stored document names, sorted.
func (s *Store) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, ok := strings.CutSuffix(e.Name(), Extension)
		if !ok || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
