package store

import (
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/tree"
	"github.com/activexml/axml/internal/workload"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir() + "/repo")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleDoc(t *testing.T) *tree.Document {
	t.Helper()
	d, err := tree.Unmarshal([]byte(
		`<r><a>v</a><axml:call service="f"><p>1</p></axml:call></r>`))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	doc := sampleDoc(t)
	if err := s.Put("sample", doc); err != nil {
		t.Fatal(err)
	}
	back, err := s.Get("sample")
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Root.Equal(back.Root) {
		t.Fatal("round trip mismatch")
	}
}

// TestPutSyncDefaultsAndToggle: Open returns a durable store (Sync on),
// and Put round-trips with fsync both enabled and disabled — the sync
// path must not change what lands on disk, only when it is durable.
func TestPutSyncDefaultsAndToggle(t *testing.T) {
	s := open(t)
	if !s.Sync {
		t.Fatal("Open must default to durable (synced) writes")
	}
	doc := sampleDoc(t)
	if err := s.Put("synced", doc); err != nil {
		t.Fatal(err)
	}
	s.Sync = false
	if err := s.Put("unsynced", doc); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"synced", "unsynced"} {
		back, err := s.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if !doc.Root.Equal(back.Root) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	// No temp files may survive either path.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestOverwriteIsAtomicReplace(t *testing.T) {
	s := open(t)
	if err := s.Put("d", sampleDoc(t)); err != nil {
		t.Fatal(err)
	}
	v2 := tree.NewDocument(tree.NewElement("other"))
	if err := s.Put("d", v2); err != nil {
		t.Fatal(err)
	}
	back, err := s.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if back.Root.Label != "other" {
		t.Fatalf("overwrite lost: %s", back.Root.Label)
	}
}

func TestListExistsDelete(t *testing.T) {
	s := open(t)
	for _, n := range []string{"b", "a", "c"} {
		if err := s.Put(n, sampleDoc(t)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("List = %v", names)
	}
	if !s.Exists("a") || s.Exists("zzz") {
		t.Fatal("Exists misreports")
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("b") {
		t.Fatal("deleted document still exists")
	}
	if err := s.Delete("b"); err == nil {
		t.Fatal("double delete should error")
	}
}

func TestNameValidation(t *testing.T) {
	s := open(t)
	for _, bad := range []string{"", "../escape", "a/b", "a b", "läbel", "x..y"} {
		if err := s.Put(bad, sampleDoc(t)); err == nil {
			t.Errorf("Put(%q): expected error", bad)
		}
		if _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%q): expected error", bad)
		}
		if s.Exists(bad) {
			t.Errorf("Exists(%q) = true", bad)
		}
	}
}

func TestGetMissing(t *testing.T) {
	s := open(t)
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("missing document should error")
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s := open(t)
	if err := s.Put("d", sampleDoc(t)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if err := s.Put("d", sampleDoc(t)); err != nil {
					t.Error(err)
				}
				return
			}
			if _, err := s.Get("d"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestAmortisedMaterialisation is the repository's reason to exist: a
// lazily materialised document stored back answers the same query later
// without any further service call.
func TestAmortisedMaterialisation(t *testing.T) {
	s := open(t)
	w := workload.Hotels(workload.DefaultSpec())
	doc := w.Doc.Clone()
	first, err := core.Evaluate(doc, w.Query, w.Registry, core.Options{Strategy: core.LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CallsInvoked == 0 {
		t.Fatal("first evaluation should invoke calls")
	}
	if err := s.Put("hotels", doc); err != nil {
		t.Fatal(err)
	}
	reloaded, err := s.Get("hotels")
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.Evaluate(reloaded, w.Query, w.Registry, core.Options{Strategy: core.LazyNFQ})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CallsInvoked != 0 {
		t.Fatalf("stored materialised document re-invoked %d calls", second.Stats.CallsInvoked)
	}
	if len(second.Results) != len(first.Results) {
		t.Fatalf("results drifted across storage: %d vs %d", len(second.Results), len(first.Results))
	}
}

func TestOpenErrors(t *testing.T) {
	// A file where the directory should be.
	base := t.TempDir()
	file := base + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file + "/sub"); err == nil {
		t.Fatal("Open under a file must fail")
	}
	s, err := Open(base + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != base+"/ok" {
		t.Fatalf("Dir = %q", s.Dir())
	}
	// Reopening an existing repository works.
	if _, err := Open(base + "/ok"); err != nil {
		t.Fatal(err)
	}
}

func TestPutIntoUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores permissions")
	}
	dir := t.TempDir() + "/ro"
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := s.Put("d", sampleDoc(t)); err == nil {
		t.Fatal("Put into read-only dir must fail")
	}
}

func TestGetCorruptDocument(t *testing.T) {
	s := open(t)
	if err := os.WriteFile(s.Dir()+"/bad"+Extension, []byte("<a><b>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("bad"); err == nil {
		t.Fatal("corrupt document must fail to load")
	}
	// Corrupt files still show in List (they exist).
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "bad" {
		t.Fatalf("List = %v", names)
	}
}

func TestListIgnoresForeignEntries(t *testing.T) {
	s := open(t)
	os.MkdirAll(s.Dir()+"/subdir", 0o755)
	os.WriteFile(s.Dir()+"/notes.txt", []byte("x"), 0o644)
	os.WriteFile(s.Dir()+"/.hidden"+Extension, []byte("x"), 0o644)
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("List picked up foreign entries: %v", names)
	}
}
