// Package influence implements the call-sequencing analysis of Section 4
// of "Lazy Query Evaluation for Active XML" (SIGMOD 2004): the
// may-influence relation between NFQs (Proposition 3), its partition into
// layers processed in topological order (Section 4.3), and the
// independence condition (✶) that allows all the calls retrieved by an NFQ
// to be invoked in parallel (Section 4.4).
//
// The analysis works on the *position language* of each NFQ: the set of
// label paths under which it can retrieve function nodes — its linear part
// lin_v, extended with a trailing wildcard closure when the target node is
// reached through a descendant edge. NFQ q_v may influence q_w iff some
// word of P_v is a prefix of some word of P_w: a call retrieved by q_v
// can then produce, at or below its own position, a new call sitting at a
// position q_w retrieves.
package influence

import (
	"sort"

	"github.com/activexml/axml/internal/regex"
	"github.com/activexml/axml/internal/rewrite"
)

// Layer is one equivalence class of the mutual-influence relation: NFQs
// that may feed each other new calls and therefore must be processed
// together by the NFQA loop.
type Layer struct {
	// Members are indices into the Analysis' NFQ slice.
	Members []int
}

// Analysis holds the precomputed influence structure for a set of NFQs.
type Analysis struct {
	nfqs []*rewrite.NFQ
	pos  []*regex.NFA // position language automaton per NFQ
	may  [][]bool     // may[i][j]: nfqs[i] may influence nfqs[j]
	lt   [][]bool     // transitive closure of may
	comp []int        // NFQ index → layer number (topological position)

	layers []Layer
}

// New runs the influence analysis over the given NFQs.
func New(nfqs []*rewrite.NFQ) *Analysis {
	n := len(nfqs)
	a := &Analysis{nfqs: nfqs, pos: make([]*regex.NFA, n)}
	for i, q := range nfqs {
		a.pos[i] = positionNFA(q)
	}
	a.may = make([][]bool, n)
	prefixes := make([]*regex.NFA, n)
	for j := range nfqs {
		prefixes[j] = a.pos[j].PrefixClosure()
	}
	for i := range nfqs {
		a.may[i] = make([]bool, n)
		for j := range nfqs {
			a.may[i][j] = a.pos[i].Intersects(prefixes[j])
		}
	}
	a.closure()
	a.computeLayers()
	return a
}

// positionNFA compiles the position language P_v of an NFQ: L(lin_v), with
// a trailing σ* when the target has a descendant edge.
func positionNFA(q *rewrite.NFQ) *regex.NFA {
	parts := make([]regex.Expr, 0, 2*len(q.Lin)+1)
	for _, s := range q.Lin {
		if s.AnyDepth {
			parts = append(parts, regex.Star(regex.Sym(regex.Any)))
		}
		parts = append(parts, regex.Sym(s.Label))
	}
	if q.DescTail {
		parts = append(parts, regex.Star(regex.Sym(regex.Any)))
	}
	return regex.Compile(regex.Concat(parts...))
}

// closure computes the reachability closure of the may relation
// (Floyd–Warshall on booleans; NFQ counts are small).
func (a *Analysis) closure() {
	n := len(a.nfqs)
	a.lt = make([][]bool, n)
	for i := range a.lt {
		a.lt[i] = make([]bool, n)
		copy(a.lt[i], a.may[i])
		a.lt[i][i] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !a.lt[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if a.lt[k][j] {
					a.lt[i][j] = true
				}
			}
		}
	}
}

// computeLayers groups mutually influencing NFQs (i ≈ j iff i ⇝* j and
// j ⇝* i) and orders the groups in a topological completion of the
// induced partial order, breaking ties by smallest member index so the
// result is deterministic.
func (a *Analysis) computeLayers() {
	n := len(a.nfqs)
	a.comp = make([]int, n)
	for i := range a.comp {
		a.comp[i] = -1
	}
	var classes []Layer
	for i := 0; i < n; i++ {
		if a.comp[i] >= 0 {
			continue
		}
		c := len(classes)
		var members []int
		for j := i; j < n; j++ {
			if a.comp[j] < 0 && a.lt[i][j] && a.lt[j][i] {
				a.comp[j] = c
				members = append(members, j)
			}
		}
		classes = append(classes, Layer{Members: members})
	}
	// Kahn's algorithm over the class DAG, preferring the class with the
	// smallest first member among the ready ones.
	k := len(classes)
	depends := make([][]bool, k) // depends[x][y]: x must run after y
	indeg := make([]int, k)
	for x := 0; x < k; x++ {
		depends[x] = make([]bool, k)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ci, cj := a.comp[i], a.comp[j]
			if ci != cj && a.lt[i][j] && !depends[cj][ci] {
				depends[cj][ci] = true // i influences j → class of i first
				indeg[cj]++
			}
		}
	}
	var order []int
	done := make([]bool, k)
	for len(order) < k {
		best := -1
		for x := 0; x < k; x++ {
			if done[x] || indeg[x] != 0 {
				continue
			}
			if best < 0 || classes[x].Members[0] < classes[best].Members[0] {
				best = x
			}
		}
		if best < 0 {
			// Cannot happen: the class graph is a DAG by construction.
			panic("influence: cycle in layer DAG")
		}
		done[best] = true
		order = append(order, best)
		for y := 0; y < k; y++ {
			if !done[y] && depends[y][best] {
				depends[y][best] = false
				indeg[y]--
			}
		}
	}
	a.layers = make([]Layer, 0, k)
	remap := make([]int, k)
	for pos, c := range order {
		remap[c] = pos
		a.layers = append(a.layers, classes[c])
	}
	for i := range a.comp {
		a.comp[i] = remap[a.comp[i]]
	}
}

// NFQs returns the analysed NFQ set (the indices used throughout).
func (a *Analysis) NFQs() []*rewrite.NFQ { return a.nfqs }

// MayInfluence reports whether nfqs[i] may influence nfqs[j]
// (Proposition 3).
func (a *Analysis) MayInfluence(i, j int) bool { return a.may[i][j] }

// Layers returns the NFQ layers in processing order (Section 4.3): if
// some NFQ of layer p may (transitively) influence some NFQ of layer q≠p,
// then p comes before q.
func (a *Analysis) Layers() []Layer { return a.layers }

// LayerOf returns the position of the layer containing nfqs[i].
func (a *Analysis) LayerOf(i int) int { return a.comp[i] }

// Independent reports the (✶) condition of Section 4.4 for nfqs[i]: its
// position language is disjoint from every *other* same-layer NFQ's, so
// invoking one retrieved call can neither add nor remove candidates of
// the others, and all the calls it retrieves may be fired in parallel.
func (a *Analysis) Independent(i int) bool {
	for _, j := range a.layers[a.comp[i]].Members {
		if j == i {
			continue
		}
		if a.pos[i].Intersects(a.pos[j]) {
			return false
		}
	}
	return true
}

// SameLayer reports whether two NFQs belong to the same layer.
func (a *Analysis) SameLayer(i, j int) bool { return a.comp[i] == a.comp[j] }

// SortedMembers returns the layer's member indices in ascending order
// (a defensive copy).
func (l Layer) SortedMembers() []int {
	out := append([]int(nil), l.Members...)
	sort.Ints(out)
	return out
}
