package influence

import (
	"testing"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/rewrite"
)

const figure4 = `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`

func analysisFor(t *testing.T, query string) (*Analysis, map[string]int) {
	t.Helper()
	q := pattern.MustParse(query)
	nfqs, err := rewrite.BuildAll(q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(nfqs)
	// Index NFQs by a readable key for assertions: the label of the node
	// they target plus the parent label, which is unique enough here.
	byKey := map[string]int{}
	for i, nfq := range nfqs {
		key := nodeKey(nfq.For)
		if _, dup := byKey[key]; dup {
			key = key + "#2"
		}
		byKey[key] = i
	}
	return a, byKey
}

func nodeKey(n *pattern.Node) string {
	label := n.Label
	if n.Kind == pattern.Var {
		label = "$" + label
	}
	if n.Parent != nil && n.Parent.Kind != pattern.Root {
		return nodeKey(n.Parent) + "/" + label
	}
	return label
}

func TestMayInfluenceRunningExample(t *testing.T) {
	a, ix := analysisFor(t, figure4)
	hotel := ix["hotels/hotel"]
	restaurant := ix["hotels/hotel/nearby/restaurant"]
	ratingLeaf := ix["hotels/hotel/rating/*****"]

	// Figure 6(a) may influence 6(b) and 6(c): a getHotels result can
	// contain calls at the restaurant or rating positions.
	if !a.MayInfluence(hotel, restaurant) {
		t.Error("hotel NFQ must influence restaurant NFQ")
	}
	if !a.MayInfluence(hotel, ratingLeaf) {
		t.Error("hotel NFQ must influence rating NFQ")
	}
	// The reverse is false: a call below rating cannot create calls at
	// the hotel position (results only go downwards).
	if a.MayInfluence(ratingLeaf, hotel) {
		t.Error("rating NFQ must not influence hotel NFQ")
	}
	if a.MayInfluence(restaurant, hotel) {
		t.Error("restaurant NFQ must not influence hotel NFQ")
	}
	// The hotel-level rating NFQ and the restaurant NFQ are incomparable.
	if a.MayInfluence(ratingLeaf, restaurant) {
		t.Error("hotel-rating NFQ must not influence restaurant NFQ")
	}
	if a.MayInfluence(restaurant, ratingLeaf) {
		t.Error("restaurant NFQ must not influence hotel-rating NFQ")
	}
	// Self-influence holds (a retrieved call may return new calls at a
	// position the same NFQ retrieves) whenever the position language is
	// non-trivial; for descendant targets in particular.
	if !a.MayInfluence(restaurant, restaurant) {
		t.Error("descendant-edge NFQ must self-influence")
	}
}

func TestDescendantTailInfluence(t *testing.T) {
	// A call retrieved deep below nearby (for the restaurant target) can
	// return a nested restaurant containing a rating call: the
	// restaurant-rating NFQ must see the influence both ways with the
	// restaurant-name NFQ, merging them into one layer.
	a, ix := analysisFor(t, figure4)
	rRating := ix["hotels/hotel/nearby/restaurant/rating/*****"]
	rName := ix["hotels/hotel/nearby/restaurant/name/$X"]
	if !a.MayInfluence(rRating, rName) || !a.MayInfluence(rName, rRating) {
		t.Error("descendant-subtree leaf NFQs must mutually influence")
	}
	if !a.SameLayer(rRating, rName) {
		t.Error("mutually influencing NFQs must share a layer")
	}
}

func TestLayerOrderRespectsInfluence(t *testing.T) {
	a, ix := analysisFor(t, figure4)
	hotel := ix["hotels/hotel"]
	restaurant := ix["hotels/hotel/nearby/restaurant"]
	ratingLeaf := ix["hotels/hotel/rating/*****"]
	if a.LayerOf(hotel) >= a.LayerOf(restaurant) {
		t.Error("hotel layer must precede restaurant layer")
	}
	if a.LayerOf(hotel) >= a.LayerOf(ratingLeaf) {
		t.Error("hotel layer must precede rating layer")
	}
	// Layers partition the NFQ set.
	seen := map[int]bool{}
	total := 0
	for _, l := range a.Layers() {
		for _, m := range l.Members {
			if seen[m] {
				t.Fatalf("NFQ %d in two layers", m)
			}
			seen[m] = true
			total++
		}
	}
	if total != len(a.NFQs()) {
		t.Fatalf("layers cover %d of %d NFQs", total, len(a.NFQs()))
	}
	// And the order is consistent with transitive influence.
	for i := range a.NFQs() {
		for j := range a.NFQs() {
			if a.MayInfluence(i, j) && !a.SameLayer(i, j) && a.LayerOf(i) > a.LayerOf(j) {
				t.Errorf("influence %d→%d but layer order %d>%d", i, j, a.LayerOf(i), a.LayerOf(j))
			}
		}
	}
}

func TestSameLayerSiblingsWithEqualLin(t *testing.T) {
	// name, rating and nearby all hang under hotel with child edges:
	// their NFQs share lin = /hotels/hotel, hence one layer.
	a, ix := analysisFor(t, figure4)
	name := ix["hotels/hotel/name"]
	rating := ix["hotels/hotel/rating"]
	nearby := ix["hotels/hotel/nearby"]
	if !a.SameLayer(name, rating) || !a.SameLayer(rating, nearby) {
		t.Error("sibling NFQs with equal lin must share a layer")
	}
}

func TestIndependence(t *testing.T) {
	// The paper's §4.3/4.4 example: two NFQs with linear parts //a and
	// //b mutually influence (same layer) but their position languages
	// are disjoint, so both are independent: all their retrieved calls
	// can fire in parallel. The example considers a layer with exactly
	// those two NFQs, so the analysis runs over that subset.
	q := pattern.MustParse(`/r[//a/x]//b/y`)
	all, err := rewrite.BuildAll(q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var pair []*rewrite.NFQ
	for _, nfq := range all {
		if nfq.For.Label == "x" || nfq.For.Label == "y" {
			pair = append(pair, nfq)
		}
	}
	if len(pair) != 2 {
		t.Fatalf("want 2 NFQs, got %d", len(pair))
	}
	a := New(pair)
	if !a.SameLayer(0, 1) {
		t.Fatal("//a and //b NFQs must share a layer")
	}
	if !a.Independent(0) || !a.Independent(1) {
		t.Error("disjoint same-layer NFQs must be independent")
	}
}

func TestFullSetIndependenceBlockedByZoneNFQs(t *testing.T) {
	// In the full NFQ set of the same query, the //a and //b target NFQs
	// themselves have position language r·σ*, overlapping everything
	// below r — so the leaf NFQs are no longer independent.
	a, ix := analysisFor(t, `/r[//a/x]//b/y`)
	if a.Independent(ix["r/a/x"]) {
		t.Error("x NFQ cannot be independent next to the //a NFQ")
	}
}

func TestNotIndependentWhenPositionsOverlap(t *testing.T) {
	// Two descendant targets below the same zone: //item/x and //item/y
	// have overlapping position languages (both retrieve calls below
	// item elements), so neither is independent.
	a, ix := analysisFor(t, `/r[//item/x]//item/y`)
	xNFQ := ix["r/item/x"]
	yNFQ := ix["r/item/y"]
	if !a.SameLayer(xNFQ, yNFQ) {
		t.Fatal("expected same layer")
	}
	if a.Independent(xNFQ) || a.Independent(yNFQ) {
		t.Error("overlapping same-layer NFQs must not be independent")
	}
}

func TestSingletonLayerIsIndependent(t *testing.T) {
	// Each layer of the chain query has one NFQ: trivially independent
	// (the paper's running-example observation).
	a, _ := analysisFor(t, `/a/b/c`)
	for i := range a.NFQs() {
		if len(a.Layers()[a.LayerOf(i)].Members) == 1 && !a.Independent(i) {
			t.Errorf("singleton layer NFQ %d must be independent", i)
		}
	}
}

func TestRootNFQInfluencesEverything(t *testing.T) {
	// The NFQ of the root element has lin = ε, and ε is a prefix of
	// every word: it precedes everything else.
	a, ix := analysisFor(t, figure4)
	root := ix["hotels"]
	for i := range a.NFQs() {
		if i == root {
			continue
		}
		if !a.MayInfluence(root, i) {
			t.Errorf("root NFQ must influence NFQ %d", i)
		}
		if a.MayInfluence(i, root) {
			t.Errorf("NFQ %d must not influence the root NFQ", i)
		}
	}
	if a.LayerOf(root) != 0 {
		t.Error("root NFQ must be in the first layer")
	}
}

func TestSortedMembersIsACopy(t *testing.T) {
	a, _ := analysisFor(t, figure4)
	l := a.Layers()[0]
	s := l.SortedMembers()
	if len(s) == 0 {
		t.Fatal("empty layer")
	}
	s[0] = -99
	if l.Members[0] == -99 {
		t.Fatal("SortedMembers must return a copy")
	}
}

func TestLayersWithLPQs(t *testing.T) {
	// The sequencing machinery also runs over LPQs (Section 6.1).
	q := pattern.MustParse(figure4)
	lpqs, err := rewrite.LPQs(q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(lpqs)
	if len(a.Layers()) < 3 {
		t.Fatalf("expected several LPQ layers, got %d", len(a.Layers()))
	}
}
