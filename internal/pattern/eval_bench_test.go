package pattern

import (
	"fmt"
	"testing"

	"github.com/activexml/axml/internal/tree"
)

// benchSizes are the document scales the micro-benchmarks sweep: small is
// a unit-test document, large approaches the biggest E1 sweep point.
var benchSizes = []int{10, 100, 1000}

// benchDoc builds a hotels-shaped document with size hotels, each carrying
// one embedded call, and returns it with the Figure-4-style query and a
// call-retrieving relevance query.
func benchDoc(size int) *tree.Document {
	root := tree.NewElement("hotels")
	for i := 0; i < size; i++ {
		h := root.Append(tree.NewElement("hotel"))
		h.Append(tree.NewElement("name")).Append(tree.NewText(fmt.Sprintf("Hotel %d", i)))
		rating := "***"
		if i%5 == 0 {
			rating = "*****"
		}
		h.Append(tree.NewElement("rating")).Append(tree.NewText(rating))
		nb := h.Append(tree.NewElement("nearby"))
		r := nb.Append(tree.NewElement("restaurant"))
		r.Append(tree.NewElement("name")).Append(tree.NewText(fmt.Sprintf("Chez %d", i)))
		r.Append(tree.NewElement("rating")).Append(tree.NewText("*****"))
		nb.Append(tree.NewCall("GetRestaurants", tree.NewElement("p")))
	}
	return tree.NewDocument(root)
}

const benchQuery = `/hotels/hotel[rating="*****"]/nearby//restaurant[name=$X] -> $X`
const benchCallQuery = `/hotels/hotel[rating="*****"]/nearby/()!`

func BenchmarkEval(b *testing.B) {
	for _, size := range benchSizes {
		doc := benchDoc(size)
		q := MustParse(benchQuery)
		b.Run(fmt.Sprintf("hotels=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Eval(doc, q)
			}
		})
	}
}

func BenchmarkMatchedCallsStats(b *testing.B) {
	for _, size := range benchSizes {
		doc := benchDoc(size)
		q := MustParse(benchCallQuery)
		out := q.ResultNodes()[0]
		b.Run(fmt.Sprintf("hotels=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatchedCallsStats(doc, q, out)
			}
		})
	}
}

// BenchmarkIncrementalRound measures one engine-shaped round: replace a
// call, invalidate, re-evaluate. Each replacement splices in a fresh call
// so the document never runs dry; compare against
// BenchmarkMatchedCallsStats at the same size for the from-scratch cost.
func BenchmarkIncrementalRound(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("hotels=%d", size), func(b *testing.B) {
			doc := benchDoc(size)
			q := MustParse(benchCallQuery)
			out := q.ResultNodes()[0]
			ie := NewIncremental(q)
			ie.MatchedCallsIncremental(doc, out) // warm the memo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				calls := doc.Calls()
				call := calls[i%len(calls)]
				parent := call.Parent
				doc.ReplaceCall(call, []*tree.Node{
					tree.NewElement("restaurant"),
					tree.NewCall("GetRestaurants", tree.NewElement("p")),
				})
				ie.Invalidate(parent, call)
				ie.MatchedCallsIncremental(doc, out)
			}
		})
	}
}

// BenchmarkResultKey exercises the canonical key builder shared by
// Result.Key and solution dedup — the inner-loop allocation hot spot.
func BenchmarkResultKey(b *testing.B) {
	doc := benchDoc(10)
	q := MustParse(benchQuery)
	rs, _ := Eval(doc, q)
	if len(rs) == 0 {
		b.Fatal("no results to key")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rs {
			r.Key()
		}
	}
}
