package pattern

import (
	"testing"

	"github.com/activexml/axml/internal/tree"
)

func TestResidualMatcherBasics(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`
<hotels>
  <hotel><name>Best Western</name><rating><axml:call service="getRating"/></rating></hotel>
  <hotel><name>Pennsylvania</name><rating><axml:call service="getRating"/></rating></hotel>
</hotels>`))
	// NFQ-like query: calls under rating of a Best Western hotel.
	q := MustParse(`/hotels/hotel[name="Best Western"]/rating/()`)
	out := q.ResultNodes()[0]
	m := NewResidualMatcher(q, out)
	calls := d.Calls()
	if !m.Match(d, calls[0]) {
		t.Error("Best Western's rating call must match")
	}
	if m.Match(d, calls[1]) {
		t.Error("Pennsylvania's rating call must not match")
	}
	// A non-call target never matches.
	if m.Match(d, d.Root) {
		t.Error("data node matched as a call")
	}
}

func TestResidualMatcherNamedOutput(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`<r><a><axml:call service="f"/><axml:call service="g"/></a></r>`))
	q := MustParse(`/r/a/g()`)
	m := NewResidualMatcher(q, q.ResultNodes()[0])
	calls := d.Calls()
	if m.Match(d, calls[0]) {
		t.Error("f call matched a g() output node")
	}
	if !m.Match(d, calls[1]) {
		t.Error("g call must match")
	}
}

func TestResidualMatcherDescendantSpine(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`
<r><zone><deep><item><x>1</x><axml:call service="f"/></item></deep></zone>
   <zone><item><y>1</y><axml:call service="f"/></item></zone></r>`))
	q := MustParse(`/r//item[x]/()`)
	m := NewResidualMatcher(q, q.ResultNodes()[0])
	calls := d.Calls()
	if !m.Match(d, calls[0]) {
		t.Error("deep item with x must match")
	}
	if m.Match(d, calls[1]) {
		t.Error("item without x must not match")
	}
}

func TestResidualMatcherJoinAcrossLevels(t *testing.T) {
	// The spine variable joins with an off-spine branch variable.
	d, _ := tree.Unmarshal([]byte(`
<r><grp><tag>k1</tag><item><key>k1</key><axml:call service="f"/></item></grp>
   <grp><tag>k2</tag><item><key>other</key><axml:call service="f"/></item></grp></r>`))
	q := MustParse(`/r/grp[tag=$V]/item[key=$V]/()`)
	m := NewResidualMatcher(q, q.ResultNodes()[0])
	calls := d.Calls()
	if !m.Match(d, calls[0]) {
		t.Error("joined group must match")
	}
	if m.Match(d, calls[1]) {
		t.Error("join mismatch must fail")
	}
}

func TestResidualMatcherAnchorBranches(t *testing.T) {
	// A pattern with a second top-level branch under the anchor (built
	// programmatically: the textual syntax produces single chains).
	root := NewNode(Root, "", Child)
	spineA := root.Add(NewNode(Const, "a", Child))
	out := spineA.Add(NewNode(Func, AnyFunc, Child))
	out.Result = true
	cond := root.Add(NewNode(Const, "flag", Desc))
	_ = cond
	q := NewPattern(root)

	withFlag, _ := tree.Unmarshal([]byte(`<a><axml:call service="f"/><flag/></a>`))
	withoutFlag, _ := tree.Unmarshal([]byte(`<a><axml:call service="f"/></a>`))
	m := NewResidualMatcher(q, out)
	if !m.Match(withFlag, withFlag.Calls()[0]) {
		t.Error("anchor branch satisfied, must match")
	}
	m2 := NewResidualMatcher(q, out)
	if m2.Match(withoutFlag, withoutFlag.Calls()[0]) {
		t.Error("anchor branch unsatisfied, must not match")
	}
}

func TestResidualMatcherPanicsOnBadSpine(t *testing.T) {
	q := MustParse(`/a[(b|c)]`)
	// Fabricate an output under the OR node to trigger the assertion.
	var or *Node
	for _, n := range q.Nodes() {
		if n.Kind == Or {
			or = n
		}
	}
	f := or.Children[0].Add(NewNode(Func, AnyFunc, Child))
	q.Reindex()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for an OR spine")
		}
	}()
	NewResidualMatcher(q, f)
}

// TestResidualAgreesWithPinnedEvaluation cross-validates the residual
// matcher against the reference pinned evaluation on generated NFQs over
// generated documents.
func TestResidualAgreesWithPinnedEvaluation(t *testing.T) {
	docs := []string{
		`<hotels><hotel><name>Best Western</name><rating>x</rating>
		   <nearby><axml:call service="getNearbyRestos"/></nearby></hotel></hotels>`,
		`<hotels><hotel><name>Other</name><rating><axml:call service="getRating"/></rating>
		   <nearby><restaurant><name>Jo</name></restaurant><axml:call service="g"/></nearby></hotel>
		   <axml:call service="getHotels"/></hotels>`,
		`<hotels><hotel><name>Best Western</name>
		   <rating><axml:call service="getRating"/></rating>
		   <nearby><axml:call service="getNearbyMuseums"/></nearby></hotel>
		 <hotel><name>Best Western</name><rating>*****</rating>
		   <nearby><axml:call service="getNearbyRestos"/></nearby></hotel></hotels>`,
	}
	queries := []string{
		`/hotels/hotel[name="Best Western"]/rating/()`,
		`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//()`,
		`/hotels/hotel[(rating|())]/nearby/()`,
		`/hotels/*[name=$X][rating=$X]//()`,
		`//nearby/()`,
		`/()`,
	}
	for _, dx := range docs {
		d, err := tree.Unmarshal([]byte(dx))
		if err != nil {
			t.Fatal(err)
		}
		for _, qx := range queries {
			q := MustParse(qx)
			out := q.ResultNodes()[0]
			if out.Kind != Func {
				t.Fatalf("query %s: output is not a function node", qx)
			}
			m := NewResidualMatcher(q, out)
			for _, c := range d.Calls() {
				want := MatchedCallsPinned(d, q, out, c)
				got := m.Match(d, c)
				if got != want {
					t.Errorf("doc %.40q query %s call %s: residual=%v pinned=%v",
						dx, qx, c.Label, got, want)
				}
			}
		}
	}
}
