package pattern

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/activexml/axml/internal/tree"
)

// The differential harness below grows random call-bearing documents,
// replays randomised call-replacement sequences (the shape of the engine's
// NFQA rounds), and checks after every mutation that the persistent
// IncrementalEvaluator and the from-scratch MatchedCallsStats agree on the
// matched calls — while the incremental side never computes more matches
// than a fresh evaluation would.

var (
	incrValues   = []string{"alpha", "beta", "gamma"}
	incrServices = []string{"f", "g", "h"}
)

func incrValue(rng *rand.Rand) string { return incrValues[rng.Intn(len(incrValues))] }

// randIncrForest builds a small random forest mixing elements, text and
// embedded calls — the shape of a service result spliced in by ReplaceCall.
func randIncrForest(rng *rand.Rand, depth int) []*tree.Node {
	n := 1 + rng.Intn(3)
	out := make([]*tree.Node, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && rng.Intn(4) == 0:
			svc := incrServices[rng.Intn(len(incrServices))]
			out = append(out, tree.NewCall(svc, tree.NewElement("p")))
		case depth > 0 && rng.Intn(2) == 0:
			e := tree.NewElement("item")
			e.Append(tree.NewElement("name")).Append(tree.NewText(incrValue(rng)))
			e.Append(tree.NewElement("price")).Append(tree.NewText(incrValue(rng)))
			for _, c := range randIncrForest(rng, depth-1) {
				e.Append(c)
			}
			out = append(out, e)
		default:
			out = append(out, tree.NewText(incrValue(rng)))
		}
	}
	return out
}

// randCallDoc builds a random document guaranteed to embed at least one
// call so the replacement loop has work.
func randCallDoc(rng *rand.Rand) *tree.Document {
	root := tree.NewElement("site")
	for c := 0; c < 2+rng.Intn(3); c++ {
		cat := root.Append(tree.NewElement("category"))
		cat.Append(tree.NewElement("label")).Append(tree.NewText(incrValue(rng)))
		for _, n := range randIncrForest(rng, 3) {
			cat.Append(n)
		}
		if rng.Intn(2) == 0 {
			cat.Append(tree.NewCall(incrServices[rng.Intn(len(incrServices))]))
		}
	}
	root.Append(tree.NewCall("f"))
	return tree.NewDocument(root)
}

// incrQueries covers the relevance-query shapes the engine asks: bare
// call positions, named services, descendant edges and a value join.
var incrQueries = []string{
	`/site//()!`,
	`/site/category//f()!`,
	`/site//item[name=$N]//()!`,
	`/site/category[label=$L][//name=$L]//()!`,
}

func sortedCallIDs(calls []*tree.Node) []uint64 {
	ids := make([]uint64, len(calls))
	for i, c := range calls {
		ids[i] = c.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func diffIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// TestIncrementalDifferential replays 50 random replacement sequences and
// checks, after every single mutation, that incremental and from-scratch
// evaluation retrieve the same calls, with the incremental side doing no
// more match work than a fresh evaluator.
func TestIncrementalDifferential(t *testing.T) {
	var totalHits, totalVisitedIncr, totalVisitedScratch int
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randCallDoc(rng)

		type tracked struct {
			q   *Pattern
			out *Node
			ie  *IncrementalEvaluator
		}
		qs := make([]tracked, len(incrQueries))
		for i, src := range incrQueries {
			q := MustParse(src)
			qs[i] = tracked{q: q, out: q.ResultNodes()[0], ie: NewIncremental(q)}
		}

		check := func(round int) {
			for i, tr := range qs {
				want, wantSt := MatchedCallsStats(doc, tr.q, tr.out)
				got, gotSt := tr.ie.MatchedCallsIncremental(doc, tr.out)
				if diffIDs(sortedCallIDs(want), sortedCallIDs(got)) {
					t.Fatalf("seed %d round %d query %q: incremental calls %v, from-scratch %v",
						seed, round, incrQueries[i], sortedCallIDs(got), sortedCallIDs(want))
				}
				// Every match the incremental evaluator recomputes, a fresh
				// evaluator computes too — the memo can only save work.
				if gotSt.NodesVisited > wantSt.NodesVisited {
					t.Fatalf("seed %d round %d query %q: incremental visited %d > scratch %d",
						seed, round, incrQueries[i], gotSt.NodesVisited, wantSt.NodesVisited)
				}
				totalHits += gotSt.MemoHits
				totalVisitedIncr += gotSt.NodesVisited
				totalVisitedScratch += wantSt.NodesVisited
			}
		}

		check(0)
		for round := 1; round <= 12; round++ {
			calls := doc.Calls()
			if len(calls) == 0 {
				break
			}
			call := calls[rng.Intn(len(calls))]
			parent := call.Parent
			doc.ReplaceCall(call, randIncrForest(rng, 2))
			for _, tr := range qs {
				tr.ie.Invalidate(parent, call)
			}
			check(round)
		}
	}
	if totalHits == 0 {
		t.Fatal("incremental evaluation never hit the memo across 50 seeds — invalidation is evicting everything")
	}
	if totalVisitedIncr >= totalVisitedScratch {
		t.Fatalf("incremental visited %d ≥ from-scratch %d in aggregate — the memo saved nothing",
			totalVisitedIncr, totalVisitedScratch)
	}
}

// TestEvalIncrementalDifferential replays random replacement sequences
// and checks after every mutation that EvalIncremental returns the same
// result multiset as a from-scratch Eval — the contract the session
// layer's shared per-query evaluators rely on for their memo fast path.
func TestEvalIncrementalDifferential(t *testing.T) {
	var totalHits int
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		doc := randCallDoc(rng)

		queries := []string{
			`/site/category/label!`,
			`/site//item[price=$P]/name!`,
			`/site/category[label=$L]//name!`,
		}
		type tracked struct {
			q  *Pattern
			ie *IncrementalEvaluator
		}
		qs := make([]tracked, len(queries))
		for i, src := range queries {
			q := MustParse(src)
			qs[i] = tracked{q: q, ie: NewIncremental(q)}
		}

		check := func(round int) {
			for i, tr := range qs {
				want, _ := Eval(doc, tr.q)
				got, gotSt := tr.ie.EvalIncremental(doc)
				wk := make([]string, len(want))
				for j, r := range want {
					wk[j] = r.Key()
				}
				gk := make([]string, len(got))
				for j, r := range got {
					gk[j] = r.Key()
				}
				sort.Strings(wk)
				sort.Strings(gk)
				if len(wk) != len(gk) {
					t.Fatalf("seed %d round %d query %q: incremental %d results, from-scratch %d",
						seed, round, queries[i], len(gk), len(wk))
				}
				for j := range wk {
					if wk[j] != gk[j] {
						t.Fatalf("seed %d round %d query %q: result %d differs:\nincremental %s\nscratch     %s",
							seed, round, queries[i], j, gk[j], wk[j])
					}
				}
				totalHits += gotSt.MemoHits
			}
		}

		check(0)
		for round := 1; round <= 8; round++ {
			calls := doc.Calls()
			if len(calls) == 0 {
				break
			}
			call := calls[rng.Intn(len(calls))]
			parent := call.Parent
			doc.ReplaceCall(call, randIncrForest(rng, 2))
			for _, tr := range qs {
				tr.ie.Invalidate(parent, call)
			}
			check(round)
		}
	}
	if totalHits == 0 {
		t.Fatal("EvalIncremental never hit the memo across 20 seeds")
	}
}

// TestIncrementalStaleWithoutInvalidate documents the contract: skipping
// Invalidate after a mutation may serve stale matches. This is why the
// engine threads every ReplaceCall through Invalidate.
func TestIncrementalStaleWithoutInvalidate(t *testing.T) {
	root := tree.NewElement("site")
	cat := root.Append(tree.NewElement("category"))
	call := cat.Append(tree.NewCall("f"))
	doc := tree.NewDocument(root)

	q := MustParse(`/site/category/()!`)
	ie := NewIncremental(q)
	got, _ := ie.MatchedCallsIncremental(doc, q.ResultNodes()[0])
	if len(got) != 1 {
		t.Fatalf("initial eval: got %d calls, want 1", len(got))
	}

	parent := call.Parent
	doc.ReplaceCall(call, []*tree.Node{tree.NewText("done")})
	// No Invalidate: the memo still answers from the old subtree.
	stale, _ := ie.MatchedCallsIncremental(doc, q.ResultNodes()[0])
	if len(stale) == 0 {
		t.Skip("memo happened not to cover the mutated region")
	}
	ie.Invalidate(parent, call)
	fresh, _ := ie.MatchedCallsIncremental(doc, q.ResultNodes()[0])
	if len(fresh) != 0 {
		t.Fatalf("after Invalidate: got %d calls, want 0", len(fresh))
	}
	if ie.Evictions() == 0 {
		t.Fatal("Invalidate evicted nothing")
	}
}

// TestIncrementalEvictionsBounded checks the eviction rule touches only
// the removed subtree plus the root spine, not the whole document.
func TestIncrementalEvictionsBounded(t *testing.T) {
	root := tree.NewElement("site")
	var call *tree.Node
	for c := 0; c < 20; c++ {
		cat := root.Append(tree.NewElement("category"))
		cat.Append(tree.NewElement("label")).Append(tree.NewText(fmt.Sprintf("v%d", c)))
		if c == 7 {
			call = cat.Append(tree.NewCall("f"))
		}
	}
	doc := tree.NewDocument(root)
	q := MustParse(`/site//()!`)
	ie := NewIncremental(q)
	ie.MatchedCallsIncremental(doc, q.ResultNodes()[0])

	parent := call.Parent
	doc.ReplaceCall(call, []*tree.Node{tree.NewText("done")})
	ie.Invalidate(parent, call)
	// Spine is category+root (2) plus the removed call and its params (1):
	// far fewer than the document's ~60 nodes.
	if got, max := ie.Evictions(), 8; got > max {
		t.Fatalf("evicted %d nodes, want ≤ %d (spine + removed subtree only)", got, max)
	}
}
